"""The sharded executor: partition, validation, bit-identity, merging.

The load-bearing property is *execution-strategy transparency*: a run
with ``WorldConfig(shards=N)`` must be indistinguishable from the
single-process run on every observable — the order-canonical digest
(frame counters, drops, first deliveries, first death, per-node tx/rx)
and the conservation report of the merged per-shard ledgers.  The unit
tests pin the strip partition, the shard-safety validation and the
ledger merge's cross-shard semantics; the integration tests replay the
same workload at 1/2/3 workers and assert digest equality, with and
without battery deaths — for flooding, for the unicast discovery
protocols (SPR, MLR) and for lossy/ARQ radios whose draws come from
per-node RNG substreams.
"""

import dataclasses
import math
import multiprocessing
import tempfile
import time
from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import CheckpointError, ConfigurationError, ShardWorkerError
from repro.obs.ledger import DatumState, PacketLedger
from repro.obs.merge import merge_collectors, merge_ledgers
from repro.runner.spec import cache_key
from repro.shard import (
    CheckpointConfig,
    HarnessChaos,
    ShardPlan,
    ShardWorkload,
    SupervisionConfig,
    conservative_lookahead,
    restore_world,
    run_sharded,
    snapshot_world,
    workload_key,
)
from repro.shard.runner import _build_worker_world, _schedule_rounds, run_digest
from repro.sim.mobility import FeasiblePlaces, GatewaySchedule
from repro.sim.network import uniform_deployment
from repro.sim.packet import MAC_HEADER_BYTES, Packet, PacketKind
from repro.sim.radio import IEEE802154, GilbertElliott
from repro.sim.trace import MetricsCollector
from repro.world import WorldConfig


def _data_packet(origin: int, data_id: int) -> Packet:
    return Packet(
        kind=PacketKind.DATA, origin=origin, target=None,
        payload={"data_id": data_id},
    )


def _workload(
    n=150, field=200.0, comm_range=40.0, datums=12, battery=math.inf,
    seed=3, audit=True, shards=1, protocol="flooding", radio=None,
    rounds=(), protocol_params=None,
):
    positions = uniform_deployment(n, field, seed=seed)
    gateways = np.asarray([[0.3 * field, 0.5 * field], [0.8 * field, 0.6 * field]])
    sources = [int(k * n / datums) for k in range(datums)]
    traffic = tuple((0.5 + 0.2 * k, s) for k, s in enumerate(sources))
    return ShardWorkload(
        sensor_positions=positions,
        gateway_positions=gateways,
        comm_range=comm_range,
        traffic=traffic,
        world=WorldConfig(audit=audit, shards=shards),
        radio=IEEE802154.ideal() if radio is None else radio,
        protocol=protocol,
        protocol_params={} if protocol_params is None else protocol_params,
        sensor_battery=battery,
        seed=seed,
        rounds=rounds,
    )


def _mlr_schedule(n=150, field=200.0, cross_strip=False):
    """Two gateways, three feasible places; round 1 moves gateway ``n``.

    The alternate place shifts along y only (strip-stable: same x keeps
    the gateway in its round-0 strip under any vertical-cut plan) unless
    ``cross_strip``, which sends it across the field in x instead.
    """
    gws = [n, n + 1]
    spots = [(0.3 * field, 0.5 * field), (0.8 * field, 0.6 * field)]
    alt0 = (0.75 * field, 0.5 * field) if cross_strip else (0.3 * field, 0.3 * field)
    places = FeasiblePlaces(
        labels=("p0a", "p0b", "p1a"),
        coordinates=(spots[0], alt0, spots[1]),
    )
    return GatewaySchedule(
        places=places,
        rounds=[{gws[0]: "p0a", gws[1]: "p1a"}, {gws[0]: "p0b", gws[1]: "p1a"}],
    )


def _mlr_workload(n=150, field=200.0, cross_strip=False, rounds=(0.0, 2.0), **kw):
    schedule = _mlr_schedule(n=n, field=field, cross_strip=cross_strip)
    return _workload(
        n=n, field=field,
        protocol="mlr",
        protocol_params={"schedule": schedule},
        rounds=rounds,
        **kw,
    )


# ----------------------------------------------------------------------
# lookahead and the strip partition
# ----------------------------------------------------------------------
class TestPlan:
    def test_lookahead_is_header_airtime(self):
        radio = IEEE802154.ideal()
        assert conservative_lookahead(radio) == radio.airtime(8 * MAC_HEADER_BYTES)
        assert conservative_lookahead(radio) > 0.0

    def test_ownership_is_a_balanced_partition(self):
        pos = uniform_deployment(400, 300.0, seed=1)
        plan = ShardPlan.build(pos, 30.0, 4)
        owners = plan.owner_of(pos)
        counts = np.bincount(owners, minlength=4)
        assert counts.sum() == 400
        assert counts.min() >= 90  # quantile cuts stay roughly balanced
        # Strips are contiguous in x: sorting by x never decreases owner.
        order = np.argsort(pos[:, 0], kind="stable")
        assert (np.diff(owners[order]) >= 0).all()

    def test_ties_on_a_cut_go_right(self):
        pos = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [3.0, 0.0]])
        plan = ShardPlan.build(pos, 1.0, 2)
        (cut,) = plan.cuts
        assert plan.owner_of(np.array([[cut, 5.0]]))[0] == 1

    def test_interior_mask_is_strict(self):
        pos = uniform_deployment(200, 300.0, seed=2)
        plan = ShardPlan.build(pos, 40.0, 2)
        interior = plan.interior_mask(pos, 0)
        owners = plan.owner_of(pos)
        (cut,) = plan.cuts
        for i in range(200):
            expect = owners[i] == 0 and (cut - pos[i, 0]) > 40.0
            assert bool(interior[i]) == expect

    def test_halo_shards_cover_reachable_strips(self):
        pos = uniform_deployment(300, 300.0, seed=4)
        plan = ShardPlan.build(pos, 30.0, 3)
        for x in (0.0, plan.cuts[0], plan.cuts[0] - 29.0, plan.cuts[1] + 29.0, 300.0):
            halos = plan.halo_shards(float(x))
            owner = int(plan.owner_of(np.array([[x, 0.0]]))[0])
            assert owner in halos
            for s in halos:
                lo, hi = plan.strip_bounds(s)
                assert lo <= x + 30.0 and hi > x - 30.0

    def test_strip_rect_is_clipped_to_field(self):
        pos = uniform_deployment(100, 200.0, seed=5)
        plan = ShardPlan.build(pos, 20.0, 2)
        x0, y0, x1, y1 = plan.strip_rect(0)
        assert math.isfinite(x0) and math.isfinite(x1)
        assert x0 == plan.bounds[0] and x1 == plan.cuts[0]

    def test_build_rejects_degenerate_inputs(self):
        pos = uniform_deployment(10, 100.0, seed=0)
        with pytest.raises(ConfigurationError, match="non-empty strips"):
            ShardPlan.build(pos, 10.0, 11)
        with pytest.raises(ConfigurationError, match="comm_range"):
            ShardPlan.build(pos, 0.0, 2)
        # All x identical: either the quantile cuts collide or a strip
        # ends up empty — both are partition failures.
        clustered = np.column_stack([np.zeros(8), np.arange(8.0)])
        with pytest.raises(ConfigurationError, match="clustered|empty"):
            ShardPlan.build(clustered, 10.0, 2)


# ----------------------------------------------------------------------
# halo route-column mirroring on the SoA store
# ----------------------------------------------------------------------
class TestRouteMirror:
    def test_mirror_route_overwrites_without_seq_bump(self):
        from repro.sim.node import NodeKind
        from repro.sim.state import NodeStateStore

        store = NodeStateStore([NodeKind.SENSOR] * 3, [math.inf] * 3)
        store.note_route(0, 2)  # a local observation bumps the seq
        assert store.route_seq[0] == 1
        store.mirror_route([0, 1], [5, 2], [7, 1])
        assert list(store.next_hop[:2]) == [5, 2]
        assert list(store.route_seq[:2]) == [7, 1]
        # Mirroring imports the owner's sequence wholesale; re-applying
        # the same state is idempotent, unlike a note_route change-bump.
        store.mirror_route([0], [5], [7])
        assert store.route_seq[0] == 7

    def test_note_route_none_clears_to_sentinel(self):
        from repro.sim.node import NodeKind
        from repro.sim.state import NO_ROUTE, NodeStateStore

        store = NodeStateStore([NodeKind.SENSOR] * 2, [math.inf] * 2)
        store.note_route(1, 0)
        store.note_route(1, None)
        assert store.next_hop[1] == NO_ROUTE
        assert store.route_seq[1] == 2


# ----------------------------------------------------------------------
# shard-safety validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_rejects_non_shard_safe_protocol_at_construction(self):
        # Construction site: ShardWorkload.__post_init__ runs the same
        # validation run_sharded does, and names the supported set.
        with pytest.raises(ConfigurationError, match="not shard-safe") as err:
            dataclasses.replace(_workload(), protocol="gossiping")
        for supported in ("flooding", "spr", "mlr"):
            assert supported in str(err.value)

    def test_rejects_non_shard_safe_protocol_at_run(self):
        # Execution site: a workload mutated after construction still
        # fails inside run_sharded, not windows-deep in a worker.
        w = _workload()
        w.protocol = "gossiping"
        with pytest.raises(ConfigurationError, match="not shard-safe"):
            run_sharded(w, shards=2)

    def test_rejects_object_path(self):
        w = _workload()
        w.world = WorldConfig(soa=False)
        with pytest.raises(ConfigurationError, match="soa=True"):
            run_sharded(w, shards=2)

    def test_rejects_fault_plans(self):
        from repro.faults.plan import Crash, FaultPlan

        w = _workload()
        w.world = WorldConfig(faults=FaultPlan((Crash(node=0, t=1.0),)))
        with pytest.raises(ConfigurationError, match="fault plan"):
            run_sharded(w, shards=2)

    def test_worldconfig_rejects_shard_compositions_at_construction(self):
        # The same two composition rules fire where the *config* is
        # written, before any workload exists.
        from repro.faults.plan import Crash, FaultPlan

        with pytest.raises(ConfigurationError, match="soa=True"):
            WorldConfig(shards=2, soa=False)
        with pytest.raises(ConfigurationError, match="fault plan"):
            WorldConfig(shards=2, faults=FaultPlan((Crash(node=0, t=1.0),)))

    def test_rejects_contended_radio(self):
        for bad in (
            dataclasses.replace(IEEE802154.ideal(), csma=True),
            dataclasses.replace(IEEE802154.ideal(), collisions=True),
        ):
            w = dataclasses.replace(_workload(), radio=bad)
            with pytest.raises(ConfigurationError, match="csma"):
                run_sharded(w, shards=2)

    def test_lossy_arq_radio_is_shard_safe(self):
        # Loss, burst, ARQ and backoff draw from per-node substreams, so
        # a sharded WorldConfig accepts them at construction.
        lossy = dataclasses.replace(
            IEEE802154.ideal(), loss_rate=0.2, arq_retries=2,
            burst=GilbertElliott(p_gb=0.1, p_bg=0.4),
        )
        w = _workload(radio=lossy, shards=2)
        assert w.world.shards == 2

    def test_mlr_needs_a_schedule_and_sane_rounds(self):
        with pytest.raises(ConfigurationError, match="GatewaySchedule"):
            _workload(protocol="mlr")
        with pytest.raises(ConfigurationError, match="rounds only apply"):
            _workload(rounds=(0.0, 1.0))
        with pytest.raises(ConfigurationError, match="strictly increasing"):
            _mlr_workload(rounds=(1.0, 1.0))
        with pytest.raises(ConfigurationError, match="only has 2"):
            _mlr_workload(rounds=(0.0, 1.0, 2.0))

    def test_rejects_cross_strip_mlr_schedule(self):
        with pytest.raises(ConfigurationError, match="strip-stable"):
            _mlr_workload(cross_strip=True, shards=2)
        # The same schedule is fine single-process: ownership never
        # enters the picture at one shard.
        assert _mlr_workload(cross_strip=True).world.shards == 1

    def test_worldconfig_validates_shards(self):
        assert WorldConfig(shards=4).shards == 4
        for bad in (0, -1, True, 1.5, "2"):
            with pytest.raises(ConfigurationError):
                WorldConfig(shards=bad)


# ----------------------------------------------------------------------
# cache-key neutrality: shards is an execution knob, not an identity
# ----------------------------------------------------------------------
class TestCacheKey:
    def test_shards_does_not_change_the_cache_key(self):
        base = cache_key("e", {"world": WorldConfig()}, 0, version="t")
        assert cache_key("e", {"world": WorldConfig(shards=4)}, 0, version="t") == base
        # ... in jsonable-dict form too (how swept params arrive).
        from repro.sim.serialize import to_jsonable

        j1 = cache_key("e", {"world": to_jsonable(WorldConfig())}, 0, version="t")
        j4 = cache_key("e", {"world": to_jsonable(WorldConfig(shards=4))}, 0, version="t")
        assert j1 == j4 == base

    def test_real_execution_knobs_still_separate(self):
        base = cache_key("e", {"world": WorldConfig()}, 0, version="t")
        other = cache_key("e", {"world": WorldConfig(audit=True)}, 0, version="t")
        assert base != other


# ----------------------------------------------------------------------
# ledger merging across shards
# ----------------------------------------------------------------------
class TestMergeLedgers:
    def test_generated_in_a_delivered_in_b(self):
        a, b = PacketLedger(), PacketLedger()
        pkt = _data_packet(origin=7, data_id=1)
        a.on_generated(7, 1, now=0.0)
        a.on_frame_sent(pkt)
        b.on_delivered(pkt, now=2.5)  # B never generated it -> foreign
        assert b.entries == {}
        assert b.foreign == [((7, 1), "delivered", 2.5, None, None)]
        merged = merge_ledgers([a, b])
        entry = merged.entries[(7, 1)]
        assert entry.state is DatumState.DELIVERED
        assert entry.terminal_at == 2.5
        assert merged.unknown_delivered == Counter()

    def test_generated_in_a_dropped_in_b(self):
        a, b = PacketLedger(), PacketLedger()
        a.on_generated(3, 9, now=0.0)
        assert b.on_dropped("ttl", key=(3, 9), node=12, now=1.25) is False
        merged = merge_ledgers([a, b])
        entry = merged.entries[(3, 9)]
        assert entry.state is DatumState.DROPPED
        assert (entry.reason, entry.node, entry.terminal_at) == ("ttl", 12, 1.25)

    def test_delivery_beats_cross_shard_drop(self):
        a, b, c = PacketLedger(), PacketLedger(), PacketLedger()
        a.on_generated(1, 1, now=0.0)
        b.on_dropped("dead_node", key=(1, 1), node=5, now=1.0)
        c.on_delivered(_data_packet(1, 1), now=3.0)
        merged = merge_ledgers([a, b, c])
        entry = merged.entries[(1, 1)]
        assert entry.state is DatumState.DELIVERED
        assert entry.superseded_drop == "dead_node"
        assert merged.late_drops == Counter({"dead_node": 1})

    def test_equal_time_superseded_drop_is_report_order_independent(self):
        """A drop tying a delivery's timestamp resolves the same way
        however many shards reported and in whatever order.

        The superseded reason is picked by the full ``(time, reason,
        node)`` key, not by report order — with equal times the
        lexicographically smallest reason wins on every permutation.
        """
        import itertools

        def merge_in(order):
            gen = PacketLedger()
            gen.on_generated(1, 1, now=0.0)
            d1 = PacketLedger()
            d1.on_dropped("ttl", key=(1, 1), node=9, now=2.0)
            d2 = PacketLedger()
            d2.on_dropped("dead_node", key=(1, 1), node=4, now=2.0)
            dv = PacketLedger()
            dv.on_delivered(_data_packet(1, 1), now=2.0)
            parts = {"g": gen, "d1": d1, "d2": d2, "v": dv}
            return merge_ledgers([parts[k] for k in order])

        outcomes = set()
        for order in itertools.permutations(("g", "d1", "d2", "v")):
            merged = merge_in(order)
            entry = merged.entries[(1, 1)]
            outcomes.add((
                entry.state, entry.terminal_at, entry.superseded_drop,
                tuple(sorted(merged.late_drops.items())),
            ))
        assert outcomes == {(
            DatumState.DELIVERED, 2.0, "dead_node",
            (("dead_node", 1), ("ttl", 1)),
        )}

    def test_equal_time_terminal_drops_pick_one_winner(self):
        """Two same-timestamp drops with no delivery: the merged reason
        and node are permutation-independent too (same full-key rule)."""
        import itertools

        outcomes = set()
        for order in itertools.permutations(range(3)):
            gen = PacketLedger()
            gen.on_generated(3, 3, now=0.0)
            d1 = PacketLedger()
            d1.on_dropped("ttl", key=(3, 3), node=7, now=1.5)
            d2 = PacketLedger()
            d2.on_dropped("dead_node", key=(3, 3), node=2, now=1.5)
            parts = [gen, d1, d2]
            merged = merge_ledgers([parts[i] for i in order])
            entry = merged.entries[(3, 3)]
            outcomes.add((
                entry.state, entry.terminal_at, entry.reason, entry.node,
                tuple(sorted(merged.extra_drops.items())),
            ))
        assert outcomes == {
            (DatumState.DROPPED, 1.5, "dead_node", 2, (("ttl", 1),))
        }

    def test_duplicate_cross_shard_deliveries_count_once(self):
        a, b = PacketLedger(), PacketLedger()
        a.on_generated(2, 4, now=0.0)
        a.on_delivered(_data_packet(2, 4), now=1.0)
        b.on_delivered(_data_packet(2, 4), now=0.5)
        merged = merge_ledgers([a, b])
        entry = merged.entries[(2, 4)]
        assert entry.state is DatumState.DELIVERED
        assert entry.terminal_at == 0.5  # earliest delivery wins
        assert entry.duplicates == 1
        assert merged.delivered == 1

    def test_never_generated_delivery_stays_unknown(self):
        a, b = PacketLedger(), PacketLedger()
        a.on_generated(1, 1, now=0.0)
        b.on_delivered(_data_packet(99, 42), now=1.0)
        merged = merge_ledgers([a, b])
        assert merged.unknown_delivered == Counter({(99, 42): 1})

    def test_duplicate_generation_is_a_partition_bug(self):
        a, b = PacketLedger(), PacketLedger()
        a.on_generated(1, 1)
        b.on_generated(1, 1)
        with pytest.raises(ConfigurationError, match="ownership partition"):
            merge_ledgers([a, b])

    @given(
        plans=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1),  # generating shard
                st.sampled_from(
                    ["open", "deliver_home", "deliver_away", "drop_home",
                     "drop_away", "deliver_both", "drop_then_deliver"]
                ),
                st.floats(min_value=0.0, max_value=100.0),
            ),
            min_size=1,
            max_size=25,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_random_cross_shard_histories_merge_conserving(self, plans):
        """Per-shard ledgers merge to a conserving whole.

        Every datum is generated in exactly one shard and reaches (or
        not) a terminal state in an arbitrary shard; whatever the split,
        the merged ledger must satisfy generated == delivered + dropped
        + pending with no unknown deliveries.
        """
        parts = [PacketLedger(), PacketLedger()]
        want_delivered = want_dropped = want_open = 0
        for data_id, (home, outcome, t) in enumerate(plans):
            away = 1 - home
            parts[home].on_generated(0, data_id, now=0.0)
            pkt = _data_packet(0, data_id)
            if outcome == "open":
                want_open += 1
            elif outcome == "deliver_home":
                parts[home].on_delivered(pkt, now=t)
                want_delivered += 1
            elif outcome == "deliver_away":
                parts[away].on_delivered(pkt, now=t)
                want_delivered += 1
            elif outcome == "drop_home":
                parts[home].on_dropped("ttl", key=(0, data_id), now=t)
                want_dropped += 1
            elif outcome == "drop_away":
                parts[away].on_dropped("dead_node", key=(0, data_id), now=t)
                want_dropped += 1
            elif outcome == "deliver_both":
                parts[home].on_delivered(pkt, now=t)
                parts[away].on_delivered(pkt, now=t + 1.0)
                want_delivered += 1
            else:  # drop_then_deliver: delivery wins however late
                parts[away].on_dropped("no_route", key=(0, data_id), now=t)
                parts[home].on_delivered(pkt, now=t + 5.0)
                want_delivered += 1
        merged = merge_ledgers(parts)
        assert merged.generated == len(plans)
        assert merged.delivered == want_delivered
        assert merged.dropped == want_dropped
        assert merged.pending == want_open
        assert merged.generated == merged.delivered + merged.dropped + merged.pending
        assert sum(merged.unknown_delivered.values()) == 0


class TestMergeCollectors:
    def test_totals_sum_and_first_death_is_earliest(self):
        a, b = MetricsCollector(audit=False), MetricsCollector(audit=False)
        a.bytes_sent, b.bytes_sent = 100, 40
        a.data_generated, b.data_generated = 3, 2
        a.first_death = (5, 9.0)
        b.first_death = (2, 4.0)
        merged = merge_collectors([a, b])
        assert merged.bytes_sent == 140
        assert merged.data_generated == 5
        assert merged.first_death == (2, 4.0)

    def test_needs_at_least_one_part(self):
        with pytest.raises(ConfigurationError):
            merge_collectors([])


# ----------------------------------------------------------------------
# end-to-end bit-identity
# ----------------------------------------------------------------------
class TestBitIdentity:
    def _legs(self, workload, shard_counts):
        return {s: run_sharded(workload, shards=s) for s in shard_counts}

    def test_two_workers_match_single_process(self):
        legs = self._legs(_workload(), (1, 2))
        assert legs[2].digest == legs[1].digest
        assert legs[2].shards == 2 and legs[1].windows == 0
        assert legs[2].windows > 0
        # Merged conservation report == the single-process one.
        r1, r2 = legs[1].conservation, legs[2].conservation
        assert r1 is not None and r2 is not None
        assert r1.to_jsonable() == r2.to_jsonable()
        assert r1.ok and r2.ok
        # Headline metrics agree exactly (lifetime is NaN == NaN here:
        # nobody died on an infinite battery, and NaN != NaN).
        s1, s2 = legs[1].metrics.summary(), legs[2].metrics.summary()
        assert math.isnan(s1.pop("lifetime")) and math.isnan(s2.pop("lifetime"))
        assert s1 == s2

    def test_three_workers_with_battery_deaths(self):
        w = _workload(n=200, datums=40, battery=0.015, seed=11)
        legs = self._legs(w, (1, 3))
        assert legs[3].digest == legs[1].digest
        assert legs[1].metrics.first_death is not None  # deaths happened
        assert legs[3].metrics.first_death == legs[1].metrics.first_death
        assert legs[3].conservation.to_jsonable() == legs[1].conservation.to_jsonable()

    def test_spr_workers_match_single_process(self):
        w = _workload(protocol="spr", seed=7)
        legs = self._legs(w, (1, 2, 3))
        for s in (2, 3):
            assert legs[s].digest == legs[1].digest
            assert legs[s].conservation.to_jsonable() == legs[1].conservation.to_jsonable()
            assert legs[s].rng_states == legs[1].rng_states
        # Routes actually formed: unicast data reached a gateway.
        assert {(r.origin, r.uid) for r in legs[1].metrics.deliveries}

    def test_spr_three_workers_with_boundary_band_deaths(self):
        """Unicast digests survive deaths whose alive-flips must mirror.

        The tight battery kills relays mid-run; the first death lands
        inside the boundary band (within comm_range of a cut), so the
        flip crosses the pipe protocol and next-hop state goes stale on
        the far side — exactly the regime the route-mirroring and RERR
        repair paths exist for.
        """
        w = _workload(n=200, datums=40, battery=0.006, seed=11, protocol="spr")
        legs = self._legs(w, (1, 3))
        assert legs[3].digest == legs[1].digest
        assert legs[1].metrics.first_death is not None  # deaths happened
        assert legs[3].metrics.first_death == legs[1].metrics.first_death
        assert legs[3].conservation.to_jsonable() == legs[1].conservation.to_jsonable()
        plan = ShardPlan.build(w.positions, w.comm_range, 3)
        dead_x = float(w.positions[legs[1].metrics.first_death[0], 0])
        assert min(abs(dead_x - c) for c in plan.cuts) <= w.comm_range

    def test_mlr_workers_match_single_process(self):
        """MLR shards bit-identically through a gateway relocation.

        Traffic straddles the round-1 move at t=2.0, so discovery
        floods, NOTIFY broadcasts and unicast forwarding all cross shard
        boundaries both before and after the topology change.
        """
        w = _mlr_workload(seed=5)
        legs = self._legs(w, (1, 2, 3))
        for s in (2, 3):
            assert legs[s].digest == legs[1].digest
            assert legs[s].conservation.to_jsonable() == legs[1].conservation.to_jsonable()
            assert legs[s].rng_states == legs[1].rng_states
        assert {(r.origin, r.uid) for r in legs[1].metrics.deliveries}

    def test_lossy_arq_draws_match_across_workers(self):
        lossy = dataclasses.replace(
            IEEE802154.ideal(), loss_rate=0.15, arq_retries=2,
            burst=GilbertElliott(p_gb=0.05, p_bg=0.3),
        )
        legs = self._legs(_workload(radio=lossy, seed=9), (1, 2, 3))
        assert legs[2].digest == legs[1].digest
        assert legs[3].digest == legs[1].digest
        assert legs[1].rng_states  # loss/backoff draws actually happened
        assert legs[2].rng_states == legs[1].rng_states
        assert legs[3].rng_states == legs[1].rng_states

    def test_worldconfig_shards_selects_the_executor(self):
        w = _workload()
        w.world = WorldConfig(audit=True, shards=2)
        result = run_sharded(w)  # shards taken from the config
        assert result.shards == 2
        assert result.digest == run_sharded(w, shards=1).digest

    def test_per_shard_parts_account_for_all_events(self):
        legs = self._legs(_workload(), (1, 2))
        parts = legs[2].parts
        assert [p["shard"] for p in parts] == [0, 1]
        assert sum(p["events_processed"] for p in parts) == legs[2].events_processed


# ----------------------------------------------------------------------
# RNG partitioning: seed -> per-node substream, worker-count invariant
# ----------------------------------------------------------------------
class TestRngPartition:
    @given(
        loss=st.sampled_from([0.0, 0.1, 0.3]),
        burst=st.booleans(),
        retries=st.integers(min_value=0, max_value=2),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=8, deadline=None)
    def test_per_node_draws_identical_at_1_2_3_workers(
        self, loss, burst, retries, seed
    ):
        """Every node's draw sequence is a pure function of (seed, id).

        Equal final bit-generator states at 1/2/3 workers mean the
        backoff and Gilbert-Elliott loss draws each node made — count
        and order — were identical on whichever worker simulated it, so
        the digests cannot diverge through the RNG.
        """
        radio = dataclasses.replace(
            IEEE802154.ideal(), loss_rate=loss, arq_retries=retries,
            burst=GilbertElliott(p_gb=0.08, p_bg=0.35) if burst else None,
        )
        w = _workload(n=90, field=160.0, datums=6, seed=seed, radio=radio)
        legs = {s: run_sharded(w, shards=s) for s in (1, 2, 3)}
        assert legs[2].digest == legs[1].digest
        assert legs[3].digest == legs[1].digest
        assert legs[2].rng_states == legs[1].rng_states
        assert legs[3].rng_states == legs[1].rng_states


def _no_orphans() -> bool:
    """True once every worker process this test spawned has been reaped."""
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return True
        time.sleep(0.05)
    return False


# ----------------------------------------------------------------------
# supervision: structured failures, bounded waits, no orphans
# ----------------------------------------------------------------------
class TestSupervision:
    def test_worker_build_failure_surfaces_remote_traceback(self):
        """A worker that dies building its world reports *why*.

        The coordinator used to hang on a bare recv; now the remote
        traceback rides back in a structured, non-retryable error and
        the surviving workers are torn down.
        """
        w = _workload(battery=-1.0)  # rejected by the builder, in-worker
        with pytest.raises(ShardWorkerError) as exc_info:
            run_sharded(w, shards=2)
        err = exc_info.value
        assert err.kind == "remote"
        assert "Traceback" in err.detail
        assert err.retryable is False
        assert _no_orphans()

    def test_chaos_kill_without_checkpoints_raises_died(self):
        """SIGKILL with no checkpoint store: nothing to resume from."""
        chaos = HarnessChaos(kill_shard=1, kill_window=2)
        with pytest.raises(ShardWorkerError) as exc_info:
            run_sharded(_workload(), shards=2, chaos=chaos)
        err = exc_info.value
        assert err.kind == "died"
        assert err.shard == 1
        assert err.retryable is True
        assert _no_orphans()

    def test_hung_worker_hits_deadline_not_the_hang(self):
        """A stalled reply is bounded by the deadline, not the stall."""
        delay = 20.0
        chaos = HarnessChaos(delay_shard=0, delay_window=1, delay_s=delay)
        sup = SupervisionConfig(window_timeout_s=0.3, max_restarts=0)
        t0 = time.monotonic()
        with pytest.raises(ShardWorkerError) as exc_info:
            run_sharded(
                _workload(n=90, field=160.0, datums=6),
                shards=2, chaos=chaos, supervision=sup,
            )
        elapsed = time.monotonic() - t0
        assert exc_info.value.kind == "deadline"
        assert elapsed < delay  # the 20 s stall was never waited out
        assert _no_orphans()

    def test_supervision_config_validation(self):
        with pytest.raises(ConfigurationError):
            SupervisionConfig(window_timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            SupervisionConfig(heartbeat_s=-1.0)
        with pytest.raises(ConfigurationError):
            SupervisionConfig(max_restarts=-1)
        with pytest.raises(ConfigurationError):
            SupervisionConfig(backoff_factor=0.5)
        assert SupervisionConfig().backoff_s(2) == pytest.approx(0.4)

    def test_harness_chaos_validation(self):
        with pytest.raises(ConfigurationError):
            HarnessChaos()  # neither a kill nor a delay
        with pytest.raises(ConfigurationError):
            HarnessChaos(kill_shard=0, kill_window=0)
        with pytest.raises(ConfigurationError):
            HarnessChaos(delay_shard=0, delay_s=0.0)

    def test_single_process_leg_rejects_chaos_and_resume(self):
        w = _workload()
        with pytest.raises(ConfigurationError):
            run_sharded(w, shards=1, chaos=HarnessChaos(kill_shard=0))
        with pytest.raises(ConfigurationError):
            run_sharded(w, shards=1, resume_from="/nonexistent")


# ----------------------------------------------------------------------
# barrier checkpoints + deterministic crash-resume
# ----------------------------------------------------------------------
class TestCheckpointResume:
    @pytest.mark.parametrize("protocol", ["flooding", "spr", "mlr"])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_kill_and_resume_is_bit_identical(self, protocol, workers, tmp_path):
        """SIGKILL mid-run, respawn from the barrier: same digest, same RNG.

        The acceptance gate for the whole subsystem: a run that loses a
        worker and resumes from its last checkpoint is indistinguishable
        — digest, per-node RNG states, conservation report — from the
        run that was never interrupted.
        """
        if protocol == "mlr":
            w = _mlr_workload(seed=9)
        else:
            w = _workload(protocol=protocol, seed=9)
        ref = run_sharded(w, shards=workers)
        res = run_sharded(
            w, shards=workers,
            checkpoint=CheckpointConfig(dir=str(tmp_path), every=3),
            chaos=HarnessChaos(kill_shard=workers - 1, kill_window=7),
        )
        assert res.restarts == 1
        assert res.resumed_window is not None
        assert res.checkpoints > 0
        assert res.digest == ref.digest
        assert res.rng_states == ref.rng_states
        assert res.conservation.to_jsonable() == ref.conservation.to_jsonable()

    def test_checkpointing_alone_never_changes_the_run(self, tmp_path):
        """Snapshots are pure observation: digest equals the plain leg."""
        w = _workload(n=90, field=160.0, datums=6, seed=4)
        plain = run_sharded(w, shards=2)
        ckpt = run_sharded(
            w, shards=2, checkpoint=CheckpointConfig(dir=str(tmp_path), every=2),
        )
        assert ckpt.checkpoints > 0
        assert ckpt.restarts == 0
        assert ckpt.digest == plain.digest
        assert ckpt.rng_states == plain.rng_states

    def test_cold_resume_after_fatal_crash(self, tmp_path):
        """max_restarts=0 crashes the run; ``resume_from`` finishes it.

        This is the operator workflow: the process died (restart budget
        exhausted, OOM-killed coordinator, ...), a later invocation
        points at the checkpoint directory and completes the run with
        the uninterrupted digest.
        """
        w = _workload(seed=6)
        ref = run_sharded(w, shards=2)
        with pytest.raises(ShardWorkerError):
            run_sharded(
                w, shards=2,
                checkpoint=CheckpointConfig(dir=str(tmp_path), every=3),
                chaos=HarnessChaos(kill_shard=0, kill_window=8),
                supervision=SupervisionConfig(max_restarts=0),
            )
        assert _no_orphans()
        res = run_sharded(w, shards=2, resume_from=str(tmp_path))
        assert res.resumed_window is not None
        assert res.restarts == 0
        assert res.digest == ref.digest
        assert res.rng_states == ref.rng_states

    def test_worldconfig_checkpoint_surface(self, tmp_path):
        """checkpoint_dir/checkpoint_every on WorldConfig arm the store."""
        w = _workload(seed=2)
        ref = run_sharded(w, shards=2)
        w_ckpt = dataclasses.replace(
            w, world=w.world.replace(
                checkpoint_dir=str(tmp_path), checkpoint_every=3,
            ),
        )
        res = run_sharded(
            w_ckpt, shards=2, chaos=HarnessChaos(kill_shard=1, kill_window=7),
        )
        assert res.restarts == 1
        assert res.checkpoints > 0
        assert res.digest == ref.digest

    def test_workload_key_ignores_execution_strategy(self, tmp_path):
        """The run directory is keyed by physics, not by plumbing."""
        w = _workload(seed=3)
        w_ckpt = dataclasses.replace(
            w, world=w.world.replace(
                checkpoint_dir=str(tmp_path), checkpoint_every=13,
            ),
        )
        assert workload_key(w, 2) == workload_key(w_ckpt, 2)
        # ... but a different shard count is a different resume lineage.
        assert workload_key(w, 2) != workload_key(w, 3)
        # And different physics is a different key.
        assert workload_key(w, 2) != workload_key(_workload(seed=4), 2)

    def test_checkpoint_fields_are_cache_key_neutral(self):
        """Runner cache keys ignore shards/checkpoint knobs entirely."""
        base = cache_key("scalability", {"world": WorldConfig(audit=True)}, 0)
        assert base == cache_key(
            "scalability",
            {"world": WorldConfig(audit=True, shards=4)},
            0,
        )
        assert base == cache_key(
            "scalability",
            {"world": WorldConfig(
                audit=True, checkpoint_dir="/anywhere", checkpoint_every=5,
            )},
            0,
        )

    def test_resume_with_wrong_shard_count_is_refused(self, tmp_path):
        """A 2-shard lineage cannot silently seed a 3-shard run."""
        w = _workload(seed=5)
        run_sharded(
            w, shards=2, checkpoint=CheckpointConfig(dir=str(tmp_path), every=2),
        )
        with pytest.raises(CheckpointError):
            run_sharded(w, shards=3, resume_from=str(tmp_path))

    def test_resume_from_empty_dir_is_refused(self, tmp_path):
        with pytest.raises(CheckpointError):
            run_sharded(_workload(), shards=2, resume_from=str(tmp_path))

    def test_manifest_commits_the_window(self, tmp_path):
        """Every committed window dir is complete: shards + coordinator.

        MANIFEST.json is written last, so its presence *is* the commit;
        pruning keeps the newest ``keep`` windows only.
        """
        w = _workload(seed=8)
        res = run_sharded(
            w, shards=2,
            checkpoint=CheckpointConfig(dir=str(tmp_path), every=3, keep=2),
        )
        run_dir = tmp_path / workload_key(w, 2)
        wins = sorted(run_dir.glob("win-*"))
        assert 0 < len(wins) <= 2  # pruned to keep=2
        assert res.checkpoints > len(wins)  # more were taken than kept
        for win in wins:
            assert (win / "MANIFEST.json").is_file()
            assert (win / "coord.pkl").is_file()
            assert (win / "shard-00.pkl").is_file()
            assert (win / "shard-01.pkl").is_file()

    def test_checkpoint_config_validation(self):
        with pytest.raises(ConfigurationError):
            CheckpointConfig(dir="x", every=0)
        with pytest.raises(ConfigurationError):
            CheckpointConfig(dir="x", keep=0)
        with pytest.raises(ConfigurationError):
            WorldConfig(checkpoint_every=0)
        with pytest.raises(ConfigurationError):
            WorldConfig(checkpoint_dir=7)


# ----------------------------------------------------------------------
# snapshot/restore round-trip: property over protocol x radio x battery
# ----------------------------------------------------------------------
def _run_to_completion(workload, snapshot_at=None):
    """Digest + RNG states of one in-process run, optionally through a
    snapshot/restore round-trip at sim time ``snapshot_at``."""
    world, proto = _build_worker_world(workload, defer_audit=False)
    _schedule_rounds(world.sim, proto, workload)
    for i, (when, src) in enumerate(workload.traffic):
        world.sim.schedule_at(float(when), proto.send_data, int(src), None, i + 1)
    if snapshot_at is not None:
        world.sim.run(until=float(snapshot_at))
        world, proto, _ = restore_world(snapshot_world(world, proto))
    world.sim.run()
    tx, rx = world.network.store.counter_columns()
    digest = run_digest(world.metrics, (tx.tolist(), rx.tolist()))
    return digest, world.sim.node_rng_states()


class TestSnapshotRoundTrip:
    @given(
        protocol=st.sampled_from(["flooding", "spr", "mlr"]),
        lossy=st.booleans(),
        deaths=st.booleans(),
        cut=st.floats(min_value=0.3, max_value=2.5),
        seed=st.integers(min_value=0, max_value=2**12),
    )
    @settings(max_examples=6, deadline=None)
    def test_snapshot_restore_run_is_bit_identical(
        self, protocol, lossy, deaths, cut, seed
    ):
        """Pickle the world mid-run, restore, finish: nothing changes.

        Sampled across protocols, ideal vs lossy/ARQ/burst radios and
        battery deaths — the full space the worker checkpoints cover.
        The uid watermark rides the snapshot, so packets created after
        the restore get the same uids they would have gotten.
        """
        radio = None
        if lossy:
            radio = dataclasses.replace(
                IEEE802154.ideal(), loss_rate=0.15, arq_retries=2,
                burst=GilbertElliott(p_gb=0.05, p_bg=0.3),
            )
        kw = dict(
            n=90, field=160.0, datums=6, seed=seed, radio=radio,
            battery=0.01 if deaths else math.inf,
        )
        w = _mlr_workload(**kw) if protocol == "mlr" else _workload(
            protocol=protocol, **kw
        )
        ref_digest, ref_rng = _run_to_completion(w)
        rt_digest, rt_rng = _run_to_completion(w, snapshot_at=cut)
        assert rt_digest == ref_digest
        assert rt_rng == ref_rng

    @given(
        workers=st.sampled_from([2, 3]),
        protocol=st.sampled_from(["flooding", "spr"]),
        lossy=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**10),
    )
    @settings(max_examples=4, deadline=None)
    def test_crash_resume_property_across_workers(
        self, workers, protocol, lossy, seed
    ):
        """Kill-and-resume equals uninterrupted, across the worker axis."""
        radio = None
        if lossy:
            radio = dataclasses.replace(
                IEEE802154.ideal(), loss_rate=0.1, arq_retries=1,
            )
        w = _workload(
            n=90, field=160.0, datums=6, seed=seed,
            protocol=protocol, radio=radio,
        )
        ref = run_sharded(w, shards=workers)
        # tmp_path is function-scoped; hypothesis re-runs the body, so
        # manage a fresh directory per example instead.
        with tempfile.TemporaryDirectory(prefix="repro-ckpt-") as d:
            res = run_sharded(
                w, shards=workers,
                checkpoint=CheckpointConfig(dir=d, every=2),
                chaos=HarnessChaos(kill_shard=workers - 1, kill_window=3),
            )
        assert res.restarts == 1
        assert res.digest == ref.digest
        assert res.rng_states == ref.rng_states
