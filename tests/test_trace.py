"""Unit tests for metrics collection."""

import math

from repro.sim.packet import Packet, PacketKind
from repro.sim.trace import MetricsCollector


def _data(origin=1, data_id=1, hops=3):
    return Packet(kind=PacketKind.DATA, origin=origin, target=9,
                  payload={"data_id": data_id}, payload_bytes=24, hop_count=hops,
                  created_at=1.0)


class TestCounters:
    def test_send_classifies_control_vs_data(self):
        m = MetricsCollector()
        m.on_send(_data())
        m.on_send(Packet(kind=PacketKind.RREQ, origin=1, target=None))
        assert m.data_frames == 1 and m.control_frames == 1

    def test_bytes_accumulate(self):
        m = MetricsCollector()
        p = _data()
        m.on_send(p)
        m.on_send(p)
        assert m.bytes_sent == 2 * p.size_bytes()

    def test_drop_reasons(self):
        m = MetricsCollector()
        m.on_drop("loss")
        m.on_drop("loss")
        m.on_drop("collision")
        assert m.drops["loss"] == 2 and m.drops["collision"] == 1


class TestDeliveries:
    def test_delivery_ratio_unique(self):
        m = MetricsCollector()
        m.on_data_generated()
        m.on_data_generated()
        m.on_data_delivered(_data(data_id=1), 9, now=2.0)
        m.on_data_delivered(_data(data_id=1), 9, now=2.5)  # duplicate
        assert m.delivery_ratio == 0.5

    def test_latency_and_hops(self):
        m = MetricsCollector()
        m.on_data_generated()
        m.on_data_delivered(_data(data_id=1, hops=4), 9, now=3.0)
        assert m.mean_latency == 2.0
        assert m.mean_hops == 4.0

    def test_empty_statistics(self):
        m = MetricsCollector()
        assert m.delivery_ratio == 0.0
        assert m.mean_latency == 0.0
        assert m.mean_hops == 0.0
        assert m.lifetime is None

    def test_first_death_sticky(self):
        m = MetricsCollector()
        m.on_node_death(3, 5.0)
        m.on_node_death(4, 6.0)
        assert m.first_death == (3, 5.0)
        assert m.lifetime == 5.0

    def test_summary_keys(self):
        m = MetricsCollector()
        s = m.summary()
        assert set(s) >= {
            "data_generated", "delivery_ratio", "mean_latency",
            "mean_hops", "bytes_sent", "lifetime",
        }
        assert math.isnan(s["lifetime"])
