"""Unit tests for the packet model and size accounting."""

from repro.sim.packet import (
    DATA_PAYLOAD_BYTES,
    MAC_HEADER_BYTES,
    PATH_ENTRY_BYTES,
    Packet,
    PacketKind,
    SecurityEnvelope,
)


def _pkt(**kw):
    defaults = dict(kind=PacketKind.DATA, origin=1, target=2)
    defaults.update(kw)
    return Packet(**defaults)


def test_size_includes_header():
    assert _pkt().size_bytes() == MAC_HEADER_BYTES


def test_size_includes_payload_and_path():
    p = _pkt(payload_bytes=DATA_PAYLOAD_BYTES, path=(1, 2, 3))
    assert p.size_bytes() == MAC_HEADER_BYTES + DATA_PAYLOAD_BYTES + 3 * PATH_ENTRY_BYTES


def test_size_bits_is_eight_times_bytes():
    p = _pkt(payload_bytes=10)
    assert p.size_bits() == 8 * p.size_bytes()


def test_security_envelope_adds_overhead():
    env = SecurityEnvelope(ciphertext=b"ct", mac=b"x" * 8, counter=3, claimed_sender=1)
    assert env.overhead_bytes == 16
    p = _pkt(security=env)
    assert p.size_bytes() == MAC_HEADER_BYTES + 16


def test_uids_unique():
    assert _pkt().uid != _pkt().uid


def test_fork_assigns_fresh_uid_and_copies_payload():
    p = _pkt(payload={"a": 1})
    q = p.fork()
    assert q.uid != p.uid
    q.payload["a"] = 2
    assert p.payload["a"] == 1  # deep enough: top-level dict copied


def test_fork_preserves_other_fields():
    p = _pkt(path=(1, 2), ttl=7, hop_count=3)
    q = p.fork()
    assert (q.path, q.ttl, q.hop_count) == ((1, 2), 7, 3)


def test_with_hop_updates_link_and_counters():
    p = _pkt(ttl=5, hop_count=1)
    q = p.with_hop(4, 5)
    assert q.src == 4 and q.dst == 5
    assert q.hop_count == 2 and q.ttl == 4
    assert p.hop_count == 1  # original untouched


def test_explicit_uid_override_in_fork():
    p = _pkt()
    q = p.fork(uid=p.uid)
    assert q.uid == p.uid


def test_all_kinds_distinct():
    values = [k.value for k in PacketKind]
    assert len(values) == len(set(values))


class TestSizeCache:
    def test_size_computed_once(self):
        p = _pkt(payload_bytes=10)
        assert p._size_bytes_cached is None
        first = p.size_bytes()
        assert p._size_bytes_cached == first
        assert p.size_bytes() == first

    def test_fork_recomputes_for_grown_path(self):
        p = _pkt(path=(1,))
        base = p.size_bytes()
        q = p.fork(path=(1, 2, 3))
        assert q._size_bytes_cached is None  # replace() resets init=False field
        assert q.size_bytes() == base + 2 * PATH_ENTRY_BYTES
        assert p.size_bytes() == base  # original cache untouched

    def test_with_hop_keeps_size(self):
        p = _pkt(payload_bytes=DATA_PAYLOAD_BYTES)
        size = p.size_bytes()
        assert p.with_hop(4, 5).size_bytes() == size

    def test_inplace_payload_growth_invalidates(self):
        # SecMLR decorates packets in place: payload_bytes += envelope.
        p = _pkt(payload_bytes=10)
        before = p.size_bytes()
        p.payload_bytes += 24
        assert p.size_bytes() == before + 24

    def test_inplace_path_and_security_invalidate(self):
        p = _pkt()
        base = p.size_bytes()
        p.path = (1, 2)
        assert p.size_bytes() == base + 2 * PATH_ENTRY_BYTES
        p.security = SecurityEnvelope(
            ciphertext=b"ct", mac=b"x" * 8, counter=0, claimed_sender=1
        )
        assert p.size_bytes() == base + 2 * PATH_ENTRY_BYTES + 16


class TestUidWatermark:
    """The process-global uid counter is checkpointable state."""

    def test_uid_state_peek_is_side_effect_free(self):
        from repro.sim.packet import uid_state

        before = uid_state()
        assert uid_state() == before  # peeking consumed nothing
        p = _pkt()
        assert p.uid == before
        assert uid_state() == before + 1

    def test_restore_replays_the_same_uids(self):
        from repro.sim.packet import restore_uid_state, uid_state

        mark = uid_state()
        first = [_pkt().uid for _ in range(3)]
        restore_uid_state(mark)
        again = [_pkt().uid for _ in range(3)]
        assert again == first == [mark, mark + 1, mark + 2]
