"""Protocol tests for MLR (Section 5.3): rounds, accumulation, notification."""

import numpy as np
import pytest

from repro.core.mlr import MLR
from repro.exceptions import ConfigurationError, RoutingError
from repro.sim.engine import Simulator
from repro.sim.mobility import FeasiblePlaces, GatewaySchedule
from repro.sim.network import build_sensor_network, grid_deployment
from repro.sim.packet import PacketKind
from repro.sim.radio import IEEE802154, Channel
from repro.sim.trace import MetricsCollector


@pytest.fixture
def mlr_world():
    """5x5 grid, two gateways, four feasible places at the corners."""
    sensors = grid_deployment(5, 5, spacing=10.0)
    places = FeasiblePlaces.from_mapping({
        "A": (-10.0, 0.0),
        "B": (50.0, 40.0),
        "C": (-10.0, 40.0),
        "D": (50.0, 0.0),
    })
    gw = np.array([places.position("A"), places.position("B")])
    net = build_sensor_network(sensors, gw, comm_range=14.5)
    g0, g1 = net.gateway_ids
    schedule = GatewaySchedule(places=places, rounds=[
        {g0: "A", g1: "B"},
        {g0: "C", g1: "B"},
        {g0: "C", g1: "D"},
        {g0: "A", g1: "D"},
    ])
    sim = Simulator(seed=11)
    ch = Channel(sim, net, IEEE802154.ideal(), metrics=MetricsCollector())
    mlr = MLR(sim, net, ch, schedule)
    return sim, net, ch, mlr, schedule


def _round(sim, mlr, r, senders, t0, duration=8.0):
    sim.run(until=t0)
    mlr.start_round(r)
    for i, s in enumerate(senders):
        sim.schedule(1.0 + i * 1e-3, mlr.send_data, s)
    return t0 + duration


class TestRounds:
    def test_rounds_must_be_sequential(self, mlr_world):
        sim, net, ch, mlr, schedule = mlr_world
        mlr.start_round(0)
        with pytest.raises(RoutingError):
            mlr.start_round(2)

    def test_round_zero_bootstrap_is_free(self, mlr_world):
        sim, net, ch, mlr, _ = mlr_world
        mlr.start_round(0)
        assert ch.metrics.sent[PacketKind.NOTIFY] == 0
        assert mlr.known[0] == mlr.schedule.assignment(0)

    def test_moved_gateway_notifies(self, mlr_world):
        sim, net, ch, mlr, schedule = mlr_world
        mlr.start_round(0)
        sim.run(until=5.0)
        mlr.start_round(1)  # g0 moves A -> C
        sim.run(until=10.0)
        # every sensor learned the new place via the flooded NOTIFY
        g0 = net.gateway_ids[0]
        for s in net.sensor_ids:
            assert mlr.known[s][g0] == "C"

    def test_unmoved_gateway_stays_silent(self, mlr_world):
        sim, net, ch, mlr, schedule = mlr_world
        mlr.start_round(0)
        sim.run(until=5.0)
        mlr.start_round(1)
        sim.run(until=10.0)
        notifies = ch.metrics.sent[PacketKind.NOTIFY]
        # one flood (origin + rebroadcasts), not two: g1 did not move
        assert notifies <= len(net.sensor_ids) + 2

    def test_gateway_physically_moves(self, mlr_world):
        sim, net, ch, mlr, schedule = mlr_world
        mlr.start_round(0)
        g0 = net.gateway_ids[0]
        pos_a = net.positions[g0].copy()
        sim.run(until=5.0)
        mlr.start_round(1)
        assert not np.array_equal(net.positions[g0], pos_a)


class TestAccumulation:
    def test_tables_accumulate_across_rounds(self, mlr_world):
        sim, net, ch, mlr, schedule = mlr_world
        sender = 12
        t = 0.0
        sizes = []
        for r in range(4):
            t = _round(sim, mlr, r, [sender], t)
            sim.run(until=t - 0.5)
            sizes.append(len(mlr.tables[sender]))
        # new places add entries; covered places add nothing
        assert sizes[0] == 2
        assert sizes == sorted(sizes)
        assert sizes[-1] == 4  # all four places eventually covered

    def test_no_discovery_after_full_coverage(self, mlr_world):
        sim, net, ch, mlr, schedule = mlr_world
        sender = 12
        t = 0.0
        for r in range(3):
            t = _round(sim, mlr, r, [sender], t)
        sim.run(until=t)
        rreq_before = ch.metrics.sent[PacketKind.RREQ]
        t = _round(sim, mlr, 3, [sender], t)  # A and D both already known
        sim.run()
        assert ch.metrics.sent[PacketKind.RREQ] == rreq_before
        assert ch.metrics.delivery_ratio == 1.0

    def test_selection_is_min_hop_among_active(self, mlr_world):
        sim, net, ch, mlr, schedule = mlr_world
        t = _round(sim, mlr, 0, [0], 0.0)  # sensor 0 is at grid corner (0,0)
        sim.run(until=t)
        # places A(-10,0) is adjacent to sensor 0; B is far
        assert mlr.selected_place(0) == "A"

    def test_table_snapshot_format(self, mlr_world):
        sim, net, ch, mlr, schedule = mlr_world
        t = _round(sim, mlr, 0, [12], 0.0)
        sim.run(until=t)
        snap = mlr.table_snapshot(12)
        assert all(len(row) == 3 for row in snap)
        places = [p for p, _, _ in snap]
        assert places == sorted(places)

    def test_stale_place_reused_when_reoccupied(self, mlr_world):
        sim, net, ch, mlr, schedule = mlr_world
        sender = 12
        t = 0.0
        for r in range(4):
            t = _round(sim, mlr, r, [sender], t)
        sim.run()
        # Round 3 re-occupies place A (by g0); entry from round 0 is reused
        # and rebinding sends data to whichever gateway is there now.
        assert ch.metrics.delivery_ratio == 1.0


class TestValidation:
    def test_schedule_gateway_mismatch(self, mlr_world):
        sim, net, ch, mlr, schedule = mlr_world
        bad = GatewaySchedule(places=schedule.places, rounds=[{999: "A", 1000: "B"}])
        with pytest.raises(ConfigurationError):
            MLR(sim, net, ch, bad)

    def test_entry_key_requires_started_round(self, mlr_world):
        sim, net, ch, mlr, schedule = mlr_world
        with pytest.raises(RoutingError):
            mlr.entry_key_for(net.gateway_ids[0])
