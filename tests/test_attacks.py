"""Tests for the attack behaviours against MLR and SecMLR."""

import numpy as np
import pytest

from repro.core.mlr import MLR
from repro.core.secmlr import SecMLR
from repro.security.attacks import (
    AlterationAttacker,
    Blackhole,
    HelloFloodAttacker,
    ReplayAttacker,
    SelectiveForwarder,
    SinkholeAttacker,
    SpoofAttacker,
    SybilAttacker,
    WormholeEndpoint,
    WormholeTunnel,
    compromise,
)
from repro.sim.engine import Simulator
from repro.sim.mobility import FeasiblePlaces, GatewaySchedule
from repro.sim.network import build_sensor_network
from repro.sim.radio import IEEE802154, Channel
from repro.sim.trace import MetricsCollector


def _line_world(cls, n=6, seed=3, **proto_kw):
    """Chain s0..s{n-1} with the gateway past the last sensor.

    All traffic from s0 必 passes every intermediate node, which makes
    attacker placement deterministic.
    """
    sensors = np.array([[10.0 * i, 0.0] for i in range(n)])
    places = FeasiblePlaces.from_mapping({"A": (10.0 * n, 0.0), "B": (-10.0, 0.0)})
    net = build_sensor_network(sensors, np.array([places.position("A")]), comm_range=12.0)
    g = net.gateway_ids[0]
    schedule = GatewaySchedule(places=places, rounds=[{g: "A"}, {g: "A"}])
    sim = Simulator(seed=seed)
    ch = Channel(sim, net, IEEE802154.ideal(), metrics=MetricsCollector())
    proto = cls(sim, net, ch, schedule, **proto_kw)
    return sim, net, ch, proto


class TestDroppingAttacks:
    def test_blackhole_swallows_transit_data(self):
        sim, net, ch, proto = _line_world(MLR)
        proto.start_round(0)
        bh = compromise(proto, 3, Blackhole())
        sim.schedule(1.0, proto.send_data, 0)
        sim.run()
        assert ch.metrics.delivery_ratio == 0.0
        assert bh.stats["dropped_data"] == 1

    def test_blackhole_spares_own_data(self):
        sim, net, ch, proto = _line_world(MLR)
        proto.start_round(0)
        compromise(proto, 3, Blackhole())
        sim.schedule(1.0, proto.send_data, 3)
        sim.run()
        assert ch.metrics.delivery_ratio == 1.0

    def test_selective_forwarder_statistical(self):
        sim, net, ch, proto = _line_world(MLR)
        proto.start_round(0)
        sf = compromise(proto, 3, SelectiveForwarder(0.5))
        for k in range(40):
            sim.schedule(1.0 + 0.05 * k, proto.send_data, 0)
        sim.run()
        dropped = sf.stats["dropped_data"]
        assert dropped > 8  # the coin actually flipped (retries included)
        # Some data is lost outright; route repair recovers stranded flows,
        # so delivery sits strictly between heavy damage and intact.
        assert 0.3 < ch.metrics.delivery_ratio < 1.0

    def test_selective_forwarder_validates_probability(self):
        with pytest.raises(ValueError):
            SelectiveForwarder(1.5)


class TestSinkhole:
    def test_sinkhole_poisons_mlr(self):
        sim, net, ch, proto = _line_world(MLR)
        proto.start_round(0)
        sk = compromise(proto, 1, SinkholeAttacker())
        sim.schedule(1.0, proto.send_data, 0)
        sim.run()
        # node 0's discovery was answered first by the attacker's forged
        # 1-hop-to-gateway route; the data died inside the sinkhole.
        assert sk.stats["forged_rres"] >= 1
        assert ch.metrics.delivery_ratio == 0.0

    def test_sinkhole_defeated_by_secmlr(self):
        sim, net, ch, proto = _line_world(SecMLR)
        proto.start_round(0)
        sk = compromise(proto, 1, SinkholeAttacker())
        sim.schedule(1.0, proto.send_data, 0)
        sim.run()
        assert sk.stats["forged_rres"] >= 1
        assert proto.security_rejections["bad_rres"] >= 1
        # The forged response died at the source unverified: the fake
        # 2-hop route (0, attacker, gateway) must never be installed.
        entry = proto.tables[0].get("A")
        assert entry is None or entry.path != (0, 1, net.gateway_ids[0])


class TestReplayAndSpoof:
    def test_replay_duplicates_accepted_by_mlr(self):
        sim, net, ch, proto = _line_world(MLR)
        proto.start_round(0)
        ra = compromise(proto, 2, ReplayAttacker(delay=0.5))
        sim.schedule(1.0, proto.send_data, 0)
        sim.run()
        assert ra.stats["replayed"] >= 1
        # gateway saw the same datum at least twice
        assert len(ch.metrics.deliveries) >= 2
        uids = [r.uid for r in ch.metrics.deliveries]
        assert len(uids) > len(set(uids))

    def test_replay_rejected_by_secmlr(self):
        sim, net, ch, proto = _line_world(SecMLR)
        proto.start_round(0)
        ra = compromise(proto, 2, ReplayAttacker(delay=0.5))
        sim.schedule(1.0, proto.send_data, 0)
        sim.run()
        assert ra.stats["replayed"] >= 1
        assert len(ch.metrics.deliveries) == 1
        assert proto.security_rejections["replay"] >= 1

    def test_spoof_accepted_by_mlr_rejected_by_secmlr(self):
        for cls, accepted in ((MLR, True), (SecMLR, False)):
            sim, net, ch, proto = _line_world(cls)
            proto.start_round(0)
            sp = compromise(proto, 2, SpoofAttacker())
            # attacker needs a route first
            sim.schedule(1.0, proto.send_data, 2)
            sim.schedule(2.0, sp.inject, 0, net.gateway_ids[0], 3)
            sim.run()
            forged = [r for r in ch.metrics.deliveries if r.uid >= 5_000_000]
            assert (len(forged) > 0) is accepted, cls.__name__


class TestHelloFlood:
    def test_poisons_mlr_beliefs(self):
        sim, net, ch, proto = _line_world(MLR)
        proto.start_round(0)
        hf = compromise(proto, 2, HelloFloodAttacker())
        g = net.gateway_ids[0]
        sim.schedule(0.5, hf.flood, g, "B", 1)
        sim.run(until=2.0)
        # unsecured sensors now believe the gateway sits at the empty place B
        assert proto.known[0][g] == "B"
        sim.schedule(0.1, proto.send_data, 0)
        sim.run()
        assert ch.metrics.delivery_ratio < 1.0

    def test_rejected_by_secmlr(self):
        sim, net, ch, proto = _line_world(SecMLR)
        proto.start_round(0)
        hf = compromise(proto, 2, HelloFloodAttacker())
        g = net.gateway_ids[0]
        sim.schedule(0.5, hf.flood, g, "B", 1)
        sim.run(until=3.0)
        assert proto.known[0][g] == "A"  # belief intact
        assert proto.security_rejections["bad_notify"] >= 1


class TestSybilAndWormhole:
    def test_sybil_paths_cannot_carry_responses(self):
        sim, net, ch, proto = _line_world(MLR)
        proto.start_round(0)
        sy = compromise(proto, 2, SybilAttacker(identities=2))
        sim.schedule(1.0, proto.send_data, 0)
        sim.run()
        assert sy.stats["sybil_floods"] >= 1
        # Any route that survived cannot contain the phantom identities.
        entry = proto.tables[0].best(proto.active_keys(0))
        if entry is not None:
            assert all(n < len(net.nodes) for n in entry.path)

    def test_wormhole_tunnels_and_swallows(self):
        # 12-node line; wormhole between nodes 2 and 9 shortcuts the chain.
        sim, net, ch, proto = _line_world(MLR, n=12)
        proto.start_round(0)
        tunnel = WormholeTunnel()
        compromise(proto, 2, WormholeEndpoint(tunnel, swallow_data=True))
        compromise(proto, 9, WormholeEndpoint(tunnel, swallow_data=True))
        sim.schedule(1.0, proto.send_data, 0)
        sim.run()
        assert tunnel.stats["tunneled_rreq"] >= 1
        # the wormhole route won (it is much shorter), then ate the data
        assert ch.metrics.delivery_ratio == 0.0
        assert tunnel.stats["swallowed_data"] >= 1

    def test_benign_wormhole_delivers_faster(self):
        sim, net, ch, proto = _line_world(MLR, n=12)
        proto.start_round(0)
        tunnel = WormholeTunnel()
        compromise(proto, 2, WormholeEndpoint(tunnel, swallow_data=False))
        compromise(proto, 9, WormholeEndpoint(tunnel, swallow_data=False))
        sim.schedule(1.0, proto.send_data, 0)
        sim.run()
        assert ch.metrics.delivery_ratio == 1.0
        # 0..2 tunnel 9..gateway: far fewer physical hops than 12
        assert ch.metrics.deliveries[0].hops < 11

    def test_wormhole_two_endpoints_only(self):
        tunnel = WormholeTunnel()
        WormholeEndpoint(tunnel)
        WormholeEndpoint(tunnel)
        with pytest.raises(ValueError):
            WormholeEndpoint(tunnel)


class TestAlteration:
    def test_altered_route_used_by_mlr(self):
        sim, net, ch, proto = _line_world(MLR)
        proto.start_round(0)
        # node 1 is adjacent to the origin, so its forged (0, 1, G) path
        # reaches node 0 and gets believed
        al = compromise(proto, 1, AlterationAttacker())
        sim.schedule(1.0, proto.send_data, 0)
        sim.run()
        assert al.stats["altered_rres"] >= 1
        # The corrupt (origin, attacker, gateway) path got installed and
        # fails at forwarding time (attacker not adjacent to the gateway).
        assert ch.metrics.delivery_ratio < 1.0

    def test_alteration_detected_by_secmlr(self):
        sim, net, ch, proto = _line_world(SecMLR)
        proto.start_round(0)
        al = compromise(proto, 1, AlterationAttacker())
        sim.schedule(1.0, proto.send_data, 0)
        sim.run()
        assert al.stats["altered_rres"] >= 1
        assert proto.security_rejections["bad_rres"] >= 1
