"""Fault injection: plans, the injector, bursty loss, recovery semantics.

Covers the :mod:`repro.faults` subsystem end to end — serializable
:class:`FaultPlan` round-trips, injector event semantics on a live
world, the Gilbert–Elliott bursty-loss chain (including scalar vs
vectorized fan-out equivalence), zero-window backoff determinism, the
alive-listener edge detector, clean recovery rejoin, and a hypothesis
property showing randomized chaos campaigns conserve every datum while
recovered routes resume delivering.
"""

import dataclasses
import math

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.routing_table import RouteEntry
from repro.core.spr import SPR
from repro.exceptions import ConfigurationError, TopologyError
from repro.faults import (
    BatteryDrain,
    Crash,
    FaultPlan,
    GatewayChurn,
    LinkDegrade,
    Recover,
    RegionOutage,
)
from repro.faults.campaign import random_plan, run_chaos
from repro.faults.cli import CAMPAIGNS, main as faults_main
from repro.obs.recovery import FaultWindow, recovery_report
from repro.runner.cache import ResultCache
from repro.runner.spec import ExperimentSpec, cache_key
from repro.runner.sweep import SweepRunner
from repro.sim.energy import EnergyAccount
from repro.sim.node import Node, NodeKind
from repro.sim.radio import IEEE802154, GilbertElliott
from repro.sim.serialize import dumps, loads
from repro.world import WorldBuilder


def _full_plan() -> FaultPlan:
    return FaultPlan(
        (
            Crash(node=3, t=1.0),
            Recover(node=3, t=2.5),
            RegionOutage(center=(50.0, 50.0), radius=30.0, t0=1.0, t1=4.0),
            GatewayChurn(period=5.0, downtime=2.0, start=1.0, cycles=2),
            BatteryDrain(node=1, t=3.0, fraction=0.5),
            LinkDegrade(t0=2.0, t1=6.0, loss_rate=0.3,
                        burst=GilbertElliott(p_gb=0.1, p_bg=0.4)),
        )
    )


def _grid_world(rows=3, cols=3, spacing=30.0, plan=None, seed=0, battery=math.inf):
    builder = (
        WorldBuilder()
        .seed(seed)
        .grid_sensors(rows, cols, spacing)
        # within comm range (1.05 * spacing) of the far-corner sensor
        .gateways([[(cols - 1) * spacing + 15.0, (rows - 1) * spacing + 15.0]])
        .sensor_battery(battery)
        .ideal_radio()
    )
    if plan is not None:
        builder.faults(plan)
    return builder.build()


# ----------------------------------------------------------------------
# plans: validation and serialization
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_round_trips_through_json(self):
        plan = _full_plan()
        assert loads(dumps(plan)) == plan

    def test_from_param_accepts_plan_jsonable_and_none(self):
        plan = _full_plan()
        assert FaultPlan.from_param(plan) is plan
        assert FaultPlan.from_param(plan.to_param()) == plan
        assert FaultPlan.from_param(None) == FaultPlan()
        with pytest.raises(ConfigurationError):
            FaultPlan.from_param({"not": "a plan"})

    def test_event_validation(self):
        with pytest.raises(ConfigurationError):
            Crash(node=0, t=-1.0)
        with pytest.raises(ConfigurationError):
            RegionOutage(center=(0.0, 0.0), radius=10.0, t0=3.0, t1=2.0)
        with pytest.raises(ConfigurationError):
            BatteryDrain(node=0, t=0.0, fraction=1.5)
        with pytest.raises(ConfigurationError):
            GatewayChurn(period=0.0, downtime=1.0)
        with pytest.raises(ConfigurationError):
            LinkDegrade(t0=0.0, t1=1.0)  # neither loss_rate nor burst
        with pytest.raises(ConfigurationError):
            FaultPlan(("not an event",))

    def test_event_order_is_part_of_identity(self):
        a = FaultPlan((Crash(node=0, t=1.0), Crash(node=1, t=1.0)))
        b = FaultPlan((Crash(node=1, t=1.0), Crash(node=0, t=1.0)))
        assert a != b
        assert dumps(a) != dumps(b)
        assert (cache_key("chaos", {"fault_plan": a.to_param()}, 0)
                != cache_key("chaos", {"fault_plan": b.to_param()}, 0))

    def test_last_event_time(self):
        assert FaultPlan().last_event_time == 0.0
        assert _full_plan().last_event_time == pytest.approx(13.0)  # churn


# ----------------------------------------------------------------------
# injector semantics
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_crash_and_recover_window(self):
        world = _grid_world(plan=FaultPlan((Crash(node=4, t=1.0),
                                            Recover(node=4, t=3.0))))
        world.sim.run()
        assert world.network.nodes[4].alive
        (w,) = world.faults.windows
        assert (w.node, w.down_at, w.up_at, w.cause) == (4, 1.0, 3.0, "crash")

    def test_recover_on_battery_dead_node_stays_dead(self):
        plan = FaultPlan(
            (Crash(node=0, t=1.0), BatteryDrain(node=0, t=2.0, fraction=1.0),
             Recover(node=0, t=3.0))
        )
        world = _grid_world(plan=plan, battery=1.0)
        world.sim.run()
        node = world.network.nodes[0]
        assert not node.failed  # the flag is cleared...
        assert not node.alive  # ...but battery death is permanent
        assert not world.network.alive_mask[0]
        # the crash window never closes: downtime runs to the horizon
        assert world.faults.windows[0].up_at is None

    def test_battery_drain_kills_and_mains_is_immune(self):
        plan = FaultPlan((BatteryDrain(node=0, t=1.0, fraction=1.0),
                          BatteryDrain(node=9, t=1.0, fraction=1.0)))
        world = _grid_world(plan=plan, battery=2.0)  # node 9 is the gateway
        world.sim.run()
        assert not world.network.nodes[0].alive
        assert world.network.nodes[9].alive  # mains-powered: no-op
        (w,) = world.faults.windows
        assert (w.node, w.cause, w.up_at) == (0, "battery", None)

    def test_partial_drain_leaves_node_alive(self):
        world = _grid_world(
            plan=FaultPlan((BatteryDrain(node=2, t=1.0, fraction=0.5),)),
            battery=2.0,
        )
        world.sim.run()
        node = world.network.nodes[2]
        assert node.alive
        assert node.energy.remaining == pytest.approx(1.0)
        assert world.faults.windows == []

    def test_region_outage_resolves_victims_by_position(self):
        # 3x3 grid at 30m spacing: a 35m disc at the origin covers exactly
        # (0,0), (30,0) and (0,30) -> nodes 0, 1, 3.
        plan = FaultPlan((RegionOutage(center=(0.0, 0.0), radius=35.0,
                                       t0=1.0, t1=2.0),))
        world = _grid_world(plan=plan)
        world.sim.run(until=1.5)
        down = {n.node_id for n in world.network.nodes if not n.alive}
        assert down == {0, 1, 3}
        world.sim.run()
        assert all(n.alive for n in world.network.nodes)
        assert sorted(w.node for w in world.faults.windows) == [0, 1, 3]
        assert all(w.up_at == 2.0 and w.cause == "region" for w in world.faults.windows)

    def test_overlapping_faults_do_not_stack_windows(self):
        plan = FaultPlan((Crash(node=0, t=1.0), Crash(node=0, t=1.5),
                          Recover(node=0, t=3.0)))
        world = _grid_world(plan=plan)
        world.sim.run()
        assert len(world.faults.windows) == 1

    def test_link_degrade_swaps_and_restores_config(self):
        ge = GilbertElliott(p_gb=0.2, p_bg=0.5)
        plan = FaultPlan((LinkDegrade(t0=1.0, t1=2.0, loss_rate=0.4, burst=ge),))
        world = _grid_world(plan=plan)
        baseline = world.channel.config
        world.sim.run(until=1.5)
        assert world.channel.config.loss_rate == 0.4
        assert world.channel.config.burst == ge
        world.sim.run()
        assert world.channel.config == baseline

    def test_double_arm_raises(self):
        world = _grid_world(plan=FaultPlan((Crash(node=0, t=1.0),)))
        with pytest.raises(ConfigurationError):
            world.faults.arm()

    def test_churn_needs_gateways(self):
        sim_world = (
            WorldBuilder()
            .seed(0)
            .nodes(np.array([[0.0, 0.0], [10.0, 0.0]]),
                   [NodeKind.SENSOR, NodeKind.SENSOR], comm_range=20.0)
            .ideal_radio()
        )
        with pytest.raises(ConfigurationError):
            sim_world.faults(FaultPlan((GatewayChurn(period=1.0, downtime=0.5),))).build()


# ----------------------------------------------------------------------
# Gilbert-Elliott bursty loss
# ----------------------------------------------------------------------
class TestGilbertElliott:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            GilbertElliott(p_gb=1.5, p_bg=0.5)
        with pytest.raises(ConfigurationError):
            GilbertElliott(p_gb=0.5, p_bg=0.5, loss_bad=-0.1)

    def test_stationary_bad(self):
        ge = GilbertElliott(p_gb=0.1, p_bg=0.3)
        assert ge.stationary_bad == pytest.approx(0.25)

    def test_degenerate_chains(self):
        # p_gb=1 enters the bad state before the first loss draw; with
        # loss_bad=1 every frame dies.  p_gb=0 never leaves good state.
        def run(ge):
            world = _grid_world(plan=None)
            world.channel.config = dataclasses.replace(world.channel.config, burst=ge)
            spr = SPR(world.sim, world.network, world.channel)
            for s in world.network.sensor_ids:
                world.sim.schedule(0.1, spr.send_data, s)
            world.sim.run()
            return world.metrics.delivery_ratio

        assert run(GilbertElliott(p_gb=1.0, p_bg=0.0, loss_bad=1.0)) == 0.0
        assert run(GilbertElliott(p_gb=0.0, p_bg=0.0, loss_bad=1.0)) == 1.0

    @pytest.mark.parametrize("seed", [0, 7])
    def test_scalar_and_vectorized_fanout_identical(self, seed):
        ge = GilbertElliott(p_gb=0.15, p_bg=0.4, loss_good=0.05, loss_bad=0.8)
        radio = dataclasses.replace(IEEE802154.ideal(), burst=ge, arq_retries=2)

        def run(vectorized):
            builder = (
                WorldBuilder()
                .seed(seed)
                .uniform_sensors(30, 150.0, topology_seed=3)
                .gateways([[20.0, 20.0], [130.0, 130.0]])
                .comm_range(55.0)
                .radio(radio)
                .audit(True)
            )
            if not vectorized:
                builder.scalar_fanout()
            world = builder.build()
            spr = SPR(world.sim, world.network, world.channel)
            for r in range(3):
                for i, s in enumerate(world.network.sensor_ids):
                    world.sim.schedule_at(r * 4.0 + 0.3 + i * 1e-3, spr.send_data, s)
            world.sim.run()
            m = world.metrics
            return (m.delivery_ratio, dict(m.drops), m.bytes_sent,
                    world.sim.rng.bit_generator.state["state"]["state"])

        assert run(True) == run(False)

    def test_burst_state_survives_config_swap(self):
        # A link mid-burst when a degrade window closes resumes the chain
        # if a later window re-enables bursts: state lives on the channel.
        world = _grid_world(plan=None)
        world.channel._link_bad[(0, 1)] = True
        cfg = world.channel.config
        world.channel.config = dataclasses.replace(cfg, burst=None)
        world.channel.config = cfg
        assert world.channel._link_bad[(0, 1)] is True


# ----------------------------------------------------------------------
# zero backoff window (satellite: no jitter, no RNG draw)
# ----------------------------------------------------------------------
class TestZeroBackoffWindow:
    def test_zero_window_means_zero_jitter_and_no_draw(self):
        radio = dataclasses.replace(IEEE802154, backoff_window=0.0, collisions=False)
        world = (
            WorldBuilder()
            .seed(1)
            .grid_sensors(2, 2, 25.0)
            .gateways([[50.0, 50.0]])
            .radio(radio)
            .build()
        )
        assert world.channel._jitter(0) == 0.0
        # No draw means no substream was even created for the node.
        assert world.sim.node_rng_states() == {}

    def test_positive_window_draws(self):
        radio = dataclasses.replace(IEEE802154, backoff_window=2e-3)
        world = (
            WorldBuilder()
            .seed(1)
            .grid_sensors(2, 2, 25.0)
            .gateways([[50.0, 50.0]])
            .radio(radio)
            .build()
        )
        jitter = world.channel._jitter(0)
        assert 0.0 <= jitter < 2e-3
        # The draw came from node 0's partitioned substream, not the
        # shared sim.rng (whose sequence must stay untouched).
        assert list(world.sim.node_rng_states()) == [0]


# ----------------------------------------------------------------------
# alive-listener state machine (satellite)
# ----------------------------------------------------------------------
class TestAliveListener:
    def _tracked_node(self, capacity=math.inf):
        node = Node(node_id=0, kind=NodeKind.SENSOR,
                    energy=EnergyAccount(capacity=capacity))
        flips = []
        node.bind_alive_listener(lambda nid, alive: flips.append((nid, alive)))
        return node, flips

    def test_fail_while_sleeping_is_one_transition(self):
        node, flips = self._tracked_node()
        node.sleeping = True
        node.failed = True  # already down: no second notification
        assert flips == [(0, False)]
        node.sleeping = False  # still failed: no flip
        assert flips == [(0, False)]
        assert node.recover()
        assert flips == [(0, False), (0, True)]

    def test_sleep_fail_wake_sequence(self):
        node, flips = self._tracked_node()
        node.sleeping = True
        node.failed = True
        node.sleeping = False
        node.failed = False
        assert flips == [(0, False), (0, True)]

    def test_recover_then_battery_death_is_permanent(self):
        node, flips = self._tracked_node(capacity=1.0)
        node.failed = True
        assert flips == [(0, False)]
        # battery dies while the node is already down: no duplicate event
        node.energy.charge_idle(2.0, now=1.0)
        assert flips == [(0, False)]
        assert node.recover() is False
        assert flips == [(0, False)]  # recover() must not signal alive
        assert not node.alive

    def test_battery_death_on_healthy_node_fires_once(self):
        node, flips = self._tracked_node(capacity=1.0)
        node.energy.charge_idle(2.0, now=1.0)
        assert flips == [(0, False)]

    def test_network_alive_mask_stays_consistent(self):
        world = _grid_world(
            plan=FaultPlan((Crash(node=0, t=1.0), Recover(node=0, t=2.0),
                            BatteryDrain(node=1, t=1.5, fraction=1.0))),
            battery=2.0,
        )
        sim, net = world.sim, world.network
        for t in (1.2, 1.7, 2.5):
            sim.run(until=t)
            for node in net.nodes:
                assert bool(net.alive_mask[node.node_id]) == node.alive


# ----------------------------------------------------------------------
# recovery rejoin: stale state purged, pending data re-discovered
# ----------------------------------------------------------------------
class TestRecoveryRejoin:
    def test_on_node_recovered_purges_stale_routes(self):
        world = _grid_world(plan=None)
        spr = SPR(world.sim, world.network, world.channel)
        gw = world.network.gateway_ids[0]
        spr.tables[0].install(RouteEntry(key=gw, gateway=gw, path=(0, 4, 8, gw)))
        spr.tables[2].install(RouteEntry(key=gw, gateway=gw, path=(2, 5, 8, gw)))
        spr.tables[4].install(RouteEntry(key=gw, gateway=gw, path=(4, 8, gw)))
        spr._announced.add((0, gw, (0, 4, 8, gw)))
        spr._announced.add((2, gw, (2, 5, 8, gw)))
        spr._seen_floods[4].add((0, 99))

        spr.on_node_recovered(4)
        # entries through (or at) node 4 are gone everywhere...
        assert spr.tables[0].get(gw) is None
        assert spr.tables[4].get(gw) is None
        # ...including the source-route announcement memory...
        assert spr._announced == {(2, gw, (2, 5, 8, gw))}
        # ...and untouched flows keep their state.
        assert spr.tables[2].get(gw) is not None
        assert spr._seen_floods[4] == set()

    def test_recovered_node_delivers_again(self):
        plan = FaultPlan((Crash(node=0, t=2.0), Recover(node=0, t=4.0)))
        world = _grid_world(plan=plan)
        world.channel.metrics.enable_audit()
        spr = SPR(world.sim, world.network, world.channel)
        sim = world.sim
        sim.schedule_at(0.5, spr.send_data, 0)  # healthy
        sim.schedule_at(3.0, spr.send_data, 0)  # while down -> dead_source
        sim.schedule_at(5.0, spr.send_data, 0)  # after recovery
        sim.run()
        report = world.conservation_report(strict=True)
        assert report.ok
        assert report.generated == 3
        assert report.delivered == 2
        assert report.drops_by_reason == {"dead_source": 1}
        # service resumed after the outage: restore latency is finite
        rec = world.faults.recovery_report()
        assert rec.n_faults == 1 and rec.n_recovered == 1
        assert rec.mttr is not None and 0 < rec.mttr <= 3.5


# ----------------------------------------------------------------------
# recovery report arithmetic
# ----------------------------------------------------------------------
class TestRecoveryReport:
    def test_open_windows_run_to_horizon(self):
        windows = [FaultWindow(node=0, down_at=2.0, up_at=4.0),
                   FaultWindow(node=1, down_at=6.0)]
        rep = recovery_report(None, windows, horizon=10.0, n_nodes=5)
        assert rep.total_downtime == pytest.approx(6.0)
        assert rep.availability == pytest.approx(1.0 - 6.0 / 50.0)
        assert rep.n_recovered == 1
        assert rep.mttr is None  # no ledger -> no restore latencies
        assert "availability" in rep.format_table()

    def test_round_trips(self):
        rep = recovery_report(None, [FaultWindow(node=0, down_at=1.0)],
                              horizon=2.0, n_nodes=3)
        assert loads(dumps(rep)) == rep


# ----------------------------------------------------------------------
# chaos campaigns: conservation + recovery under randomized storms
# ----------------------------------------------------------------------
class TestChaos:
    def test_replays_bit_identically_through_the_cache(self, tmp_path):
        spec = ExperimentSpec(
            experiment="chaos",
            params={"n_sensors": 25, "field_size": 140.0, "rounds": 3,
                    "intensity": 0.3},
            seeds=(0, 1),
        )
        cache = ResultCache(str(tmp_path / "cache"))
        first = SweepRunner(workers=1, cache=cache).run(spec)
        second = SweepRunner(workers=2, cache=ResultCache(str(tmp_path / "cache"))).run(spec)
        assert first.stats.as_dict()["cache_hits"] == 0
        assert second.stats.as_dict()["cache_hits"] == 2
        assert dumps(first.results()) == dumps(second.results())

    def test_random_plan_is_seed_determined(self):
        kw = dict(n_sensors=30, n_gateways=3, horizon=30.0, field_size=160.0)
        assert random_plan(seed=5, **kw) == random_plan(seed=5, **kw)
        assert random_plan(seed=5, **kw) != random_plan(seed=6, **kw)

    def test_cli_smoke(self, capsys):
        assert faults_main(["--campaign", "smoke", "--seeds", "0",
                            "--workers", "1", "-q"]) == 0
        out = capsys.readouterr().out
        assert "all conserved" in out and "MTTR_s" in out

    def test_campaign_plans_are_jsonable(self):
        for name, params in CAMPAIGNS.items():
            # every campaign must produce a stable cache key
            assert cache_key("chaos", params, 0) == cache_key("chaos", dict(params), 0)

    @given(seed=st.integers(0, 30), intensity=st.floats(0.1, 0.45))
    @settings(max_examples=5, deadline=None)
    def test_chaos_conserves_and_recovers(self, seed, intensity):
        """Randomized crash/recover/burst storms conserve every datum and
        recovered routes resume delivering (finite MTTR)."""
        try:
            r = run_chaos(n_sensors=30, field_size=150.0, comm_range=55.0,
                          rounds=5, round_period=6.0, intensity=intensity,
                          seed=seed)
        except TopologyError:
            assume(False)
        # conservation: the run executes under strict audit (a violation
        # raises), and the terminal states add up exactly.
        assert r.pending == 0
        assert r.generated == r.delivered + r.dropped
        assert r.generated == 30 * 5
        # recovery: every crash in these storms recovers (fractions < 1,
        # region outages only above intensity 0.5), and traffic scheduled
        # after the last repair delivers -> restore latencies all finite.
        assert r.recovery.n_recovered == r.recovery.n_faults
        assert r.recovery.unrestored == 0
        assert r.mttr is not None and 0 < r.mttr < 30.0
        assert 0.0 < r.availability <= 1.0
        assert r.delivery_ratio > 0.5
