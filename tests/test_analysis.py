"""Tests for statistics helpers and table rendering."""

import numpy as np
import pytest

from repro.analysis.stats import (
    aggregate_records,
    energy_balance_index,
    energy_stats,
    first_death_time,
    hop_histogram,
    jain_fairness,
    residual_energy,
    summarize,
)
from repro.analysis.tables import format_table
from repro.sim.network import build_sensor_network
from repro.sim.packet import Packet, PacketKind
from repro.sim.trace import MetricsCollector


def _net(batteries=(1.0, 1.0)):
    sensors = np.array([[0.0, 0.0], [10.0, 0.0]])
    net = build_sensor_network(sensors, np.array([[20.0, 0.0]]),
                               comm_range=12.0, sensor_battery=batteries[0])
    return net


class TestEnergyStats:
    def test_zero_spend(self):
        stats = energy_stats(_net())
        assert stats["total"] == 0.0 and stats["variance"] == 0.0

    def test_variance_matches_numpy(self):
        net = _net()
        net.nodes[0].energy.charge_tx(0.3, 1.0)
        net.nodes[1].energy.charge_tx(0.1, 1.0)
        stats = energy_stats(net)
        assert stats["total"] == pytest.approx(0.4)
        assert stats["variance"] == pytest.approx(np.var([0.3, 0.1]))
        assert stats["max"] == pytest.approx(0.3)

    def test_residual(self):
        net = _net()
        net.nodes[0].energy.charge_tx(0.25, 1.0)
        res = residual_energy(net)
        assert res[0] == pytest.approx(0.75) and res[1] == pytest.approx(1.0)

    def test_balance_index(self):
        net = _net()
        net.nodes[0].energy.charge_tx(0.2, 1.0)
        net.nodes[1].energy.charge_tx(0.2, 1.0)
        assert energy_balance_index(net) == pytest.approx(1.0)
        net.nodes[0].energy.charge_tx(0.4, 1.0)
        assert energy_balance_index(net) < 1.0


class TestFairnessAndHistogram:
    def test_jain_equal(self):
        assert jain_fairness([3, 3, 3]) == pytest.approx(1.0)

    def test_jain_concentrated(self):
        assert jain_fairness([1, 0, 0, 0]) == pytest.approx(0.25)

    def test_jain_empty(self):
        assert jain_fairness([]) == 1.0

    def test_hop_histogram(self):
        m = MetricsCollector()
        for h in (1, 2, 2, 3):
            m.on_data_delivered(
                Packet(kind=PacketKind.DATA, origin=0, target=1,
                       payload={"data_id": h * 10 + h}, hop_count=h),
                1, now=1.0,
            )
        assert hop_histogram(m) == {1: 1, 2: 2, 3: 1}

    def test_first_death_passthrough(self):
        m = MetricsCollector()
        assert first_death_time(m) is None
        m.on_node_death(4, 9.0)
        assert first_death_time(m) == 9.0


class TestSummarize:
    def test_mean_and_std(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s["n"] == 3
        assert s["mean"] == pytest.approx(2.0)
        assert s["std"] == pytest.approx(np.std([1, 2, 3], ddof=1))

    def test_ci_uses_student_t(self):
        from scipy.stats import t as student_t

        values = [1.0, 2.0, 3.0, 4.0]
        s = summarize(values)
        expected = student_t.ppf(0.975, df=3) * np.std(values, ddof=1) / 2.0
        assert s["ci_half_width"] == pytest.approx(expected)
        assert s["ci_lo"] == pytest.approx(s["mean"] - expected)
        assert s["ci_hi"] == pytest.approx(s["mean"] + expected)

    def test_single_sample_is_a_point_estimate(self):
        s = summarize([5.0])
        assert s == {
            "n": 1, "mean": 5.0, "std": 0.0,
            "ci_half_width": 0.0, "ci_lo": 5.0, "ci_hi": 5.0,
        }

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestAggregateRecords:
    def test_per_field_summaries(self):
        recs = [{"a": 1.0, "b": 10}, {"a": 3.0, "b": 20}]
        agg = aggregate_records(recs)
        assert agg["a"]["mean"] == pytest.approx(2.0)
        assert agg["b"]["mean"] == pytest.approx(15.0)

    def test_nested_and_listed_leaves_flatten(self):
        recs = [
            {"top": {"x": 1.0}, "rows": [{"h": 2.0}]},
            {"top": {"x": 3.0}, "rows": [{"h": 4.0}]},
        ]
        agg = aggregate_records(recs)
        assert agg["top.x"]["mean"] == pytest.approx(2.0)
        assert agg["rows.0.h"]["mean"] == pytest.approx(3.0)

    def test_fields_missing_from_some_records_are_skipped(self):
        agg = aggregate_records([{"a": 1.0, "b": 2.0}, {"a": 2.0}])
        assert "a" in agg and "b" not in agg

    def test_non_numeric_leaves_ignored(self):
        agg = aggregate_records([{"name": "x", "v": 1.0}, {"name": "y", "v": 2.0}])
        assert list(agg) == ["v"]

    def test_empty_input(self):
        assert aggregate_records([]) == {}


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(["name", "v"], [["x", 1.5], ["long-name", 2]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2]
        assert len(lines) == 6

    def test_floats_rounded(self):
        out = format_table(["v"], [[1.23456]], ndigits=2)
        assert "1.23" in out and "1.2345" not in out

    def test_integral_floats_compact(self):
        out = format_table(["v"], [[3.0]])
        assert "3" in out and "3.000" not in out

    def test_nan_rendered_as_dash(self):
        out = format_table(["v"], [[float("nan")]])
        assert "-" in out.splitlines()[-1]
