"""Unit tests for routing-table structures."""

import pytest

from repro.core.routing_table import ForwardingEntry, RouteEntry, RoutingTable
from repro.exceptions import RoutingError


def _entry(key, path):
    return RouteEntry(key=key, gateway=path[-1], path=tuple(path))


class TestRouteEntry:
    def test_hops_and_next_hop(self):
        e = _entry("A", [1, 2, 3, 50])
        assert e.hops == 3
        assert e.next_hop == 2

    def test_one_hop_next_is_gateway(self):
        e = _entry("A", [1, 50])
        assert e.hops == 1 and e.next_hop == 50

    def test_path_must_end_at_gateway(self):
        with pytest.raises(RoutingError):
            RouteEntry(key="A", gateway=99, path=(1, 2, 50))

    def test_empty_path_rejected(self):
        with pytest.raises(RoutingError):
            RouteEntry(key="A", gateway=1, path=())

    def test_suffix_property_one(self):
        # Property 1: the suffix of a shortest path is a valid route.
        e = _entry("A", [1, 2, 3, 50])
        s = e.suffix_from(3)
        assert s.path == (3, 50) and s.hops == 1 and s.key == "A"

    def test_suffix_off_path_rejected(self):
        with pytest.raises(RoutingError):
            _entry("A", [1, 2, 50]).suffix_from(7)


class TestRoutingTable:
    def test_install_and_get(self):
        t = RoutingTable(owner=1)
        e = _entry("A", [1, 2, 50])
        assert t.install(e)
        assert t.get("A") == e
        assert "A" in t and len(t) == 1

    def test_owner_enforced(self):
        t = RoutingTable(owner=1)
        with pytest.raises(RoutingError):
            t.install(_entry("A", [2, 50]))

    def test_replace_worse_only(self):
        t = RoutingTable(owner=1)
        t.install(_entry("A", [1, 2, 50]))
        assert not t.install(_entry("A", [1, 2, 3, 50]), replace_worse_only=True)
        assert t.get("A").hops == 2
        assert t.install(_entry("A", [1, 50]), replace_worse_only=True)
        assert t.get("A").hops == 1

    def test_unconditional_replace(self):
        t = RoutingTable(owner=1)
        t.install(_entry("A", [1, 50]))
        t.install(_entry("A", [1, 2, 50]))
        assert t.get("A").hops == 2

    def test_best_overall(self):
        t = RoutingTable(owner=1)
        t.install(_entry("A", [1, 2, 3, 50]))
        t.install(_entry("B", [1, 2, 51]))
        assert t.best().key == "B"

    def test_best_restricted_to_active(self):
        # The MLR selection rule: only currently-occupied places count.
        t = RoutingTable(owner=1)
        t.install(_entry("A", [1, 2, 3, 50]))
        t.install(_entry("B", [1, 2, 51]))
        assert t.best(active_keys={"A"}).key == "A"
        assert t.best(active_keys={"C"}) is None

    def test_best_tie_breaks_deterministically(self):
        t = RoutingTable(owner=1)
        t.install(_entry("B", [1, 2, 51]))
        t.install(_entry("A", [1, 2, 50]))
        assert t.best().key == "A"

    def test_best_empty(self):
        assert RoutingTable(owner=1).best() is None

    def test_remove(self):
        t = RoutingTable(owner=1)
        t.install(_entry("A", [1, 50]))
        t.remove("A")
        assert "A" not in t
        t.remove("A")  # idempotent

    def test_entries_sorted_by_key(self):
        t = RoutingTable(owner=1)
        for k in ("C", "A", "B"):
            t.install(_entry(k, [1, 50]))
        assert [e.key for e in t.entries()] == ["A", "B", "C"]


class TestForwardingEntries:
    def test_install_and_match_by_gateway(self):
        t = RoutingTable(owner=2)
        fe = ForwardingEntry(source=1, destination=50, immediate_sender=1, immediate_receiver=50)
        t.install_forwarding(fe)
        assert t.match_forwarding(1, 50) == fe
        assert t.match_forwarding(1, 51) is None

    def test_route_key_takes_precedence(self):
        t = RoutingTable(owner=2)
        fe_b = ForwardingEntry(1, 50, 1, 3, route_key="B")
        fe_e = ForwardingEntry(1, 50, 1, 4, route_key="E")
        t.install_forwarding(fe_b)
        t.install_forwarding(fe_e)
        # Same (source, gateway) pair, distinct places: both must coexist —
        # this is the regression the SecMLR re-bind bug was about.
        assert t.match_forwarding(1, "B").immediate_receiver == 3
        assert t.match_forwarding(1, "E").immediate_receiver == 4

    def test_forwarding_entries_listing(self):
        t = RoutingTable(owner=2)
        t.install_forwarding(ForwardingEntry(1, 50, None, 5))
        assert len(t.forwarding_entries) == 1
