"""Unit tests for topology, neighbor computation and deployments."""

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, TopologyError
from repro.sim.network import (
    Network,
    build_sensor_network,
    grid_deployment,
    uniform_deployment,
)
from repro.sim.node import NodeKind


class TestNeighbors:
    def test_symmetric_links(self, line_network):
        for i in range(len(line_network)):
            for j in line_network.neighbors(i):
                assert i in line_network.neighbors(int(j))

    def test_line_adjacency(self, line_network):
        # spacing 10, range 12: only chain-adjacent nodes connect
        assert list(line_network.neighbors(0)) == [1]
        assert sorted(line_network.neighbors(2)) == [1, 3]
        assert sorted(line_network.neighbors(4)) == [3, 5]  # gateway is node 5

    def test_no_self_neighbor(self, grid_network):
        for i in range(len(grid_network)):
            assert i not in grid_network.neighbors(i)

    def test_neighbors_match_bruteforce(self):
        pos = uniform_deployment(40, 100.0, seed=9)
        net = Network(pos, [NodeKind.SENSOR] * 40, comm_range=25.0)
        for i in range(40):
            expected = sorted(
                j for j in range(40)
                if j != i and math.dist(pos[i], pos[j]) <= 25.0
            )
            assert sorted(int(x) for x in net.neighbors(i)) == expected

    def test_move_invalidates_cache(self, line_network):
        gw = line_network.gateway_ids[0]
        assert sorted(line_network.neighbors(gw)) == [4]
        line_network.move_node(gw, (0.0, 10.0))
        # gw now 10m from node 0 (in range) and 14.1m from node 1 (out).
        assert sorted(line_network.neighbors(gw)) == [0]

    def test_alive_neighbors_excludes_dead(self, line_network):
        line_network.nodes[1].fail()
        assert list(line_network.alive_neighbors(0)) == []
        assert list(line_network.alive_neighbors(2)) == [3]

    def test_alive_neighbors_tracks_recovery(self, line_network):
        line_network.nodes[1].fail()
        assert list(line_network.alive_neighbors(0)) == []
        line_network.nodes[1].recover()
        assert list(line_network.alive_neighbors(0)) == [1]

    def test_alive_neighbors_cached_between_changes(self, line_network):
        first = line_network.alive_neighbors(2)
        assert line_network.alive_neighbors(2) is first  # dict hit
        line_network.nodes[3].fail()
        assert list(line_network.alive_neighbors(2)) == [1]


class TestGraph:
    def test_hops_ground_truth(self, line_network):
        hops = line_network.hops_to(line_network.gateway_ids)
        assert hops[0] == 5 and hops[4] == 1

    def test_collection_connected(self, line_network):
        assert line_network.is_collection_connected()
        line_network.nodes[2].fail()  # cuts the chain
        assert not line_network.is_collection_connected()

    def test_graph_excludes_dead_by_default(self, line_network):
        line_network.nodes[2].fail()
        g = line_network.graph()
        assert 2 not in g.nodes
        g_all = line_network.graph(alive_only=False)
        assert 2 in g_all.nodes

    def test_grid_connected(self, grid_network):
        assert grid_network.is_collection_connected()


class TestConstruction:
    def test_bad_positions_shape(self):
        with pytest.raises(ConfigurationError):
            Network(np.zeros((3, 3)), [NodeKind.SENSOR] * 3)

    def test_kind_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            Network(np.zeros((3, 2)), [NodeKind.SENSOR] * 2)

    def test_nonpositive_range(self):
        with pytest.raises(ConfigurationError):
            Network(np.zeros((2, 2)), [NodeKind.SENSOR] * 2, comm_range=0)

    def test_sensor_battery_only_on_sensors(self):
        net = build_sensor_network(
            np.array([[0.0, 0.0]]), np.array([[5.0, 0.0]]),
            comm_range=10.0, sensor_battery=0.5,
        )
        assert net.nodes[0].energy.capacity == 0.5
        assert math.isinf(net.nodes[1].energy.capacity)

    def test_gateway_ids_follow_sensors(self):
        net = build_sensor_network(
            np.zeros((3, 2)), np.array([[1.0, 1.0], [2.0, 2.0]]), comm_range=5.0
        )
        assert net.sensor_ids == [0, 1, 2]
        assert net.gateway_ids == [3, 4]

    def test_move_unknown_node(self, line_network):
        with pytest.raises(TopologyError):
            line_network.move_node(99, (0, 0))


class TestDeployments:
    def test_uniform_bounds_and_shape(self):
        pos = uniform_deployment(100, 50.0, seed=1, margin=5.0)
        assert pos.shape == (100, 2)
        assert pos.min() >= 5.0 and pos.max() <= 45.0

    def test_uniform_deterministic(self):
        a = uniform_deployment(10, 50.0, seed=3)
        b = uniform_deployment(10, 50.0, seed=3)
        assert np.array_equal(a, b)

    def test_uniform_invalid(self):
        with pytest.raises(ConfigurationError):
            uniform_deployment(0, 50.0)
        with pytest.raises(ConfigurationError):
            uniform_deployment(5, 10.0, margin=6.0)

    def test_grid_shape_and_spacing(self):
        pos = grid_deployment(3, 4, spacing=2.0)
        assert pos.shape == (12, 2)
        assert pos[:, 0].max() == pytest.approx(6.0)
        assert pos[:, 1].max() == pytest.approx(4.0)

    def test_grid_jitter_bounded(self):
        base = grid_deployment(3, 3, spacing=10.0)
        jit = grid_deployment(3, 3, spacing=10.0, jitter=1.0, seed=2)
        assert np.abs(jit - base).max() <= 1.0

    def test_grid_invalid(self):
        with pytest.raises(ConfigurationError):
            grid_deployment(0, 3, 1.0)
