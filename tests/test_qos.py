"""Tests for load-balanced routing (Section 4.3)."""

import numpy as np
import pytest

from repro.core.qos import LoadBalancedMLR
from repro.core.mlr import MLR
from repro.exceptions import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.mobility import FeasiblePlaces, GatewaySchedule
from repro.sim.network import build_sensor_network, grid_deployment
from repro.sim.radio import IEEE802154, Channel
from repro.sim.trace import MetricsCollector


def _world(cls, rounds=3, seed=9, **kw):
    """A 6x6 grid with two gateways on opposite sides.

    The middle columns are roughly equidistant from both gateways, so a
    load-aware protocol has real freedom to rebalance.
    """
    sensors = grid_deployment(6, 6, spacing=10.0)
    places = FeasiblePlaces.from_mapping({
        "L": (-10.0, 25.0),
        "R": (60.0, 25.0),
    })
    net = build_sensor_network(
        sensors, np.array([places.position("L"), places.position("R")]),
        comm_range=14.5,
    )
    g0, g1 = net.gateway_ids
    schedule = GatewaySchedule(
        places=places, rounds=[{g0: "L", g1: "R"}] * rounds
    )
    sim = Simulator(seed=seed)
    ch = Channel(sim, net, IEEE802154.ideal(), metrics=MetricsCollector())
    proto = cls(sim, net, ch, schedule, **kw)
    return sim, net, ch, proto


def _run_rounds(sim, net, proto, rounds, per_round=1):
    loads = []
    for r in range(rounds):
        sim.run(until=r * 8.0)
        proto.start_round(r)
        for k in range(per_round):
            for i, s in enumerate(net.sensor_ids):
                sim.schedule(1.0 + k + i * 1e-3, proto.send_data, s)
        sim.run(until=(r + 1) * 8.0 - 1e-9)
        if hasattr(proto, "gateway_loads"):
            loads.append(proto.gateway_loads())
    sim.run()
    return loads


class TestLoadAccounting:
    def test_gateways_count_frames(self):
        sim, net, ch, proto = _world(LoadBalancedMLR)
        loads = _run_rounds(sim, net, proto, rounds=1)
        assert sum(loads[0].values()) == len(net.sensor_ids)

    def test_load_disseminated_to_sensors(self):
        sim, net, ch, proto = _world(LoadBalancedMLR, rounds=2)
        _run_rounds(sim, net, proto, rounds=2)
        # after round 1's beacons, sensors know both gateways' loads
        sensor = net.sensor_ids[0]
        assert len(proto.known_load[sensor]) == 2

    def test_invalid_weight(self):
        with pytest.raises(ConfigurationError):
            _world(LoadBalancedMLR, load_weight=-1.0)


class TestRebalancing:
    def test_zero_weight_reduces_to_mlr(self):
        results = {}
        for name, cls, kw in (
            ("mlr", MLR, {}),
            ("lb0", LoadBalancedMLR, {"load_weight": 0.0}),
        ):
            sim, net, ch, proto = _world(cls, rounds=2, **kw)
            _run_rounds(sim, net, proto, rounds=2)
            results[name] = sorted(
                (r.origin, r.destination) for r in ch.metrics.deliveries
            )
        assert results["mlr"] == results["lb0"]

    def test_hot_zone_traffic_rebalances(self):
        """Sensors near gateway L report 5x (the forest fire of §4.3)."""

        def run(cls, **kw):
            sim, net, ch, proto = _world(cls, rounds=3, **kw)
            hot = [s for s in net.sensor_ids if net.positions[s][0] <= 20.0]
            per_round_loads = []
            for r in range(3):
                sim.run(until=r * 10.0)
                proto.start_round(r)
                for i, s in enumerate(net.sensor_ids):
                    reps = 5 if s in hot else 1
                    for k in range(reps):
                        sim.schedule(1.0 + 0.5 * k + i * 1e-3, proto.send_data, s)
                sim.run(until=(r + 1) * 10.0 - 1e-9)
                if hasattr(proto, "gateway_loads"):
                    per_round_loads.append(proto.gateway_loads())
            sim.run()
            by_gw = {}
            for rec in ch.metrics.deliveries:
                by_gw[rec.destination] = by_gw.get(rec.destination, 0) + 1
            return by_gw, ch.metrics.delivery_ratio

        plain, dr_plain = run(MLR)
        balanced, dr_lb = run(LoadBalancedMLR, load_weight=3.0)
        def imbalance(d):
            return max(d.values()) - min(d.values())
        assert imbalance(balanced) < imbalance(plain)
        assert dr_lb > 0.95  # rebalancing must not break delivery

    def test_delivery_preserved(self):
        sim, net, ch, proto = _world(LoadBalancedMLR, rounds=3)
        _run_rounds(sim, net, proto, rounds=3, per_round=2)
        assert ch.metrics.delivery_ratio == 1.0
