"""Unit tests for the first-order radio energy model and accounting."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.sim.energy import EnergyAccount, EnergyModel


class TestEnergyModel:
    def test_crossover_distance(self):
        m = EnergyModel()
        d0 = m.crossover_distance
        assert d0 == pytest.approx(math.sqrt(10e-12 / 0.0013e-12))
        # cost is continuous at the crossover
        below = m.tx_cost(1000, d0 - 1e-9)
        above = m.tx_cost(1000, d0 + 1e-9)
        assert below == pytest.approx(above, rel=1e-6)

    def test_free_space_quadratic(self):
        m = EnergyModel()
        base = m.tx_cost(1000, 10) - m.rx_cost(1000)
        quad = m.tx_cost(1000, 20) - m.rx_cost(1000)
        assert quad == pytest.approx(4 * base, rel=1e-9)

    def test_multipath_quartic(self):
        m = EnergyModel()
        e100 = m.tx_cost(1000, 100) - 1000 * m.e_elec
        e200 = m.tx_cost(1000, 200) - 1000 * m.e_elec
        assert e200 == pytest.approx(16 * e100, rel=1e-9)

    def test_rx_cost_linear_in_bits(self):
        m = EnergyModel()
        assert m.rx_cost(2000) == pytest.approx(2 * m.rx_cost(1000))

    def test_fixed_tx_distance_overrides(self):
        m = EnergyModel(fixed_tx_distance=50.0)
        assert m.tx_cost(1000, 5.0) == m.tx_cost(1000, 500.0)

    def test_tx_cost_zero_bits(self):
        assert EnergyModel().tx_cost(0, 100) == 0.0

    def test_negative_inputs_rejected(self):
        m = EnergyModel()
        with pytest.raises(ConfigurationError):
            m.tx_cost(-1, 10)
        with pytest.raises(ConfigurationError):
            m.tx_cost(10, -1)
        with pytest.raises(ConfigurationError):
            m.rx_cost(-5)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyModel(e_elec=-1e-9)


class TestEnergyAccount:
    def test_initial_state(self):
        acc = EnergyAccount(capacity=1.0)
        assert acc.alive and acc.remaining == 1.0 and acc.spent == 0.0

    def test_charging_accumulates_by_category(self):
        acc = EnergyAccount(capacity=1.0)
        acc.charge_tx(0.1, now=1.0)
        acc.charge_rx(0.2, now=2.0)
        acc.charge_idle(0.05, now=3.0)
        assert acc.spent_tx == pytest.approx(0.1)
        assert acc.spent_rx == pytest.approx(0.2)
        assert acc.spent_idle == pytest.approx(0.05)
        assert acc.spent == pytest.approx(0.35)
        assert acc.remaining == pytest.approx(0.65)

    def test_death_records_time(self):
        acc = EnergyAccount(capacity=0.1)
        acc.charge_tx(0.05, now=1.0)
        assert acc.alive
        acc.charge_tx(0.06, now=2.5)
        assert not acc.alive
        assert acc.died_at == 2.5
        assert acc.remaining == 0.0

    def test_dead_node_rejects_charges(self):
        acc = EnergyAccount(capacity=0.01)
        acc.charge_tx(0.02, now=1.0)
        assert acc.charge_rx(0.01, now=2.0) is False
        assert acc.spent_rx == 0.0

    def test_infinite_capacity_never_dies(self):
        acc = EnergyAccount(capacity=math.inf)
        acc.charge_tx(1e9, now=1.0)
        assert acc.alive
        assert acc.spent_tx == 1e9

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyAccount(capacity=-1.0)
