"""Tests for the mesh backbone, Internet bridge and three-tier stack."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, TopologyError
from repro.mesh.backbone import MeshBackbone
from repro.mesh.internet import InternetHost, WiredBackbone
from repro.mesh.stack import ThreeTierWMSN
from repro.sim.engine import Simulator
from repro.sim.network import uniform_deployment


@pytest.fixture
def backbone():
    sim = Simulator(seed=5)
    #  G0 --- R0 --- R1 --- BS     (spacing 200 m, 802.11 range 250 m)
    mesh = MeshBackbone(
        sim,
        gateway_positions=np.array([[0.0, 0.0]]),
        router_positions=np.array([[200.0, 0.0], [400.0, 0.0]]),
        base_station_positions=np.array([[600.0, 0.0]]),
    )
    return sim, mesh


class TestBackbone:
    def test_tier_ids(self, backbone):
        _, mesh = backbone
        assert mesh.gateway_mesh_ids == [0]
        assert mesh.router_mesh_ids == [1, 2]
        assert mesh.base_station_mesh_ids == [3]

    def test_connectivity_and_path(self, backbone):
        _, mesh = backbone
        assert mesh.is_connected_to_base()
        assert mesh.shortest_path(0, 3) == [0, 1, 2, 3]
        assert mesh.nearest_base_station(0) == 3

    def test_transmit_delivers(self, backbone):
        sim, mesh = backbone
        got = []
        mesh.delivery_callback = lambda pkt, node: got.append((pkt.payload["x"], node))
        assert mesh.transmit(0, None, {"x": 42}, payload_bytes=100)
        sim.run()
        assert got == [(42, 3)]
        assert mesh.metrics.deliveries[0].hops == 3

    def test_self_healing_around_dead_router(self):
        sim = Simulator(seed=6)
        # Two parallel router paths between the gateway and the base station.
        mesh = MeshBackbone(
            sim,
            gateway_positions=np.array([[0.0, 0.0]]),
            router_positions=np.array([[200.0, 100.0], [200.0, -100.0]]),
            base_station_positions=np.array([[400.0, 0.0]]),
        )
        got = []
        mesh.delivery_callback = lambda pkt, node: got.append(pkt.payload["x"])
        mesh.transmit(0, None, {"x": 1}, payload_bytes=50)
        sim.run()
        mesh.fail_router(mesh.router_mesh_ids[0])
        mesh.transmit(0, None, {"x": 2}, payload_bytes=50)
        sim.run()
        assert got == [1, 2]  # re-routed via the surviving router

    def test_no_route_counted(self, backbone):
        sim, mesh = backbone
        mesh.fail_router(1)  # cuts the chain
        assert not mesh.transmit(0, None, {"x": 1}, payload_bytes=10)
        assert mesh.metrics.drops["no_route"] == 1

    def test_requires_base_station(self):
        with pytest.raises(ConfigurationError):
            MeshBackbone(
                Simulator(seed=0),
                gateway_positions=np.array([[0.0, 0.0]]),
                router_positions=np.empty((0, 2)),
                base_station_positions=np.empty((0, 2)),
            )


class TestInternet:
    def test_wired_latency_and_bandwidth(self):
        sim = Simulator(seed=0)
        wired = WiredBackbone(sim, latency=0.01, bandwidth_bps=8000)
        host = InternetHost(sim)
        wired.deliver(host, {
            "data_id": 1, "origin_sensor": 2, "via_gateway": 3,
            "via_base_station": 4, "sensed_at": 0.0,
        }, size_bytes=1000)  # 8000 bits at 8 kb/s = 1 s
        sim.run()
        assert host.received_count == 1
        assert host.records[0].received_at == pytest.approx(1.01)
        assert host.mean_latency() == pytest.approx(1.01)

    def test_invalid_wired_config(self):
        with pytest.raises(ConfigurationError):
            WiredBackbone(Simulator(seed=0), latency=-1.0)


class TestThreeTierStack:
    def _stack(self, seed=7):
        sim = Simulator(seed=seed)
        sensors = uniform_deployment(40, 200.0, seed=seed)
        stack = ThreeTierWMSN(
            sim,
            sensors,
            gateway_positions=np.array([[40.0, 40.0], [160.0, 160.0]]),
            router_positions=np.array([[100.0, 100.0]]),
            base_station_positions=np.array([[200.0, 100.0]]),
            sensor_radio=__import__("dataclasses").replace(
                __import__("repro.sim.radio", fromlist=["IEEE802154"]).IEEE802154.ideal(),
                comm_range=60.0,
            ),
        )
        return sim, stack

    def test_end_to_end_delivery(self):
        sim, stack = self._stack()
        for s in range(20):
            stack.send_data(s)
        sim.run()
        assert stack.internet.received_count >= 18
        recs = stack.completed_records()
        assert all(r.mesh_tier_hops >= 1 for r in recs)
        assert all(r.base_station is not None for r in recs)

    def test_rejects_disconnected_mesh(self):
        sim = Simulator(seed=1)
        sensors = uniform_deployment(10, 100.0, seed=1)
        with pytest.raises(TopologyError):
            ThreeTierWMSN(
                sim,
                sensors,
                gateway_positions=np.array([[50.0, 50.0]]),
                router_positions=np.empty((0, 2)),
                base_station_positions=np.array([[5000.0, 5000.0]]),
            )
