"""Protocol tests for SPR (Section 5.2)."""

import numpy as np
import pytest

from repro.core.base import ProtocolConfig
from repro.core.spr import SPR
from repro.exceptions import RoutingError
from repro.sim.network import build_sensor_network
from repro.sim.radio import IEEE802154, Channel
from repro.sim.trace import MetricsCollector


def _spr(setup, config=None):
    sim, net, ch = setup
    return SPR(sim, net, ch, config), sim, net, ch


class TestDiscoveryAndDelivery:
    def test_line_delivery_hops(self, line_setup):
        spr, sim, net, ch = _spr(line_setup)
        spr.send_data(0)
        sim.run()
        m = ch.metrics
        assert m.delivery_ratio == 1.0
        assert m.deliveries[0].hops == 5  # ground truth chain length

    def test_all_sources_match_bfs(self, grid_setup):
        spr, sim, net, ch = _spr(grid_setup)
        truth = net.hops_to(net.gateway_ids)
        for s in net.sensor_ids:
            spr.send_data(s)
        sim.run()
        assert ch.metrics.delivery_ratio == 1.0
        for rec in ch.metrics.deliveries:
            assert rec.hops == truth[rec.origin], rec

    def test_best_gateway_is_nearest(self, grid_setup):
        spr, sim, net, ch = _spr(grid_setup)
        corner_near_g0 = 0
        spr.send_data(corner_near_g0)
        sim.run()
        assert spr.best_gateway_of(corner_near_g0) == net.gateway_ids[0]

    def test_route_installed_at_source_only_after_discovery(self, line_setup):
        spr, sim, net, ch = _spr(line_setup)
        assert spr.route_of(0) is None
        spr.send_data(0)
        sim.run()
        route = spr.route_of(0)
        assert route is not None
        assert route.path == (0, 1, 2, 3, 4, 5)

    def test_second_packet_uses_table_no_new_flood(self, line_setup):
        spr, sim, net, ch = _spr(line_setup)
        spr.send_data(0)
        sim.run()
        rreq_before = ch.metrics.sent[__import__("repro.sim.packet", fromlist=["PacketKind"]).PacketKind.RREQ]
        spr.send_data(0)
        sim.run()
        rreq_after = ch.metrics.sent[__import__("repro.sim.packet", fromlist=["PacketKind"]).PacketKind.RREQ]
        assert rreq_after == rreq_before  # Step 1: table hit, no flood
        assert ch.metrics.delivery_ratio == 1.0

    def test_intermediate_nodes_install_suffixes(self, line_setup):
        # Step 5.2: the first source-routed DATA installs suffix entries.
        spr, sim, net, ch = _spr(line_setup)
        spr.send_data(0)
        sim.run()
        for node in (1, 2, 3, 4):
            entry = spr.tables[node].get(5)
            assert entry is not None
            assert entry.path == tuple(range(node, 6))

    def test_table_answering_short_circuits_flood(self, line_setup):
        spr, sim, net, ch = _spr(line_setup)
        from repro.sim.packet import PacketKind

        spr.send_data(4)  # adjacent to gateway: cheap discovery
        sim.run()
        base = ch.metrics.sent[PacketKind.RREQ]
        spr.send_data(3)  # node 4 can answer from its table
        sim.run()
        delta = ch.metrics.sent[PacketKind.RREQ] - base
        # Node 4 answers instead of re-flooding, so the flood only spreads
        # away from the gateway (nodes 3, 2, 1, 0) and never reaches it.
        assert delta == 4

    def test_no_table_answering_ablation(self, line_setup):
        sim, net, ch = line_setup
        spr = SPR(sim, net, ch, ProtocolConfig(table_answering=False))
        from repro.sim.packet import PacketKind

        spr.send_data(4)
        sim.run()
        base = ch.metrics.sent[PacketKind.RREQ]
        spr.send_data(3)
        sim.run()
        delta = ch.metrics.sent[PacketKind.RREQ] - base
        assert delta == 5  # every sensor re-floods, including node 4
        assert ch.metrics.delivery_ratio == 1.0


class TestFailureHandling:
    def test_unroutable_source_drops_after_retries(self, line_setup):
        spr, sim, net, ch = _spr(line_setup)
        net.nodes[1].fail()  # cuts node 0 off entirely
        spr.send_data(0)
        sim.run()
        assert ch.metrics.drops["no_route"] == 1
        assert ch.metrics.delivery_ratio == 0.0

    def test_midpath_death_triggers_rerr_and_redelivery(self, grid_setup):
        spr, sim, net, ch = _spr(grid_setup)
        spr.send_data(12)  # center of the 5x5 grid
        sim.run()
        route = spr.route_of(12)
        victim = route.path[1]
        net.nodes[victim].fail()
        spr.send_data(12)
        sim.run()
        m = ch.metrics
        # The packet was re-routed around the dead node and delivered.
        delivered = {r.uid for r in m.deliveries}
        assert len(delivered) == 2

    def test_dead_source_counts_drop(self, line_setup):
        spr, sim, net, ch = _spr(line_setup)
        net.nodes[0].fail()
        spr.send_data(0)
        sim.run()
        assert ch.metrics.drops["dead_source"] == 1


class TestValidation:
    def test_requires_gateway(self, sim):
        net = build_sensor_network(np.zeros((2, 2)), np.empty((0, 2)), comm_range=5.0)
        ch = Channel(sim, net, IEEE802154.ideal(), metrics=MetricsCollector())
        with pytest.raises(RoutingError):
            SPR(sim, net, ch)

    def test_gateway_cannot_send_data(self, line_setup):
        spr, sim, net, ch = _spr(line_setup)
        with pytest.raises(RoutingError):
            spr.send_data(net.gateway_ids[0])
