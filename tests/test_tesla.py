"""Unit tests for μTESLA authenticated broadcast."""

import pytest

from repro.exceptions import SecurityError
from repro.security.tesla import TeslaBroadcaster, TeslaMessage, TeslaReceiver


def _pair(interval=1.0, lag=2, chain=64):
    tx = TeslaBroadcaster(
        sender_id=50, seed=b"seed", chain_length=chain,
        interval=interval, disclosure_lag=lag,
    )
    rx = TeslaReceiver(tx.commitment, interval=interval, disclosure_lag=lag)
    return tx, rx


class TestChain:
    def test_commitment_anchors_chain(self):
        tx, _ = _pair()
        import hashlib
        assert hashlib.sha256(tx.key_for_interval(1)).digest() == tx.commitment

    def test_chain_links(self):
        tx, _ = _pair()
        import hashlib
        for i in range(2, 10):
            assert hashlib.sha256(tx.key_for_interval(i)).digest() == tx.key_for_interval(i - 1)

    def test_interval_bounds(self):
        tx, _ = _pair(chain=8)
        with pytest.raises(SecurityError):
            tx.key_for_interval(0)
        with pytest.raises(SecurityError):
            tx.key_for_interval(9)

    def test_bad_parameters(self):
        with pytest.raises(SecurityError):
            TeslaBroadcaster(1, b"s", chain_length=1, interval=1.0)
        with pytest.raises(SecurityError):
            TeslaBroadcaster(1, b"s", chain_length=8, interval=0.0)


class TestBroadcastFlow:
    def test_happy_path(self):
        tx, rx = _pair()
        msg = tx.authenticate({"place": "D"}, now=3.2)  # interval 3
        assert rx.receive(msg, arrival_time=3.3)
        out = rx.disclose(3, tx.key_for_interval(3))
        assert out == [{"place": "D"}]

    def test_skipped_interval_still_authenticates(self):
        tx, rx = _pair()
        msg = tx.authenticate({"n": 1}, now=2.5)
        rx.receive(msg, arrival_time=2.6)
        # the receiver misses disclosures 2..5 and hears 6 directly
        out = rx.disclose(6, tx.key_for_interval(6))
        assert out == [{"n": 1}]

    def test_security_condition_rejects_late_arrival(self):
        tx, rx = _pair()
        msg = tx.authenticate({"n": 1}, now=3.0)
        # arrival after interval+lag boundary = attacker may know the key
        assert not rx.receive(msg, arrival_time=3.0 + 10.0)
        assert rx.pending == 0

    def test_forged_key_rejected(self):
        tx, rx = _pair()
        msg = tx.authenticate({"n": 1}, now=3.0)
        rx.receive(msg, arrival_time=3.1)
        assert rx.disclose(3, b"x" * 32) == []
        # the genuine key still works afterwards
        assert rx.disclose(3, tx.key_for_interval(3)) == [{"n": 1}]

    def test_forged_mac_rejected(self):
        tx, rx = _pair()
        genuine = tx.authenticate({"n": 1}, now=3.0)
        forged = TeslaMessage(payload={"n": 666}, interval=3,
                              mac=genuine.mac, sender=genuine.sender)
        rx.receive(forged, arrival_time=3.1)
        assert rx.disclose(3, tx.key_for_interval(3)) == []

    def test_stale_disclosure_ignored(self):
        tx, rx = _pair()
        rx.disclose(5, tx.key_for_interval(5))
        assert rx.disclose(3, tx.key_for_interval(3)) == []

    def test_multiple_messages_same_interval(self):
        tx, rx = _pair()
        for n in range(3):
            rx.receive(tx.authenticate({"n": n}, now=4.1), arrival_time=4.2)
        out = rx.disclose(4, tx.key_for_interval(4))
        assert [m["n"] for m in out] == [0, 1, 2]

    def test_disclosable_key_respects_lag(self):
        tx, _ = _pair(interval=1.0, lag=2)
        assert tx.disclosable_key(1.5) is None
        i, key = tx.disclosable_key(5.5)  # interval 5, so 5-2=3
        assert i == 3 and key == tx.key_for_interval(3)

    def test_disclosure_time(self):
        tx, _ = _pair(interval=0.5, lag=2)
        assert tx.disclosure_time(4) == pytest.approx((4 + 2) * 0.5)

    def test_time_before_epoch_rejected(self):
        tx, _ = _pair()
        with pytest.raises(SecurityError):
            tx.interval_at(-1.0)
