"""Tests for sleep-scheduling topology control (Section 4.4)."""

import math

import numpy as np
import pytest

from repro.core.spr import SPR
from repro.core.topology_control import SleepScheduler
from repro.exceptions import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.network import build_sensor_network, grid_deployment
from repro.sim.radio import IEEE802154, Channel
from repro.sim.trace import MetricsCollector


@pytest.fixture
def dense_world():
    """A dense field: 4 sensors per GAF cell, one gateway."""
    rng = np.random.default_rng(3)
    sensors = rng.uniform(0, 60, size=(120, 2))
    net = build_sensor_network(sensors, np.array([[30.0, 70.0]]), comm_range=30.0)
    sim = Simulator(seed=4)
    ch = Channel(sim, net, IEEE802154.ideal(), metrics=MetricsCollector())
    return sim, net, ch


class TestCells:
    def test_cell_side_default_is_gaf_bound(self, dense_world):
        _, net, _ = dense_world
        sched = SleepScheduler(net)
        assert sched.cell_side == pytest.approx(net.comm_range / math.sqrt(5))

    def test_every_sensor_in_exactly_one_cell(self, dense_world):
        _, net, _ = dense_world
        sched = SleepScheduler(net)
        counted = sum(len(sched.cell_members(c)) for c in list(sched._cells))
        assert counted == len(net.sensor_ids)

    def test_adjacent_cell_nodes_within_range(self, dense_world):
        # the GAF property: any node can reach any node in a 4-adjacent cell
        _, net, _ = dense_world
        sched = SleepScheduler(net)
        side = sched.cell_side
        # worst case distance between 4-adjacent cells: sqrt((2s)^2 + s^2)
        worst = math.sqrt((2 * side) ** 2 + side ** 2)
        assert worst <= net.comm_range + 1e-9

    def test_invalid_cell_side(self, dense_world):
        _, net, _ = dense_world
        with pytest.raises(ConfigurationError):
            SleepScheduler(net, cell_side=0.0)


class TestEpochs:
    def test_one_coordinator_per_cell_rest_asleep(self, dense_world):
        _, net, _ = dense_world
        sched = SleepScheduler(net)
        coords = sched.apply_epoch()
        for cell, coordinator in coords.items():
            members = sched.cell_members(cell)
            assert coordinator in members
            for m in members:
                assert net.nodes[m].sleeping == (m != coordinator)

    def test_duty_cycle_reduced(self, dense_world):
        _, net, _ = dense_world
        sched = SleepScheduler(net)
        sched.apply_epoch()
        assert sched.duty_cycle() < 0.6  # dense field: most nodes sleep

    def test_rotation_by_residual_energy(self, dense_world):
        _, net, _ = dense_world
        sched = SleepScheduler(net)
        coords1 = sched.apply_epoch()
        # drain every current coordinator, re-elect
        for c in coords1.values():
            net.nodes[c].energy.remaining = 0.5 * net.nodes[c].energy.remaining \
                if not math.isinf(net.nodes[c].energy.capacity) else net.nodes[c].energy.remaining
        # with infinite batteries rotation needs explicit drain: use spent
        for c in coords1.values():
            net.nodes[c].energy.charge_tx(0.0, 0.0)
        # instead verify determinism: same energies -> same coordinators
        coords2 = sched.apply_epoch()
        assert coords2 == coords1

    def test_rotation_with_finite_batteries(self):
        sensors = grid_deployment(2, 2, spacing=1.0)  # all in one cell
        net = build_sensor_network(sensors, np.array([[0.0, 20.0]]),
                                   comm_range=30.0, sensor_battery=1.0)
        sched = SleepScheduler(net)
        first = sched.apply_epoch()
        (cell, coordinator), = first.items()
        net.nodes[coordinator].energy.charge_tx(0.5, 1.0)  # served, drained
        second = sched.apply_epoch()
        assert second[cell] != coordinator  # someone fresher takes over

    def test_wake_all_and_wake_to_send(self, dense_world):
        _, net, _ = dense_world
        sched = SleepScheduler(net)
        sched.apply_epoch()
        victim = sched.sleeping_sensors()[0]
        sched.wake_to_send(victim)
        assert net.nodes[victim].alive
        sched.wake_all()
        assert not sched.sleeping_sensors()


class TestRoutingOverBackbone:
    def test_coordinators_still_reach_gateway(self, dense_world):
        _, net, _ = dense_world
        sched = SleepScheduler(net)
        sched.apply_epoch()
        assert sched.coordinator_backbone_connected()

    def test_data_flows_while_most_sleep(self, dense_world):
        sim, net, ch = dense_world
        spr = SPR(sim, net, ch)
        sched = SleepScheduler(net)
        sched.apply_epoch()
        senders = list(sched.coordinators.values())[:10]
        for i, s in enumerate(senders):
            sim.schedule(0.1 + i * 1e-2, spr.send_data, s)
        sim.run()
        assert ch.metrics.delivery_ratio == 1.0

    def test_energy_saved_by_sleepers(self, dense_world):
        sim, net, ch = dense_world
        spr = SPR(sim, net, ch)
        sched = SleepScheduler(net)
        sched.apply_epoch()
        sleepers = set(sched.sleeping_sensors())
        for i, s in enumerate(list(sched.coordinators.values())[:10]):
            sim.schedule(0.1 + i * 1e-2, spr.send_data, s)
        sim.run()
        # sleeping nodes received nothing -> spent nothing
        assert all(net.nodes[s].energy.spent == 0.0 for s in sleepers)
