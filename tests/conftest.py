"""Shared fixtures: small deterministic topologies used across the suite."""

import os

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.network import build_sensor_network, grid_deployment
from repro.world import WorldBuilder


def pytest_configure(config):
    # CI's conservation-audit job runs the whole suite with REPRO_AUDIT=1:
    # force audit mode explicitly so every MetricsCollector the tests
    # build — even via cached env-independent paths — carries the packet
    # ledger and asserts conservation at quiescence.
    if os.environ.get("REPRO_AUDIT", "") not in ("", "0"):
        from repro.sim.trace import set_audit_default

        set_audit_default(True)


@pytest.fixture
def sim():
    return Simulator(seed=123)


@pytest.fixture
def line_network():
    """Five sensors in a line, gateway at the far end.

    Topology:  s0 - s1 - s2 - s3 - s4 - G   (spacing 10, range 12)
    so the only route from s0 is the 5-hop chain.
    """
    sensors = np.array([[float(10 * i), 0.0] for i in range(5)])
    gateway = np.array([[50.0, 0.0]])
    return build_sensor_network(sensors, gateway, comm_range=12.0)


@pytest.fixture
def line_setup(sim, line_network):
    world = WorldBuilder().simulator(sim).network(line_network).ideal_radio().build()
    return sim, line_network, world.channel


@pytest.fixture
def grid_network():
    """A 5x5 sensor grid with gateways at two opposite corners."""
    sensors = grid_deployment(5, 5, spacing=10.0)
    gateways = np.array([[-10.0, 0.0], [50.0, 40.0]])
    return build_sensor_network(sensors, gateways, comm_range=14.5)


@pytest.fixture
def grid_setup(sim, grid_network):
    world = WorldBuilder().simulator(sim).network(grid_network).ideal_radio().build()
    return sim, grid_network, world.channel
