"""Protocol tests for SecMLR (Section 6.2): crypto enforcement end to end."""

import numpy as np
import pytest

from repro.core.base import ProtocolConfig
from repro.core.secmlr import ENVELOPE_BYTES, SecMLR
from repro.exceptions import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.mobility import FeasiblePlaces, GatewaySchedule
from repro.sim.network import build_sensor_network, grid_deployment
from repro.sim.packet import Packet, PacketKind
from repro.sim.radio import IEEE802154, Channel
from repro.sim.trace import MetricsCollector


@pytest.fixture
def sec_world():
    sensors = grid_deployment(4, 4, spacing=10.0)
    places = FeasiblePlaces.from_mapping({
        "A": (-10.0, 0.0),
        "B": (40.0, 30.0),
        "C": (-10.0, 30.0),
    })
    gw = np.array([places.position("A"), places.position("B")])
    net = build_sensor_network(sensors, gw, comm_range=14.5)
    g0, g1 = net.gateway_ids
    schedule = GatewaySchedule(places=places, rounds=[
        {g0: "A", g1: "B"},
        {g0: "C", g1: "B"},
    ])
    sim = Simulator(seed=13)
    ch = Channel(sim, net, IEEE802154.ideal(), metrics=MetricsCollector())
    proto = SecMLR(sim, net, ch, schedule, tesla_interval=0.25, tesla_lag=2)
    return sim, net, ch, proto


class TestHappyPath:
    def test_delivers_with_full_crypto(self, sec_world):
        sim, net, ch, proto = sec_world
        proto.start_round(0)
        for s in net.sensor_ids:
            sim.schedule(1.0 + s * 1e-3, proto.send_data, s)
        sim.run()
        assert ch.metrics.delivery_ratio == 1.0
        assert all(v == 0 for v in proto.security_rejections.values())

    def test_forwarding_entries_installed_along_path(self, sec_world):
        sim, net, ch, proto = sec_world
        proto.start_round(0)
        sim.schedule(1.0, proto.send_data, 15)  # far corner
        sim.run()
        entry = proto.tables[15].best(proto.active_keys(15))
        assert entry is not None
        for node in entry.path[:-1]:
            fe = proto.tables[node].match_forwarding(15, entry.key)
            assert fe is not None

    def test_rreq_carries_envelope_bytes(self, sec_world):
        sim, net, ch, proto = sec_world
        proto.start_round(0)
        targets = proto.discovery_targets(0)
        pkt = Packet(kind=PacketKind.RREQ, origin=0, target=None,
                     payload={"seq": 1, "targets": targets},
                     payload_bytes=8)
        before = pkt.size_bytes()
        pkt = proto.decorate_rreq(0, pkt, targets)
        assert pkt.size_bytes() == before + ENVELOPE_BYTES * len(targets)

    def test_sensors_never_answer_queries(self, sec_world):
        sim, net, ch, proto = sec_world
        assert proto._table_answer(0, {net.gateway_ids[0]: "A"}) is None


class TestCryptoEnforcement:
    def test_unsecured_rreq_rejected_at_gateway(self, sec_world):
        sim, net, ch, proto = sec_world
        proto.start_round(0)
        g = net.gateway_ids[0]
        pkt = Packet(kind=PacketKind.RREQ, origin=0, target=None,
                     payload={"seq": 99, "targets": {g: "A"}})
        assert not proto.gateway_accepts_rreq(g, pkt)
        assert proto.security_rejections["bad_mac"] == 1

    def test_spoofed_origin_rejected(self, sec_world):
        sim, net, ch, proto = sec_world
        proto.start_round(0)
        g = net.gateway_ids[0]
        targets = {g: "A"}
        pkt = Packet(kind=PacketKind.RREQ, origin=1, target=None,
                     payload={"seq": 5, "targets": targets})
        pkt = proto.decorate_rreq(1, pkt, targets)  # valid for node 1...
        forged = pkt.fork(origin=2)  # ...but the flood claims node 2
        assert not proto.gateway_accepts_rreq(g, forged)

    def test_replayed_data_rejected(self, sec_world):
        sim, net, ch, proto = sec_world
        proto.start_round(0)
        sim.schedule(1.0, proto.send_data, 0)
        sim.run()
        delivered = [r for r in ch.metrics.deliveries]
        assert delivered
        # Rebuild the exact accepted packet and replay it.
        g = delivered[0].destination
        entry = proto.tables[0].best(proto.active_keys(0))
        payload = {"data_id": delivered[0].uid, "bytes": 24}
        pkt = Packet(kind=PacketKind.DATA, origin=0, target=g,
                     payload={**payload, "key": entry.key, "traversed": [0]},
                     payload_bytes=24)
        # counter already consumed: a fresh decorate uses counter 1 (ok),
        # but replaying counter 0's envelope must fail. Craft it manually:
        from repro.security.crypto import compute_mac, encode_message, encrypt

        key = proto.keystore.pairwise_key(0, g)
        body = {"t": "data", "src": 0, "gw": g, "data_id": delivered[0].uid}
        ct = encrypt(key, 0, encode_message(body))
        pkt.payload["sec"] = {
            "ctr": 0, "ct": ct.hex(),
            "mac": compute_mac(key, 0, ct).hex(), "claimed": 0,
        }
        assert not proto.gateway_accepts_data(g, pkt)
        assert proto.security_rejections["replay"] >= 1

    def test_forged_rres_rejected_at_source(self, sec_world):
        sim, net, ch, proto = sec_world
        proto.start_round(0)
        g = net.gateway_ids[0]
        pkt = Packet(kind=PacketKind.RRES, origin=g, target=0,
                     path=(0, g), payload={"key": "A", "gw": g, "pos": 0, "seq": 1})
        assert not proto.source_accepts_rres(0, pkt)

    def test_altered_rres_path_detected(self, sec_world):
        sim, net, ch, proto = sec_world
        proto.start_round(0)
        g = net.gateway_ids[0]
        pkt = Packet(kind=PacketKind.RRES, origin=g, target=0,
                     path=(0, 1, g), payload={"key": "A", "gw": g, "pos": 2, "seq": 1})
        pkt = proto.decorate_rres(g, pkt, 0)
        tampered = pkt.fork(path=(0, g))  # shorten the path en route
        assert not proto.source_accepts_rres(0, tampered)
        assert proto.security_rejections["bad_rres"] >= 1

    def test_forged_notify_never_applied(self, sec_world):
        sim, net, ch, proto = sec_world
        proto.start_round(0)
        g = net.gateway_ids[0]
        forged = Packet(kind=PacketKind.NOTIFY, origin=g, target=None,
                        payload={"seq": 123456, "gw": g, "place": "C", "round": 0})
        # inject directly at a sensor
        proto._on_notify(5, forged)
        sim.run()
        assert proto.known[5][g] == "A"  # belief unchanged
        assert proto.security_rejections["bad_notify"] >= 1

    def test_genuine_notify_applied_after_disclosure(self, sec_world):
        sim, net, ch, proto = sec_world
        proto.start_round(0)
        sim.run(until=2.0)
        proto.start_round(1)  # g0 moves A -> C, authentic μTESLA NOTIFY
        g0 = net.gateway_ids[0]
        # before disclosure the belief is stale
        sim.run(until=2.0 + 0.25)  # less than lag * interval
        # after the disclosure flood everyone believes the move
        sim.run(until=2.0 + 3 * 0.25 + 0.5)
        stale = [s for s in net.sensor_ids if proto.known[s].get(g0) != "C"]
        assert not stale


class TestConfig:
    def test_requires_collect_timeout(self, sec_world):
        sim, net, ch, proto = sec_world
        with pytest.raises(ConfigurationError):
            SecMLR(sim, net, ch, proto.schedule,
                   config=ProtocolConfig(gateway_collect_timeout=0.0))
