"""Tests for the LP formulation of equations (1)-(6)."""

import numpy as np
import pytest

from repro.core.lifetime import LifetimeLP
from repro.exceptions import ConfigurationError
from repro.sim.network import build_sensor_network


def _line(n=4, battery=1.0):
    sensors = np.array([[10.0 * i, 0.0] for i in range(n)])
    return build_sensor_network(sensors, np.array([[10.0 * n, 0.0]]),
                                comm_range=12.0, sensor_battery=battery)


def _lp(net, et=1.0, er=0.5, rate=1.0):
    return LifetimeLP(net, et=et, er=er, generation_rate=rate)


class TestMinEnergy:
    def test_line_flow_is_chain(self):
        net = _line(3)
        sol = _lp(net).solve_min_energy(minmax_stage=False)
        # every sensor forwards everything upstream of it:
        # flows: 0->1: 1, 1->2: 2, 2->G: 3
        g = net.gateway_ids[0]
        assert sol.flows[(0, 1)] == pytest.approx(1.0)
        assert sol.flows[(1, 2)] == pytest.approx(2.0)
        assert sol.flows[(2, g)] == pytest.approx(3.0)

    def test_line_energy_values(self):
        net = _line(3)
        sol = _lp(net).solve_min_energy(minmax_stage=False)
        # node 2 transmits 3 packets (et=1) and receives 2 (er=0.5)
        assert sol.node_energy[2] == pytest.approx(3.0 + 1.0)
        assert sol.node_energy[0] == pytest.approx(1.0)

    def test_total_energy_is_hopcount_weighted(self):
        net = _line(3)
        sol = _lp(net).solve_min_energy(minmax_stage=False)
        # total tx = sum of hop counts = 3+2+1 = 6; total rx = 3 (only
        # sensor-to-sensor receptions: 1+2)... rx on gateway is free.
        assert sol.total_energy == pytest.approx(6 * 1.0 + 3 * 0.5)

    def test_minmax_stage_never_increases_total_much(self):
        net = _line(4)
        plain = _lp(net).solve_min_energy(minmax_stage=False)
        balanced = _lp(net).solve_min_energy(minmax_stage=True, tolerance=1e-6)
        assert balanced.total_energy <= plain.total_energy * (1 + 1e-3)
        assert balanced.max_energy <= plain.max_energy + 1e-9

    def test_two_gateways_halve_the_chain(self):
        sensors = np.array([[10.0 * i, 0.0] for i in range(4)])
        net = build_sensor_network(
            sensors, np.array([[-10.0, 0.0], [40.0, 0.0]]), comm_range=12.0
        )
        sol = _lp(net).solve_min_energy(minmax_stage=False)
        # nobody should forward more than 2 packets
        assert sol.max_energy <= 2 * 1.0 + 1 * 0.5 + 1e-9


class TestMaxLifetime:
    def test_bottleneck_sets_lifetime(self):
        net = _line(3, battery=10.0)
        sol = _lp(net).solve_max_lifetime(battery=10.0)
        # node 2 spends 4 J per round (see above): lifetime = 10/4
        assert sol.objective == pytest.approx(2.5, rel=1e-6)

    def test_lifetime_scales_with_battery(self):
        net = _line(3)
        a = _lp(net).solve_max_lifetime(battery=1.0).objective
        b = _lp(net).solve_max_lifetime(battery=2.0).objective
        assert b == pytest.approx(2 * a, rel=1e-6)

    def test_multi_gateway_extends_lifetime(self):
        line = _line(4)
        single = _lp(line).solve_max_lifetime(battery=1.0).objective
        sensors = np.array([[10.0 * i, 0.0] for i in range(4)])
        dual = build_sensor_network(
            sensors, np.array([[-10.0, 0.0], [40.0, 0.0]]), comm_range=12.0
        )
        double = _lp(dual).solve_max_lifetime(battery=1.0).objective
        assert double > single

    def test_invalid_battery(self):
        with pytest.raises(ConfigurationError):
            _lp(_line(3)).solve_max_lifetime(battery=0.0)


class TestValidation:
    def test_requires_positive_et(self):
        with pytest.raises(ConfigurationError):
            LifetimeLP(_line(3), et=0.0, er=0.1)

    def test_rate_vector_length_checked(self):
        with pytest.raises(ConfigurationError):
            LifetimeLP(_line(3), et=1.0, er=0.5, generation_rate=[1.0, 2.0])

    def test_per_sensor_rates(self):
        net = _line(3)
        lp = LifetimeLP(net, et=1.0, er=0.5, generation_rate=[2.0, 0.0, 0.0])
        sol = lp.solve_min_energy(minmax_stage=False)
        g = net.gateway_ids[0]
        assert sol.flows[(2, g)] == pytest.approx(2.0)
