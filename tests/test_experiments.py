"""Fast smoke + shape tests for every experiment driver (E1-E11).

The benchmarks run the experiments at paper scale; these tests run them
at reduced scale so the full suite stays quick, checking API contracts
and the invariants that must hold at any scale.
"""

import pytest

from repro.experiments import (
    run_architecture,
    run_attack_matrix,
    run_fig2,
    run_gateway_count,
    run_lifetime_comparison,
    run_lp_bound,
    run_mobility_overhead,
    run_robustness,
    run_scalability,
    run_security_overhead,
    run_table1,
)


class TestExactReproductions:
    def test_fig2_exact(self):
        result = run_fig2()
        assert result.matches_paper
        assert "24" in result.format_table()

    def test_table1_exact(self):
        result = run_table1()
        assert result.matches_paper
        assert "selected" in result.format_table()


class TestArchitecture:
    def test_small_run(self):
        r = run_architecture(n_sensors=30, field_size=220.0, packets_per_sensor=1)
        assert r.generated == 30
        assert r.delivery_ratio > 0.8
        assert r.mean_end_to_end_latency > 0
        assert "802.15.4" in r.format_table()


class TestScalability:
    def test_two_sizes(self):
        r = run_scalability(sizes=(50, 100), rounds=1)
        assert len(r.rows) == 2
        for row in r.rows:
            assert row.multi_hops <= row.single_hops
        assert "E4" in r.format_table()


class TestLifetime:
    def test_reduced(self):
        r = run_lifetime_comparison(
            n_sensors=30, field_size=160.0, battery=0.01, max_rounds=20,
            protocols=("SPR", "flat-1-sink"),
        )
        assert set(r.results) == {"SPR", "flat-1-sink"}
        assert r.lifetime_rounds("SPR") >= r.lifetime_rounds("flat-1-sink")
        assert "lifetime" in r.format_table()


class TestGatewayCount:
    def test_reduced(self):
        r = run_gateway_count(ks=(1, 3), n_sensors=40, field_size=180.0,
                              battery=0.015, max_rounds=25)
        assert r.kmax >= 1
        assert r.lifetime_series[1] >= r.lifetime_series[0]
        assert r.rows[1].mean_hops_measured <= r.rows[0].mean_hops_measured


class TestSecurityOverhead:
    def test_reduced(self):
        r = run_security_overhead(n_sensors=30, field_size=160.0, rounds=3)
        assert r.byte_overhead > 0
        assert r.secmlr.delivery_ratio > 0.9
        assert "overhead" in r.format_table()


class TestAttackMatrix:
    def test_single_cells(self):
        r = run_attack_matrix(
            attacks=("none", "hello_flood"), protocols=("MLR", "SecMLR"),
            n_sensors=30, field_size=160.0, rounds=3,
        )
        assert len(r.cells) == 4
        assert r.cell("hello_flood", "MLR").delivery_ratio < r.cell("none", "MLR").delivery_ratio
        assert r.cell("hello_flood", "SecMLR").rejected > 0
        with pytest.raises(KeyError):
            r.cell("nope", "MLR")


class TestRobustness:
    def test_single_sink_dies_with_sink(self):
        r = run_robustness(n_sensors=35, field_size=170.0)
        flat = r.row_for("gateway", "flat-1-sink")
        assert flat.delivery_after < 0.05
        multi = r.row_for("gateway", "SPR-3-gw")
        assert multi.delivery_after > 0.5
        assert "E9" in r.format_table()


class TestMobilityOverhead:
    def test_accumulation_beats_reset(self):
        r = run_mobility_overhead(n_sensors=30, field_size=150.0, rounds=6,
                                  comm_range=55.0, variants=("MLR", "MLR-reset"))
        assert r.total_control_frames("MLR") < r.total_control_frames("MLR-reset")
        tail = r.per_round_control_frames["MLR"][-1]
        head = r.per_round_control_frames["MLR"][0]
        assert tail < head


class TestLpBound:
    def test_bound_holds(self):
        r = run_lp_bound(n_sensors=25, field_size=150.0, battery=0.03, max_rounds=60)
        assert r.mlr_lifetime_rounds <= r.lp_lifetime_rounds * 1.01
        assert 0 < r.optimality_ratio <= 1.01
        assert "LP" in r.format_table()
