"""The shared benchmark record writer is crash-safe and schema-checked.

``benchmarks/_record.py`` is a script-side helper (the ``benchmarks/``
directory is not a package), so it is loaded here by file path.  The
load-bearing regression: :func:`write_bench` must replace the committed
``BENCH_*.json`` atomically — a write that dies mid-serialization leaves
the prior record byte-identical and no ``.tmp.*`` litter behind.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_RECORD_PY = Path(__file__).resolve().parent.parent / "benchmarks" / "_record.py"


@pytest.fixture(scope="module")
def record_mod():
    spec = importlib.util.spec_from_file_location("bench_record", _RECORD_PY)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _record(record_mod, **extra):
    return record_mod.bench_record(
        config={"n": 1}, legs={"a": {"wall_clock_s": 0.5}},
        digest={"run_digest": "d"}, speedup=1.0, **extra,
    )


def test_write_then_rewrite_shifts_history(record_mod, tmp_path):
    path = str(tmp_path / "BENCH_x.json")
    record_mod.write_bench("x", _record(record_mod, cpu_count=2), path=path)
    record_mod.write_bench("x", _record(record_mod, cpu_count=4), path=path)
    got = json.loads(Path(path).read_text())
    assert got["cpu_count"] == 4
    assert len(got["history"]) == 1
    assert got["history"][0]["cpu_count"] == 2
    assert "history" not in got["history"][0]  # no nesting


def test_failed_write_leaves_prior_record_intact(record_mod, tmp_path):
    """An unserializable record cannot clobber the committed file."""
    path = tmp_path / "BENCH_x.json"
    record_mod.write_bench("x", _record(record_mod), path=str(path))
    before = path.read_text()
    poisoned = _record(record_mod, bad=object())  # json.dumps raises
    with pytest.raises(TypeError):
        record_mod.write_bench("x", poisoned, path=str(path))
    assert path.read_text() == before  # old record untouched
    assert list(tmp_path.glob("*.tmp.*")) == []  # no temp litter


def test_missing_schema_key_is_rejected(record_mod, tmp_path):
    rec = _record(record_mod)
    del rec["digest"]
    with pytest.raises(ValueError, match="digest"):
        record_mod.write_bench("x", rec, path=str(tmp_path / "b.json"))
