"""Tests for the baseline protocols."""

import numpy as np
import pytest

from repro.baselines import (
    DirectTransmission,
    FlatSinkRouting,
    Flooding,
    Gossiping,
    LEACH,
    LeachConfig,
    MCFA,
)
from repro.exceptions import ConfigurationError, RoutingError
from repro.sim.engine import Simulator
from repro.sim.network import build_sensor_network
from repro.sim.radio import IEEE802154, Channel
from repro.sim.trace import MetricsCollector


def _world(gateways=1, seed=2, battery=float("inf")):
    sensors = np.array([[10.0 * i, 0.0] for i in range(5)])
    gpos = [[50.0, 0.0], [-10.0, 0.0]][:gateways]
    net = build_sensor_network(sensors, np.array(gpos), comm_range=12.0,
                               sensor_battery=battery)
    sim = Simulator(seed=seed)
    ch = Channel(sim, net, IEEE802154.ideal(), metrics=MetricsCollector())
    return sim, net, ch


class TestFlat:
    def test_rejects_multiple_sinks(self):
        sim, net, ch = _world(gateways=2)
        with pytest.raises(ConfigurationError):
            FlatSinkRouting(sim, net, ch)

    def test_sink_property(self):
        sim, net, ch = _world()
        flat = FlatSinkRouting(sim, net, ch)
        assert flat.sink == net.gateway_ids[0]


class TestFlooding:
    def test_delivers_with_min_hops(self):
        sim, net, ch = _world()
        fl = Flooding(sim, net, ch)
        fl.send_data(0)
        sim.run()
        assert ch.metrics.delivery_ratio == 1.0
        assert ch.metrics.deliveries[0].hops == 5

    def test_every_node_rebroadcasts_once(self):
        sim, net, ch = _world()
        fl = Flooding(sim, net, ch)
        fl.send_data(0)
        sim.run()
        from repro.sim.packet import PacketKind

        # 5 sensors each put the datum on the air exactly once
        assert ch.metrics.sent[PacketKind.DATA] == 5

    def test_ttl_limits_reach(self):
        sim, net, ch = _world()
        fl = Flooding(sim, net, ch, max_hops=2)
        fl.send_data(0)
        sim.run()
        assert ch.metrics.delivery_ratio == 0.0
        assert ch.metrics.drops["ttl"] >= 1

    def test_gateway_required(self):
        sensors = np.array([[0.0, 0.0]])
        net = build_sensor_network(sensors, np.empty((0, 2)), comm_range=5.0)
        sim = Simulator(seed=1)
        ch = Channel(sim, net, IEEE802154.ideal())
        with pytest.raises(RoutingError):
            Flooding(sim, net, ch)


class TestGossiping:
    def test_line_walk_delivers(self):
        # On a line the walk can only go left/right; generous TTL delivers.
        sim, net, ch = _world()
        g = Gossiping(sim, net, ch, max_hops=500)
        for k in range(5):
            sim.schedule(k * 1.0, g.send_data, 0)
        sim.run()
        assert ch.metrics.delivery_ratio > 0.5

    def test_single_frame_per_hop(self):
        sim, net, ch = _world()
        g = Gossiping(sim, net, ch, max_hops=100)
        g.send_data(4)  # adjacent to gateway: may still wander
        sim.run()
        from repro.sim.packet import PacketKind

        flooding_cost = 5
        assert ch.metrics.sent[PacketKind.DATA] >= 1


class TestMCFA:
    def test_costs_match_bfs(self):
        sim, net, ch = _world()
        m = MCFA(sim, net, ch)
        m.setup()
        sim.run()
        truth = net.hops_to(net.gateway_ids)
        for s in net.sensor_ids:
            assert m.cost[s] == truth[s]

    def test_forwarding_rolls_downhill(self):
        sim, net, ch = _world()
        m = MCFA(sim, net, ch)
        m.setup()
        sim.run()
        m.send_data(0)
        sim.run()
        assert ch.metrics.delivery_ratio == 1.0
        assert ch.metrics.deliveries[0].hops == 5

    def test_send_before_setup_rejected(self):
        sim, net, ch = _world()
        m = MCFA(sim, net, ch)
        with pytest.raises(RoutingError):
            m.send_data(0)

    def test_multi_gateway_cost_is_min(self):
        sim, net, ch = _world(gateways=2)
        m = MCFA(sim, net, ch)
        m.setup()
        sim.run()
        # node 2 is 3 hops from either gateway; node 0 is 1 from gw B
        assert m.cost[0] == 1
        assert m.cost[2] == 3


class TestDirect:
    def test_one_hop_delivery_with_distance_cost(self):
        sim, net, ch = _world()
        d = DirectTransmission(sim, net, ch)
        d.send_data(0)  # 50 m from the sink
        d.send_data(4)  # 10 m from the sink
        sim.run()
        assert ch.metrics.delivery_ratio == 1.0
        assert all(r.hops == 1 for r in ch.metrics.deliveries)
        # the far node paid much more energy than the near node
        assert net.nodes[0].energy.spent > net.nodes[4].energy.spent


class TestLEACH:
    def _leach_world(self, n=30, battery=1.0, seed=4):
        rng = np.random.default_rng(seed)
        sensors = rng.uniform(0, 100, size=(n, 2))
        net = build_sensor_network(sensors, np.array([[50.0, 175.0]]),
                                   comm_range=30.0, sensor_battery=battery)
        sim = Simulator(seed=seed)
        ch = Channel(sim, net, IEEE802154.ideal(), metrics=MetricsCollector())
        return sim, net, ch

    def test_heads_elected_and_rotated(self):
        sim, net, ch = self._leach_world()
        leach = LEACH(sim, net, ch, LeachConfig(head_fraction=0.2))
        served = set()
        for r in range(10):
            leach.start_round(r)
            served.update(leach.heads)
        assert served  # someone served
        # rotation: more distinct heads than any single round's head count
        assert len(served) >= max(1, len(leach.heads))

    def test_members_join_nearest_head(self):
        sim, net, ch = self._leach_world()
        leach = LEACH(sim, net, ch, LeachConfig(head_fraction=0.3))
        leach.start_round(0)
        for s, h in leach.cluster_of.items():
            best = min(leach.heads, key=lambda x: net.distance(s, x))
            assert h == best

    def test_data_flows_through_heads(self):
        sim, net, ch = self._leach_world()
        leach = LEACH(sim, net, ch)
        leach.start_round(0)
        for s in net.sensor_ids:
            leach.send_data(s)
        leach.flush_round()
        assert ch.metrics.delivery_ratio == 1.0

    def test_heads_pay_aggregation_and_uplink(self):
        sim, net, ch = self._leach_world()
        leach = LEACH(sim, net, ch, LeachConfig(head_fraction=0.15))
        leach.start_round(0)
        for s in net.sensor_ids:
            leach.send_data(s)
        leach.flush_round()
        if leach.heads:
            head = max(leach.heads, key=lambda h: net.nodes[h].energy.spent)
            member = max(
                (s for s in net.sensor_ids if s not in leach.heads),
                key=lambda s: net.nodes[s].energy.spent,
            )
            assert net.nodes[head].energy.spent > net.nodes[member].energy.spent

    def test_invalid_head_fraction(self):
        with pytest.raises(ConfigurationError):
            LeachConfig(head_fraction=0.0)
