"""Data-plane repair path: repair exhaustion, repair opt-out, dead-source RERR.

All three scenarios run on the deterministic line fixture
(s0 - s1 - s2 - s3 - s4 - G, ideal radio), where the only route is the
chain, so every repair outcome is forced.
"""

import numpy as np
import pytest

from repro.core.base import ProtocolConfig
from repro.core.spr import SPR
from repro.world import WorldBuilder


def _line_world(config=None):
    sensors = np.array([[float(10 * i), 0.0] for i in range(5)])
    world = (
        WorldBuilder()
        .seed(11)
        .sensors(sensors)
        .gateways([[50.0, 0.0]])
        .comm_range(12.0)
        .ideal_radio()
        .build()
    )
    spr = world.attach(SPR, config) if config is not None else world.attach(SPR)
    return world, spr


def _establish_route(world, spr, source=0):
    spr.send_data(source)
    world.sim.run()
    assert world.metrics.deliveries, "setup: first datum must deliver"


class TestRepairExhaustion:
    def test_max_repairs_per_packet_bounds_the_repair_loop(self):
        # s1 keeps a stale table entry through dead s2 and keeps answering
        # discoveries with it, so every repair re-installs a broken route:
        # the packet must be abandoned after max_repairs_per_packet tries.
        config = ProtocolConfig(max_repairs_per_packet=2)
        world, spr = _line_world(config)
        _establish_route(world, spr)

        world.network.nodes[2].fail()
        delivered_before = len(world.metrics.deliveries)
        spr.send_data(0)
        world.sim.run()

        assert len(world.metrics.deliveries) == delivered_before
        assert world.metrics.drops.get("unrepairable", 0) >= 1
        # Each failed attempt is detected at s1 as a dead next hop.
        assert world.metrics.drops.get("dead_next_hop", 0) >= config.max_repairs_per_packet

    def test_successful_repair_redirects_within_budget(self):
        # A diamond: s0 reaches the gateway through s1 or s2.  Killing s1
        # after routes settle must reroute via s2 within one repair.
        sensors = np.array([[0.0, 0.0], [10.0, 6.0], [10.0, -6.0]])
        world = (
            WorldBuilder()
            .seed(5)
            .sensors(sensors)
            .gateways([[20.0, 0.0]])
            .comm_range(13.0)
            .ideal_radio()
            .build()
        )
        spr = world.attach(SPR)
        _establish_route(world, spr)

        # s0's installed route goes through one arm; kill that arm.
        entry = spr.routing_table(0).best(None)
        broken_arm = entry.path[1]
        world.network.nodes[broken_arm].fail()
        delivered_before = len(world.metrics.deliveries)
        spr.send_data(0)
        world.sim.run()

        assert len(world.metrics.deliveries) == delivered_before + 1
        assert world.metrics.drops.get("unrepairable", 0) == 0


class TestRepairOptOut:
    def test_repair_routes_false_drops_without_rerr(self):
        config = ProtocolConfig(repair_routes=False)
        world, spr = _line_world(config)
        _establish_route(world, spr)

        world.network.nodes[2].fail()
        delivered_before = len(world.metrics.deliveries)
        s0_entry_before = spr.routing_table(0).best(None)
        spr.send_data(0)
        world.sim.run()

        assert len(world.metrics.deliveries) == delivered_before
        assert world.metrics.drops.get("dead_next_hop", 0) >= 1
        # No RERR means the source never learns: its stale entry survives.
        assert spr.routing_table(0).best(None) == s0_entry_before
        assert world.metrics.drops.get("unrepairable", 0) == 0


class TestDeadSourceRerr:
    def test_rerr_toward_dead_source_purges_tables_and_drops(self):
        world, spr = _line_world()
        _establish_route(world, spr)

        # Second datum leaves s0 from tables (no source route), then both
        # the source and a downstream hop die while it is in flight: s2
        # detects the dead s3 and sends the RERR back, but the hop-back at
        # s1 finds the source gone.
        spr.send_data(0)
        world.sim.schedule(1e-6, world.network.nodes[0].fail)
        world.sim.schedule(1e-6, world.network.nodes[3].fail)
        world.sim.run()

        key = world.network.gateway_ids[0]
        # s1 purged its entry while relaying the RERR (Property-1 tables
        # must stop advertising the broken segment) ...
        assert spr.routing_table(1).get(key) is None
        # ... and the RERR itself dies at s1 because s0 is unreachable.
        assert world.metrics.drops.get("unrepairable", 0) == 1

    def test_rerr_detector_is_source(self):
        # The degenerate repair: the source itself sees the dead next hop.
        # No RERR frame is needed — the source redirects locally.
        world, spr = _line_world()
        _establish_route(world, spr)

        world.network.nodes[1].fail()
        spr.send_data(0)
        world.sim.run()

        # The chain is the only route, so redirection ends in no_route —
        # but the broken entry must be gone from the source's table.
        key = world.network.gateway_ids[0]
        assert spr.routing_table(0).get(key) is None
        assert world.metrics.drops.get("dead_next_hop", 0) >= 1


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
