"""Unit tests for feasible places and gateway schedules."""

import pytest

from repro.exceptions import ConfigurationError
from repro.sim.mobility import FeasiblePlaces, GatewaySchedule

PLACES = FeasiblePlaces.from_mapping({
    "A": (0.0, 0.0), "B": (10.0, 0.0), "C": (0.0, 10.0),
    "D": (10.0, 10.0), "E": (5.0, 5.0),
})


class TestFeasiblePlaces:
    def test_mapping_roundtrip(self):
        assert PLACES.position("B") == (10.0, 0.0)
        assert len(PLACES) == 5
        assert "C" in PLACES and "Z" not in PLACES

    def test_unknown_place(self):
        with pytest.raises(ConfigurationError):
            PLACES.position("Z")

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ConfigurationError):
            FeasiblePlaces(labels=("A", "A"), coordinates=((0, 0), (1, 1)))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            FeasiblePlaces(labels=("A",), coordinates=((0, 0), (1, 1)))


class TestGatewaySchedule:
    def test_explicit_schedule(self):
        s = GatewaySchedule(places=PLACES, rounds=[{1: "A", 2: "B"}, {1: "C", 2: "B"}])
        assert s.num_rounds == 2
        assert s.assignment(1) == {1: "C", 2: "B"}

    def test_moved_gateways(self):
        s = GatewaySchedule(places=PLACES, rounds=[{1: "A", 2: "B"}, {1: "C", 2: "B"}])
        assert s.moved_gateways(0) == {1: "A", 2: "B"}  # round 0: everyone
        assert s.moved_gateways(1) == {1: "C"}  # only the mover

    def test_places_covered_by(self):
        s = GatewaySchedule(places=PLACES, rounds=[{1: "A"}, {1: "B"}, {1: "A"}])
        assert s.places_covered_by(0) == {"A"}
        assert s.places_covered_by(2) == {"A", "B"}

    def test_shared_place_rejected(self):
        with pytest.raises(ConfigurationError):
            GatewaySchedule(places=PLACES, rounds=[{1: "A", 2: "A"}])

    def test_unknown_place_rejected(self):
        with pytest.raises(ConfigurationError):
            GatewaySchedule(places=PLACES, rounds=[{1: "Z"}])


class TestRotatingGenerator:
    def test_shape_and_validity(self):
        s = GatewaySchedule.rotating(PLACES, [10, 11], num_rounds=12, seed=0)
        assert s.num_rounds == 12
        for r in range(12):
            a = s.assignment(r)
            assert set(a) == {10, 11}
            assert len(set(a.values())) == 2

    def test_eventually_covers_all_places(self):
        s = GatewaySchedule.rotating(PLACES, [10, 11], num_rounds=12, seed=0)
        assert s.places_covered_by(11) == set(PLACES.labels)

    def test_deterministic(self):
        a = GatewaySchedule.rotating(PLACES, [1, 2], num_rounds=6, seed=5)
        b = GatewaySchedule.rotating(PLACES, [1, 2], num_rounds=6, seed=5)
        assert a.rounds == b.rounds

    def test_move_rate(self):
        s = GatewaySchedule.rotating(PLACES, [1, 2], num_rounds=8, seed=1)
        for r in range(1, 8):
            assert len(s.moved_gateways(r)) <= 1

    def test_more_gateways_than_places_rejected(self):
        with pytest.raises(ConfigurationError):
            GatewaySchedule.rotating(PLACES, list(range(6)), num_rounds=2)

    def test_nonpositive_rounds_rejected(self):
        with pytest.raises(ConfigurationError):
            GatewaySchedule.rotating(PLACES, [1], num_rounds=0)
