"""Property-based tests (hypothesis) for core data structures and invariants."""


import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.stats import jain_fairness
from repro.core.routing_table import RouteEntry, RoutingTable
from repro.security.crypto import (
    CounterState,
    compute_mac,
    decode_message,
    decrypt,
    derive_key,
    encode_message,
    encrypt,
    verify_mac,
)
from repro.security.tesla import TeslaBroadcaster, TeslaReceiver
from repro.sim.energy import EnergyAccount, EnergyModel
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.node import NodeKind

KEY = derive_key(b"prop-master", "k")


# ----------------------------------------------------------------------
# crypto
# ----------------------------------------------------------------------
@given(st.binary(max_size=512), st.integers(min_value=0, max_value=2**60))
def test_encrypt_roundtrip(plaintext, counter):
    assert decrypt(KEY, counter, encrypt(KEY, counter, plaintext)) == plaintext


@given(st.binary(min_size=1, max_size=128), st.integers(min_value=0, max_value=2**32))
def test_ciphertext_never_equals_nonempty_plaintext_under_other_counter(data, counter):
    ct = encrypt(KEY, counter, data)
    assert decrypt(KEY, counter + 1, ct) != data or len(set(data)) <= 1


@given(st.binary(max_size=256), st.integers(min_value=0, max_value=2**40))
def test_mac_verifies_and_rejects_bitflips(data, counter):
    tag = compute_mac(KEY, counter, data)
    assert verify_mac(KEY, counter, data, tag)
    if data:
        flipped = bytes([data[0] ^ 1]) + data[1:]
        assert not verify_mac(KEY, counter, flipped, tag)


_json_scalars = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**31),
    st.text(max_size=20),
    st.booleans(),
    st.none(),
)


@given(st.dictionaries(st.text(max_size=10), _json_scalars, max_size=8))
def test_encode_message_canonical_and_invertible(msg):
    blob = encode_message(msg)
    assert decode_message(blob) == msg
    assert encode_message(decode_message(blob)) == blob


@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=200))
def test_counter_accepts_strictly_increasing_prefix(counters):
    cs = CounterState()
    seen = -1
    for c in counters:
        accepted = cs.accept("p", c)
        if c > seen and c - seen <= cs.window:
            assert accepted
            seen = c
        else:
            assert not accepted


# ----------------------------------------------------------------------
# μTESLA
# ----------------------------------------------------------------------
@given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=30))
@settings(max_examples=25)
def test_tesla_chain_consistency(i, j):
    tx = TeslaBroadcaster(1, b"s", chain_length=32, interval=1.0)
    lo, hi = min(i, j), max(i, j)
    probe = tx.key_for_interval(hi)
    import hashlib

    for _ in range(hi - lo):
        probe = hashlib.sha256(probe).digest()
    assert probe == tx.key_for_interval(lo)


@given(st.integers(min_value=1, max_value=20))
@settings(max_examples=25)
def test_tesla_receiver_accepts_any_interval_message(interval):
    tx = TeslaBroadcaster(1, b"s", chain_length=32, interval=1.0, disclosure_lag=2)
    rx = TeslaReceiver(tx.commitment, interval=1.0, disclosure_lag=2)
    msg = tx.authenticate({"v": interval}, now=interval + 0.5)
    assert rx.receive(msg, arrival_time=interval + 0.6)
    released = rx.disclose(msg.interval, tx.key_for_interval(msg.interval))
    assert released == [{"v": interval}]


# ----------------------------------------------------------------------
# energy model
# ----------------------------------------------------------------------
@given(
    st.integers(min_value=0, max_value=10**6),
    st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
)
def test_tx_cost_nonnegative_and_monotone_in_distance(bits, d):
    m = EnergyModel()
    cost = m.tx_cost(bits, d)
    assert cost >= 0.0
    assert m.tx_cost(bits, d + 1.0) >= cost


@given(st.lists(st.floats(min_value=0, max_value=0.2, allow_nan=False), min_size=1, max_size=50))
def test_energy_account_conservation(charges):
    acc = EnergyAccount(capacity=1.0)
    for i, c in enumerate(charges):
        acc.charge_tx(c, now=float(i))
    if acc.alive:
        assert acc.remaining == pytest.approx(1.0 - sum(charges))
        assert acc.spent == pytest.approx(sum(charges))
    else:
        assert acc.remaining == 0.0


# ----------------------------------------------------------------------
# simulator
# ----------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), max_size=60))
def test_events_always_fire_in_nondecreasing_time(delays):
    sim = Simulator(seed=1)
    times = []
    for d in delays:
        sim.schedule(d, lambda: times.append(sim.now))
    sim.run()
    assert times == sorted(times)
    assert len(times) == len(delays)


# ----------------------------------------------------------------------
# network / topology
# ----------------------------------------------------------------------
@given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=30, deadline=None)
def test_neighbor_relation_symmetric_and_irreflexive(n, seed):
    rng = np.random.default_rng(seed)
    pos = rng.uniform(0, 100, size=(n, 2))
    net = Network(pos, [NodeKind.SENSOR] * n, comm_range=30.0)
    for i in range(n):
        nbrs = set(int(x) for x in net.neighbors(i))
        assert i not in nbrs
        for j in nbrs:
            assert i in set(int(x) for x in net.neighbors(j))


# ----------------------------------------------------------------------
# routing table
# ----------------------------------------------------------------------
_paths = st.lists(
    st.integers(min_value=1, max_value=100), min_size=1, max_size=8, unique=True
).map(lambda tail: (0, *tail))


@given(st.lists(_paths, min_size=1, max_size=20))
def test_best_entry_is_minimum_hops(paths):
    t = RoutingTable(owner=0)
    for k, p in enumerate(paths):
        t.install(RouteEntry(key=f"K{k}", gateway=p[-1], path=p))
    best = t.best()
    assert best is not None
    assert best.hops == min(len(p) - 1 for p in paths)


@given(_paths)
def test_every_suffix_is_consistent(path):
    e = RouteEntry(key="A", gateway=path[-1], path=path)
    for node in path:
        s = e.suffix_from(node)
        assert s.path[0] == node and s.path[-1] == e.gateway
        assert s.hops <= e.hops


@given(st.lists(_paths, min_size=2, max_size=10))
def test_replace_worse_only_never_increases_hops(paths):
    t = RoutingTable(owner=0)
    best_hops = None
    for p in paths:
        t.install(RouteEntry(key="K", gateway=p[-1], path=p), replace_worse_only=True)
        hops = t.get("K").hops
        if best_hops is not None:
            assert hops <= best_hops
        best_hops = hops


# ----------------------------------------------------------------------
# analysis
# ----------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=100))
def test_jain_fairness_bounded(values):
    f = jain_fairness(values)
    assert 0.0 <= f <= 1.0 + 1e-9
