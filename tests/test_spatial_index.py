"""Equivalence suite: incremental grid spatial index vs brute-force reference.

The grid index (``Network(index="grid")``) must be *indistinguishable*
from the dense reference (``index="bruteforce"``) on every observable:
neighbor arrays (values, order, dtype-insensitive), patched graphs after
moves/deaths/recoveries, CSR multi-source-BFS hop counts vs networkx, and
— because neighbor iteration order feeds the channel's RNG draws — whole
simulations must be bit-identical under either index.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.base import ProtocolConfig
from repro.core.spr import SPR
from repro.exceptions import ConfigurationError
from repro.sim.network import Network, build_sensor_network
from repro.sim.node import NodeKind
from repro.sim.spatial import CellGrid
from repro.world import WorldBuilder

COMM_RANGE = 30.0
FIELD = 100.0


def _kinds(n):
    return [NodeKind.SENSOR] * (n - 1) + [NodeKind.GATEWAY]


def _pair(pos, comm_range=COMM_RANGE):
    """The same deployment under both index implementations."""
    kinds = _kinds(len(pos))
    return (
        Network(pos, kinds, comm_range=comm_range, index="grid"),
        Network(pos, kinds, comm_range=comm_range, index="bruteforce"),
    )


def _positions(n, seed, field=FIELD):
    rng = np.random.default_rng(seed)
    return rng.uniform(0, field, size=(n, 2))


def assert_same_neighbors(grid_net, brute_net):
    assert len(grid_net) == len(brute_net)
    for i in range(len(grid_net)):
        g, b = grid_net.neighbors(i), brute_net.neighbors(i)
        assert np.array_equal(g, b), f"node {i}: grid {g} != brute {b}"


# ----------------------------------------------------------------------
# neighbor-set equivalence
# ----------------------------------------------------------------------
class TestNeighborEquivalence:
    @given(st.integers(min_value=2, max_value=60), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_rows_match_bruteforce(self, n, seed):
        grid_net, brute_net = _pair(_positions(n, seed))
        assert_same_neighbors(grid_net, brute_net)

    def test_exact_comm_range_is_a_link(self):
        # d == comm_range must be an edge under both indexes (closed ball).
        pos = np.array([[0.0, 0.0], [COMM_RANGE, 0.0], [2 * COMM_RANGE + 0.001, 0.0]])
        grid_net, brute_net = _pair(pos)
        assert list(grid_net.neighbors(0)) == [1]
        assert_same_neighbors(grid_net, brute_net)

    def test_nodes_on_cell_boundaries(self):
        # Coordinates at exact multiples of the cell side (== comm_range)
        # land on bucket boundaries; negative coordinates exercise floor
        # semantics below zero.
        r = COMM_RANGE
        pos = np.array([
            [0.0, 0.0], [r, 0.0], [2 * r, 0.0], [0.0, r], [r, r],
            [-r, 0.0], [-r, -r], [0.0, -r], [r / 2, r / 2],
        ])
        grid_net, brute_net = _pair(pos)
        assert_same_neighbors(grid_net, brute_net)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_quantized_positions(self, seed):
        # Positions snapped to multiples of comm_range/2 pile nodes onto
        # cell borders and at distances exactly equal to the range.
        rng = np.random.default_rng(seed)
        pos = rng.integers(-3, 4, size=(25, 2)).astype(float) * (COMM_RANGE / 2)
        grid_net, brute_net = _pair(pos)
        assert_same_neighbors(grid_net, brute_net)

    def test_grid_rejects_radius_beyond_cell(self):
        grid = CellGrid(np.zeros((2, 2)), cell_size=10.0)
        with pytest.raises(ConfigurationError):
            grid.neighbors_within(0, 10.5)

    def test_unknown_index_rejected(self):
        with pytest.raises(ConfigurationError):
            Network(np.zeros((2, 2)), [NodeKind.SENSOR] * 2, index="kdtree")


# ----------------------------------------------------------------------
# incremental moves
# ----------------------------------------------------------------------
class TestIncrementalMoves:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_random_move_sequence_matches_fresh_rebuild(self, seed):
        rng = np.random.default_rng(seed)
        pos = _positions(30, seed)
        grid_net, _ = _pair(pos)
        grid_net.neighbors(0)  # force the incremental path, not a rebuild
        for _ in range(8):
            mover = int(rng.integers(len(pos)))
            target = rng.uniform(-20, FIELD + 20, size=2)
            grid_net.move_node(mover, target)
            pos[mover] = target
            fresh = Network(pos, _kinds(len(pos)), comm_range=COMM_RANGE, index="bruteforce")
            assert_same_neighbors(grid_net, fresh)

    def test_move_round_trip_restores_rows(self):
        pos = _positions(25, seed=3)
        grid_net, _ = _pair(pos)
        before = [grid_net.neighbors(i).copy() for i in range(len(grid_net))]
        home = pos[24].copy()
        for step in ([5.0, 5.0], [95.0, 95.0], [-10.0, 50.0], home):
            grid_net.move_node(24, step)
        for i, row in enumerate(before):
            assert np.array_equal(grid_net.neighbors(i), row)

    def test_noop_move_keeps_edge_epoch(self):
        grid_net, _ = _pair(_positions(20, seed=1))
        grid_net.neighbors(0)
        epoch = grid_net.topology_epoch
        # A tiny jiggle that changes no neighbor set must not invalidate
        # CSR/graph caches (the epoch is the validity stamp).
        grid_net.move_node(0, grid_net.positions[0] + 1e-9)
        assert grid_net.topology_epoch == epoch

    def test_move_before_first_query_builds_lazily(self):
        pos = _positions(15, seed=2)
        grid_net, _ = _pair(pos)
        grid_net.move_node(3, [0.0, 0.0])  # no cache yet: nothing to patch
        pos[3] = [0.0, 0.0]
        fresh = Network(pos, _kinds(len(pos)), comm_range=COMM_RANGE, index="bruteforce")
        assert_same_neighbors(grid_net, fresh)

    def test_invalidate_escape_hatch(self):
        pos = _positions(15, seed=4)
        grid_net, _ = _pair(pos)
        grid_net.neighbors(0)
        grid_net.positions[:] = _positions(15, seed=5)  # wholesale rewrite
        grid_net.invalidate()
        fresh = Network(
            grid_net.positions, _kinds(len(pos)), comm_range=COMM_RANGE, index="bruteforce"
        )
        assert_same_neighbors(grid_net, fresh)


# ----------------------------------------------------------------------
# graph patching under moves and deaths
# ----------------------------------------------------------------------
def _graph_signature(g):
    return (set(g.nodes), {frozenset(e) for e in g.edges})


class TestGraphPatching:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_patched_graph_equals_rebuilt(self, seed):
        rng = np.random.default_rng(seed)
        pos = _positions(30, seed)
        grid_net, brute_net = _pair(pos)
        grid_net.graph()  # prime the cache so later queries are patches
        for _ in range(6):
            action = rng.integers(3)
            node = int(rng.integers(len(pos)))
            if action == 0:
                target = rng.uniform(0, FIELD, size=2)
                grid_net.move_node(node, target)
                brute_net.move_node(node, target)
            elif action == 1:
                grid_net.nodes[node].fail()
                brute_net.nodes[node].fail()
            else:
                grid_net.nodes[node].recover()
                brute_net.nodes[node].recover()
            assert _graph_signature(grid_net.graph()) == _graph_signature(brute_net.graph())
            assert _graph_signature(grid_net.graph(alive_only=False)) == _graph_signature(
                brute_net.graph(alive_only=False)
            )

    def test_patched_graph_is_same_object(self, line_network):
        g1 = line_network.graph()
        gw = line_network.gateway_ids[0]
        line_network.move_node(gw, (0.0, 10.0))
        g2 = line_network.graph()
        assert g2 is g1  # patched in place, not rebuilt
        assert g2.has_edge(0, gw) and not g2.has_edge(4, gw)

    def test_death_patches_alive_graph(self, line_network):
        g = line_network.graph()
        line_network.nodes[2].fail()
        assert 2 not in line_network.graph()
        line_network.nodes[2].recover()
        assert sorted(line_network.graph()[2]) == [1, 3]
        assert line_network.graph() is g

    def test_sleep_counts_as_not_alive(self, line_network):
        line_network.graph()
        line_network.nodes[1].sleeping = True
        assert 1 not in line_network.graph()
        line_network.nodes[1].sleeping = False
        assert 1 in line_network.graph()

    def test_battery_death_updates_mask(self):
        net = build_sensor_network(
            np.array([[0.0, 0.0], [10.0, 0.0]]), np.array([[20.0, 0.0]]),
            comm_range=12.0, sensor_battery=1.0,
        )
        net.graph()
        assert bool(net.alive_mask[0])
        net.nodes[0].energy.charge_tx(2.0, now=1.0)
        assert not bool(net.alive_mask[0])
        assert 0 not in net.graph()


# ----------------------------------------------------------------------
# hops_to: CSR BFS vs networkx
# ----------------------------------------------------------------------
class TestHopsEquivalence:
    @given(st.integers(min_value=5, max_value=50), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_hops_match_networkx(self, n, seed):
        rng = np.random.default_rng(seed)
        pos = _positions(n, seed)
        grid_net, brute_net = _pair(pos)
        kills = rng.choice(n, size=min(3, n - 1), replace=False)
        for k in kills:
            grid_net.nodes[int(k)].fail()
            brute_net.nodes[int(k)].fail()
        targets = grid_net.gateway_ids + [int(kills[0])]
        assert grid_net.hops_to(targets) == brute_net.hops_to(targets)
        assert grid_net.hops_to(targets, alive_only=False) == brute_net.hops_to(
            targets, alive_only=False
        )

    def test_hops_after_moves(self, line_network):
        # line_network uses the default grid index; a brute twin is the oracle.
        brute = build_sensor_network(
            np.array([[float(10 * i), 0.0] for i in range(5)]),
            np.array([[50.0, 0.0]]), comm_range=12.0, index="bruteforce",
        )
        gw = line_network.gateway_ids[0]
        line_network.hops_to([gw])
        for target in ([0.0, 10.0], [25.0, 5.0], [50.0, 0.0]):
            line_network.move_node(gw, target)
            brute.move_node(gw, target)
            assert line_network.hops_to([gw]) == brute.hops_to([gw])

    def test_empty_and_invalid_targets(self, line_network):
        assert line_network.hops_to([]) == {}
        assert line_network.hops_to([99, -1]) == {}
        line_network.nodes[5].fail()
        assert line_network.hops_to([5]) == {}  # dead target filtered
        assert 5 in line_network.hops_to([5], alive_only=False)

    def test_collection_connectivity_matches(self):
        pos = _positions(40, seed=11)
        grid_net, brute_net = _pair(pos)
        assert grid_net.is_collection_connected() == brute_net.is_collection_connected()


# ----------------------------------------------------------------------
# alive_neighbors vectorisation
# ----------------------------------------------------------------------
class TestAliveNeighbors:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_matches_python_filter(self, seed):
        rng = np.random.default_rng(seed)
        net, _ = _pair(_positions(30, seed))
        for k in rng.choice(30, size=5, replace=False):
            net.nodes[int(k)].fail()
        for i in range(30):
            expected = [int(j) for j in net.neighbors(i) if net.nodes[int(j)].alive]
            assert list(net.alive_neighbors(i)) == expected


# ----------------------------------------------------------------------
# whole-simulation determinism across indexes
# ----------------------------------------------------------------------
class TestSimulationEquivalence:
    @pytest.mark.parametrize("vectorized", [True, False])
    def test_flood_bit_identical_across_indexes(self, vectorized):
        def run(index):
            builder = (
                WorldBuilder()
                .seed(7)
                .uniform_sensors(80, field_size=150.0, topology_seed=13)
                .gateways([[75.0, 75.0]])
                .comm_range(COMM_RANGE)
                .ideal_radio()
                .spatial_index(index)
            )
            if not vectorized:
                builder.scalar_fanout()
            world = builder.build()
            spr = world.attach(SPR, ProtocolConfig(table_answering=False))
            for k in range(4):
                world.sim.schedule(0.5 * k, spr.send_data, k)
            world.sim.run()
            m = world.metrics
            return (
                world.events_processed,
                int(sum(m.sent.values())),
                int(sum(m.received.values())),
                dict(m.drops),
            )

        assert run("grid") == run("bruteforce")


# ----------------------------------------------------------------------
# boundary-band queries (shard halo watch sets)
# ----------------------------------------------------------------------
class TestCellsInBand:
    """``cells_in_band`` vs a brute-force distance-to-boundary filter."""

    @staticmethod
    def _boundary_distance(p, region):
        """Distance from ``p`` to the boundary curve of ``region``."""
        import math

        x0, y0, x1, y1 = region
        x, y = float(p[0]), float(p[1])
        dx = max(x0 - x, 0.0, x - x1)
        dy = max(y0 - y, 0.0, y - y1)
        outside = math.hypot(dx, dy)
        if outside > 0.0:
            return outside
        return min(x - x0, x1 - x, y - y0, y1 - y)

    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        n=st.integers(min_value=1, max_value=60),
        width=st.floats(min_value=0.0, max_value=40.0),
        fx0=st.floats(min_value=0.0, max_value=0.6),
        fy0=st.floats(min_value=0.0, max_value=0.6),
        fx1=st.floats(min_value=0.0, max_value=0.6),
        fy1=st.floats(min_value=0.0, max_value=0.6),
        cell=st.floats(min_value=5.0, max_value=50.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_superset_and_bounded_slack(
        self, seed, n, width, fx0, fy0, fx1, fy1, cell
    ):
        import math

        pos = _positions(n, seed, field=120.0)
        region = (
            120.0 * fx0,
            120.0 * fy0,
            120.0 * (1.0 - fx1),
            120.0 * (1.0 - fy1),
        )
        if region[2] < region[0] or region[3] < region[1]:
            return
        grid = CellGrid(pos, cell)
        got = set(int(i) for i in grid.cells_in_band(region, width))
        # Per-axis rectangle tests: a grown-rect corner point can sit
        # sqrt(2)*width from the region, plus a cell-diagonal overhang.
        slack = math.sqrt(2.0) * (width + cell)
        for i in range(n):
            d = self._boundary_distance(pos[i], region)
            if d <= width:
                assert i in got, f"node {i} at boundary distance {d} missed"
            if i in got:
                assert d <= slack, f"node {i} at distance {d} > slack {slack}"

    def test_output_is_sorted_and_typed(self):
        pos = _positions(40, 3)
        grid = CellGrid(pos, 10.0)
        out = grid.cells_in_band((20.0, 20.0, 80.0, 80.0), 5.0)
        assert out.dtype == np.intp
        assert list(out) == sorted(out)

    def test_rejects_bad_region_and_width(self):
        grid = CellGrid(_positions(10, 0), 10.0)
        with pytest.raises(ConfigurationError):
            grid.cells_in_band((50.0, 0.0, 10.0, 10.0), 5.0)
        with pytest.raises(ConfigurationError):
            grid.cells_in_band((0.0, 0.0, 10.0, 10.0), -1.0)
        with pytest.raises(ConfigurationError):
            grid.cells_in_band((0.0, 0.0, 10.0, 10.0), float("inf"))
