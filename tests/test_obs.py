"""Packet-conservation accounting: ledger, audit mode, CLI, RERR edges.

Covers the ``repro.obs`` lifecycle ledger directly, the audit plumbing
through :class:`MetricsCollector`/:class:`WorldBuilder`, the RERR edge
paths (detector at position 0, dead previous hop, repair exhaustion)
each of which must leave the stranded datum in exactly one terminal
ledger state, and the ``python -m repro.obs`` trace auditor.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.base import ProtocolConfig
from repro.core.spr import SPR
from repro.exceptions import ConservationError
from repro.obs import PacketLedger, assert_conserved, audit_collector, datum_key
from repro.obs.cli import main as obs_main
from repro.obs.ledger import DatumState
from repro.runner import ExperimentSpec, SweepRunner
from repro.sim.packet import Packet, PacketKind
from repro.sim.radio import IEEE802154, RadioConfig
from repro.sim.trace import MetricsCollector
from repro.world import WorldBuilder


def data_pkt(origin, data_id, target=1, dst=1, created_at=0.0, hops=2):
    return Packet(
        kind=PacketKind.DATA,
        origin=origin,
        target=target,
        dst=dst,
        payload={"data_id": data_id},
        payload_bytes=32,
        hop_count=hops,
        created_at=created_at,
    )


def rerr_pkt(source, data_id, back_path, pos, detector=None):
    """A RERR carrying a stranded datum back toward ``source``."""
    return Packet(
        kind=PacketKind.RERR,
        origin=detector if detector is not None else back_path[-1],
        target=source,
        dst=back_path[pos],
        payload={
            "key": "k",
            "back_path": list(back_path),
            "pos": pos,
            "data": {"data_id": data_id, "bytes": 32},
        },
        payload_bytes=40,
    )


# ----------------------------------------------------------------------
# ledger unit behaviour
# ----------------------------------------------------------------------
class TestLedger:
    def test_datum_key_reads_data_and_rerr(self):
        assert datum_key(data_pkt(3, 7)) == (3, 7)
        assert datum_key(rerr_pkt(source=3, data_id=7, back_path=[3, 4], pos=0)) == (3, 7)
        hello = Packet(kind=PacketKind.HELLO, origin=0, target=None)
        assert datum_key(hello) is None

    def test_lifecycle_generated_queued_inflight_delivered(self):
        led = PacketLedger()
        led.on_generated(0, 1, now=0.0)
        entry = led.entries[(0, 1)]
        assert entry.state is DatumState.GENERATED
        led.on_queued(0, 1)
        assert entry.state is DatumState.QUEUED
        led.on_frame_sent(data_pkt(0, 1))
        assert entry.state is DatumState.IN_FLIGHT
        led.on_delivered(data_pkt(0, 1), now=1.5)
        assert entry.state is DatumState.DELIVERED
        assert led.generated == led.delivered == 1
        assert led.dropped == led.pending == 0

    def test_terminal_drop_closes_entry_once(self):
        led = PacketLedger()
        led.on_generated(0, 1)
        assert led.on_dropped("ttl", data_pkt(0, 1), now=2.0)
        entry = led.entries[(0, 1)]
        assert entry.state is DatumState.DROPPED and entry.reason == "ttl"
        # A second terminal drop of the same datum is surplus, not a
        # second death.
        assert not led.on_dropped("no_route", data_pkt(0, 1))
        assert led.dropped == 1
        assert led.extra_drops["no_route"] == 1

    def test_delivery_wins_over_earlier_drop(self):
        # A forked copy can die while another copy still delivers: the
        # delivery upgrades the entry and the drop becomes a late drop.
        led = PacketLedger()
        led.on_generated(0, 1)
        led.on_dropped("blackhole", data_pkt(0, 1))
        led.on_delivered(data_pkt(0, 1), now=3.0)
        entry = led.entries[(0, 1)]
        assert entry.state is DatumState.DELIVERED
        assert entry.superseded_drop == "blackhole"
        assert led.late_drops["blackhole"] == 1
        assert led.delivered == 1 and led.dropped == 0

    def test_duplicate_deliveries_counted_not_conflated(self):
        led = PacketLedger()
        led.on_generated(0, 1)
        led.on_delivered(data_pkt(0, 1), now=1.0)
        led.on_delivered(data_pkt(0, 1), now=2.0)
        assert led.delivered == 1
        assert led.duplicate_deliveries == 1

    def test_forged_delivery_is_unknown_not_conserved_mass(self):
        led = PacketLedger()
        led.on_generated(0, 1)
        led.on_delivered(data_pkt(9, 5_000_000), now=1.0)  # never generated
        assert led.delivered == 0
        assert led.unknown_delivered[(9, 5_000_000)] == 1

    def test_broadcast_entries_exempt_from_stuck_check(self):
        led = PacketLedger()
        led.on_generated(0, 1)
        bcast = data_pkt(0, 1, dst=None)
        led.on_frame_sent(bcast)
        entry = led.entries[(0, 1)]
        assert entry.broadcast
        assert entry in led.pending_entries()
        assert entry not in led.stuck_entries()


# ----------------------------------------------------------------------
# collector audit plumbing
# ----------------------------------------------------------------------
class TestCollectorAudit:
    def test_audit_attaches_ledger(self):
        m = MetricsCollector(audit=True)
        assert m.ledger is not None
        m2 = MetricsCollector(audit=False)
        assert m2.ledger is None
        m2.enable_audit()
        assert m2.ledger is not None

    def test_conservation_violation_raises(self):
        m = MetricsCollector(audit=True)
        m.on_data_generated()  # identity-less generation under audit
        with pytest.raises(ConservationError, match="without datum identity"):
            m.assert_conserved()

    def test_delivery_ratio_above_one_raises_under_audit(self):
        m = MetricsCollector(audit=True)
        m.on_data_generated(origin=0, data_id=1)
        m.on_data_delivered(data_pkt(0, 1), 1, now=1.0)
        m.on_data_delivered(data_pkt(0, 2), 1, now=1.1)  # forged id
        with pytest.raises(ConservationError, match="delivery ratio"):
            m.delivery_ratio

    def test_stats_use_unique_first_deliveries(self):
        m = MetricsCollector()
        m.on_data_generated(origin=0, data_id=1)
        m.on_data_delivered(data_pkt(0, 1, created_at=0.0, hops=2), 1, now=1.0)
        # Duplicate of the same datum, later and over more hops: must not
        # shift any per-datum statistic.
        m.on_data_delivered(data_pkt(0, 1, created_at=0.0, hops=6), 2, now=9.0)
        assert len(m.unique_deliveries()) == 1
        assert m.delivery_ratio == 1.0
        assert m.mean_latency == pytest.approx(1.0)
        assert m.mean_hops == pytest.approx(2.0)

    def test_audit_collector_requires_ledger(self):
        with pytest.raises(ConservationError, match="no ledger"):
            audit_collector(MetricsCollector(audit=False))

    def test_report_table_and_jsonable(self):
        m = MetricsCollector(audit=True)
        m.on_data_generated(origin=0, data_id=1)
        m.on_terminal_drop("ttl", data_pkt(0, 1), node=4, now=2.0)
        report = audit_collector(m)
        assert report.ok
        assert report.drops_by_reason == {"ttl": 1}
        blob = report.to_jsonable()
        assert blob["generated"] == 1 and blob["dropped"] == 1
        assert "ttl" in report.format_table()
        assert_conserved(m)  # must not raise


# ----------------------------------------------------------------------
# RERR edge paths — exactly one terminal ledger state each
# ----------------------------------------------------------------------
def _line_world(config=None, n=5, comm_range=12.0):
    sensors = np.array([[float(10 * i), 0.0] for i in range(n)])
    world = (
        WorldBuilder()
        .seed(11)
        .sensors(sensors)
        .gateways([[10.0 * n, 0.0]])
        .comm_range(comm_range)
        .ideal_radio()
        .audit()
        .build()
    )
    spr = world.attach(SPR, config) if config is not None else world.attach(SPR)
    return world, spr


def _single_terminal_entry(world, origin, data_id):
    entry = world.metrics.ledger.entries[(origin, data_id)]
    assert not entry.open, "datum must have reached a terminal state"
    assert world.metrics.ledger.extra_drops == {}, "exactly one terminal event"
    world.assert_conserved()
    return entry


class TestRerrEdgePaths:
    def test_detector_heads_traversed_list(self):
        # pos == 0 in _report_route_error: the detector is the first (and
        # only) entry of the traversed list but not the datum's origin, so
        # there is no upstream hop to carry the RERR.
        world, spr = _line_world()
        world.metrics.on_data_generated(origin=0, data_id=41, now=0.0)
        stranded = Packet(
            kind=PacketKind.DATA,
            origin=0,
            target=5,
            payload={"data_id": 41, "bytes": 32, "key": "k", "traversed": [3]},
            payload_bytes=32,
        )
        spr._report_route_error(3, stranded)
        world.sim.run()
        entry = _single_terminal_entry(world, 0, 41)
        assert entry.state is DatumState.DROPPED
        assert entry.reason == "unrepairable"
        assert entry.node == 3

    def test_rerr_at_position_zero_is_misrouted(self):
        # pos == 0 in _on_rerr: a relayed RERR claiming its holder sits at
        # the head of the back path is off-protocol; the stranded datum it
        # carries dies with it.
        world, spr = _line_world()
        world.metrics.on_data_generated(origin=0, data_id=42, now=0.0)
        spr._on_rerr(2, rerr_pkt(source=0, data_id=42, back_path=[2, 3, 4], pos=0))
        world.sim.run()
        entry = _single_terminal_entry(world, 0, 42)
        assert entry.state is DatumState.DROPPED
        assert entry.reason == "misrouted"

    def test_rerr_relay_with_dead_previous_hop(self):
        # The RERR walks back_path toward the source, but the next node
        # upstream has died: the repair chain is severed mid-way.
        world, spr = _line_world()
        world.metrics.on_data_generated(origin=0, data_id=43, now=0.0)
        world.network.nodes[1].fail()
        spr._on_rerr(2, rerr_pkt(source=0, data_id=43, back_path=[1, 2, 3], pos=1))
        world.sim.run()
        entry = _single_terminal_entry(world, 0, 43)
        assert entry.state is DatumState.DROPPED
        assert entry.reason == "unrepairable"
        assert entry.node == 2

    def test_repair_exhaustion_single_terminal_state(self):
        # s1 keeps answering discoveries with a stale route through dead
        # s2; after max_repairs_per_packet failed redirects the datum must
        # end DROPPED(unrepairable) — once, despite the repeated attempts.
        world, spr = _line_world(ProtocolConfig(max_repairs_per_packet=2))
        first = spr.send_data(0)
        world.sim.run()
        second = spr.send_data(0)
        world.network.nodes[2].fail()
        world.sim.run()

        assert _single_terminal_entry(world, 0, first).state is DatumState.DELIVERED
        entry = _single_terminal_entry(world, 0, second)
        assert entry.state is DatumState.DROPPED
        assert entry.reason == "unrepairable"
        assert world.metrics.ledger.drops_by_reason() == {"unrepairable": 1}


# ----------------------------------------------------------------------
# world-level audit + trace CLI
# ----------------------------------------------------------------------
class TestWorldAudit:
    def test_builder_audit_enables_and_asserts_at_quiescence(self):
        world, spr = _line_world()
        assert world.metrics.audit and world.metrics.ledger is not None
        spr.send_data(0)
        world.sim.run()  # idle hook runs the strict audit at quiescence
        report = world.conservation_report()
        assert report.ok and report.delivered == 1

    def test_builder_audit_false_overrides_env_default(self):
        from repro.sim.trace import set_audit_default

        set_audit_default(True)
        try:
            world = (
                WorldBuilder()
                .seed(1)
                .sensors(np.array([[0.0, 0.0]]))
                .gateways([[10.0, 0.0]])
                .comm_range(12.0)
                .ideal_radio()
                .audit(False)
                .build()
            )
            assert not world.metrics.audit
        finally:
            set_audit_default(False)

    def test_registry_experiment_conserves_under_audit(self):
        from repro.sim.trace import set_audit_default
        from repro.world import record_world_events

        set_audit_default(True)
        try:
            with record_world_events() as recorder:
                from repro.experiments.registry import run_experiment

                run_experiment("fig2", seed=0)
            summary = recorder.conservation_summary()
        finally:
            set_audit_default(False)
        assert summary is not None
        assert summary["violations"] == []
        assert summary["generated"] == summary["delivered"] + summary["dropped"] + summary["pending"]


class TestObsCli:
    def _trace(self, tmp_path, monkeypatch, audited):
        from repro.sim.trace import set_audit_default

        trace = tmp_path / "sweep.jsonl"
        # Pin both audit channels (module force + env) so the test means
        # the same thing inside and outside the REPRO_AUDIT=1 CI job.
        monkeypatch.setenv("REPRO_AUDIT", "1" if audited else "0")
        set_audit_default(audited)
        try:
            runner = SweepRunner(workers=1, trace_path=trace)
            runner.run(ExperimentSpec("scalability", params={"sizes": [40], "rounds": 1}, seeds="0..1"))
        finally:
            set_audit_default(False)
        return trace

    def test_cli_prints_conservation_and_drop_tables(self, tmp_path, monkeypatch, capsys):
        trace = self._trace(tmp_path, monkeypatch, audited=True)
        assert obs_main([str(trace)]) == 0
        out = capsys.readouterr().out
        assert "packet conservation" in out
        assert "scalability" in out
        # Both cells audited, zero violations.
        lines = [l for l in out.splitlines() if l.startswith("scalability")]
        assert lines and lines[0].split("|")[2].strip() == "2"  # audited count

    def test_cli_reports_unaudited_cells(self, tmp_path, monkeypatch, capsys):
        trace = self._trace(tmp_path, monkeypatch, audited=False)
        assert obs_main([str(trace)]) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.startswith("scalability")]
        assert lines and lines[0].split("|")[2].strip() == "0"

    def test_cli_strict_fails_on_violation(self, tmp_path, capsys):
        trace = tmp_path / "bad.jsonl"
        cell = {
            "type": "cell",
            "experiment": "x",
            "seed": 0,
            "drops": {"ttl": 1},
            "conservation": {
                "generated": 3,
                "delivered": 1,
                "dropped": 1,
                "pending": 0,
                "violations": ["generated 3 != delivered 1 + dropped 1 + pending 0"],
            },
        }
        trace.write_text(json.dumps(cell) + "\n")
        assert obs_main([str(trace), "--strict"]) == 1
        assert "violation" in capsys.readouterr().out

    def test_cli_empty_trace(self, tmp_path, capsys):
        trace = tmp_path / "empty.jsonl"
        trace.write_text("")
        assert obs_main([str(trace)]) == 0
        assert "no cell records" in capsys.readouterr().out


# ----------------------------------------------------------------------
# property: conservation under random loss / collisions / failures
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(
    loss=st.floats(min_value=0.0, max_value=0.6),
    collisions=st.booleans(),
    kill=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_conservation_holds_under_random_adversity(loss, collisions, kill, seed):
    """generated == delivered + dropped + pending, whatever the weather.

    A lossy, colliding channel over a random 12-node deployment with up
    to three mid-run node deaths must never lose track of a datum.
    """
    rng = np.random.default_rng(seed)
    sensors = rng.uniform(0.0, 60.0, size=(12, 2))
    radio = RadioConfig(
        name="lossy-15.4",
        bitrate=IEEE802154.bitrate,
        comm_range=IEEE802154.comm_range,
        loss_rate=loss,
        collisions=collisions,
        arq_retries=2,
    )
    world = (
        WorldBuilder()
        .seed(seed)
        .sensors(sensors)
        .gateways([[30.0, 70.0]])
        .comm_range(30.0)
        .radio(radio)
        .require_connected(False)
        .audit()
        .build()
    )
    spr = world.attach(SPR)
    victims = rng.choice(12, size=kill, replace=False)
    for i in range(12):
        world.sim.schedule(0.1 + 0.05 * i, spr.send_data, int(i))
    for j, v in enumerate(victims):
        world.sim.schedule(0.3 + 0.2 * j, world.network.nodes[int(v)].fail)
    for i in range(12):
        world.sim.schedule(1.5 + 0.05 * i, spr.send_data, int(i))
    world.sim.run()

    report = world.conservation_report(strict=True)
    assert report.ok, report.format_table()
    assert report.generated == 24
