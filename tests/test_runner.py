"""Tests for the sweep runner: registry, cache, parallel determinism, CLI.

The parallel-equivalence and cache tests use a deliberately small
scalability configuration (one 40-node size, one round) that stays
connected for topology seeds 0..7 and simulates in well under a second
per cell.
"""

import json
import os
import subprocess
import sys
import time

import pytest

import repro
from repro.exceptions import ConfigurationError
from repro.experiments.registry import REGISTRY, run_experiment
from repro.runner import (
    ExperimentSpec,
    ResultCache,
    SweepRunner,
    cache_key,
    parse_seeds,
)
from repro.runner.cli import main as cli_main
from repro.sim.serialize import dumps

SMALL_SCALABILITY = {"sizes": [40], "rounds": 1}


def small_spec(seeds="0..3") -> ExperimentSpec:
    return ExperimentSpec("scalability", params=dict(SMALL_SCALABILITY), seeds=seeds)


class TestRegistry:
    def test_every_experiment_module_is_registered(self):
        import pkgutil

        import repro.experiments

        modules = {
            m.name
            for m in pkgutil.iter_modules(repro.experiments.__path__)
            if m.name not in ("common", "registry")
        }
        registered = {a.module.rsplit(".", 1)[1] for a in REGISTRY.values()}
        assert modules == registered

    def test_fourteen_experiments(self):
        assert len(REGISTRY) == 14

    def test_adapter_wraps_native_result(self):
        res = run_experiment("fig2", seed=0)
        assert res.experiment == "fig2" and res.seed == 0
        assert res.result.matches_paper
        assert "Fig. 2" in res.format_table()

    def test_unknown_experiment_lists_known(self):
        with pytest.raises(ConfigurationError, match="scalability"):
            run_experiment("nope")

    def test_seed_must_not_hide_in_params(self):
        with pytest.raises(ConfigurationError):
            REGISTRY["fig2"].run({"seed": 3}, seed=4)


class TestCacheKey:
    def test_stable_across_processes(self):
        key = cache_key("scalability", SMALL_SCALABILITY, 3)
        code = (
            "from repro.runner import cache_key;"
            f"print(cache_key('scalability', {SMALL_SCALABILITY!r}, 3))"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True, env=dict(os.environ),
        )
        assert out.stdout.strip() == key

    def test_param_order_and_container_type_do_not_matter(self):
        a = cache_key("x", {"a": 1, "b": (1, 2)}, 0)
        b = cache_key("x", {"b": [1, 2], "a": 1}, 0)
        assert a == b

    def test_seed_params_and_version_all_discriminate(self):
        base = cache_key("x", {"a": 1}, 0)
        assert cache_key("x", {"a": 1}, 1) != base
        assert cache_key("x", {"a": 2}, 0) != base
        assert cache_key("y", {"a": 1}, 0) != base
        assert cache_key("x", {"a": 1}, 0, version="0.0.0") != base

    def test_default_version_is_package_version(self):
        assert cache_key("x", {}, 0) == cache_key("x", {}, 0, version=repro.__version__)


class TestSpec:
    def test_parse_seeds_forms(self):
        assert parse_seeds("4") == (4,)
        assert parse_seeds("0,2,5") == (0, 2, 5)
        assert parse_seeds("0..3") == (0, 1, 2, 3)
        assert parse_seeds("0..2,7") == (0, 1, 2, 7)

    def test_parse_seeds_rejects_empty_and_backwards(self):
        with pytest.raises(ConfigurationError):
            parse_seeds("")
        with pytest.raises(ConfigurationError):
            parse_seeds("5..2")

    def test_spec_accepts_string_seeds_and_rejects_duplicates(self):
        assert ExperimentSpec("fig2", seeds="0..2").seeds == (0, 1, 2)
        with pytest.raises(ConfigurationError):
            ExperimentSpec("fig2", seeds=(1, 1))

    def test_cells_carry_params_copies(self):
        spec = small_spec("0..1")
        cells = spec.cells()
        assert [c.seed for c in cells] == [0, 1]
        cells[0].params["sizes"] = [999]
        assert spec.params == SMALL_SCALABILITY


class TestSweepDeterminism:
    def test_parallel_matches_serial_bit_identically(self):
        spec = small_spec("0..3")
        serial = SweepRunner(workers=1).run(spec)
        parallel = SweepRunner(workers=2).run(spec)
        assert [c.seed for c in serial.cells] == [0, 1, 2, 3]
        assert [c.seed for c in parallel.cells] == [0, 1, 2, 3]
        serial_blobs = [dumps(c.result) for c in serial.cells]
        parallel_blobs = [dumps(c.result) for c in parallel.cells]
        assert serial_blobs == parallel_blobs
        assert parallel.stats.simulated == 4

    def test_progress_callback_sees_every_cell(self):
        seen = []
        runner = SweepRunner(
            workers=1, progress=lambda done, total, rec: seen.append((done, total))
        )
        runner.run(ExperimentSpec("fig2", seeds="0..1"))
        assert seen == [(1, 2), (2, 2)]


class TestCache:
    def test_second_invocation_is_fully_cached(self, tmp_path):
        spec = small_spec("0..3")
        cache1 = ResultCache(tmp_path / "cache")
        first = SweepRunner(workers=2, cache=cache1).run(spec)
        assert cache1.counters == {"hits": 0, "misses": 4}
        assert first.stats.simulated == 4

        cache2 = ResultCache(tmp_path / "cache")
        second = SweepRunner(workers=2, cache=cache2).run(spec)
        # Zero simulations re-run: everything from cache, no events.
        assert cache2.counters == {"hits": 4, "misses": 0}
        assert second.stats.simulated == 0
        assert second.stats.events_processed == 0
        assert all(c.cache_hit for c in second.cells)
        assert [dumps(c.result) for c in first.cells] == [
            dumps(c.result) for c in second.cells
        ]

    def test_corrupt_entry_is_a_miss_and_gets_rewritten(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = ExperimentSpec("fig2", seeds=(0,))
        SweepRunner(workers=1, cache=cache).run(spec)
        (path,) = list((tmp_path / "cache").rglob("*.json"))
        path.write_text("{not json")
        cache2 = ResultCache(tmp_path / "cache")
        out = SweepRunner(workers=1, cache=cache2).run(spec)
        assert cache2.counters == {"hits": 0, "misses": 1}
        assert out.stats.simulated == 1
        assert json.loads(path.read_text())["experiment"] == "fig2"

    def test_version_bump_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = ExperimentSpec("fig2", seeds=(0,))
        cell = spec.cells()[0]
        SweepRunner(workers=1, cache=cache).run(spec)
        assert cache.get(cell) is not None
        assert cache_key("fig2", {}, 0, version="other") != cell.key

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        SweepRunner(workers=1, cache=cache).run(ExperimentSpec("fig2", seeds=(0,)))
        assert cache.clear() == 1
        assert cache.clear() == 0


class TestObservability:
    def test_trace_jsonl_records(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        SweepRunner(workers=1, trace_path=trace).run(
            ExperimentSpec("fig2", seeds="0..1")
        )
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        cells = [r for r in records if r["type"] == "cell"]
        summaries = [r for r in records if r["type"] == "summary"]
        assert len(cells) == 2 and len(summaries) == 1
        for rec in cells:
            assert rec["experiment"] == "fig2"
            assert rec["events_processed"] > 0
            assert rec["wall_clock_s"] >= 0
            assert rec["cache_hit"] is False
        assert summaries[0]["cells_total"] == 2
        assert summaries[0]["simulated"] == 2

    def test_aggregate_summary_has_ci_columns(self):
        sweep = SweepRunner(workers=1).run(small_spec("0..1"))
        agg = sweep.aggregate()
        assert "scalability" in agg
        metrics = agg["scalability"]
        some = metrics["rows.0.single_hops"]
        assert some["n"] == 2
        assert some["ci_lo"] <= some["mean"] <= some["ci_hi"]
        assert "ci95_lo" in sweep.format_summary()


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in REGISTRY:
            assert name in out

    def test_sweep_via_cli(self, tmp_path, capsys):
        rc = cli_main(
            [
                "--experiment", "fig2",
                "--seeds", "0..1",
                "--workers", "1",
                "--cache-dir", str(tmp_path / "cache"),
                "--trace", str(tmp_path / "t.jsonl"),
                "--quiet",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cells=2" in out and "cache_hits=0" in out
        assert (tmp_path / "t.jsonl").exists()

    def test_cli_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            cli_main(["--experiment", "not-a-thing"])


class TestCellTimeout:
    """Per-cell wall-clock budgets: fail the cell, never the sweep."""

    def _sleeper(self, monkeypatch, naps: list, sleep_seeds=()):
        """Replace the serial path's run_experiment with a stallable one."""
        import repro.runner.sweep as sweep_mod

        real = run_experiment

        def wrapped(experiment, params=None, seed=0):
            naps.append(seed)
            if not sleep_seeds or seed in sleep_seeds:
                time.sleep(30.0)
            return real(experiment, params, seed)

        monkeypatch.setattr(sweep_mod, "run_experiment", wrapped)

    def test_overrunning_cell_fails_without_wedging(self, monkeypatch, tmp_path):
        naps = []
        self._sleeper(monkeypatch, naps)
        spec = ExperimentSpec("fig2", seeds="0", timeout_s=0.2)
        trace = tmp_path / "t.jsonl"
        t0 = time.monotonic()
        sweep = SweepRunner(workers=1, trace_path=str(trace)).run(spec)
        assert time.monotonic() - t0 < 30.0  # the 30 s nap was cut short
        (outcome,) = sweep.cells
        assert outcome.failed is True
        assert outcome.result is None
        assert "wall-clock budget" in outcome.error
        assert sweep.stats.failed == 1
        # The JSONL trace carries the failure for post-mortems.
        rec = json.loads(trace.read_text().splitlines()[0])
        assert rec["failed"] is True and "budget" in rec["error"]

    def test_failed_cell_is_never_cached(self, monkeypatch, tmp_path):
        naps = []
        self._sleeper(monkeypatch, naps)
        cache = ResultCache(str(tmp_path / "cache"))
        spec = ExperimentSpec("fig2", seeds="0", timeout_s=0.2)
        for _ in range(2):
            sweep = SweepRunner(workers=1, cache=cache).run(spec)
            assert sweep.cells[0].failed
        assert naps == [0, 0]  # simulated twice: no poisoned cache entry
        assert sweep.stats.cache_hits == 0

    def test_aggregate_skips_failed_cells(self, monkeypatch):
        naps = []
        self._sleeper(monkeypatch, naps, sleep_seeds={1})
        spec = ExperimentSpec("fig2", seeds="0..1", timeout_s=1.0)
        sweep = SweepRunner(workers=1).run(spec)
        assert [c.failed for c in sweep.cells] == [False, True]
        assert sweep.stats.failed == 1
        (metrics,) = sweep.aggregate().values()
        assert metrics  # the surviving seed still aggregates...
        assert all(s["n"] == 1 for s in metrics.values())  # ...alone

    def test_spec_rejects_bad_timeout(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec("fig2", seeds="0", timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            ExperimentSpec("fig2", seeds="0", timeout_s=-2)

    def test_cli_wires_timeout_through(self, monkeypatch, tmp_path, capsys):
        naps = []
        self._sleeper(monkeypatch, naps)
        rc = cli_main(
            [
                "--experiment", "fig2", "--seeds", "0", "--workers", "1",
                "--timeout", "0.2", "--no-cache", "--tables",
                "--cache-dir", str(tmp_path),
            ]
        )
        assert rc == 0  # a failed cell is reported, not a crash
        captured = capsys.readouterr()
        assert "failed=1" in captured.out
        assert "FAILED after" in captured.err
