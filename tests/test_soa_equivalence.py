"""SoA-vs-object equivalence and the NodeStateStore / WorldConfig API.

The struct-of-arrays core is an *execution strategy*, never a model
change: for any scenario — lossy radio, finite batteries, crashes and
recoveries — a world built with ``soa=True`` must produce bit-identical
metrics rows, per-node energy ledgers and RNG streams to the per-object
reference path, and both must pass the packet-conservation audit.  The
hypothesis property below holds that over randomized fault scenarios;
the unit tests pin the store's public API (``charge``, ``alive_view``,
``route_columns``) and the :class:`~repro.world.WorldConfig` parameter
plumbing (round-trip, cache-key identity, removal of bare kwargs).
"""

import dataclasses
import math
import warnings

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.base import ProtocolConfig
from repro.core.spr import SPR
from repro.exceptions import ConfigurationError
from repro.experiments.common import make_grid_scenario
from repro.faults.plan import BatteryDrain, Crash, FaultPlan, Recover
from repro.runner.spec import cache_key
from repro.sim.node import NodeKind
from repro.sim.radio import IEEE802154
from repro.sim.serialize import to_jsonable
from repro.sim.state import NO_ROUTE, NodeStateStore
from repro.world import WorldBuilder, WorldConfig

N_SENSORS = 14


def _fingerprint(scenario):
    """Everything that must be bit-identical across execution paths."""
    m = scenario.metrics
    return {
        "events": scenario.events_processed,
        "sent": dict(m.sent),
        "received": dict(m.received),
        "drops": dict(m.drops),
        "bytes": m.bytes_sent,
        "generated": m.data_generated,
        "deliveries": [dataclasses.astuple(d) for d in m.deliveries],
        "energy": [
            (nd.energy.spent_tx, nd.energy.spent_rx, nd.energy.spent_idle,
             nd.energy.remaining, nd.alive)
            for nd in scenario.network.nodes
        ],
        "rng": scenario.sim.rng.bit_generator.state,
    }


def _run(soa, *, seed, loss, battery, plan):
    builder = (
        WorldBuilder()
        .seed(seed)
        .uniform_sensors(N_SENSORS, field_size=80.0, topology_seed=seed)
        .gateways([[40.0, 40.0], [15.0, 15.0]])
        .comm_range(35.0)
        .sensor_battery(battery)
        .radio(dataclasses.replace(IEEE802154.ideal(), loss_rate=loss))
        .require_connected(False)
        .audit()
        .soa(soa)
    )
    if plan is not None:
        builder.faults(plan)
    world = builder.build()
    spr = world.attach(SPR, ProtocolConfig(table_answering=False))
    for i in range(N_SENSORS):
        world.sim.schedule(0.4 * i + 0.01, spr.send_data, i)
        world.sim.schedule(0.4 * i + 6.5, spr.send_data, (i * 5) % N_SENSORS)
    world.sim.run(until=30.0)
    world.assert_conserved()
    return _fingerprint(world)


@st.composite
def _fault_plans(draw):
    events = []
    for node in draw(
        st.lists(st.integers(0, N_SENSORS - 1), max_size=3, unique=True)
    ):
        t = draw(st.floats(0.5, 8.0, allow_nan=False, allow_infinity=False))
        events.append(Crash(node=node, t=t))
        if draw(st.booleans()):
            events.append(Recover(node=node, t=t + draw(st.floats(0.5, 4.0))))
    if draw(st.booleans()):
        events.append(
            BatteryDrain(
                node=draw(st.integers(0, N_SENSORS - 1)),
                t=draw(st.floats(0.5, 6.0)),
                fraction=draw(st.floats(0.1, 0.95)),
            )
        )
    return FaultPlan(tuple(events)) if events else None


class TestSoAEquivalence:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 2**16),
        loss=st.sampled_from([0.0, 0.15, 0.3]),
        battery=st.sampled_from([math.inf, 0.05]),
        plan=_fault_plans(),
    )
    def test_soa_is_bit_identical_to_object_path(self, seed, loss, battery, plan):
        obj = _run(False, seed=seed, loss=loss, battery=battery, plan=plan)
        soa = _run(True, seed=seed, loss=loss, battery=battery, plan=plan)
        assert obj == soa

    def test_route_column_mirrors_routing_table(self):
        sensors = np.array([[float(10 * i), 0.0] for i in range(5)])
        world = (
            WorldBuilder()
            .seed(3)
            .sensors(sensors)
            .gateways([[50.0, 0.0]])
            .comm_range(12.0)
            .ideal_radio()
            .build()
        )
        spr = world.attach(SPR)
        spr.send_data(0)
        world.sim.run(until=20.0)
        store = world.network.store
        next_hop, route_seq = store.route_columns()
        for i in range(5):
            best = spr.routing_table(i).best()
            expected = NO_ROUTE if best is None else best.next_hop
            assert next_hop[i] == expected
        assert next_hop[0] == 1  # the line's only way out
        assert (route_seq[:5] > 0).all()


class TestNodeStateStore:
    def _store(self, capacities):
        kinds = [NodeKind.SENSOR] * len(capacities)
        return NodeStateStore(kinds, capacities)

    def test_batched_charge_matches_scalar_charges(self):
        a = self._store([math.inf] * 4)
        b = self._store([math.inf] * 4)
        ids = np.array([0, 2, 3])
        a.charge(ids, 0.25, kind="rx")
        for i in ids:
            b.charge_rx(int(i), 0.25, now=1.0)
        assert a.spent_rx.tolist() == b.spent_rx.tolist()
        assert a.remaining.tolist() == b.remaining.tolist()
        a_tx, a_rx = a.counter_columns()
        b_tx, b_rx = b.counter_columns()
        assert a_rx.tolist() == b_rx.tolist() == [1, 0, 1, 1]
        assert a_tx.tolist() == b_tx.tolist() == [0, 0, 0, 0]

    def test_batchable_rejects_finite_and_dead_rows(self):
        store = self._store([math.inf, math.inf, 0.5])
        assert store.batchable(np.array([0, 1]))
        assert not store.batchable(np.array([0, 2]))  # finite battery
        store.set_failed(0, True)
        assert not store.batchable(np.array([0, 1]))  # dead row

    def test_alive_view_is_readonly_and_tracks_failures(self):
        store = self._store([math.inf] * 3)
        alive = store.alive_view()
        assert alive.all()
        with pytest.raises((ValueError, RuntimeError)):
            alive[0] = False
        store.set_failed(1, True)
        assert store.alive_view().tolist() == [True, False, True]

    def test_note_route_bumps_seq_only_on_change(self):
        store = self._store([math.inf] * 2)
        next_hop, route_seq = store.route_columns()
        store.note_route(0, 7)
        assert (next_hop[0], route_seq[0]) == (7, 1)
        store.note_route(0, 7)  # same hop: no bump
        assert route_seq[0] == 1
        store.note_route(0, None)
        assert (next_hop[0], route_seq[0]) == (NO_ROUTE, 2)
        with pytest.raises((ValueError, RuntimeError)):
            next_hop[0] = 3

    def test_note_queued_accumulates_deltas(self):
        store = self._store([math.inf])
        store.note_queued(0, 2)
        store.note_queued(0, -1)
        assert store.queue_depth[0] == 1


class TestWorldConfigAPI:
    def test_from_param_round_trips_jsonable_form(self):
        cfg = WorldConfig(
            soa=False,
            audit=True,
            faults=FaultPlan((Crash(node=2, t=1.5),)),
        )
        assert WorldConfig.from_param(to_jsonable(cfg)) == cfg
        assert WorldConfig.from_param(cfg) is cfg
        assert WorldConfig.from_param(None) is None

    def test_from_param_rejects_bare_dicts(self):
        with pytest.raises(ConfigurationError):
            WorldConfig.from_param({"soa": False})

    def test_cache_key_separates_execution_configs(self):
        base = cache_key("e", {"world": WorldConfig()}, 0, version="t")
        soa_off = cache_key(
            "e", {"world": WorldConfig(soa=False)}, 0, version="t"
        )
        as_jsonable = cache_key(
            "e", {"world": to_jsonable(WorldConfig())}, 0, version="t"
        )
        assert base != soa_off
        assert base == as_jsonable
        # tuple params keep their historical list encoding
        assert cache_key("e", {"sizes": (50,)}, 0, version="t") == cache_key(
            "e", {"sizes": [50]}, 0, version="t"
        )

    def test_builder_wrappers_update_config(self):
        b = WorldBuilder().audit(True).scalar_fanout().spatial_index("bruteforce")
        assert b.config == WorldConfig(
            vectorized=False, audit=True, spatial_index="bruteforce"
        )
        b.configure(WorldConfig(soa=False))
        assert b.config == WorldConfig(soa=False)

    def test_bare_kwargs_path_is_gone(self):
        # The deprecated resolve_world_config shim was removed outright.
        with pytest.raises(ImportError):
            from repro.experiments.common import resolve_world_config  # noqa: F401

    def test_make_scenario_rejects_bare_kwargs(self):
        with pytest.raises(TypeError, match="audit"):
            make_grid_scenario(2, 2, 10.0, [[0.0, 0.0]], comm_range=15.0, audit=False)
        with pytest.raises(TypeError, match="spatial_index"):
            make_grid_scenario(
                2, 2, 10.0, [[0.0, 0.0]],
                comm_range=15.0, spatial_index="bruteforce",
            )
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            make_grid_scenario(
                2, 2, 10.0, [[0.0, 0.0]],
                comm_range=15.0, world=WorldConfig(audit=False),
            )
