"""Unit tests for the channel: delivery, energy charging, loss, collisions."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.network import build_sensor_network
from repro.sim.packet import Packet, PacketKind
from repro.sim.radio import IEEE802154, IEEE80211, Channel, RadioConfig
from repro.sim.trace import MetricsCollector


def _setup(loss=0.0, collisions=False, csma=False, comm_range=12.0, seed=1, arq=0,
           backoff=2e-3, vectorized=True):
    sensors = np.array([[0.0, 0.0], [10.0, 0.0], [20.0, 0.0]])
    gateway = np.array([[30.0, 0.0]])
    net = build_sensor_network(sensors, gateway, comm_range=comm_range)
    sim = Simulator(seed=seed)
    cfg = RadioConfig(
        name="test", bitrate=250_000, comm_range=comm_range,
        loss_rate=loss, collisions=collisions, csma=csma, arq_retries=arq,
        backoff_window=backoff,
    )
    ch = Channel(sim, net, cfg, metrics=MetricsCollector(), vectorized=vectorized)
    return sim, net, ch


def _data(origin, dst=None, payload_bytes=24):
    return Packet(kind=PacketKind.DATA, origin=origin, target=dst, dst=dst,
                  payload_bytes=payload_bytes)


class TestDelivery:
    def test_unicast_reaches_only_destination(self):
        sim, net, ch = _setup()
        got = {i: [] for i in range(4)}
        for n in net.nodes:
            n.handler = (lambda i: (lambda p: got[i].append(p)))(n.node_id)
        ch.send(1, _data(1, dst=2))
        sim.run()
        assert len(got[2]) == 1
        assert not got[0] and not got[3]

    def test_broadcast_reaches_all_neighbors(self):
        sim, net, ch = _setup()
        got = {i: [] for i in range(4)}
        for n in net.nodes:
            n.handler = (lambda i: (lambda p: got[i].append(p)))(n.node_id)
        ch.send(1, _data(1, dst=None))
        sim.run()
        assert len(got[0]) == 1 and len(got[2]) == 1
        assert not got[3]  # out of range

    def test_latency_is_airtime_plus_propagation(self):
        sim, net, ch = _setup()
        arrived = []
        net.nodes[2].handler = lambda p: arrived.append(sim.now)
        pkt = _data(1, dst=2)
        airtime = pkt.size_bits() / 250_000
        ch.send(1, pkt)
        sim.run()
        assert arrived[0] == pytest.approx(airtime, rel=1e-3)

    def test_dead_sender_drops(self):
        sim, net, ch = _setup()
        net.nodes[1].fail()
        assert ch.send(1, _data(1, dst=2)) is False
        assert ch.metrics.drops["dead_node"] == 1

    def test_dead_receiver_drops(self):
        sim, net, ch = _setup()
        net.nodes[2].fail()
        ch.send(1, _data(1, dst=2))
        sim.run()
        assert ch.metrics.drops["dead_node"] == 1

    def test_unicast_out_of_range_counts_no_link(self):
        sim, net, ch = _setup()
        ch.send(0, _data(0, dst=3))  # node 3 is 30m away, range 12
        sim.run()
        assert ch.metrics.drops["no_link"] == 1

    def test_scalar_fanout_counts_no_link(self):
        # The scalar path flags the destination during the loop instead of
        # rescanning the neighbor array; accounting must match vectorized.
        sim, net, ch = _setup(vectorized=False)
        ch.send(0, _data(0, dst=3))
        sim.run()
        assert ch.metrics.drops["no_link"] == 1

    def test_scalar_fanout_in_range_no_drop(self):
        sim, net, ch = _setup(vectorized=False)
        got = []
        net.nodes[1].handler = got.append
        ch.send(0, _data(0, dst=1))
        sim.run()
        assert len(got) == 1
        assert ch.metrics.drops.get("no_link", 0) == 0


class TestEnergy:
    def test_tx_and_rx_charged(self):
        sim, net, ch = _setup()
        net.nodes[2].handler = lambda p: None
        pkt = _data(1, dst=2)
        bits = pkt.size_bits()
        ch.send(1, pkt)
        sim.run()
        assert net.nodes[1].energy.spent_tx == pytest.approx(
            ch.energy_model.tx_cost(bits, ch.config.comm_range)
        )
        assert net.nodes[2].energy.spent_rx == pytest.approx(
            ch.energy_model.rx_cost(bits)
        )

    def test_broadcast_charges_all_receivers(self):
        sim, net, ch = _setup()
        ch.send(1, _data(1, dst=None))
        sim.run()
        assert net.nodes[0].energy.spent_rx > 0
        assert net.nodes[2].energy.spent_rx > 0

    def test_death_by_energy_recorded(self):
        sensors = np.array([[0.0, 0.0], [10.0, 0.0]])
        net = build_sensor_network(sensors, np.array([[20.0, 0.0]]),
                                   comm_range=12.0, sensor_battery=1e-9)
        sim = Simulator(seed=1)
        ch = Channel(sim, net, IEEE802154.ideal(), metrics=MetricsCollector())
        ch.send(0, _data(0, dst=1))
        sim.run()
        assert ch.metrics.first_death is not None
        assert ch.metrics.first_death[0] == 0


class TestLossAndCollisions:
    def test_loss_rate_drops_packets(self):
        sim, net, ch = _setup(loss=1.0)
        got = []
        net.nodes[2].handler = got.append
        ch.send(1, _data(1, dst=2))
        sim.run()
        assert not got
        assert ch.metrics.drops["loss"] == 1

    def test_statistical_loss(self):
        # With 30% loss, out of 200 frames roughly 140 arrive.
        sim, net, ch = _setup(loss=0.3, seed=7)
        got = []
        net.nodes[2].handler = lambda p: got.append(p)
        for k in range(200):
            sim.schedule(k * 0.01, ch.send, 1, _data(1, dst=2))
        sim.run()
        assert 110 < len(got) < 170

    def test_simultaneous_frames_collide(self):
        # 0 and 2 both transmit to 1 at the same instant without CSMA.
        sim, net, ch = _setup(collisions=True, csma=False)
        got = []
        net.nodes[1].handler = got.append
        ch.send(0, _data(0, dst=1))
        ch.send(2, _data(2, dst=1))
        sim.run()
        assert got == []
        assert ch.metrics.drops["collision"] == 2

    def test_csma_defers_and_avoids_collision(self):
        sim, net, ch = _setup(collisions=True, csma=True)
        got = []
        net.nodes[1].handler = got.append
        ch.send(0, _data(0, dst=1))
        ch.send(2, _data(2, dst=1))
        sim.run()
        # carrier sensing serialises the two frames; hidden-terminal only
        # when senders cannot hear each other (here 0 and 2 are 20m apart,
        # range 12 -> hidden!), so allow either outcome but no crash.
        assert len(got) + ch.metrics.drops["collision"] == 2

    def test_csma_serialises_same_sender(self):
        sim, net, ch = _setup(collisions=True, csma=True)
        got = []
        net.nodes[2].handler = got.append
        ch.send(1, _data(1, dst=2))
        ch.send(1, _data(1, dst=2))
        sim.run()
        assert len(got) == 2  # own frames never overlap


class TestArq:
    def test_retries_recover_losses(self):
        # 50% loss, 3 retries: per-frame success 1 - 0.5^4 = 93.75%.
        sim, net, ch = _setup(loss=0.5, seed=11, arq=3)
        got = []
        net.nodes[2].handler = lambda p: got.append(p)
        for k in range(100):
            sim.schedule(k * 0.05, ch.send, 1, _data(1, dst=2))
        sim.run()
        assert len(got) > 80
        assert ch.metrics.drops["loss"] > 0  # retries happened

    def test_exhausted_retries_counted(self):
        sim, net, ch = _setup(loss=1.0, seed=2, arq=2)
        got = []
        net.nodes[2].handler = lambda p: got.append(p)
        ch.send(1, _data(1, dst=2))
        sim.run()
        assert not got
        assert ch.metrics.drops["arq_exhausted"] == 1
        assert ch.metrics.drops["loss"] == 3  # initial + 2 retries

    def test_broadcast_never_retried(self):
        sim, net, ch = _setup(loss=1.0, seed=3, arq=3)
        ch.send(1, _data(1, dst=None))
        sim.run()
        assert ch.metrics.drops.get("arq_exhausted", 0) == 0
        # one loss draw per intended receiver, no retransmissions
        assert ch.metrics.drops["loss"] == 2

    def test_collision_triggers_retry(self):
        # 0 and 2 are hidden terminals; the wide backoff window makes the
        # retransmissions (airtime ~1.1 ms inside a 50 ms window) almost
        # surely disjoint.
        sim, net, ch = _setup(collisions=True, csma=False, arq=3, seed=5, backoff=50e-3)
        got = []
        net.nodes[1].handler = lambda p: got.append(p)
        ch.send(0, _data(0, dst=1))
        ch.send(2, _data(2, dst=1))
        sim.run()
        assert len(got) == 2
        assert ch.metrics.drops["collision"] >= 2


class TestRadioConfig:
    def test_presets(self):
        assert IEEE80211.bitrate > IEEE802154.bitrate
        assert IEEE80211.comm_range > IEEE802154.comm_range

    def test_ideal_strips_imperfections(self):
        ideal = IEEE802154.ideal()
        assert ideal.loss_rate == 0.0
        assert not ideal.collisions and not ideal.csma

    def test_airtime(self):
        assert IEEE802154.airtime(250_000) == pytest.approx(1.0)

    def test_invalid_configs(self):
        with pytest.raises(ConfigurationError):
            RadioConfig(name="x", bitrate=0, comm_range=10)
        with pytest.raises(ConfigurationError):
            RadioConfig(name="x", bitrate=1, comm_range=10, loss_rate=1.5)
