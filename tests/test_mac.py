"""Unit tests for the medium-state bookkeeping (carrier sense, collisions)."""

from repro.sim.mac import MediumState
from repro.sim.packet import Packet, PacketKind


def _pkt():
    return Packet(kind=PacketKind.DATA, origin=0, target=1)


class TestCarrierSense:
    def test_idle_medium_free_now(self):
        m = MediumState()
        assert m.earliest_free(hearers={1, 2}, sender=0, now=5.0) == 5.0

    def test_defers_for_audible_transmission(self):
        m = MediumState()
        m.register_tx(1, 1.0, 2.0)
        assert m.earliest_free({1}, sender=0, now=1.5) == 2.0

    def test_ignores_inaudible_transmission(self):
        m = MediumState()
        m.register_tx(7, 1.0, 2.0)  # node 7 is out of earshot
        assert m.earliest_free({1, 2}, sender=0, now=1.5) == 1.5

    def test_own_transmission_blocks(self):
        m = MediumState()
        m.register_tx(0, 1.0, 3.0)
        assert m.earliest_free(set(), sender=0, now=1.5) == 3.0

    def test_latest_end_wins(self):
        m = MediumState()
        m.register_tx(1, 1.0, 2.0)
        m.register_tx(2, 1.5, 4.0)
        assert m.earliest_free({1, 2}, sender=0, now=1.6) == 4.0

    def test_expired_transmissions_ignored(self):
        m = MediumState()
        m.register_tx(1, 1.0, 2.0)
        assert m.earliest_free({1}, sender=0, now=2.5) == 2.5


class TestCollisions:
    def test_overlap_marks_both(self):
        m = MediumState()
        a = m.register_reception(5, 1.0, 2.0, _pkt(), sender=1, intended=True, detect_collisions=True)
        b = m.register_reception(5, 1.5, 2.5, _pkt(), sender=2, intended=True, detect_collisions=True)
        assert a.collided and b.collided

    def test_disjoint_frames_survive(self):
        m = MediumState()
        a = m.register_reception(5, 1.0, 2.0, _pkt(), 1, True, True)
        b = m.register_reception(5, 2.0, 3.0, _pkt(), 2, True, True)
        assert not a.collided and not b.collided

    def test_different_receivers_never_collide(self):
        m = MediumState()
        a = m.register_reception(5, 1.0, 2.0, _pkt(), 1, True, True)
        b = m.register_reception(6, 1.0, 2.0, _pkt(), 2, True, True)
        assert not a.collided and not b.collided

    def test_interference_collides_intended_frame(self):
        m = MediumState()
        a = m.register_reception(5, 1.0, 2.0, _pkt(), 1, intended=True, detect_collisions=True)
        b = m.register_reception(5, 1.2, 2.2, _pkt(), 2, intended=False, detect_collisions=True)
        assert a.collided  # overheard unicast still jams

    def test_detection_disabled(self):
        m = MediumState()
        a = m.register_reception(5, 1.0, 2.0, _pkt(), 1, True, False)
        b = m.register_reception(5, 1.5, 2.5, _pkt(), 2, True, False)
        assert not a.collided and not b.collided

    def test_prune_drops_expired(self):
        m = MediumState()
        m.register_tx(1, 0.0, 1.0)
        m.register_reception(5, 0.0, 1.0, _pkt(), 1, True, True)
        m.prune(now=2.0)
        assert not m.active and not m.inbound
