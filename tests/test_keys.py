"""Unit tests for LEAP-style key predistribution and the compromise model."""

import pytest

from repro.exceptions import SecurityError
from repro.security.keys import KeyStore


@pytest.fixture
def store():
    return KeyStore(b"deployment-master", gateway_ids=[50, 51])


class TestDerivation:
    def test_pairwise_symmetry_of_view(self, store):
        # Both endpoints derive the same Kij from the authority.
        assert store.pairwise_key(3, 50) == store.pairwise_key(3, 50)

    def test_pairwise_distinct_per_pair(self, store):
        keys = {
            store.pairwise_key(s, g)
            for s in range(5)
            for g in (50, 51)
        }
        assert len(keys) == 10

    def test_individual_keys_distinct(self, store):
        assert store.individual_key(1) != store.individual_key(2)

    def test_group_key_shared(self, store):
        assert store.group_key == store.group_key

    def test_key_types_disjoint(self, store):
        assert store.individual_key(1) != store.cluster_key(1)
        assert store.individual_key(1) != store.group_key

    def test_unknown_gateway_rejected(self, store):
        with pytest.raises(SecurityError):
            store.pairwise_key(1, 99)

    def test_empty_master_rejected(self):
        with pytest.raises(SecurityError):
            KeyStore(b"", [1])


class TestRing:
    def test_ring_contents(self, store):
        ring = store.ring_for(7)
        assert ring.node_id == 7
        assert set(ring.pairwise) == {50, 51}
        assert ring.pairwise_with(50) == store.pairwise_key(7, 50)
        assert ring.group == store.group_key

    def test_ring_missing_gateway(self, store):
        ring = store.ring_for(7)
        with pytest.raises(SecurityError):
            ring.pairwise_with(99)


class TestCompromise:
    def test_capture_reveals_own_keys_only(self, store):
        store.compromise(3)
        assert store.adversary_knows_pairwise(3, 50)
        # LEAP containment: node 4's pairwise keys stay secret.
        assert not store.adversary_knows_pairwise(4, 50)

    def test_compromised_set_tracked(self, store):
        store.compromise(3)
        store.compromise(9)
        assert store.compromised_nodes == {3, 9}
