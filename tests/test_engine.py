"""Unit tests for the discrete-event engine."""

import pytest

from repro.exceptions import SimulationError
from repro.sim.engine import Simulator


def test_initial_state():
    sim = Simulator(seed=0)
    assert sim.now == 0.0
    assert sim.pending == 0
    assert sim.events_processed == 0


def test_events_fire_in_time_order():
    sim = Simulator(seed=0)
    fired = []
    sim.schedule(2.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(3.0, fired.append, "latest")
    sim.run()
    assert fired == ["early", "late", "latest"]
    assert sim.now == 3.0


def test_simultaneous_events_fifo():
    sim = Simulator(seed=0)
    fired = []
    for i in range(10):
        sim.schedule(1.0, fired.append, i)
    sim.run()
    assert fired == list(range(10))


def test_negative_delay_rejected():
    sim = Simulator(seed=0)
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator(seed=0)
    fired = []
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.now == 1.0
    sim.schedule_at(5.0, fired.append, "x")
    sim.run()
    assert sim.now == 5.0 and fired == ["x"]


def test_schedule_at_rejects_the_past():
    sim = Simulator(seed=0)
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.now == 1.0
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_schedule_at_is_exact_at_large_absolute_times():
    # The old relative round-trip (when - now + now) lost ulps once the
    # clock was large; absolute scheduling must hit `when` exactly.
    sim = Simulator(seed=0)
    base = 1e9
    sim.schedule_at(base + 0.3, lambda: None)
    sim.run()
    when = base + 0.7
    fired_at = []
    sim.schedule_at(when, lambda: fired_at.append(sim.now))
    sim.run()
    assert fired_at == [when]


def test_schedule_at_now_is_allowed():
    sim = Simulator(seed=0)
    sim.schedule(2.0, lambda: None)
    sim.run()
    fired = []
    sim.schedule_at(2.0, fired.append, "x")
    sim.run()
    assert fired == ["x"] and sim.now == 2.0


def test_cancelled_event_does_not_fire():
    sim = Simulator(seed=0)
    fired = []
    ev = sim.schedule(1.0, fired.append, "no")
    sim.schedule(2.0, fired.append, "yes")
    ev.cancel()
    sim.run()
    assert fired == ["yes"]


def test_run_until_stops_and_advances_clock():
    sim = Simulator(seed=0)
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(5.0, fired.append, "b")
    sim.run(until=2.0)
    assert fired == ["a"]
    assert sim.now == 2.0  # clock advanced to the horizon
    sim.run()
    assert fired == ["a", "b"]


def test_run_until_is_repeatable_like_a_clock():
    sim = Simulator(seed=0)
    sim.run(until=1.0)
    sim.run(until=2.0)
    assert sim.now == 2.0


def test_run_exclusive_parks_events_at_the_bound():
    sim = Simulator(seed=0)
    fired = []
    sim.schedule_at(1.0, fired.append, "a")
    sim.schedule_at(2.0, fired.append, "b")
    sim.run(until=2.0, inclusive=False)
    assert fired == ["a"]  # the event AT the bound stays queued
    assert sim.now == 2.0
    assert sim.next_event_time == 2.0
    # Scheduling at now (== the previous exclusive bound) is legal and
    # FIFO order among the t=2.0 events is preserved.
    sim.schedule_at(2.0, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_run_inclusive_default_executes_the_bound():
    sim = Simulator(seed=0)
    fired = []
    sim.schedule_at(2.0, fired.append, "b")
    sim.run(until=2.0)
    assert fired == ["b"]


def test_next_event_time_tracks_queue():
    sim = Simulator(seed=0)
    assert sim.next_event_time is None
    ev = sim.schedule_at(3.0, lambda: None)
    sim.schedule_at(5.0, lambda: None)
    assert sim.next_event_time == 3.0
    ev.cancel()
    assert sim.next_event_time == 5.0
    sim.run()
    assert sim.next_event_time is None


def test_max_events_safety_valve():
    sim = Simulator(seed=0)

    def reschedule():
        sim.schedule(0.1, reschedule)

    sim.schedule(0.0, reschedule)
    sim.run(max_events=50)
    assert sim.events_processed == 50
    assert sim.pending > 0


def test_max_events_does_not_count_cancelled_events():
    sim = Simulator(seed=0)
    fired = []
    cancelled = [sim.schedule(0.1 * i, fired.append, f"c{i}") for i in range(5)]
    for ev in cancelled:
        ev.cancel()
    for i in range(3):
        sim.schedule(1.0 + i, fired.append, i)
    # Budget of 3 must execute all 3 live events: the 5 cancelled ones
    # sit ahead of them in the heap but cost nothing.
    sim.run(max_events=3)
    assert fired == [0, 1, 2]
    assert sim.events_processed == 3


def test_events_processed_total_shim_is_gone():
    # The deprecated process-global tally was removed after one release
    # of warnings; per-world counters (World.events_processed and
    # record_world_events) are the only accounting surface.
    import repro.sim
    import repro.sim.engine

    assert not hasattr(repro.sim.engine, "events_processed_total")
    assert not hasattr(repro.sim, "events_processed_total")
    assert "events_processed_total" not in repro.sim.__all__


def test_events_scheduled_during_run_execute():
    sim = Simulator(seed=0)
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_step_returns_false_on_empty_queue():
    sim = Simulator(seed=0)
    assert sim.step() is False


def test_clear_drops_pending_events():
    sim = Simulator(seed=0)
    fired = []
    sim.schedule(1.0, fired.append, "x")
    sim.clear()
    sim.run()
    assert fired == []


def test_rng_determinism():
    a = Simulator(seed=42).rng.random(5)
    b = Simulator(seed=42).rng.random(5)
    assert (a == b).all()


def test_run_not_reentrant():
    sim = Simulator(seed=0)
    err = []

    def reenter():
        try:
            sim.run()
        except SimulationError as e:
            err.append(e)

    sim.schedule(0.0, reenter)
    sim.run()
    assert len(err) == 1


def test_pickle_roundtrip_preserves_pending_events():
    import pickle

    sim = Simulator(seed=7)
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run(until=1.0)
    clone = pickle.loads(pickle.dumps(sim))
    assert clone.now == sim.now
    assert clone.pending == sim.pending
    assert clone.checkpoint_state() == sim.checkpoint_state()
    # The clone's per-node substreams replay identically.
    assert clone.node_rng(3).random() == sim.node_rng(3).random()


def test_pickle_refused_mid_run():
    """Snapshotting from inside a callback would drop the live event."""
    import pickle

    sim = Simulator(seed=0)
    caught = []

    def snap():
        try:
            pickle.dumps(sim)
        except SimulationError as e:
            caught.append(e)

    sim.schedule(1.0, snap)
    sim.run()
    assert len(caught) == 1
    assert "barrier" in str(caught[0])
    # Quiescent again after run() returns: pickling works.
    pickle.dumps(sim)
