"""Round-trip tests for the shared serialization path."""

from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.experiments.common import ScenarioResult
from repro.sim.serialize import (
    dumps,
    from_jsonable,
    loads,
    registered_types,
    serializable,
    to_jsonable,
)


@serializable
@dataclass
class _Inner:
    label: str
    values: tuple


@serializable
@dataclass
class _Outer:
    inner: _Inner
    table: dict
    seeds: list = field(default_factory=list)


def scenario_result(**overrides) -> ScenarioResult:
    base = dict(
        name="SPR",
        delivery_ratio=0.975,
        mean_hops=2.5,
        mean_latency=0.0123,
        total_energy=1.5,
        energy_variance=0.01,
        lifetime=None,
        control_frames=10,
        data_frames=40,
        bytes_sent=4096,
        extras={"note": "x"},
    )
    base.update(overrides)
    return ScenarioResult(**base)


class TestPrimitives:
    def test_scalars_pass_through(self):
        for v in (None, True, 3, 2.5, "s"):
            assert from_jsonable(to_jsonable(v)) == v

    def test_tuple_survives_as_tuple(self):
        v = (1, (2, 3), [4, 5])
        out = from_jsonable(to_jsonable(v))
        assert out == v and isinstance(out, tuple) and isinstance(out[1], tuple)

    def test_non_string_dict_keys(self):
        v = {1: "a", (2, 3): "b"}
        assert from_jsonable(to_jsonable(v)) == v

    def test_numpy_scalars_become_native(self):
        out = to_jsonable({"a": np.float64(1.5), "b": np.int64(7)})
        assert out == {"a": 1.5, "b": 7}
        assert type(out["a"]) is float and type(out["b"]) is int

    def test_unregistered_dataclass_rejected(self):
        @dataclass
        class NotRegistered:
            x: int

        with pytest.raises(TypeError):
            to_jsonable(NotRegistered(1))

    def test_unserializable_object_rejected(self):
        with pytest.raises(TypeError):
            to_jsonable(object())


class TestDataclassRoundTrip:
    def test_nested_dataclasses(self):
        obj = _Outer(
            inner=_Inner(label="i", values=(1, 2.5)),
            table={"a": _Inner(label="j", values=())},
            seeds=[0, 1, 2],
        )
        assert loads(dumps(obj)) == obj

    def test_injected_to_dict_from_dict_are_inverses(self):
        obj = _Inner(label="k", values=(9,))
        assert _Inner.from_dict(obj.to_dict()) == obj

    def test_canonical_dumps_is_deterministic(self):
        a = _Outer(inner=_Inner("x", ()), table={"b": 1, "a": 2})
        b = _Outer(inner=_Inner("x", ()), table={"a": 2, "b": 1})
        assert dumps(a) == dumps(b)


class TestScenarioResult:
    def test_round_trip(self):
        r = scenario_result()
        assert ScenarioResult.from_dict(r.to_dict()) == r
        assert loads(dumps(r)) == r

    def test_lifetime_none_round_trips(self):
        r = scenario_result(lifetime=None)
        assert loads(dumps(r)).lifetime is None

    def test_row_and_headers_derive_from_dict_form(self):
        r = scenario_result(lifetime=42.25)
        assert len(r.row()) == len(ScenarioResult.HEADERS)
        # The historical column contract must hold exactly.
        assert ScenarioResult.HEADERS == [
            "protocol", "delivery", "hops", "latency_ms", "energy_J",
            "variance", "lifetime_s", "ctrl_frames", "data_frames", "bytes",
        ]
        assert r.row() == [
            "SPR", 0.975, 2.5, 12.3, 1.5, 0.01, 42.2, 10, 40, 4096,
        ]

    def test_lifetime_none_renders_dash(self):
        assert scenario_result(lifetime=None).row()[6] == "-"


class TestRegistry:
    def test_experiment_results_are_registered(self):
        names = set(registered_types())
        for expected in (
            "ScenarioResult", "Fig2Result", "Table1Result",
            "ArchitectureResult", "ScalabilityResult", "LifetimeComparison",
            "GatewayCountResult", "SecurityOverheadResult",
            "AttackMatrixResult", "RobustnessResult",
            "MobilityOverheadResult", "LpBoundResult", "ExperimentResult",
        ):
            assert expected in names, expected
