"""Unit tests for the SNEP-style crypto primitives."""

import pytest

from repro.exceptions import SecurityError
from repro.security.crypto import (
    MAC_LENGTH,
    CounterState,
    compute_mac,
    decode_message,
    decrypt,
    derive_key,
    encode_message,
    encrypt,
    verify_mac,
)

KEY = derive_key(b"master", "pairwise", 1, 50)
OTHER = derive_key(b"master", "pairwise", 2, 50)


class TestDerivation:
    def test_deterministic(self):
        assert derive_key(b"m", 1, 2) == derive_key(b"m", 1, 2)

    def test_context_separation(self):
        assert derive_key(b"m", 1, 2) != derive_key(b"m", 2, 1)
        assert derive_key(b"m", "a") != derive_key(b"m", "b")

    def test_master_separation(self):
        assert derive_key(b"m1", 1) != derive_key(b"m2", 1)

    def test_empty_master_rejected(self):
        with pytest.raises(SecurityError):
            derive_key(b"", 1)


class TestEncryption:
    def test_roundtrip(self):
        ct = encrypt(KEY, 7, b"attack at dawn")
        assert decrypt(KEY, 7, ct) == b"attack at dawn"

    def test_ciphertext_differs_from_plaintext(self):
        assert encrypt(KEY, 0, b"hello") != b"hello"

    def test_counter_changes_ciphertext(self):
        # CTR semantics: same plaintext, different counter -> different ct.
        assert encrypt(KEY, 1, b"data") != encrypt(KEY, 2, b"data")

    def test_wrong_key_garbles(self):
        ct = encrypt(KEY, 3, b"secret")
        assert decrypt(OTHER, 3, ct) != b"secret"

    def test_wrong_counter_garbles(self):
        ct = encrypt(KEY, 3, b"secret")
        assert decrypt(KEY, 4, ct) != b"secret"

    def test_empty_plaintext(self):
        assert decrypt(KEY, 0, encrypt(KEY, 0, b"")) == b""

    def test_long_plaintext_multi_block(self):
        msg = bytes(range(256)) * 5
        assert decrypt(KEY, 9, encrypt(KEY, 9, msg)) == msg

    def test_bad_key_length_rejected(self):
        with pytest.raises(SecurityError):
            encrypt(b"short", 0, b"x")

    def test_negative_counter_rejected(self):
        with pytest.raises(SecurityError):
            encrypt(KEY, -1, b"x")


class TestMac:
    def test_verify_roundtrip(self):
        tag = compute_mac(KEY, 5, b"payload")
        assert verify_mac(KEY, 5, b"payload", tag)

    def test_mac_length(self):
        assert len(compute_mac(KEY, 0, b"x")) == MAC_LENGTH

    def test_altered_data_fails(self):
        tag = compute_mac(KEY, 5, b"payload")
        assert not verify_mac(KEY, 5, b"payloae", tag)

    def test_wrong_counter_fails(self):
        tag = compute_mac(KEY, 5, b"payload")
        assert not verify_mac(KEY, 6, b"payload", tag)

    def test_wrong_key_fails(self):
        tag = compute_mac(KEY, 5, b"payload")
        assert not verify_mac(OTHER, 5, b"payload", tag)

    def test_truncated_tag_fails(self):
        tag = compute_mac(KEY, 5, b"payload")
        assert not verify_mac(KEY, 5, b"payload", tag[:-1])


class TestEncoding:
    def test_roundtrip(self):
        msg = {"t": "req", "src": 3, "path": [1, 2, 3]}
        assert decode_message(encode_message(msg)) == msg

    def test_key_order_canonical(self):
        assert encode_message({"a": 1, "b": 2}) == encode_message({"b": 2, "a": 1})

    def test_tuples_canonicalise_to_lists(self):
        assert encode_message({"p": (1, 2)}) == encode_message({"p": [1, 2]})

    def test_sets_canonicalise_sorted(self):
        assert encode_message({3, 1, 2}) == encode_message([1, 2, 3])

    def test_unencodable_rejected(self):
        with pytest.raises(TypeError):
            encode_message({"x": object()})


class TestCounterState:
    def test_outbound_monotonic(self):
        cs = CounterState()
        assert [cs.next("g"), cs.next("g"), cs.next("g")] == [0, 1, 2]

    def test_outbound_per_peer(self):
        cs = CounterState()
        cs.next("a")
        assert cs.next("b") == 0

    def test_peek_does_not_consume(self):
        cs = CounterState()
        assert cs.peek("g") == 0
        assert cs.next("g") == 0

    def test_inbound_accepts_increasing(self):
        cs = CounterState()
        assert cs.accept("p", 0) and cs.accept("p", 5) and cs.accept("p", 6)

    def test_inbound_rejects_replay(self):
        cs = CounterState()
        assert cs.accept("p", 5)
        assert not cs.accept("p", 5)
        assert not cs.accept("p", 3)

    def test_allow_current_duplicates(self):
        cs = CounterState()
        assert cs.accept("p", 5, allow_current=True)
        assert cs.accept("p", 5, allow_current=True)  # flood copy
        assert not cs.accept("p", 4, allow_current=True)  # true replay

    def test_window_rejects_absurd_jump(self):
        cs = CounterState(window=100)
        assert not cs.accept("p", 1_000_000)
        assert cs.accept("p", 50)

    def test_last_accepted(self):
        cs = CounterState()
        assert cs.last_accepted("p") == -1
        cs.accept("p", 9)
        assert cs.last_accepted("p") == 9
