"""Cross-module integration tests: full protocol stacks on one simulator."""

import numpy as np
import pytest

from repro.core import MLR, SPR, SecMLR
from repro.core.base import ProtocolConfig
from repro.sim import (
    Channel,
    FeasiblePlaces,
    GatewaySchedule,
    IEEE802154,
    Simulator,
    build_sensor_network,
    uniform_deployment,
)
from repro.sim.trace import MetricsCollector


def _world(n=60, field=200.0, rng=55.0, seed=17, battery=float("inf"), radio=None):
    sensors = uniform_deployment(n, field, seed=seed)
    places = FeasiblePlaces.from_mapping({
        "A": (0.2 * field, 0.2 * field),
        "B": (0.8 * field, 0.8 * field),
        "C": (0.5 * field, 0.5 * field),
    })
    gw = np.array([places.position("A"), places.position("B")])
    net = build_sensor_network(sensors, gw, comm_range=rng, sensor_battery=battery)
    sim = Simulator(seed=seed)
    ch = Channel(sim, net, radio or IEEE802154.ideal(), metrics=MetricsCollector())
    return sim, net, ch, places


class TestRealisticRadio:
    """Protocols must survive CSMA, collisions and 5% frame loss."""

    def test_spr_with_lossy_csma_radio(self):
        import dataclasses

        radio = dataclasses.replace(IEEE802154, loss_rate=0.05)
        sim, net, ch, _ = _world(radio=radio)
        spr = SPR(
            sim, net, ch,
            ProtocolConfig(max_discovery_attempts=5, discovery_timeout=0.6,
                           flood_jitter=0.03),
        )
        # Applications report on their own schedules, not in lockstep.
        for k in range(2):
            for i, s in enumerate(net.sensor_ids):
                sim.schedule(3.0 * k + i * 45e-3, spr.send_data, s)
        sim.run()
        # Hidden-terminal collisions make dense flooding lossy by nature;
        # what matters is that the protocol still routes most data.
        assert ch.metrics.delivery_ratio >= 0.65
        # losses actually occurred (the radio is real)
        assert ch.metrics.drops["loss"] > 0

    def test_secmlr_with_lossy_radio(self):
        import dataclasses

        radio = dataclasses.replace(IEEE802154, loss_rate=0.03)
        sim, net, ch, places = _world(radio=radio)
        schedule = GatewaySchedule.rotating(places, net.gateway_ids, num_rounds=3, seed=1)
        proto = SecMLR(
            sim, net, ch, schedule,
            config=ProtocolConfig(
                gateway_collect_timeout=0.1, discovery_timeout=0.6,
                max_discovery_attempts=5, flood_jitter=0.03,
            ),
        )
        for r in range(3):
            sim.run(until=r * 10.0)
            proto.start_round(r)
            for i, s in enumerate(net.sensor_ids):
                sim.schedule(3.0 + i * 45e-3, proto.send_data, s)
        sim.run()
        # SecMLR cannot table-answer (only gateways hold keys), so every
        # discovery floods the whole field: under contention this is the
        # harshest regime in the suite. The bar checks "keeps routing",
        # not "unaffected"; EXPERIMENTS.md discusses the gap.
        assert ch.metrics.delivery_ratio > 0.5


class TestDeterminism:
    def test_identical_seeds_identical_results(self):
        outcomes = []
        for _ in range(2):
            sim, net, ch, _ = _world(seed=23)
            spr = SPR(sim, net, ch)
            for i, s in enumerate(net.sensor_ids):
                sim.schedule(i * 1e-3, spr.send_data, s)
            sim.run()
            outcomes.append((
                ch.metrics.delivery_ratio,
                ch.metrics.bytes_sent,
                round(ch.metrics.mean_latency, 12),
                tuple(sorted((r.origin, r.hops) for r in ch.metrics.deliveries)),
            ))
        assert outcomes[0] == outcomes[1]

    def test_different_seeds_differ(self):
        def run(seed):
            sim, net, ch, _ = _world(seed=seed)
            spr = SPR(sim, net, ch)
            for i, s in enumerate(net.sensor_ids):
                sim.schedule(i * 1e-3, spr.send_data, s)
            sim.run()
            return ch.metrics.bytes_sent

        assert run(1) != run(2)  # different topologies -> different traffic


class TestEnergyConservation:
    def test_books_balance(self):
        sim, net, ch, _ = _world(battery=1.0)
        spr = SPR(sim, net, ch)
        for i, s in enumerate(net.sensor_ids):
            sim.schedule(i * 1e-3, spr.send_data, s)
        sim.run()
        for s in net.sensor_ids:
            acc = net.nodes[s].energy
            assert acc.spent == pytest.approx(acc.capacity - acc.remaining)
            assert acc.spent >= 0

    def test_gateways_never_die(self):
        sim, net, ch, _ = _world(battery=1e-6)
        spr = SPR(sim, net, ch)
        for s in net.sensor_ids[:10]:
            spr.send_data(s)
        sim.run()
        for g in net.gateway_ids:
            assert net.nodes[g].alive


class TestProtocolEquivalence:
    def test_mlr_round0_matches_spr_hops(self):
        """With static gateways, MLR must find the same hop counts as SPR."""
        results = {}
        for name in ("spr", "mlr"):
            sim, net, ch, places = _world(seed=29)
            if name == "spr":
                proto = SPR(sim, net, ch)
                proto_start = None
            else:
                schedule = GatewaySchedule(
                    places=places,
                    rounds=[{net.gateway_ids[0]: "A", net.gateway_ids[1]: "B"}],
                )
                proto = MLR(sim, net, ch, schedule)
                proto.start_round(0)
            for i, s in enumerate(net.sensor_ids):
                sim.schedule(1.0 + i * 1e-3, proto.send_data, s)
            sim.run()
            results[name] = {r.origin: r.hops for r in ch.metrics.deliveries}
        assert results["spr"] == results["mlr"]

    def test_secmlr_routes_match_mlr_routes(self):
        """Security must not change the discovered hop counts."""
        hops = {}
        for cls in (MLR, SecMLR):
            sim, net, ch, places = _world(seed=31)
            schedule = GatewaySchedule(
                places=places,
                rounds=[{net.gateway_ids[0]: "A", net.gateway_ids[1]: "B"}],
            )
            proto = cls(sim, net, ch, schedule)
            proto.start_round(0)
            for i, s in enumerate(net.sensor_ids):
                sim.schedule(1.0 + i * 1e-3, proto.send_data, s)
            sim.run()
            hops[cls.__name__] = {r.origin: r.hops for r in ch.metrics.deliveries}
        assert hops["MLR"] == hops["SecMLR"]
