"""Tests for the gateway number / deployment models (Section 4.1)."""

import numpy as np
import pytest

from repro.core.placement import (
    greedy_gateway_placement,
    kmax_gateway_count,
    mean_hops_for_placement,
    sensor_graph,
    sensor_hops_to_point,
)
from repro.exceptions import ConfigurationError, TopologyError
from repro.sim.network import grid_deployment


@pytest.fixture
def grid():
    return grid_deployment(5, 5, spacing=10.0)  # 25 sensors on [0,40]^2


class TestHopsToPoint:
    def test_adjacent_sensors_one_hop(self, grid):
        g = sensor_graph(grid, comm_range=14.5)
        hops = sensor_hops_to_point(g, grid, (0.0, -10.0), comm_range=14.5)
        assert hops[0] == 1  # sensor at (0,0)

    def test_distance_growth(self, grid):
        g = sensor_graph(grid, comm_range=14.5)
        hops = sensor_hops_to_point(g, grid, (-10.0, 0.0), comm_range=14.5)
        # the far corner (40,40) is 8 grid steps + 1 to the point... but
        # diagonals are in range (14.1 < 14.5), so paths are shorter.
        assert hops[24] >= 4

    def test_unreachable_point_empty(self, grid):
        g = sensor_graph(grid, comm_range=14.5)
        assert sensor_hops_to_point(g, grid, (500.0, 500.0), comm_range=14.5) == {}


class TestMeanHops:
    def test_center_beats_corner(self, grid):
        center, _ = mean_hops_for_placement(grid, np.array([[20.0, 20.0]]), 14.5)
        corner, _ = mean_hops_for_placement(grid, np.array([[0.0, 0.0]]), 14.5)
        assert center < corner

    def test_adding_a_gateway_never_hurts(self, grid):
        one, _ = mean_hops_for_placement(grid, np.array([[0.0, 0.0]]), 14.5)
        two, _ = mean_hops_for_placement(
            grid, np.array([[0.0, 0.0], [40.0, 40.0]]), 14.5
        )
        assert two <= one + 1e-9

    def test_unreachable_raises(self, grid):
        with pytest.raises(TopologyError):
            mean_hops_for_placement(grid, np.array([[999.0, 999.0]]), 14.5)


class TestGreedyPlacement:
    def test_monotone_improvement(self, grid):
        candidates = grid_deployment(3, 3, spacing=20.0)  # 9 sites over the field
        prev = None
        for k in (1, 2, 4):
            _, hops = greedy_gateway_placement(grid, candidates, k, 14.5)
            if prev is not None:
                assert hops <= prev + 1e-9
            prev = hops

    def test_chosen_indices_valid_and_distinct(self, grid):
        candidates = grid_deployment(3, 3, spacing=20.0)
        chosen, _ = greedy_gateway_placement(grid, candidates, 3, 14.5)
        assert len(chosen) == len(set(chosen)) == 3
        assert all(0 <= c < 9 for c in chosen)

    def test_k_bounds(self, grid):
        candidates = grid_deployment(2, 2, spacing=30.0)
        with pytest.raises(ConfigurationError):
            greedy_gateway_placement(grid, candidates, 0, 14.5)
        with pytest.raises(ConfigurationError):
            greedy_gateway_placement(grid, candidates, 5, 14.5)

    def test_single_candidate_covering_all(self):
        sensors = grid_deployment(2, 2, spacing=5.0)
        chosen, hops = greedy_gateway_placement(
            sensors, np.array([[2.5, 2.5]]), 1, comm_range=10.0
        )
        assert chosen == [0] and hops == 1.0


class TestKmax:
    def test_kmax_is_a_cover(self, grid):
        candidates = grid_deployment(3, 3, spacing=20.0)
        k = kmax_gateway_count(grid, candidates, comm_range=14.5)
        assert 1 <= k <= 9

    def test_kmax_one_when_range_huge(self, grid):
        candidates = np.array([[20.0, 20.0]])
        assert kmax_gateway_count(grid, candidates, comm_range=100.0) == 1

    def test_impossible_cover_raises(self, grid):
        with pytest.raises(TopologyError):
            kmax_gateway_count(grid, np.array([[999.0, 999.0]]), comm_range=10.0)
