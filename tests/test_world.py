"""World composition root: builder wiring, event accounting, fan-out equivalence."""

import numpy as np
import pytest

from repro.core.spr import SPR
from repro.exceptions import ConfigurationError, TopologyError
from repro.sim.engine import Simulator
from repro.sim.network import build_sensor_network
from repro.sim.radio import IEEE802154, RadioConfig
from repro.world import WorldBuilder, record_world_events


class TestWorldBuilder:
    def test_builds_the_full_stack(self):
        world = (
            WorldBuilder()
            .seed(3)
            .uniform_sensors(30, field_size=100.0, topology_seed=1)
            .gateways([[50.0, 50.0]])
            .comm_range(30.0)
            .ideal_radio()
            .build()
        )
        assert len(world.network) == 31
        assert world.channel.sim is world.sim
        assert world.channel.network is world.network
        assert world.metrics is world.channel.metrics
        assert world.events_processed == 0

    def test_attach_wires_protocol(self):
        sensors = np.array([[0.0, 0.0], [10.0, 0.0]])
        world = (
            WorldBuilder().sensors(sensors).gateways([[20.0, 0.0]])
            .comm_range(12.0).ideal_radio().build()
        )
        spr = world.attach(SPR)
        assert world.protocol is spr
        spr.send_data(0)
        world.sim.run()
        assert world.metrics.deliveries

    def test_existing_network_and_shared_simulator(self):
        sim = Simulator(seed=9)
        net = build_sensor_network(
            np.array([[0.0, 0.0]]), np.array([[5.0, 0.0]]), comm_range=10.0
        )
        world = WorldBuilder().simulator(sim).network(net).ideal_radio().build()
        assert world.sim is sim
        assert world.network is net

    def test_no_topology_raises(self):
        with pytest.raises(ConfigurationError):
            WorldBuilder().ideal_radio().build()

    def test_sensors_without_gateways_raises(self):
        with pytest.raises(ConfigurationError):
            WorldBuilder().sensors(np.zeros((3, 2))).comm_range(10.0).build()

    def test_network_and_positions_conflict_raises(self):
        net = build_sensor_network(
            np.array([[0.0, 0.0]]), np.array([[5.0, 0.0]]), comm_range=10.0
        )
        with pytest.raises(ConfigurationError):
            (WorldBuilder().network(net).sensors(np.zeros((2, 2)))
             .comm_range(10.0).build())

    def test_require_connected_raises_on_partition(self):
        sensors = np.array([[0.0, 0.0], [500.0, 500.0]])
        with pytest.raises(TopologyError):
            (WorldBuilder().sensors(sensors).gateways([[10.0, 0.0]])
             .comm_range(12.0).require_connected().build())

    def test_comm_range_falls_back_to_radio(self):
        sensors = np.array([[0.0, 0.0], [30.0, 0.0]])
        world = (
            WorldBuilder().sensors(sensors).gateways([[60.0, 0.0]])
            .radio(IEEE802154.ideal()).build()
        )
        assert world.network.comm_range == IEEE802154.comm_range


class TestEventRecorder:
    def test_records_events_of_worlds_built_inside(self):
        with record_world_events() as rec:
            world = (
                WorldBuilder().seed(1)
                .sensors(np.array([[0.0, 0.0], [10.0, 0.0]]))
                .gateways([[20.0, 0.0]]).comm_range(12.0).ideal_radio().build()
            )
            spr = world.attach(SPR)
            spr.send_data(0)
            world.sim.run()
        assert rec.events_processed == world.events_processed
        assert rec.events_processed > 0

    def test_shared_simulator_counted_once(self):
        sim = Simulator(seed=2)
        net = build_sensor_network(
            np.array([[0.0, 0.0]]), np.array([[5.0, 0.0]]), comm_range=10.0
        )
        with record_world_events() as rec:
            WorldBuilder().simulator(sim).network(net).ideal_radio().build()
            WorldBuilder().simulator(sim).network(net).ideal_radio().build()
            assert rec.worlds_tracked == 1
            for _ in range(3):
                sim.schedule(0.1, lambda: None)
            sim.run()
        assert rec.events_processed == 3

    def test_prior_events_not_attributed(self):
        sim = Simulator(seed=4)
        for _ in range(5):
            sim.schedule(0.1, lambda: None)
        sim.run()
        net = build_sensor_network(
            np.array([[0.0, 0.0]]), np.array([[5.0, 0.0]]), comm_range=10.0
        )
        with record_world_events() as rec:
            WorldBuilder().simulator(sim).network(net).ideal_radio().build()
            sim.schedule(0.1, lambda: None)
            sim.run()
        assert rec.events_processed == 1

    def test_outside_worlds_not_recorded(self):
        with record_world_events() as rec:
            pass
        world = (
            WorldBuilder().sensors(np.array([[0.0, 0.0]]))
            .gateways([[5.0, 0.0]]).comm_range(10.0).ideal_radio().build()
        )
        world.sim.schedule(0.1, lambda: None)
        world.sim.run()
        assert rec.events_processed == 0


def _run_grid(vectorized: bool, radio: RadioConfig, seed: int = 7):
    """A 4x4 grid world on exact (axis-aligned) distances, several flows."""
    builder = (
        WorldBuilder()
        .seed(seed)
        .grid_sensors(4, 4, spacing=10.0)
        .gateways([[40.0, 30.0]])
        .comm_range(10.5)  # axis-aligned links only: distances are exact floats
        .radio(radio)
    )
    if not vectorized:
        builder.scalar_fanout()
    world = builder.build()
    spr = world.attach(SPR)
    for s in (0, 5, 10, 15):
        world.sim.schedule(0.01 * s, spr.send_data, s)
    world.sim.run()
    m = world.metrics
    deliveries = [(r.origin, r.uid, r.hops, r.latency, r.destination) for r in m.deliveries]
    return deliveries, dict(m.drops), world.sim.now, world.events_processed


class TestFanoutEquivalence:
    """The vectorized fan-out must be bit-identical to the scalar loop."""

    def test_ideal_radio_identical(self):
        radio = IEEE802154.ideal()
        assert _run_grid(True, radio) == _run_grid(False, radio)

    def test_lossy_radio_identical_rng_stream(self):
        lossy = RadioConfig(
            name="lossy", bitrate=250_000.0, comm_range=40.0,
            loss_rate=0.3, collisions=False, csma=False,
            backoff_window=0.0, arq_retries=2,
        )
        a = _run_grid(True, lossy)
        b = _run_grid(False, lossy)
        assert a == b
        assert a[1].get("loss", 0) > 0  # the loss draws actually fired

    def test_contention_radio_identical(self):
        assert _run_grid(True, IEEE802154) == _run_grid(False, IEEE802154)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
