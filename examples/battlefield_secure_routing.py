#!/usr/bin/env python
"""Battlefield monitoring: SecMLR under active attack.

The paper's security motivation (Sections 2.3 and 6): "Applications of
wireless sensor networks often include sensitive information such as
enemy movement on the battlefield", sinks may be mobile, and captured
nodes mount routing attacks.  This script deploys a field with mobile
gateways, compromises two sensors (a sinkhole attacker and a replayer),
and runs the *same* battle twice — once with plain MLR, once with SecMLR
— printing what each attack achieved against each protocol.

Run:  python examples/battlefield_secure_routing.py
"""

import numpy as np

from repro import WorldBuilder
from repro.analysis import format_table
from repro.core import MLR, SecMLR
from repro.security import ReplayAttacker, SinkholeAttacker, compromise
from repro.sim import FeasiblePlaces, GatewaySchedule, uniform_deployment

FIELD = 200.0
ROUND = 6.0
ROUNDS = 5

def battle(protocol_cls, label: str) -> list:
    places = FeasiblePlaces.from_mapping({
        "FOB-alpha": (0.15 * FIELD, 0.15 * FIELD),
        "FOB-bravo": (0.85 * FIELD, 0.85 * FIELD),
        "ridge": (0.5 * FIELD, 0.5 * FIELD),
        "river": (0.15 * FIELD, 0.85 * FIELD),
        "pass": (0.85 * FIELD, 0.15 * FIELD),
    })
    sensors = uniform_deployment(n=60, field_size=FIELD, seed=21)
    initial = [places.position("FOB-alpha"), places.position("FOB-bravo")]
    world = (
        WorldBuilder()
        .seed(9)
        .sensors(sensors)
        .gateways(np.asarray(initial))
        .comm_range(50.0)
        .ideal_radio()
        .places(places)
        .build()
    )
    sim, network = world.sim, world.network
    schedule = GatewaySchedule.rotating(places, network.gateway_ids, num_rounds=ROUNDS, seed=2)
    protocol = world.attach(protocol_cls, schedule)

    # The adversary captured two sensors: one central (sinkhole), one near
    # a gateway (replays everything it forwards).
    center = min(
        network.sensor_ids,
        key=lambda s: float(((network.positions[s] - FIELD / 2) ** 2).sum()),
    )
    near_gw = min(
        network.sensor_ids,
        key=lambda s: network.distance(s, network.gateway_ids[0]),
    )
    sinkhole = compromise(protocol, center, SinkholeAttacker())
    replayer = compromise(protocol, near_gw, ReplayAttacker(delay=0.9))

    honest = [s for s in network.sensor_ids if s not in (center, near_gw)]
    for r in range(ROUNDS):
        sim.run(until=r * ROUND)
        protocol.start_round(r)
        for i, s in enumerate(honest):
            sim.schedule(2.2 + (i % 59) * 1e-3, protocol.send_data, s)
    sim.run()

    m = world.metrics
    from collections import Counter

    copies = Counter((r.origin, r.uid) for r in m.deliveries)
    duplicates = sum(v - 1 for v in copies.values())
    rejected = sum(protocol.security_rejections.values()) if hasattr(
        protocol, "security_rejections") else 0
    return [
        label,
        round(min(1.0, len(copies) / m.data_generated), 3),
        duplicates,
        sinkhole.stats.get("forged_rres", 0),
        sinkhole.stats.get("swallowed_data", 0),
        replayer.stats.get("replayed", 0),
        rejected,
    ]

def main() -> None:
    rows = [battle(MLR, "MLR (unsecured)"), battle(SecMLR, "SecMLR")]
    print(format_table(
        ["protocol", "honest delivery", "dup accepted", "fake routes sent",
         "data swallowed", "replays sent", "crypto rejects"],
        rows,
        title="Battlefield: sinkhole + replay attackers vs MLR and SecMLR",
    ))
    print(
        "\nReading: the sinkhole's forged routes only *work* against MLR\n"
        "(data swallowed > 0, delivery down); SecMLR rejects the forgeries\n"
        "and the replays (crypto rejects > 0) and keeps delivering."
    )

if __name__ == "__main__":
    main()
