#!/usr/bin/env python
"""Regenerate every paper artifact (E1-E11, E14) in one run.

A convenience driver over :mod:`repro.experiments`: prints each
experiment's paper-style table in order. The benchmark suite
(``pytest benchmarks/ --benchmark-only -s``) runs the same code with the
shape assertions; this script is for reading the numbers.

Run:  python examples/reproduce_paper.py [--fast]

``--fast`` shrinks the expensive sweeps (E4 sizes, E8 attack list) so the
whole paper regenerates in under a minute.
"""

import sys
import time

from repro import experiments as E

def main() -> None:
    fast = "--fast" in sys.argv
    plan = [
        ("E1  Fig. 2 (exact)", E.run_fig2, {}),
        ("E2  Table 1 (exact)", E.run_table1, {}),
        ("E3  Fig. 1 architecture", E.run_architecture, {}),
        ("E4  scalability", E.run_scalability,
         {"sizes": (50, 100) if fast else (50, 100, 200, 400)}),
        ("E5  lifetime", E.run_lifetime_comparison,
         {"protocols": ("MLR", "SPR", "flat-1-sink", "flooding")} if fast else {}),
        ("E6  gateway count", E.run_gateway_count,
         {"ks": (1, 2, 4)} if fast else {}),
        ("E7  security overhead", E.run_security_overhead, {}),
        ("E8  attack matrix", E.run_attack_matrix,
         {"attacks": ("none", "sinkhole", "replay", "hello_flood")} if fast else {}),
        ("E9  robustness", E.run_robustness, {}),
        ("E10 mobility overhead", E.run_mobility_overhead, {}),
        ("E11 LP bound", E.run_lp_bound, {}),
        ("E14 chaos campaign", E.run_chaos,
         {"n_sensors": 30, "rounds": 4} if fast else {}),
    ]
    t_all = time.time()
    for name, fn, kwargs in plan:
        t = time.time()
        result = fn(**kwargs)
        print(f"\n{'=' * 72}\n{name}   [{time.time() - t:.1f}s]\n{'=' * 72}")
        print(result.format_table())
        if hasattr(result, "matches_paper"):
            print(f"matches paper exactly: {result.matches_paper}")
    print(f"\nAll experiments regenerated in {time.time() - t_all:.0f}s. "
          "See EXPERIMENTS.md for the paper-vs-measured discussion.")

if __name__ == "__main__":
    main()
