#!/usr/bin/env python
"""Quickstart: build a WMSN, route data with SPR, inspect the results.

This is the smallest end-to-end use of the library's public API:

1. deploy a sensor field with multiple mesh gateways (the paper's
   architecture, Section 3);
2. attach the SPR routing protocol (Section 5.2);
3. generate traffic, run the discrete-event simulation;
4. read delivery / hop / energy statistics.

Run:  python examples/quickstart.py
"""

from repro import WorldBuilder
from repro.analysis import energy_stats, format_table, hop_histogram
from repro.core import SPR
from repro.sim import IEEE802154

def main() -> None:
    # --- 1. deployment + wiring ------------------------------------------
    # 120 sensors uniformly over a 300 m x 300 m field, three wireless mesh
    # gateways (WMGs) spread across it.  WorldBuilder wires the simulator,
    # topology, radio channel and metrics together in one place.
    world = (
        WorldBuilder()
        .seed(7)                                              # protocol seed
        .uniform_sensors(120, field_size=300.0, topology_seed=42)
        .gateways([[60.0, 60.0], [240.0, 240.0], [60.0, 240.0]])
        .comm_range(60.0)
        .radio(IEEE802154)              # CSMA, collisions, 250 kb/s
        .build()
    )
    sim, network = world.sim, world.network
    print(f"deployed {len(network.sensor_ids)} sensors, "
          f"{len(network.gateway_ids)} gateways; "
          f"collection-connected: {network.is_collection_connected()}")

    # --- 2. protocol ------------------------------------------------------
    from repro.core import ProtocolConfig

    # On a contention radio, give discovery room to breathe: longer
    # response timeout and flood-rebroadcast jitter (see ProtocolConfig).
    spr = world.attach(SPR,
                       ProtocolConfig(discovery_timeout=0.5, flood_jitter=0.03,
                                      max_discovery_attempts=5))

    # --- 3. traffic --------------------------------------------------------
    # Every sensor reports two readings on its own schedule — sensors in
    # the field are not synchronised, and the 250 kb/s channel cannot
    # absorb 120 simultaneous discovery floods.
    for k in range(2):
        for i, s in enumerate(network.sensor_ids):
            sim.schedule(6.0 * k + i * 0.05, spr.send_data, s)
    sim.run()

    # --- 4. results --------------------------------------------------------
    m = world.metrics
    e = energy_stats(network)
    print(format_table(
        ["metric", "value"],
        [
            ["packets generated", m.data_generated],
            ["delivery ratio", round(m.delivery_ratio, 3)],
            ["mean hops", round(m.mean_hops, 2)],
            ["mean latency (ms)", round(m.mean_latency * 1e3, 2)],
            ["total sensor energy (mJ)", round(e["total"] * 1e3, 2)],
            ["energy variance (eq. 1 D^2)", f'{e["variance"]:.3e}'],
            ["frames on air", m.control_frames + m.data_frames],
        ],
        title="SPR quickstart",
    ))
    print("\nhops histogram:", hop_histogram(m))
    sample = network.sensor_ids[0]
    route = spr.route_of(sample)
    if route is not None:
        print(f"sensor {sample} routes via {route.path} ({route.hops} hops) "
              f"to gateway {route.gateway}")

if __name__ == "__main__":
    main()
