#!/usr/bin/env python
"""Forest-fire monitoring: MLR with mobile gateways over a large field.

The paper motivates MLR with exactly this deployment (Section 4.1 names
forest monitoring explicitly): a big field, battery sensors reporting
temperature every round, and energy-restricted mesh gateways that are
periodically *moved* among a handful of feasible places (clearings,
access roads) to rotate the forwarding hot-spots and stretch network
lifetime.

The script also simulates the paper's load-balancing scenario (Section
4.2): a fire breaks out in one corner, the sensors there start reporting
at 8x rate, and MLR's next rounds still deliver because the rotating
gateways and accumulated tables spread the surge.

Run:  python examples/forest_fire_monitoring.py
"""

import numpy as np

from repro import WorldBuilder
from repro.analysis import energy_balance_index, energy_stats, format_table
from repro.core import MLR
from repro.sim import FeasiblePlaces, GatewaySchedule, uniform_deployment

FIELD = 260.0
ROUND = 8.0

def main() -> None:
    # Feasible gateway places: four forest clearings + a central ridge.
    places = FeasiblePlaces.from_mapping({
        "north-clearing": (0.2 * FIELD, 0.85 * FIELD),
        "south-clearing": (0.8 * FIELD, 0.15 * FIELD),
        "east-road": (0.85 * FIELD, 0.6 * FIELD),
        "west-road": (0.15 * FIELD, 0.4 * FIELD),
        "central-ridge": (0.5 * FIELD, 0.5 * FIELD),
    })
    sensors = uniform_deployment(n=90, field_size=FIELD, seed=11)
    initial = [places.position("north-clearing"), places.position("south-clearing")]
    world = (
        WorldBuilder()
        .seed(3)
        .sensors(sensors)
        .gateways(np.asarray(initial))
        .comm_range(55.0)
        .sensor_battery(0.08)
        .ideal_radio()
        .places(places)
        .build()
    )
    sim, network = world.sim, world.network
    num_rounds = 12
    schedule = GatewaySchedule.rotating(
        places, network.gateway_ids, num_rounds=num_rounds, seed=5
    )
    mlr = world.attach(MLR, schedule)

    # The fire: sensors in the NE corner report at 8x rate from round 6 on.
    corner = [
        s for s in network.sensor_ids
        if network.positions[s][0] > 0.7 * FIELD and network.positions[s][1] > 0.7 * FIELD
    ]
    print(f"{len(network.sensor_ids)} sensors, fire zone holds {len(corner)} of them")

    for r in range(num_rounds):
        sim.run(until=r * ROUND)
        mlr.start_round(r)
        burst = 8 if r >= 6 else 1
        for i, s in enumerate(network.sensor_ids):
            reports = burst if s in corner else 1
            for k in range(reports):
                sim.schedule(2.0 + 0.4 * k + (i % 89) * 1e-3, mlr.send_data, s)
    sim.run()

    m = world.metrics
    e = energy_stats(network)
    dead = [s for s in network.sensor_ids if not network.nodes[s].alive]
    print(format_table(
        ["metric", "value"],
        [
            ["rounds simulated", num_rounds],
            ["reports generated", m.data_generated],
            ["delivery ratio", round(m.delivery_ratio, 3)],
            ["mean hops", round(m.mean_hops, 2)],
            ["total energy (mJ)", round(e["total"] * 1e3, 1)],
            ["energy balance index", round(energy_balance_index(network), 3)],
            ["dead sensors", len(dead)],
            ["lifetime (s)", "-" if m.lifetime is None else round(m.lifetime, 1)],
        ],
        title="Forest-fire monitoring with MLR",
    ))
    sample = corner[0] if corner else network.sensor_ids[0]
    print(f"\nfire-zone sensor {sample} accumulated table "
          f"(place, hops): {[(p, h) for p, h, _ in mlr.table_snapshot(sample)]}")
    print(f"currently selected place: {mlr.selected_place(sample)}")

if __name__ == "__main__":
    main()
