"""E4 — scalability: hops/latency vs size, single sink vs m gateways.

Reproduction criterion (shape): single-sink mean hops grow with the
field; the multi-gateway curve stays below it and the gap widens —
"with the expansion of sensor networks, the average number of hops ...
become more and more" (Section 1).
"""

from repro.experiments.scalability import run_scalability


def test_scalability_single_vs_multi(once):
    result = once(run_scalability, sizes=(50, 100, 200))
    print("\n" + result.format_table())
    single = result.single_sink_hops_series
    multi = result.multi_gateway_hops_series
    # Multi-gateway wins at every size...
    for s, m in zip(single, multi):
        assert m < s
    # ...single-sink hops grow monotonically with the field...
    assert single == sorted(single)
    # ...and the largest network shows a bigger absolute gap than the smallest.
    assert (single[-1] - multi[-1]) > (single[0] - multi[0])
