"""Sharded-executor scaling benchmark: 1/2/4 workers, one digest.

Runs the same flooding workload through :func:`repro.shard.run_sharded`
at increasing worker counts — plus a smaller MLR workload (unicast
routing, discovery floods, a gateway relocation round) over the same
worker counts — and checks two things at once:

* **Correctness** — every leg must produce the same order-canonical
  :func:`~repro.shard.runner.run_digest`; the sharded legs additionally
  pass the merged-ledger conservation audit.  A digest mismatch is a
  hard failure, not a slow run.
* **Scaling** — the headline ``speedup`` is ``wall(1 worker) /
  wall(max workers)``.  Speedup only materializes with real cores:
  the record stores ``cpu_count`` so a number taken on a 1-CPU
  container is not mistaken for a regression.  The CI job on a
  multi-core runner gates with ``--min-speedup``.

Refresh the committed record (20k sensors, the E6 configuration)::

    PYTHONPATH=src python benchmarks/bench_shard.py --sensors 20000

The record lands at the repo root as ``BENCH_shard.json`` in the
``BENCH_hotpath.json`` schema via :mod:`benchmarks._record`.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

from _record import bench_record, write_bench
from repro.experiments.scalability import make_xl_mlr_workload, make_xl_workload
from repro.shard import CheckpointConfig, run_sharded

#: sensors per square meter — one per 30x30 m cell, the paper's density.
_DENSITY = 1 / 900.0
_COMM_RANGE = 55.0


def _timed_legs(
    workload, workers: list[int], legs: dict, prefix: str
) -> tuple[str, object]:
    """Run ``workload`` at every worker count; returns (digest, metrics).

    Appends one ``{prefix}workers-N`` entry per leg and raises on any
    digest divergence from the first leg.
    """
    digests: dict[int, str] = {}
    baseline_metrics = None
    for w in workers:
        result = run_sharded(workload, shards=w)
        digests[w] = result.digest
        if baseline_metrics is None:
            baseline_metrics = result.metrics
        legs[f"{prefix}workers-{w}"] = {
            "workers": w,
            "wall_clock_s": result.wall_clock_s,
            "events_processed": result.events_processed,
            "events_per_sec": result.events_processed / result.wall_clock_s,
            "windows": result.windows,
            "conserved": result.conservation is None or result.conservation.ok,
        }
    want = digests[workers[0]]
    for w, got in digests.items():
        if got != want:
            raise AssertionError(
                f"{prefix or 'flooding '}digest diverged: "
                f"{workers[0]} workers -> {want}, {w} workers -> {got}"
            )
    return want, baseline_metrics


def run_benchmark(
    sensors: int,
    floods: int,
    ttl: int,
    workers: list[int],
    seed: int = 0,
    mlr_sensors: int = 2000,
    mlr_datums: int = 16,
    mlr_ttl: int = 12,
    checkpoint_every: int | None = None,
) -> dict:
    workload = make_xl_workload(
        sensors, floods, ttl, density=_DENSITY, comm_range=_COMM_RANGE,
        seed=seed, audit=True,
    )
    legs: dict[str, dict] = {}
    want, m_first = _timed_legs(workload, workers, legs, prefix="")
    mlr_workload = make_xl_mlr_workload(
        mlr_sensors, mlr_datums, mlr_ttl, density=_DENSITY,
        comm_range=_COMM_RANGE, seed=seed, audit=True,
    )
    mlr_want, _ = _timed_legs(mlr_workload, workers, legs, prefix="mlr-")
    base = legs[f"workers-{workers[0]}"]["wall_clock_s"]
    peak = legs[f"workers-{max(workers)}"]["wall_clock_s"]

    checkpoint_overhead = None
    if checkpoint_every is not None:
        # One extra leg at the peak worker count with barrier
        # checkpointing on: same digest (checkpoints are side-effect
        # free), and the wall-clock ratio against the uncheckpointed
        # peak leg is the price of durability.
        w = max(workers)
        with tempfile.TemporaryDirectory(prefix="bench-shard-ckpt-") as d:
            result = run_sharded(
                workload, shards=w,
                checkpoint=CheckpointConfig(dir=d, every=checkpoint_every),
            )
        if result.digest != want:
            raise AssertionError(
                f"checkpointed digest diverged: {want} -> {result.digest}"
            )
        plain = legs[f"workers-{w}"]["wall_clock_s"]
        checkpoint_overhead = result.wall_clock_s / plain
        legs[f"ckpt-workers-{w}"] = {
            "workers": w,
            "wall_clock_s": result.wall_clock_s,
            "events_processed": result.events_processed,
            "events_per_sec": result.events_processed / result.wall_clock_s,
            "windows": result.windows,
            "checkpoints": result.checkpoints,
            "checkpoint_every": checkpoint_every,
            "overhead_vs_plain": checkpoint_overhead,
            "conserved": result.conservation is None or result.conservation.ok,
        }

    extra = {"cpu_count": os.cpu_count()}
    if checkpoint_overhead is not None:
        extra["checkpoint_overhead"] = checkpoint_overhead
    return bench_record(
        config={"sensors": sensors, "floods": floods, "ttl": ttl, "seed": seed,
                "comm_range": _COMM_RANGE, "density": _DENSITY,
                "workers": list(workers),
                "mlr_sensors": mlr_sensors, "mlr_datums": mlr_datums,
                "mlr_ttl": mlr_ttl,
                "checkpoint_every": checkpoint_every},
        legs=legs,
        digest={"run_digest": want,
                "mlr_run_digest": mlr_want,
                "data_generated": m_first.data_generated,
                "delivered": len({(r.origin, r.uid) for r in m_first.deliveries}),
                "bytes_sent": m_first.bytes_sent},
        speedup=base / peak,
        **extra,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sensors", type=int, default=20000)
    parser.add_argument("--floods", type=int, default=8)
    parser.add_argument("--ttl", type=int, default=6,
                        help="flood TTL (bounds per-datum reach)")
    parser.add_argument("--workers", default="1,2,4",
                        help="comma-separated worker counts (first is baseline)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--mlr-sensors", type=int, default=2000,
                        help="network size for the MLR legs")
    parser.add_argument("--mlr-datums", type=int, default=16,
                        help="unicast datums for the MLR legs")
    parser.add_argument("--mlr-ttl", type=int, default=12,
                        help="discovery-flood TTL for the MLR legs")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="record destination ('-' for stdout; default "
                             "BENCH_shard.json at the repo root)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero when speedup falls below this")
    parser.add_argument("--checkpoint-every", type=int, default=None,
                        metavar="N",
                        help="add a checkpointing leg (peak worker count, "
                             "snapshot every N windows) and record its "
                             "overhead vs the plain leg")
    parser.add_argument("--max-checkpoint-overhead", type=float, default=None,
                        help="exit non-zero when the checkpointing leg's "
                             "wall-clock ratio exceeds this (e.g. 1.05)")
    args = parser.parse_args(argv)

    if args.max_checkpoint_overhead is not None and args.checkpoint_every is None:
        parser.error("--max-checkpoint-overhead requires --checkpoint-every")
    workers = [int(w) for w in args.workers.split(",")]
    report = run_benchmark(
        args.sensors, args.floods, args.ttl, workers, seed=args.seed,
        mlr_sensors=args.mlr_sensors, mlr_datums=args.mlr_datums,
        mlr_ttl=args.mlr_ttl, checkpoint_every=args.checkpoint_every,
    )
    written = write_bench("shard", report, path=args.json)
    if written != "-":
        print(f"sensors={args.sensors} floods={args.floods} ttl={args.ttl} "
              f"cpus={report['cpu_count']}")
        for label, leg in report["legs"].items():
            print(f"{label:<12} {leg['wall_clock_s']:.3f}s  "
                  f"{leg['events_per_sec']:,.0f} ev/s  "
                  f"windows={leg['windows']}")
        print(f"digest:      {report['digest']['run_digest'][:16]}… (all legs equal)")
        print(f"mlr digest:  {report['digest']['mlr_run_digest'][:16]}… (all legs equal)")
        print(f"speedup:     {report['speedup']:.2f}x")
        if "checkpoint_overhead" in report:
            print(f"ckpt ovh:    {report['checkpoint_overhead']:.3f}x "
                  f"(every {args.checkpoint_every} windows)")
        print(f"record:      {written}")

    if args.min_speedup is not None and report["speedup"] < args.min_speedup:
        print(f"FAIL: speedup {report['speedup']:.2f}x < required "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    if (
        args.max_checkpoint_overhead is not None
        and report["checkpoint_overhead"] > args.max_checkpoint_overhead
    ):
        print(f"FAIL: checkpoint overhead {report['checkpoint_overhead']:.3f}x > "
              f"allowed {args.max_checkpoint_overhead:.3f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
