"""E3 — Fig. 1: the three-tier architecture end to end.

Reproduction criterion (behavioural — Fig. 1 is a diagram): sensed data
crosses all three tiers; the sensor tier is multi-hop 802.15.4 and slower
per-frame than the 802.11 mesh tier; delivery to the Internet host is
high.
"""

from repro.experiments.architecture import run_architecture


def test_three_tier_architecture(once):
    result = once(run_architecture)
    print("\n" + result.format_table())
    assert result.delivery_ratio > 0.9
    assert result.mean_sensor_hops >= 1.0
    assert result.mean_mesh_hops >= 1.0
    # 802.15.4 at 250 kb/s vs 802.11 at 11 Mb/s: per-hop airtime differs
    # by ~40x, so sensor-tier latency per hop must dominate.
    sensor_per_hop = result.mean_sensor_latency / result.mean_sensor_hops
    mesh_per_hop = result.mean_mesh_latency / result.mean_mesh_hops
    assert sensor_per_hop > mesh_per_hop
    # The wired segment contributes its fixed latency on top.
    assert result.mean_end_to_end_latency > result.mean_sensor_latency
