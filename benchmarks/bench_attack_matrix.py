"""E8 — the attack matrix: MLR vs SecMLR under the Section 2.3 catalogue.

Reproduction criterion (shape of the Section 6 claim):

* authentication attacks (spoof, replay, alteration, HELLO flood,
  sinkhole) succeed against MLR and are neutralised by SecMLR;
* pure dropping attacks (selective forwarding, blackhole, wormhole)
  damage both — no MAC prevents silence — degrading gracefully.
"""

from repro.experiments.attack_matrix import run_attack_matrix


def test_attack_matrix(once):
    result = once(run_attack_matrix)
    print("\n" + result.format_table())

    base_mlr = result.cell("none", "MLR").delivery_ratio
    base_sec = result.cell("none", "SecMLR").delivery_ratio
    assert base_mlr > 0.95 and base_sec > 0.95

    # HELLO flood: unsecured sensors believe the forged place announcement
    # and lose traffic; μTESLA receivers reject it.
    assert result.cell("hello_flood", "MLR").delivery_ratio < base_mlr - 0.2
    assert result.cell("hello_flood", "SecMLR").delivery_ratio > base_sec - 0.05
    assert result.cell("hello_flood", "SecMLR").rejected > 0

    # Spoofing: MLR books forged readings, SecMLR books none.
    assert result.cell("spoof", "MLR").forged_accepted > 0
    assert result.cell("spoof", "SecMLR").forged_accepted == 0

    # Replay: duplicates reach the gateway under MLR only.
    assert result.cell("replay", "MLR").duplicates > 0
    assert result.cell("replay", "SecMLR").duplicates == 0

    # Sinkhole: the forged routes lure MLR traffic into the attacker;
    # SecMLR rejects every forged response, so less data is lured into the
    # attacker's maw.  (Total delivery still suffers in both — the attacker
    # also suppresses discovery floods through itself, which no crypto can
    # prevent; see EXPERIMENTS.md.)
    assert result.cell("sinkhole", "MLR").delivery_ratio < base_mlr - 0.1
    assert result.cell("sinkhole", "SecMLR").rejected > 0
    swallowed_mlr = result.cell("sinkhole", "MLR").attacker_stats.get("swallowed_data", 0)
    swallowed_sec = result.cell("sinkhole", "SecMLR").attacker_stats.get("swallowed_data", 0)
    assert swallowed_mlr > swallowed_sec

    # Dropping attacks hurt both, SecMLR no worse than MLR.
    for attack in ("selective", "blackhole"):
        mlr = result.cell(attack, "MLR").delivery_ratio
        sec = result.cell(attack, "SecMLR").delivery_ratio
        assert sec >= mlr - 0.1
