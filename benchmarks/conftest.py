"""Shared benchmark configuration.

Every benchmark runs its experiment exactly once (``pedantic`` with one
round): the experiments are full discrete-event simulations whose
interesting output is the reproduced table, not a microsecond timing
distribution.  Each benchmark prints the paper-style table (visible with
``pytest benchmarks/ --benchmark-only -s``) and asserts the *shape* the
paper claims.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
