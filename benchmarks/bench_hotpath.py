"""Hot-path microbenchmark: vectorized vs scalar radio fan-out.

Broadcast floods dominate E4/E8/E9 sweeps, and each flood frame fans out
to every neighbor of the sender — the per-neighbor loop in
``Channel._begin_tx`` is where simulation time goes.  This benchmark
floods a dense uniform field through both fan-out implementations (the
NumPy-batched default and the pre-refactor scalar reference loop, kept
as ``Channel(vectorized=False)``) and reports events/sec and fan-out
(frame receptions)/sec for each, plus the speedup.

Run standalone for JSON output::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --nodes 500 --json -

The CI smoke job runs a small config with ``--min-speedup`` so a
regression that makes the vectorized path slower than the reference loop
fails loudly.  Both paths are draw-order stable, so their simulations
are bit-identical — the benchmark asserts that too (same event count,
same frame counts), making it a correctness check as well as a timer.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time

from repro.core.base import ProtocolConfig
from repro.core.spr import SPR
from repro.world import WorldBuilder

#: target mean node degree of the benchmark field — dense enough that
#: fan-out dominates, sparse enough that floods terminate quickly.
_TARGET_DEGREE = 20.0
_COMM_RANGE = 40.0


def _field_size(n_nodes: int) -> float:
    """Field edge giving roughly ``_TARGET_DEGREE`` neighbors per node."""
    return math.sqrt(n_nodes * math.pi * _COMM_RANGE**2 / _TARGET_DEGREE)


def run_flood(n_nodes: int, floods: int, vectorized: bool, seed: int = 0) -> dict:
    """Flood the field ``floods`` times and time the simulation run."""
    field = _field_size(n_nodes)
    builder = (
        WorldBuilder()
        .seed(seed)
        .uniform_sensors(n_nodes, field_size=field, topology_seed=seed)
        .gateways([[field / 2.0, field / 2.0]])
        .comm_range(_COMM_RANGE)
        .ideal_radio()
    )
    if not vectorized:
        builder.scalar_fanout()
    world = builder.build()
    # Table answering off: every discovery floods the whole field instead
    # of being answered one hop out, which is the fan-out stress we want.
    spr = world.attach(SPR, ProtocolConfig(table_answering=False))
    world.network.neighbors(0)  # pre-warm the neighbor cache out of the timing

    for k in range(floods):
        world.sim.schedule(0.5 * k, spr.send_data, k % n_nodes)
    t0 = time.perf_counter()
    world.sim.run()
    wall = time.perf_counter() - t0

    m = world.metrics
    receptions = int(sum(m.received.values()))
    return {
        "vectorized": vectorized,
        "nodes": n_nodes,
        "floods": floods,
        "wall_clock_s": wall,
        "events_processed": world.events_processed,
        "events_per_sec": world.events_processed / wall,
        "frames_sent": int(sum(m.sent.values())),
        "receptions": receptions,
        "fanout_per_sec": receptions / wall,
    }


def run_benchmark(n_nodes: int, floods: int, seed: int = 0) -> dict:
    scalar = run_flood(n_nodes, floods, vectorized=False, seed=seed)
    vectorized = run_flood(n_nodes, floods, vectorized=True, seed=seed)
    # Draw-order stability: both paths must have simulated the same thing.
    for key in ("events_processed", "frames_sent", "receptions"):
        if scalar[key] != vectorized[key]:
            raise AssertionError(
                f"fan-out paths diverged on {key}: "
                f"scalar={scalar[key]} vectorized={vectorized[key]}"
            )
    return {
        "config": {"nodes": n_nodes, "floods": floods, "seed": seed,
                   "comm_range": _COMM_RANGE, "field_size": _field_size(n_nodes)},
        "scalar": scalar,
        "vectorized": vectorized,
        "speedup": scalar["wall_clock_s"] / vectorized["wall_clock_s"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=500)
    parser.add_argument("--floods", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the JSON report here ('-' for stdout)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero when speedup falls below this")
    args = parser.parse_args(argv)

    report = run_benchmark(args.nodes, args.floods, seed=args.seed)
    blob = json.dumps(report, indent=2)
    if args.json == "-":
        print(blob)
    else:
        if args.json:
            with open(args.json, "w") as fh:
                fh.write(blob + "\n")
        s, v = report["scalar"], report["vectorized"]
        print(f"nodes={args.nodes} floods={args.floods} "
              f"events={v['events_processed']}")
        print(f"scalar:     {s['wall_clock_s']:.3f}s  "
              f"{s['events_per_sec']:,.0f} ev/s  {s['fanout_per_sec']:,.0f} rx/s")
        print(f"vectorized: {v['wall_clock_s']:.3f}s  "
              f"{v['events_per_sec']:,.0f} ev/s  {v['fanout_per_sec']:,.0f} rx/s")
        print(f"speedup:    {report['speedup']:.2f}x")

    if args.min_speedup is not None and report["speedup"] < args.min_speedup:
        print(f"FAIL: speedup {report['speedup']:.2f}x < required "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
