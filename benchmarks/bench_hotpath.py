"""Hot-path microbenchmark: scalar vs vectorized vs struct-of-arrays.

Broadcast floods dominate E4/E8/E9 sweeps, and each flood frame fans out
to every neighbor of the sender — reception delivery is where simulation
time goes.  This benchmark floods a dense uniform field through the
three execution strategies kept by :class:`~repro.world.WorldConfig`:

* ``object-scalar`` — per-object node state, pre-refactor scalar
  fan-out reference loop (``vectorized=False``);
* ``object-vec`` — per-object node state, NumPy-batched fan-out math
  (PR 2's path, ``soa=False``);
* ``soa`` — the :class:`~repro.sim.state.NodeStateStore` columns plus
  batched delivery draining (the default).

All three are draw-order stable, so their simulations are bit-identical;
the benchmark asserts that digest (same event count, same frame counts,
same reception totals) before reporting timings, making it a correctness
gate as well as a timer.  Run standalone for JSON output::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --nodes 500 \
        --json BENCH_hotpath.json

The CI smoke job runs a small config with ``--min-speedup`` (vectorized
vs scalar) and ``--min-soa-speedup`` (SoA vs scalar) so a regression
that loses the batched paths' advantage fails loudly.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time

from repro.core.base import ProtocolConfig
from repro.core.spr import SPR
from repro.world import WorldBuilder, WorldConfig

#: target mean node degree of the benchmark field — dense enough that
#: fan-out dominates, sparse enough that floods terminate quickly.
_TARGET_DEGREE = 20.0
_COMM_RANGE = 40.0

#: label -> execution configuration of each benchmark leg.
LEGS = {
    "object-scalar": WorldConfig(vectorized=False, soa=False),
    "object-vec": WorldConfig(soa=False),
    "soa": WorldConfig(),
}

#: counters every leg must agree on (the bit-identity digest).
_DIGEST_KEYS = ("events_processed", "frames_sent", "receptions")


def _field_size(n_nodes: int) -> float:
    """Field edge giving roughly ``_TARGET_DEGREE`` neighbors per node."""
    return math.sqrt(n_nodes * math.pi * _COMM_RANGE**2 / _TARGET_DEGREE)


def run_flood(n_nodes: int, floods: int, config: WorldConfig, seed: int = 0) -> dict:
    """Flood the field ``floods`` times and time the simulation run."""
    field = _field_size(n_nodes)
    world = (
        WorldBuilder()
        .seed(seed)
        .uniform_sensors(n_nodes, field_size=field, topology_seed=seed)
        .gateways([[field / 2.0, field / 2.0]])
        .comm_range(_COMM_RANGE)
        .ideal_radio()
        .configure(config)
        .build()
    )
    # Table answering off: every discovery floods the whole field instead
    # of being answered one hop out, which is the fan-out stress we want.
    spr = world.attach(SPR, ProtocolConfig(table_answering=False))
    world.network.neighbors(0)  # pre-warm the neighbor cache out of the timing

    for k in range(floods):
        world.sim.schedule(0.5 * k, spr.send_data, k % n_nodes)
    t0 = time.perf_counter()
    world.sim.run()
    wall = time.perf_counter() - t0

    m = world.metrics
    receptions = int(sum(m.received.values()))
    return {
        "nodes": n_nodes,
        "floods": floods,
        "wall_clock_s": wall,
        "events_processed": world.events_processed,
        "events_per_sec": world.events_processed / wall,
        "frames_sent": int(sum(m.sent.values())),
        "receptions": receptions,
        "fanout_per_sec": receptions / wall,
    }


def run_benchmark(n_nodes: int, floods: int, seed: int = 0, repeat: int = 1) -> dict:
    """Time every leg (best of ``repeat``) and gate on the shared digest."""
    results: dict[str, dict] = {}
    for label, config in LEGS.items():
        runs = [run_flood(n_nodes, floods, config, seed=seed) for _ in range(repeat)]
        results[label] = min(runs, key=lambda r: r["wall_clock_s"])

    # Bit-identity digest: every execution path simulated the same thing.
    reference = results["object-scalar"]
    for label, result in results.items():
        for key in _DIGEST_KEYS:
            if result[key] != reference[key]:
                raise AssertionError(
                    f"execution paths diverged on {key}: "
                    f"object-scalar={reference[key]} {label}={result[key]}"
                )

    scalar_wall = reference["wall_clock_s"]
    return {
        "config": {"nodes": n_nodes, "floods": floods, "seed": seed,
                   "repeat": repeat, "comm_range": _COMM_RANGE,
                   "field_size": _field_size(n_nodes)},
        "legs": results,
        "digest": {key: reference[key] for key in _DIGEST_KEYS},
        "speedup": scalar_wall / results["object-vec"]["wall_clock_s"],
        "soa_speedup": scalar_wall / results["soa"]["wall_clock_s"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=500)
    parser.add_argument("--floods", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeat", type=int, default=1,
                        help="run each leg this many times, keep the fastest")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the JSON report here ('-' for stdout)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero when the object-vec vs "
                             "object-scalar speedup falls below this")
    parser.add_argument("--min-soa-speedup", type=float, default=None,
                        help="exit non-zero when the soa vs object-scalar "
                             "speedup falls below this")
    args = parser.parse_args(argv)

    report = run_benchmark(args.nodes, args.floods, seed=args.seed,
                           repeat=args.repeat)
    blob = json.dumps(report, indent=2)
    if args.json == "-":
        print(blob)
    else:
        if args.json:
            with open(args.json, "w") as fh:
                fh.write(blob + "\n")
        print(f"nodes={args.nodes} floods={args.floods} "
              f"events={report['digest']['events_processed']}")
        for label, r in report["legs"].items():
            print(f"{label + ':':14s} {r['wall_clock_s']:.3f}s  "
                  f"{r['events_per_sec']:,.0f} ev/s  "
                  f"{r['fanout_per_sec']:,.0f} rx/s")
        print(f"speedup:       vec {report['speedup']:.2f}x   "
              f"soa {report['soa_speedup']:.2f}x")

    status = 0
    if args.min_speedup is not None and report["speedup"] < args.min_speedup:
        print(f"FAIL: object-vec speedup {report['speedup']:.2f}x < required "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        status = 1
    if (args.min_soa_speedup is not None
            and report["soa_speedup"] < args.min_soa_speedup):
        print(f"FAIL: soa speedup {report['soa_speedup']:.2f}x < required "
              f"{args.min_soa_speedup:.2f}x", file=sys.stderr)
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
