"""E1 — Fig. 2: hop counts with one sink vs three gateways.

Reproduction criterion: *exact* — the protocols must discover precisely
the hop counts printed in the paper (2/7/6/9 single-sink, 1/1/2/1 with
the published gateway assignment S1→G1, S2→G2, S3→G3, S4→G2).
"""

from repro.experiments.fig2_hops import PAPER_MULTI_GATEWAY, PAPER_SINGLE_SINK, run_fig2


def test_fig2_hop_counts(once):
    result = once(run_fig2)
    print("\n" + result.format_table())
    assert result.single_sink_hops == PAPER_SINGLE_SINK
    for sensor, (hops, gateway) in PAPER_MULTI_GATEWAY.items():
        assert result.multi_gateway_hops[sensor] == hops
        assert result.multi_gateway_served_by[sensor] == gateway
    assert result.matches_paper
    # The headline of Section 4.1: total hops collapse 24 -> 5.
    assert result.total_hops_single == 24
    assert result.total_hops_multi == 5
