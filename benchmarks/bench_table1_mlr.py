"""E2 — Table 1: MLR's incremental routing table over three rounds.

Reproduction criterion: *exact* — panels (a)-(c) and the per-round
selected place must match the paper (A:8 B:6 C:7 → select B; +D:5 →
select D; +E:6 → still D).
"""

from repro.experiments.table1_mlr import PAPER_TABLE1, run_table1


def test_table1_incremental_tables(once):
    result = once(run_table1)
    print("\n" + result.format_table())
    assert result.matches_paper
    for (paper_panel, paper_sel), panel, sel in zip(
        PAPER_TABLE1, result.panels, result.selections
    ):
        assert panel == paper_panel
        assert sel == paper_sel
    # The accumulation property: the table only ever grows.
    sizes = [len(p) for p in result.panels]
    assert sizes == sorted(sizes) == [3, 4, 5]
