"""Shared benchmark record writer: ``BENCH_<name>.json`` at repo root.

Every benchmark that leaves a committed record follows the
``BENCH_hotpath.json`` schema — a ``config`` block (the knobs the run
was taken with), a ``legs`` mapping (one timed configuration per label,
each with at least ``wall_clock_s``), a ``digest`` block (the numbers
every leg must agree on, proving the legs computed the same thing), and
a headline ``speedup``.  Centralizing the writer keeps the schema in
one place so ``bench_topology.py`` and ``bench_shard.py`` records stay
machine-comparable with the hotpath one.

Re-running a benchmark no longer discards the prior measurement: the
latest record stays at the top level (so consumers keep reading the
same shape) and earlier top-level records shift into a bounded
``history`` list, oldest first — a cheap local trend line across runs.
"""

from __future__ import annotations

import json
import os
from typing import Optional

__all__ = ["bench_record", "write_bench"]

#: the directory holding the committed BENCH_*.json records.
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: prior records kept in a BENCH file's ``history`` list (oldest are
#: dropped first); bounds committed file growth under repeated runs.
HISTORY_LIMIT = 20


def bench_record(
    config: dict, legs: dict, digest: dict, speedup: float, **extra
) -> dict:
    """Assemble a record in the ``BENCH_hotpath.json`` schema.

    ``extra`` lands at the top level (e.g. ``soa_speedup`` in the
    hotpath record, ``cpu_count`` in the shard one).
    """
    record = {
        "config": dict(config),
        "legs": {str(k): dict(v) for k, v in legs.items()},
        "digest": dict(digest),
        "speedup": float(speedup),
    }
    record.update(extra)
    return record


def _load_prior(path: str) -> Optional[dict]:
    """The existing record at ``path``, or None (absent/unreadable)."""
    try:
        with open(path) as fh:
            prior = json.load(fh)
    except (OSError, ValueError):
        return None
    return prior if isinstance(prior, dict) else None


def write_bench(name: str, record: dict, path: Optional[str] = None) -> str:
    """Write ``record`` to ``BENCH_<name>.json`` (repo root by default).

    The new record becomes the top level; an existing record at the
    destination is appended (minus its own ``history``) to the new
    record's ``history`` list, bounded to the last :data:`HISTORY_LIMIT`
    entries.  ``path`` overrides the destination (``"-"`` prints to
    stdout and writes nothing, leaving any existing file's history
    untouched).  Returns the path written, or ``"-"``.
    """
    for key in ("config", "legs", "digest", "speedup"):
        if key not in record:
            raise ValueError(f"bench record for {name!r} is missing {key!r}")
    if path == "-":
        print(json.dumps(record, indent=2))
        return "-"
    if path is None:
        path = os.path.join(REPO_ROOT, f"BENCH_{name}.json")
    record = dict(record)
    history = list(record.pop("history", []))
    prior = _load_prior(path)
    if prior is not None:
        history = list(prior.pop("history", []) or [])
        history.append(prior)
    record["history"] = history[-HISTORY_LIMIT:]
    # Atomic replace (same idiom as the runner's ResultCache): a killed
    # or crashed benchmark can never leave a truncated BENCH file behind
    # — readers see the complete old record or the complete new one.
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w") as fh:
            fh.write(json.dumps(record, indent=2) + "\n")
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # replace failed midway
            try:
                os.unlink(tmp)
            except OSError:
                pass
    return path
