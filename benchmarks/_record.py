"""Shared benchmark record writer: ``BENCH_<name>.json`` at repo root.

Every benchmark that leaves a committed record follows the
``BENCH_hotpath.json`` schema — a ``config`` block (the knobs the run
was taken with), a ``legs`` mapping (one timed configuration per label,
each with at least ``wall_clock_s``), a ``digest`` block (the numbers
every leg must agree on, proving the legs computed the same thing), and
a headline ``speedup``.  Centralizing the writer keeps the schema in
one place so ``bench_topology.py`` and ``bench_shard.py`` records stay
machine-comparable with the hotpath one.
"""

from __future__ import annotations

import json
import os
from typing import Optional

__all__ = ["bench_record", "write_bench"]

#: the directory holding the committed BENCH_*.json records.
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def bench_record(
    config: dict, legs: dict, digest: dict, speedup: float, **extra
) -> dict:
    """Assemble a record in the ``BENCH_hotpath.json`` schema.

    ``extra`` lands at the top level (e.g. ``soa_speedup`` in the
    hotpath record, ``cpu_count`` in the shard one).
    """
    record = {
        "config": dict(config),
        "legs": {str(k): dict(v) for k, v in legs.items()},
        "digest": dict(digest),
        "speedup": float(speedup),
    }
    record.update(extra)
    return record


def write_bench(name: str, record: dict, path: Optional[str] = None) -> str:
    """Write ``record`` to ``BENCH_<name>.json`` (repo root by default).

    ``path`` overrides the destination (``"-"`` prints to stdout and
    writes nothing).  Returns the path written, or ``"-"``.
    """
    for key in ("config", "legs", "digest", "speedup"):
        if key not in record:
            raise ValueError(f"bench record for {name!r} is missing {key!r}")
    blob = json.dumps(record, indent=2)
    if path == "-":
        print(blob)
        return "-"
    if path is None:
        path = os.path.join(REPO_ROOT, f"BENCH_{name}.json")
    with open(path, "w") as fh:
        fh.write(blob + "\n")
    return path
