"""E7 — SecMLR's cost over MLR on identical scenarios.

Reproduction criterion (shape): security costs something — more bytes on
the air (SNEP envelopes, μTESLA disclosures) and more discovery latency
(gateway collection timeout, no table answering) — but delivery is
preserved; the overhead is bounded, not catastrophic.
"""

from repro.experiments.security_overhead import run_security_overhead


def test_secmlr_overhead(once):
    result = once(run_security_overhead)
    print("\n" + result.format_table())
    # Security must not break the protocol.
    assert result.secmlr.delivery_ratio > 0.95
    assert abs(result.secmlr.mean_hops - result.mlr.mean_hops) < 0.5
    # It must cost something (otherwise the crypto isn't on the air)...
    assert result.byte_overhead > 0.05
    assert result.latency_overhead > 0.0
    # ...but stay within the same order of magnitude.
    assert result.byte_overhead < 2.0
    assert result.energy_overhead < 2.0
