"""E12/E13 — the paper's §4.3/§4.4 "key issues", implemented and measured.

The paper defers QoS load balancing (§4.3) and sleep-scheduling topology
control (§4.4) to future work while arguing both are necessary; this
benchmark quantifies the implemented versions:

* **load balancing** — under a §4.3-style regional traffic surge, the
  load-aware selection must shrink the gateway load imbalance without
  hurting delivery;
* **sleep scheduling** — GAF-style duty cycling must cut idle-network
  energy roughly in proportion to the duty cycle while keeping the
  coordinator backbone connected to the gateways.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core.mlr import MLR
from repro.core.qos import LoadBalancedMLR
from repro.core.spr import SPR
from repro.core.topology_control import SleepScheduler
from repro.sim.mobility import FeasiblePlaces, GatewaySchedule
from repro.sim.network import grid_deployment
from repro.world import WorldBuilder


def _surge_run(cls, **kw):
    sensors = grid_deployment(6, 6, spacing=10.0)
    places = FeasiblePlaces.from_mapping({"L": (-10.0, 25.0), "R": (60.0, 25.0)})
    world = (
        WorldBuilder()
        .seed(9)
        .sensors(sensors)
        .gateways(np.array([places.position("L"), places.position("R")]))
        .comm_range(14.5)
        .ideal_radio()
        .places(places)
        .build()
    )
    sim, net, ch = world.sim, world.network, world.channel
    g0, g1 = net.gateway_ids
    schedule = GatewaySchedule(places=places, rounds=[{g0: "L", g1: "R"}] * 3)
    proto = world.attach(cls, schedule, **kw)
    hot = [s for s in net.sensor_ids if net.positions[s][0] <= 20.0]
    for r in range(3):
        sim.run(until=r * 10.0)
        proto.start_round(r)
        for i, s in enumerate(net.sensor_ids):
            for k in range(5 if s in hot else 1):
                sim.schedule(1.0 + 0.5 * k + i * 1e-3, proto.send_data, s)
    sim.run()
    by_gw = {}
    for rec in ch.metrics.deliveries:
        by_gw[rec.destination] = by_gw.get(rec.destination, 0) + 1
    return by_gw, ch.metrics.delivery_ratio


def test_load_balancing_under_surge(once):
    def run_both():
        plain, dr_plain = _surge_run(MLR)
        balanced, dr_lb = _surge_run(LoadBalancedMLR, load_weight=3.0)
        return plain, dr_plain, balanced, dr_lb

    plain, dr_plain, balanced, dr_lb = once(run_both)
    imbalance = lambda d: max(d.values()) - min(d.values())
    print("\n" + format_table(
        ["variant", "gw loads", "imbalance", "delivery"],
        [
            ["MLR", sorted(plain.values()), imbalance(plain), round(dr_plain, 3)],
            ["LoadBalancedMLR", sorted(balanced.values()), imbalance(balanced), round(dr_lb, 3)],
        ],
        title="§4.3 — gateway load under a regional traffic surge",
    ))
    assert imbalance(balanced) < imbalance(plain)
    assert dr_lb > 0.95 and dr_plain > 0.95


def test_sleep_scheduling_saves_energy(once):
    def run(duty_cycled: bool):
        rng = np.random.default_rng(3)
        sensors = rng.uniform(0, 60, size=(120, 2))
        world = (
            WorldBuilder()
            .seed(4)
            .sensors(sensors)
            .gateways(np.array([[30.0, 70.0]]))
            .comm_range(30.0)
            .ideal_radio()
            .build()
        )
        sim, net, ch = world.sim, world.network, world.channel
        spr = world.attach(SPR)
        senders = net.sensor_ids
        if duty_cycled:
            sched = SleepScheduler(net)
            sched.apply_epoch()
            assert sched.coordinator_backbone_connected()
            senders = sorted(sched.coordinators.values())
        for i, s in enumerate(senders[:20]):
            sim.schedule(0.1 + i * 0.01, spr.send_data, s)
        sim.run()
        total = sum(net.nodes[s].energy.spent for s in net.sensor_ids)
        duty = SleepScheduler(net).duty_cycle() if not duty_cycled else None
        return total, ch.metrics.delivery_ratio

    def run_both():
        return run(False), run(True)

    (e_all, dr_all), (e_duty, dr_duty) = once(run_both)
    print(f"\n§4.4 — network energy for 20 reports: always-on {e_all*1e3:.2f} mJ, "
          f"duty-cycled {e_duty*1e3:.2f} mJ ({1 - e_duty/e_all:.0%} saved); "
          f"delivery {dr_all:.2f} / {dr_duty:.2f}")
    assert dr_duty == 1.0
    # Sleepers receive nothing, so flood/overhearing energy collapses.
    assert e_duty < 0.6 * e_all
