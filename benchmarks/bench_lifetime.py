"""E5 — network lifetime: MLR vs SPR vs baselines.

Reproduction criterion (shape): multi-gateway routing outlives the flat
single-sink architecture; MLR (mobile gateways, accumulated tables) at
least matches static-gateway SPR and beats flat; flooding dies first.
"""

from repro.experiments.lifetime import run_lifetime_comparison


def test_lifetime_ordering(once):
    result = once(
        run_lifetime_comparison,
        protocols=("MLR", "SPR", "flat-1-sink", "flooding"),
    )
    print("\n" + result.format_table())
    mlr = result.lifetime_rounds("MLR")
    spr = result.lifetime_rounds("SPR")
    flat = result.lifetime_rounds("flat-1-sink")
    flood = result.lifetime_rounds("flooding")
    # The paper's ordering claims:
    assert spr > flat, "multiple gateways must outlive the single sink"
    assert mlr >= spr * 0.9, "MLR must at least match static-gateway SPR"
    assert flood < flat, "flooding's implosion must kill the network first"
    # MLR balances energy better than the flat architecture (eq. 1's D^2).
    assert result.balance["MLR"] > result.balance["flat-1-sink"]
    # Everyone still delivers while alive.
    for name in ("MLR", "SPR", "flat-1-sink"):
        assert result.results[name].delivery_ratio > 0.9
