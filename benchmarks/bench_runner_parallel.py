"""Sweep-runner benchmark: parallel fan-out vs serial, plus cache replay.

Reproduction criterion (infrastructure, not a paper artifact): a 4-seed
scalability sweep sharded over 4 worker processes must (a) return
per-seed results bit-identical to serial execution, (b) achieve >= 2x
wall-clock speedup when the hardware has >= 4 CPUs (the comparison is
meaningless on fewer — process fan-out cannot beat serial on one core,
so the speedup assertion is gated on the core count), and (c) replay an
identical second invocation entirely from the on-disk cache with zero
simulations.
"""

import os
import time

from repro.runner import ExperimentSpec, ResultCache, SweepRunner
from repro.sim.serialize import dumps

#: 4 seeds x (60, 80)-node fields; comm_range 65 keeps every topology
#: seed 0..7 connected (55 m disconnects seed 3 at n=60).
SWEEP_PARAMS = {"sizes": (60, 80), "rounds": 1, "comm_range": 65.0}
SEEDS = "0..3"


def _spec() -> ExperimentSpec:
    return ExperimentSpec("scalability", params=dict(SWEEP_PARAMS), seeds=SEEDS)


def test_parallel_sweep_matches_serial(once):
    t0 = time.perf_counter()
    serial = SweepRunner(workers=1).run(_spec())
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = once(SweepRunner(workers=4).run, _spec())
    parallel_s = time.perf_counter() - t0

    # (a) bit-identical per-seed results, in deterministic seed order.
    assert [c.seed for c in parallel.cells] == [0, 1, 2, 3]
    assert [dumps(c.result) for c in serial.cells] == [
        dumps(c.result) for c in parallel.cells
    ]
    assert parallel.stats.simulated == 4
    assert parallel.stats.events_processed > 0

    speedup = serial_s / parallel_s if parallel_s else float("inf")
    cpus = os.cpu_count() or 1
    print(
        f"\nserial {serial_s:.2f}s, 4-worker {parallel_s:.2f}s, "
        f"speedup {speedup:.2f}x on {cpus} CPUs"
    )
    print(parallel.format_summary())

    # (b) the speedup claim, where the hardware can express it.
    if cpus >= 4:
        assert speedup >= 2.0, f"expected >=2x on {cpus} CPUs, got {speedup:.2f}x"


def test_cache_replays_sweep_without_simulating(once, tmp_path):
    cache_dir = tmp_path / "cache"
    first = SweepRunner(workers=2, cache=ResultCache(cache_dir)).run(_spec())
    assert first.stats.simulated == 4

    replay_cache = ResultCache(cache_dir)
    second = once(SweepRunner(workers=2, cache=replay_cache).run, _spec())

    # (c) zero simulations on replay, proven by the counters.
    assert replay_cache.counters == {"hits": 4, "misses": 0}
    assert second.stats.simulated == 0
    assert second.stats.events_processed == 0
    assert [dumps(c.result) for c in first.cells] == [
        dumps(c.result) for c in second.cells
    ]
