"""E10 — mobility: MLR's accumulate-and-notify vs per-round reset (ablation).

Reproduction criterion (shape of the Section 5.3 argument): once every
feasible place has hosted a gateway, MLR's per-round control cost
collapses to the NOTIFY floods alone, while the reset-based variant keeps
paying full discovery every round; SecMLR adds only the μTESLA disclosure
floods on top of MLR.
"""

from repro.experiments.mobility_overhead import run_mobility_overhead


def test_mobility_control_overhead(once):
    result = once(run_mobility_overhead)
    print("\n" + result.format_table())

    mlr = result.per_round_control_frames["MLR"]
    reset = result.per_round_control_frames["MLR-reset"]
    sec = result.per_round_control_frames["SecMLR"]

    # Steady state (last two rounds): accumulation beats reset by >5x.
    assert sum(mlr[-2:]) * 5 < sum(reset[-2:])
    # MLR's steady-state cost has collapsed relative to its own warm-up.
    assert mlr[-1] * 5 < mlr[0]
    # The reset variant never collapses.
    assert reset[-1] > reset[0] * 0.5
    # SecMLR pays a bounded premium over MLR (disclosure floods).
    assert sum(sec) < sum(reset)
    assert sum(sec) >= sum(mlr)
    # Totals favour accumulation.
    assert result.total_control_frames("MLR") < result.total_control_frames("MLR-reset")
    # All variants still deliver.
    for name, d in result.delivery.items():
        assert d > 0.9, (name, d)
