"""E9 — robustness: gateway loss and sensor die-off.

Reproduction criterion (shape of the Section 1/3 claims): losing the
single sink kills the flat architecture outright, while the multi-gateway
WMSN keeps delivering through the surviving gateways; random sensor
die-off degrades both gracefully, with re-routing retaining most traffic.
"""

from repro.experiments.robustness import run_robustness


def test_failure_robustness(once):
    result = once(run_robustness)
    print("\n" + result.format_table())

    # Single point of failure: the flat architecture dies with its sink.
    flat_gw = result.row_for("gateway", "flat-1-sink")
    assert flat_gw.delivery_before > 0.9
    assert flat_gw.delivery_after < 0.05

    # The multi-gateway WMSN keeps most traffic flowing.
    multi_gw = result.row_for("gateway", "SPR-3-gw")
    assert multi_gw.delivery_before > 0.9
    assert multi_gw.delivery_after > 0.7

    # Sensor die-off: both degrade gracefully (self-healing via re-routing),
    # and multi-gateway retains at least as much as single-sink.
    flat_s = result.row_for("sensors", "flat-1-sink")
    multi_s = result.row_for("sensors", "SPR-3-gw")
    assert multi_s.delivery_after > 0.6
    assert multi_s.retained >= flat_s.retained - 0.1
