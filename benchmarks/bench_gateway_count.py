"""E6 — gateway-number model: lifetime vs k, saturation at K_max.

Reproduction criterion (shape, after [34] as quoted in Section 4.1):
lifetime improves as gateways are added, and the improvement saturates —
the last doubling of k buys proportionally less than the first.
"""

from repro.experiments.gateway_count import run_gateway_count


def test_lifetime_vs_gateway_count(once):
    # K_max for this deployment is 8 (every sensor one hop from a
    # gateway); sweeping to 12 shows the saturation beyond it.
    result = once(run_gateway_count, ks=(1, 2, 4, 8, 12))
    print("\n" + result.format_table())
    life = result.lifetime_series
    hops = [r.mean_hops_measured for r in result.rows]
    # More gateways never hurt lifetime, and k>1 strictly beats k=1.
    assert all(b >= a for a, b in zip(life, life[1:]))
    assert life[1] > life[0]
    # Hops shrink monotonically toward the 1-hop floor.
    assert all(b <= a for a, b in zip(hops, hops[1:]))
    assert hops[-1] >= 1.0
    # Saturation beyond K_max ([34]'s empirical law): once every sensor
    # is one hop from a gateway, adding more buys (almost) nothing.
    kmax_gain = life[4] - life[3]  # 8 -> 12 gateways
    first_gain = life[1] - life[0]  # 1 -> 2 gateways
    assert kmax_gain < first_gain * 0.25
    # The greedy placement model predicts the simulated hop counts.
    for row in result.rows:
        assert abs(row.mean_hops_model - row.mean_hops_measured) < 0.5
