"""Topology microbenchmark: incremental spatial index vs brute-force.

MLR's per-round cost is topological: a gateway moves to its next
feasible place, its neighborhood is recomputed, and every sensor's
hop count to the gateway set is refreshed (Section 5.3 steps 1-3).
Pre-refactor, each move cleared every cache — an O(n^2) pairwise
distance rebuild plus a full networkx Dijkstra per round.  The grid
index makes the move O(k) (rebucket one node, patch its row and the
affected reverse rows) and answers ``hops_to`` with a multi-source
BFS over a cached CSR adjacency rebuilt only when the topology epoch
or alive mask actually changed.

This benchmark drives the same place-rotation loop through both
implementations (``Network(index="grid")`` vs the retained
``index="bruteforce"`` reference) and reports rounds/sec plus the
speedup.  Periodic sensor deaths exercise the alive-mask path.  The
two implementations are observably identical — per-round digests of
the moved gateway's neighbor row and the full hop table are asserted
equal, so the benchmark doubles as an equivalence check.

Run standalone to refresh the committed record::

    PYTHONPATH=src python benchmarks/bench_topology.py --nodes 2000

The record lands at the repo root as ``BENCH_topology.json`` in the
``BENCH_hotpath.json`` schema (config + legs + digest + speedup) via
:mod:`benchmarks._record`; ``--json -`` prints it instead.  The CI
smoke job runs a small config with ``--min-speedup`` so a regression
that makes the incremental path slower than the reference fails loudly.
"""

from __future__ import annotations

import argparse
import math
import sys
import time

import numpy as np

from _record import bench_record, write_bench
from repro.sim.network import build_sensor_network, uniform_deployment

#: target mean node degree — MLR fields in the paper's sweeps are dense.
_TARGET_DEGREE = 15.0
_COMM_RANGE = 40.0
_NUM_GATEWAYS = 3
_NUM_PLACES = 8
#: kill one sensor every this many rounds (alive-mask churn).
_DEATH_PERIOD = 25


def _field_size(n_nodes: int) -> float:
    """Field edge giving roughly ``_TARGET_DEGREE`` neighbors per node."""
    return math.sqrt(n_nodes * math.pi * _COMM_RANGE**2 / _TARGET_DEGREE)


def _feasible_places(field: float) -> list[tuple[float, float]]:
    """A ring of feasible places just inside the field boundary."""
    cx = cy = field / 2.0
    radius = 0.42 * field
    return [
        (cx + radius * math.cos(2 * math.pi * k / _NUM_PLACES),
         cy + radius * math.sin(2 * math.pi * k / _NUM_PLACES))
        for k in range(_NUM_PLACES)
    ]


def run_rotation(n_nodes: int, rounds: int, index: str, seed: int = 0) -> dict:
    """Drive the move -> neighbors -> hops_to loop and time it.

    Returns wall clock, rounds/sec and a per-round digest stream used to
    prove both index implementations computed the same thing.
    """
    field = _field_size(n_nodes)
    places = _feasible_places(field)
    sensors = uniform_deployment(n_nodes, field, seed=seed)
    gateways = np.asarray(places[:_NUM_GATEWAYS])
    net = build_sensor_network(sensors, gateways, comm_range=_COMM_RANGE, index=index)
    gateway_ids = net.gateway_ids

    # Pre-warm outside the timed loop: both implementations start from a
    # fully built neighbor table, graph and hop cache.
    net.neighbors(0)
    net.hops_to(gateway_ids)

    digests: list[tuple[int, ...]] = []
    t0 = time.perf_counter()
    for r in range(rounds):
        gw = gateway_ids[r % _NUM_GATEWAYS]
        target = places[(r + r // _NUM_GATEWAYS + 1) % _NUM_PLACES]
        net.move_node(gw, target)
        if r % _DEATH_PERIOD == _DEATH_PERIOD - 1:
            net.nodes[(r * 37) % n_nodes].fail()
        nbrs = net.neighbors(gw)
        alive_nbrs = net.alive_neighbors(gw)
        hops = net.hops_to(gateway_ids)
        digests.append((
            len(nbrs), int(np.sum(nbrs)), len(alive_nbrs),
            len(hops), sum(hops.values()),
        ))
    wall = time.perf_counter() - t0

    return {
        "index": index,
        "nodes": n_nodes,
        "rounds": rounds,
        "wall_clock_s": wall,
        "rounds_per_sec": rounds / wall,
        "digests": digests,
    }


def run_benchmark(n_nodes: int, rounds: int, seed: int = 0) -> dict:
    brute = run_rotation(n_nodes, rounds, index="bruteforce", seed=seed)
    grid = run_rotation(n_nodes, rounds, index="grid", seed=seed)
    # Equivalence: every round's neighbor row and hop table must match.
    digests = brute.pop("digests")
    for r, (want, got) in enumerate(zip(digests, grid.pop("digests"))):
        if want != got:
            raise AssertionError(
                f"index implementations diverged at round {r}: "
                f"bruteforce={want} grid={got}"
            )
    return bench_record(
        config={"nodes": n_nodes, "rounds": rounds, "seed": seed,
                "comm_range": _COMM_RANGE, "field_size": _field_size(n_nodes),
                "gateways": _NUM_GATEWAYS, "places": _NUM_PLACES},
        legs={"bruteforce": brute, "grid": grid},
        digest={"rounds": rounds,
                "hop_sum_checksum": sum(d[-1] for d in digests),
                "neighbor_checksum": sum(d[0] for d in digests)},
        speedup=brute["wall_clock_s"] / grid["wall_clock_s"],
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=2000)
    parser.add_argument("--rounds", type=int, default=60)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="record destination ('-' for stdout; default "
                             "BENCH_topology.json at the repo root)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero when speedup falls below this")
    args = parser.parse_args(argv)

    report = run_benchmark(args.nodes, args.rounds, seed=args.seed)
    written = write_bench("topology", report, path=args.json)
    if written != "-":
        b, g = report["legs"]["bruteforce"], report["legs"]["grid"]
        print(f"nodes={args.nodes} rounds={args.rounds}")
        print(f"bruteforce: {b['wall_clock_s']:.3f}s  "
              f"{b['rounds_per_sec']:,.1f} rounds/s")
        print(f"grid:       {g['wall_clock_s']:.3f}s  "
              f"{g['rounds_per_sec']:,.1f} rounds/s")
        print(f"speedup:    {report['speedup']:.2f}x")
        print(f"record:     {written}")

    if args.min_speedup is not None and report["speedup"] < args.min_speedup:
        print(f"FAIL: speedup {report['speedup']:.2f}x < required "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
