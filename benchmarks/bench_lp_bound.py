"""E11 — the LP relaxation of equations (1)-(6) vs the MLR heuristic.

Reproduction criterion: the LP lifetime upper-bounds the simulated MLR
lifetime (a violated bound means one of the two models is wrong), and
the heuristic lands within a sane fraction of the bound — the paper's
"results approximate to above design goal".
"""

from repro.experiments.lp_bound import run_lp_bound


def test_lp_upper_bounds_mlr(once):
    result = once(run_lp_bound)
    print("\n" + result.format_table())
    assert result.lp_lifetime_rounds > 0
    # The bound must hold (fractional, splittable flows >= any schedule).
    assert result.mlr_lifetime_rounds <= result.lp_lifetime_rounds * 1.01
    # And the heuristic must not be absurdly far from it.
    assert result.optimality_ratio > 0.05
    # Per-round energy can't beat the LP energy floor either.
    assert result.mlr_total_energy_per_round >= result.lp_min_total_energy * 0.99
