"""Fault-injection benchmark: injector overhead and 500-node churn.

Two questions, both guarding the :mod:`repro.faults` subsystem:

* **overhead** — arming a plan compiles fault events onto the simulator
  heap at world-build time.  An armed-but-quiet run (every fault lands
  *after* the traffic horizon, so no fault ever fires during traffic)
  must cost essentially the same as the identical run without a plan:
  the injector may not tax the hot path.  Gated by ``--max-overhead``.
* **churn at scale** — a 500-node field under round-robin gateway churn
  with bursty loss, run under strict conservation audit.  The benchmark
  asserts conservation holds, every gateway outage recovers, and MTTR
  is finite — a correctness gate at a size the unit tests do not reach.

Run standalone for JSON output::

    PYTHONPATH=src python benchmarks/bench_faults.py --nodes 500 --json -

The CI smoke job runs a small config with a loose ``--max-overhead``
(wall-clock ratios on shared runners are noisy).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time

from repro.core.spr import SPR
from repro.experiments.common import corner_places
from repro.faults.plan import Crash, FaultPlan, GatewayChurn, LinkDegrade, Recover
from repro.sim.radio import GilbertElliott
from repro.world import WorldBuilder

_COMM_RANGE = 50.0
_TARGET_DEGREE = 14.0
_NUM_GATEWAYS = 3


def _field_size(n_nodes: int) -> float:
    return math.sqrt(n_nodes * math.pi * _COMM_RANGE**2 / _TARGET_DEGREE)


def _build(n_nodes: int, seed: int, plan=None, audit=False):
    field = _field_size(n_nodes)
    places = corner_places(field)
    builder = (
        WorldBuilder()
        .seed(seed)
        .uniform_sensors(n_nodes, field, topology_seed=seed)
        .gateways([list(places.position(p)) for p in ("A", "B", "C")[:_NUM_GATEWAYS]])
        .comm_range(_COMM_RANGE)
        .ideal_radio()
        .audit(audit)
    )
    if plan is not None:
        builder.faults(plan)
    return builder.build()


def _drive(world, rounds: int, period: float) -> float:
    """Schedule periodic all-sensor traffic, run to quiescence, return wall."""
    spr = SPR(world.sim, world.network, world.channel)
    for r in range(rounds):
        for i, s in enumerate(world.network.sensor_ids):
            world.sim.schedule_at(r * period + 0.5 + (i % 97) * 1e-3,
                                  spr.send_data, s)
    t0 = time.perf_counter()
    world.sim.run()
    return time.perf_counter() - t0


def bench_overhead(n_nodes: int, rounds: int, seed: int = 0) -> dict:
    """Armed-but-quiet plan vs no plan: the injector off the hot path."""
    period = 5.0
    horizon = rounds * period
    # A plan dense in events, all strictly after the traffic horizon.
    quiet = FaultPlan(
        tuple(Crash(node=i % n_nodes, t=horizon + 10.0 + i) for i in range(200))
        + tuple(Recover(node=i % n_nodes, t=horizon + 500.0 + i) for i in range(200))
    )
    base_wall = _drive(_build(n_nodes, seed), rounds, period)
    armed_world = _build(n_nodes, seed, plan=quiet)
    # Stop before the first fault fires: measure pure carrying cost.
    spr = SPR(armed_world.sim, armed_world.network, armed_world.channel)
    for r in range(rounds):
        for i, s in enumerate(armed_world.network.sensor_ids):
            armed_world.sim.schedule_at(r * period + 0.5 + (i % 97) * 1e-3,
                                        spr.send_data, s)
    t0 = time.perf_counter()
    armed_world.sim.run(until=horizon)
    armed_wall = time.perf_counter() - t0
    return {
        "nodes": n_nodes,
        "rounds": rounds,
        "base_wall_s": base_wall,
        "armed_wall_s": armed_wall,
        "overhead_ratio": armed_wall / base_wall,
    }


def bench_churn(n_nodes: int, seed: int = 0) -> dict:
    """Gateway churn + bursty loss at scale, under strict audit."""
    rounds, period = 6, 6.0
    plan = FaultPlan(
        (
            GatewayChurn(period=8.0, downtime=4.0, start=5.0, cycles=1),
            LinkDegrade(
                t0=10.0, t1=20.0,
                burst=GilbertElliott(p_gb=0.1, p_bg=0.4, loss_bad=0.6),
            ),
        )
    )
    world = _build(n_nodes, seed, plan=plan, audit=True)
    wall = _drive(world, rounds, period)
    report = world.conservation_report(strict=True)
    assert report.ok, report.violations
    rec = world.faults.recovery_report()
    assert rec.n_faults == _NUM_GATEWAYS
    assert rec.n_recovered == _NUM_GATEWAYS, "a churned gateway never recovered"
    assert rec.mttr is not None and rec.mttr < rounds * period, "MTTR not finite"
    return {
        "nodes": n_nodes,
        "wall_clock_s": wall,
        "generated": report.generated,
        "delivered": report.delivered,
        "delivery_ratio": report.delivered / max(1, report.generated),
        "mttr_s": rec.mttr,
        "availability": rec.availability,
        "windows": rec.n_faults,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=500)
    parser.add_argument("--rounds", type=int, default=4,
                        help="traffic rounds for the overhead comparison")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-overhead", type=float, default=1.25,
                        help="fail if armed/base wall-clock ratio exceeds this")
    parser.add_argument("--json", metavar="PATH",
                        help="write the report as JSON ('-' for stdout)")
    args = parser.parse_args(argv)

    overhead = bench_overhead(args.nodes, args.rounds, seed=args.seed)
    churn = bench_churn(args.nodes, seed=args.seed)
    report = {"overhead": overhead, "churn": churn}

    print(
        f"injector overhead: base {overhead['base_wall_s']:.3f}s, "
        f"armed {overhead['armed_wall_s']:.3f}s "
        f"(ratio {overhead['overhead_ratio']:.3f})",
        file=sys.stderr,
    )
    print(
        f"churn @ {churn['nodes']} nodes: {churn['wall_clock_s']:.3f}s wall, "
        f"delivery {churn['delivery_ratio']:.3f}, MTTR {churn['mttr_s']:.3f}s, "
        f"availability {churn['availability']:.4f}",
        file=sys.stderr,
    )

    if args.json == "-":
        json.dump(report, sys.stdout, indent=2)
        print()
    elif args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)

    if overhead["overhead_ratio"] > args.max_overhead:
        print(
            f"FAIL: injector overhead ratio {overhead['overhead_ratio']:.3f} "
            f"> {args.max_overhead}",
            file=sys.stderr,
        )
        return 1
    return 0


# pytest-benchmark entry point (repo-local `once` fixture)
def test_fault_injection(once):
    result = once(bench_churn, 200)
    assert result["delivery_ratio"] > 0.8
    assert result["mttr_s"] < 40.0


if __name__ == "__main__":
    sys.exit(main())
