"""World composition root: one place that wires a simulation together.

Every runnable scenario in this repository is the same five-piece stack —
an event engine, a topology, a radio channel (with its energy model and
metrics collector), optionally a protocol, optionally the feasible places
gateways rotate among.  :class:`WorldBuilder` is the single composition
root for that wiring; :class:`World` is the result.  Experiments, the
mesh tiers, baselines, examples and tests all build through here, so no
module outside :mod:`repro.sim` / :mod:`repro.world` constructs a
:class:`~repro.sim.radio.Channel` by hand.

Layer diagram (see DESIGN.md, "Layered stack & World composition")::

    experiments / runner          (sweeps, registry, aggregation)
        └── World / WorldBuilder  (this module: composition + accounting)
              ├── protocol        (repro.core: policy over discovery+data)
              ├── Channel         (repro.sim.radio: medium arbitration)
              ├── Network         (repro.sim.network: topology, neighbors)
              └── Simulator       (repro.sim.engine: event heap, RNG)

Worlds also carry the per-world counters that replaced the old
process-global event tally: :attr:`World.events_processed` reads its own
simulator, and :func:`record_world_events` aggregates across every world
built while a recording is open (two worlds sharing one simulator — the
three-tier stack — are counted once).  The sweep runner wraps each cell
in a recording to attribute simulation work without any global state.
"""

from __future__ import annotations

import math
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field, replace as dc_replace
from typing import Any, Callable, Iterator, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, TopologyError
from repro.sim.energy import EnergyModel
from repro.sim.engine import Simulator
from repro.sim.mobility import FeasiblePlaces
from repro.sim.network import (
    SPATIAL_INDEXES,
    Network,
    build_sensor_network,
    grid_deployment,
    uniform_deployment,
)
from repro.sim.node import NodeKind
from repro.sim.radio import IEEE802154, Channel, RadioConfig
from repro.sim.serialize import from_jsonable, serializable
from repro.sim.trace import MetricsCollector

__all__ = [
    "World",
    "WorldBuilder",
    "WorldConfig",
    "WorldEventRecorder",
    "record_world_events",
]


# ----------------------------------------------------------------------
# execution configuration
# ----------------------------------------------------------------------
@serializable
@dataclass(frozen=True)
class WorldConfig:
    """Execution configuration of a world, as one serializable value.

    These are the toggles that select *how* a world runs, never *what* it
    computes: every combination must produce bit-identical metrics rows,
    RNG streams and conservation ledgers (the equivalence suites hold
    each axis to that).  Consolidating them in one frozen dataclass means
    experiments thread a single ``world`` value into their
    :class:`~repro.runner.spec.ExperimentSpec` params — so SoA and
    object-path runs hash to distinct cache keys and replay independently
    — instead of sprinkling ``audit=``/``spatial_index=`` kwargs through
    every entry point.

    Attributes
    ----------
    vectorized:
        Batch per-neighbor fan-out math with NumPy (PR 2).  ``False`` is
        the scalar reference loop.
    soa:
        Keep node state in a :class:`~repro.sim.state.NodeStateStore`
        and drain same-timestamp broadcast deliveries in batches.
        ``False`` is the per-object reference path.  Worlds whose radio
        observes the medium (CSMA or collision detection) automatically
        fall back to per-event delivery even with ``soa=True``; the
        store still carries their node state.
    spatial_index:
        ``"grid"`` (incremental) or ``"bruteforce"`` (reference) — see
        :class:`~repro.sim.network.Network`.
    audit:
        ``True`` forces the packet-conservation ledger on, ``False``
        forces it off, ``None`` defers to the ``REPRO_AUDIT`` default.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan` (or its jsonable
        form) armed on the built world.
    shards:
        Number of worker processes a sharded execution decomposes the
        field into (:mod:`repro.shard`; ``1`` = ordinary in-process
        execution).  Like every other toggle this selects *how* the
        world runs, never *what* it computes — a sharded run replays
        bit-identically to the single-process one, which is why the
        runner's cache key deliberately ignores it (sharded and
        single-process cells share cache entries).  Direct
        :class:`WorldBuilder` builds record the value but always build
        the in-process stack; :func:`repro.shard.run_sharded` and the
        experiments that support sharding are the executors that honor
        it.
    checkpoint_dir / checkpoint_every:
        Barrier-checkpointing for sharded executions
        (:mod:`repro.shard.checkpoint`): when ``checkpoint_dir`` is set,
        :func:`repro.shard.run_sharded` snapshots the whole gang every
        ``checkpoint_every`` windows and can respawn crashed workers
        from the last snapshot — or cold-resume a new invocation via
        ``resume_from``.  Like ``shards`` these select *how* the world
        runs (a checkpointed run is bit-identical to an unchekpointed
        one) and are ignored by the runner's cache key.
    """

    vectorized: bool = True
    soa: bool = True
    spatial_index: str = "grid"
    audit: Optional[bool] = None
    faults: Optional[Any] = None
    shards: int = 1
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 8

    def __post_init__(self) -> None:
        if self.spatial_index not in SPATIAL_INDEXES:
            raise ConfigurationError(
                f"unknown spatial index {self.spatial_index!r}; "
                f"choose from {SPATIAL_INDEXES}"
            )
        if not isinstance(self.shards, int) or isinstance(self.shards, bool) or self.shards < 1:
            raise ConfigurationError(
                f"shards must be a positive integer, got {self.shards!r}"
            )
        if self.checkpoint_dir is not None and not isinstance(self.checkpoint_dir, str):
            raise ConfigurationError(
                f"checkpoint_dir must be a path string or None, got {self.checkpoint_dir!r}"
            )
        if (
            not isinstance(self.checkpoint_every, int)
            or isinstance(self.checkpoint_every, bool)
            or self.checkpoint_every < 1
        ):
            raise ConfigurationError(
                f"checkpoint_every must be a positive integer, got {self.checkpoint_every!r}"
            )
        if self.faults is not None:
            from repro.faults.plan import FaultPlan  # deferred: faults builds worlds

            if not isinstance(self.faults, FaultPlan):
                object.__setattr__(self, "faults", FaultPlan.from_param(self.faults))
        # Shard-incompatible compositions fail where the config is
        # written, not windows-deep inside a worker (repro.shard applies
        # the same checks against its final shard count).
        if self.shards > 1:
            if not self.soa:
                raise ConfigurationError(
                    "shards > 1 requires soa=True (halo alive/route mirroring "
                    "and per-node counters live on the struct-of-arrays store)"
                )
            if self.faults is not None:
                raise ConfigurationError(
                    "shards > 1 cannot arm a fault plan: the injector would "
                    "fire on every shard's replicated copy of a node"
                )

    def replace(self, **changes) -> "WorldConfig":
        """A copy with ``changes`` applied (fluent-builder backend)."""
        return dc_replace(self, **changes)

    @classmethod
    def from_param(cls, value: "WorldConfig | dict | None") -> Optional["WorldConfig"]:
        """Coerce an experiment parameter into a :class:`WorldConfig`.

        Accepts a config instance (returned as-is), its tagged jsonable
        form as produced by :func:`~repro.sim.serialize.to_jsonable`
        (the shape a config takes after a trip through the runner's
        JSONL cache), or ``None``.  Anything else — in particular a
        hand-rolled bare dict — is rejected, so a typo'd field name
        fails loudly instead of silently running the default config.
        """
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, dict) and value.get("__dataclass__") == cls.__name__:
            cfg = from_jsonable(value)
            if isinstance(cfg, cls):
                return cfg
        raise ConfigurationError(
            f"cannot interpret {value!r} as a WorldConfig; pass a WorldConfig "
            "instance, its to_jsonable() form, or None"
        )


# ----------------------------------------------------------------------
# per-world event accounting
# ----------------------------------------------------------------------
class WorldEventRecorder:
    """Aggregates events processed by every world built while open.

    Simulators are tracked by identity with a baseline snapshot, so a
    shared simulator (multiple tiers on one clock) is counted once, and
    only events executed *after* the world was built are attributed.
    """

    def __init__(self) -> None:
        self._tracked: list[tuple[Simulator, int]] = []
        self._collectors: list[MetricsCollector] = []

    def track(self, sim: Simulator, metrics: Optional[MetricsCollector] = None) -> None:
        if not any(s is sim for s, _ in self._tracked):
            self._tracked.append((sim, sim.events_processed))
        if metrics is not None and not any(m is metrics for m in self._collectors):
            self._collectors.append(metrics)

    @property
    def events_processed(self) -> int:
        return sum(s.events_processed - base for s, base in self._tracked)

    @property
    def worlds_tracked(self) -> int:
        return len(self._tracked)

    # -- observability aggregation (runner trace food) -----------------
    def drops_by_reason(self) -> dict[str, int]:
        """Terminal+frame drop counters summed over tracked collectors."""
        total: Counter = Counter()
        for m in self._collectors:
            total.update(m.drops)
        return dict(sorted(total.items()))

    def conservation_summary(self) -> Optional[dict]:
        """Summed conservation report over every audited collector.

        ``None`` when no tracked collector carries a ledger (audit off) —
        the runner trace then omits the block rather than writing zeros.
        """
        audited = [m for m in self._collectors if m.ledger is not None]
        if not audited:
            return None
        totals = Counter()
        violations: list[str] = []
        for m in audited:
            report = m.conservation_report(strict=True)
            for key in ("generated", "delivered", "dropped", "pending",
                        "duplicates", "unknown_delivered", "late_drops"):
                totals[key] += getattr(report, key)
            violations.extend(report.violations)
        return {
            **{k: int(totals[k]) for k in (
                "generated", "delivered", "dropped", "pending",
                "duplicates", "unknown_delivered", "late_drops")},
            "audited_collectors": len(audited),
            "violations": violations,
        }


_recorders: list[WorldEventRecorder] = []


@contextmanager
def record_world_events() -> Iterator[WorldEventRecorder]:
    """Record events of every world built inside the ``with`` block."""
    recorder = WorldEventRecorder()
    _recorders.append(recorder)
    try:
        yield recorder
    finally:
        _recorders.remove(recorder)


# ----------------------------------------------------------------------
# the composed world
# ----------------------------------------------------------------------
@dataclass
class World:
    """A ready-to-run composed simulation: engine + topology + radio.

    ``protocol`` is filled by :meth:`attach` (or left ``None`` when the
    caller wires protocols itself, e.g. to run several protocols against
    structurally identical worlds).
    """

    sim: Simulator
    network: Network
    channel: Channel
    places: Optional[FeasiblePlaces] = None
    protocol: Any = None
    #: armed :class:`~repro.faults.injector.FaultInjector` (None without a plan)
    faults: Any = None
    #: the :class:`WorldConfig` this world was built with (None for hand wiring)
    config: Optional[WorldConfig] = None
    extras: dict = field(default_factory=dict)

    @property
    def metrics(self) -> MetricsCollector:
        return self.channel.metrics

    @property
    def events_processed(self) -> int:
        """Events executed by this world's simulator (per-world counter)."""
        return self.sim.events_processed

    def attach(self, protocol_factory: Callable[..., Any], *args, **kwargs) -> Any:
        """Instantiate ``protocol_factory(sim, network, channel, ...)`` and keep it."""
        self.protocol = protocol_factory(self.sim, self.network, self.channel, *args, **kwargs)
        return self.protocol

    # -- conservation audit --------------------------------------------
    def conservation_report(self, strict: Optional[bool] = None):
        """Audit packet conservation on demand (needs audit mode).

        ``strict`` defaults to whether the simulator is quiescent — only
        then does "still in flight" mean "permanently stuck".
        """
        if strict is None:
            strict = self.sim.pending == 0
        return self.metrics.conservation_report(strict=strict)

    def assert_conserved(self, strict: Optional[bool] = None):
        """Raise :class:`~repro.exceptions.ConservationError` on violation."""
        if strict is None:
            strict = self.sim.pending == 0
        return self.metrics.assert_conserved(strict=strict)


# ----------------------------------------------------------------------
# the builder
# ----------------------------------------------------------------------
class WorldBuilder:
    """Fluent construction of a :class:`World`.

    Exactly one topology source must be configured: an existing network
    (:meth:`network` / :meth:`nodes`), an explicit sensor field
    (:meth:`sensors` + :meth:`gateways`), or a generated deployment
    (:meth:`uniform_sensors` / :meth:`grid_sensors` + :meth:`gateways`).

    Examples
    --------
    A uniform field with three gateways on an ideal radio::

        world = (
            WorldBuilder()
            .seed(7)
            .uniform_sensors(120, field_size=300.0, topology_seed=42)
            .gateways([[60.0, 60.0], [240.0, 240.0], [60.0, 240.0]])
            .comm_range(60.0)
            .ideal_radio()
            .build()
        )
        spr = world.attach(SPR)
    """

    def __init__(self) -> None:
        self._sim: Optional[Simulator] = None
        self._seed: int | None = 0
        self._network: Optional[Network] = None
        self._sensor_positions: Optional[np.ndarray] = None
        self._gateway_positions: Optional[np.ndarray] = None
        self._comm_range: Optional[float] = None
        self._sensor_battery: float = math.inf
        self._radio: Optional[RadioConfig] = None
        self._ideal: bool = False
        self._energy_model: Optional[EnergyModel] = None
        self._metrics: Optional[MetricsCollector] = None
        self._places: Optional[FeasiblePlaces] = None
        self._require_connected: bool = False
        self._node_spec: Optional[tuple[np.ndarray, Sequence[NodeKind], Optional[float]]] = None
        self._config = WorldConfig()

    # -- engine ---------------------------------------------------------
    def seed(self, protocol_seed: int | None) -> "WorldBuilder":
        """Seed for a fresh :class:`Simulator` (default 0)."""
        self._seed = protocol_seed
        return self

    def simulator(self, sim: Simulator) -> "WorldBuilder":
        """Attach to an existing engine (tiers sharing one clock)."""
        self._sim = sim
        return self

    # -- topology -------------------------------------------------------
    def network(self, network: Network) -> "WorldBuilder":
        """Use an already-built topology."""
        self._network = network
        return self

    def nodes(
        self,
        positions: np.ndarray,
        kinds: Sequence[NodeKind],
        comm_range: Optional[float] = None,
    ) -> "WorldBuilder":
        """Arbitrary node mix (mesh tiers: gateways/routers/base stations).

        Construction is deferred to :meth:`build` so later builder calls
        (``comm_range``, ``spatial_index``) still apply.
        """
        self._node_spec = (np.asarray(positions, dtype=float), list(kinds), comm_range)
        return self

    def sensors(self, positions: np.ndarray) -> "WorldBuilder":
        """Explicit sensor coordinates (paired with :meth:`gateways`)."""
        self._sensor_positions = np.asarray(positions, dtype=float)
        return self

    def uniform_sensors(
        self, n: int, field_size: float, topology_seed: int | None = 0, margin: float = 0.0
    ) -> "WorldBuilder":
        """``n`` i.i.d.-uniform sensors on a square field."""
        self._sensor_positions = uniform_deployment(n, field_size, seed=topology_seed, margin=margin)
        return self

    def grid_sensors(
        self, rows: int, cols: int, spacing: float, jitter: float = 0.0,
        topology_seed: int | None = 0,
    ) -> "WorldBuilder":
        """A regular sensor grid (deterministic topologies)."""
        self._sensor_positions = grid_deployment(rows, cols, spacing, jitter=jitter, seed=topology_seed)
        if self._comm_range is None:
            self._comm_range = spacing * 1.05
        return self

    def gateways(self, positions: Sequence[Sequence[float]]) -> "WorldBuilder":
        """Gateway coordinates appended after the sensors."""
        self._gateway_positions = np.asarray(positions, dtype=float)
        return self

    def comm_range(self, meters: float) -> "WorldBuilder":
        self._comm_range = float(meters)
        return self

    def sensor_battery(self, joules: float) -> "WorldBuilder":
        """Initial sensor battery (default: unlimited)."""
        self._sensor_battery = float(joules)
        return self

    def require_connected(self, required: bool = True) -> "WorldBuilder":
        """Fail :meth:`build` if any alive sensor cannot reach a gateway."""
        self._require_connected = required
        return self

    # -- radio / energy / metrics --------------------------------------
    def radio(self, config: RadioConfig) -> "WorldBuilder":
        self._radio = config
        return self

    def ideal_radio(self, config: Optional[RadioConfig] = None) -> "WorldBuilder":
        """Lossless, collision-free variant of ``config`` (default 802.15.4)."""
        self._radio = (config or IEEE802154).ideal()
        return self

    def energy(self, model: EnergyModel) -> "WorldBuilder":
        self._energy_model = model
        return self

    def metrics(self, collector: MetricsCollector) -> "WorldBuilder":
        self._metrics = collector
        return self

    # -- execution configuration ---------------------------------------
    # The scattered per-toggle fields of earlier revisions now live in a
    # single WorldConfig; the fluent methods below survive as thin
    # wrappers so call sites read the same, and configure() swaps the
    # whole value at once (experiments thread exactly that value into
    # their ExperimentSpec params / cache keys).
    @property
    def config(self) -> WorldConfig:
        """The execution configuration this builder will apply."""
        return self._config

    def configure(self, config: WorldConfig) -> "WorldBuilder":
        """Replace the whole execution configuration in one call."""
        if not isinstance(config, WorldConfig):
            raise ConfigurationError(
                f"configure() expects a WorldConfig, got {type(config).__name__}"
            )
        self._config = config
        return self

    def audit(self, enabled: bool = True) -> "WorldBuilder":
        """Enforce packet conservation on this world.

        Attaches a :class:`repro.obs.ledger.PacketLedger` to the metrics
        collector and registers a simulator idle hook that runs a strict
        conservation audit at every quiescence — any datum left without a
        terminal state raises :class:`~repro.exceptions.ConservationError`.
        ``audit(False)`` opts a world out even under ``REPRO_AUDIT=1``.
        """
        self._config = self._config.replace(audit=enabled)
        return self

    def scalar_fanout(self) -> "WorldBuilder":
        """Use the reference per-neighbor radio loop (benchmarks/tests)."""
        self._config = self._config.replace(vectorized=False)
        return self

    def soa(self, enabled: bool = True) -> "WorldBuilder":
        """Toggle the struct-of-arrays node-state store (default on).

        ``soa(False)`` selects the per-object reference path — the same
        kind of escape hatch as ``spatial_index("bruteforce")`` and
        :meth:`scalar_fanout`.  Ignored when :meth:`network` supplies an
        already-built topology (its layout is fixed at construction).
        """
        self._config = self._config.replace(soa=enabled)
        return self

    def spatial_index(self, index: str) -> "WorldBuilder":
        """Neighbor maintenance strategy for built topologies.

        ``"grid"`` (default) — incremental cell-grid index with in-place
        graph patching and CSR hop queries; ``"bruteforce"`` — the dense
        reference implementation with full invalidation (benchmarks and
        equivalence tests).  Ignored when :meth:`network` supplies an
        already-built topology.
        """
        self._config = self._config.replace(spatial_index=index)
        return self

    # -- extras ---------------------------------------------------------
    def places(self, places: FeasiblePlaces) -> "WorldBuilder":
        """Feasible gateway places carried on the world (MLR rounds)."""
        self._places = places
        return self

    def faults(self, plan) -> "WorldBuilder":
        """Arm a :class:`~repro.faults.plan.FaultPlan` on the built world.

        Accepts a plan object or its jsonable/params form (``None`` clears).
        :meth:`build` compiles the plan onto the simulator event queue via
        a :class:`~repro.faults.injector.FaultInjector` before any traffic
        is scheduled, so fault timing is part of the deterministic event
        order; the armed injector is exposed as ``World.faults``.
        """
        # WorldConfig.__post_init__ normalizes jsonable/params forms.
        self._config = self._config.replace(faults=plan)
        return self

    # -- build ----------------------------------------------------------
    def _resolve_network(self) -> Network:
        given = [
            self._network is not None,
            self._node_spec is not None,
            self._sensor_positions is not None or self._gateway_positions is not None,
        ]
        if sum(given) > 1:
            raise ConfigurationError(
                "give either network()/nodes() or sensor/gateway positions, not both"
            )
        if self._network is not None:
            return self._network
        cfg = self._config
        if self._node_spec is not None:
            positions, kinds, spec_range = self._node_spec
            rng = spec_range if spec_range is not None else self._comm_range
            if rng is None:
                raise ConfigurationError("nodes() needs a comm_range (argument or comm_range())")
            return Network(
                positions, kinds, comm_range=rng,
                index=cfg.spatial_index, soa=cfg.soa,
            )
        if self._sensor_positions is None:
            raise ConfigurationError("no topology: call network(), nodes(), sensors() or a deployment method")
        if self._gateway_positions is None:
            raise ConfigurationError("sensor deployments need gateways(...)")
        comm_range = self._comm_range
        if comm_range is None and self._radio is not None:
            comm_range = self._radio.comm_range
        if comm_range is None:
            raise ConfigurationError("no communication range: call comm_range() or radio()")
        return build_sensor_network(
            self._sensor_positions,
            self._gateway_positions,
            comm_range=comm_range,
            sensor_battery=self._sensor_battery,
            index=cfg.spatial_index,
            soa=cfg.soa,
        )

    def build(self) -> World:
        """Compose and return the :class:`World` (registers it for accounting)."""
        network = self._resolve_network()
        if self._require_connected and not network.is_collection_connected():
            raise TopologyError(
                f"deployment of {len(network)} nodes leaves sensors unreachable; "
                "densify, enlarge the range or move gateways"
            )
        cfg = self._config
        sim = self._sim if self._sim is not None else Simulator(seed=self._seed)
        metrics = self._metrics or MetricsCollector()
        if cfg.audit is True:
            metrics.enable_audit()
        elif cfg.audit is False:
            metrics.audit = False
        if metrics.audit and metrics.ledger is not None:
            # Strict conservation at every quiescence: with an empty heap
            # a queued or unicast-in-flight datum can never progress, so
            # it must already be delivered or terminally dropped.
            sim.add_idle_hook(metrics._audit_idle_hook)
        channel = Channel(
            sim,
            network,
            self._radio or IEEE802154,
            self._energy_model,
            metrics,
            vectorized=cfg.vectorized,
        )
        for recorder in _recorders:
            recorder.track(sim, metrics)
        world = World(
            sim=sim, network=network, channel=channel,
            places=self._places, config=cfg,
        )
        if cfg.faults is not None:
            from repro.faults.injector import FaultInjector  # deferred: cycle guard

            world.faults = FaultInjector(world, cfg.faults).arm()
        return world
