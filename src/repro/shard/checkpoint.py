"""Barrier checkpoints: content-addressed snapshots of a sharded run.

At a window barrier the gang is *globally quiescent in the protocol
sense*: every worker has drained its grant (``sim.run(until=grant,
inclusive=False)`` returned), every cross-shard frame in flight is an
explicit message sitting in the coordinator's ``pending`` lists, and no
worker holds a half-applied update.  That makes the barrier the one
moment where "the whole distributed computation" is a plain value:

* per shard — the worker's entire world (engine queue + clock + seq,
  per-node RNG substreams, the struct-of-arrays store, routing tables,
  ledger and metrics) pickled as one object, plus the process-global
  packet-``uid`` watermark;
* at the coordinator — the window counter and the not-yet-injected
  deliveries / alive flips / route flips.

Restoring both sides reconstructs the run *exactly*: the resumed
execution replays the identical event sequence, draws the identical RNG
values and produces the identical digest as the uninterrupted one.  The
``uid`` watermark is read without consuming a value, so writing a
checkpoint perturbs nothing — a run checkpointed every window stays
bit-identical to one never checkpointed.

On-disk layout (content-addressed by workload, newest-wins, every file
written to a temp name and ``os.replace``d like the runner cache)::

    <dir>/<key16>/win-000008/shard-00.pkl
                            shard-01.pkl
                            coord.pkl
                            MANIFEST.json      # written last: commit marker

A window directory without its ``MANIFEST.json`` was torn mid-write and
is ignored (and eventually pruned); ``keep`` bounds how many committed
windows are retained.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional

import numpy as np

from repro.exceptions import CheckpointError, ConfigurationError
from repro.sim.packet import restore_uid_state, uid_state

__all__ = [
    "CheckpointConfig",
    "CheckpointStore",
    "ResumePoint",
    "base_dir_for",
    "restore_world",
    "snapshot_world",
    "workload_key",
]

#: Bump when the snapshot or manifest layout changes; mismatched
#: checkpoints are rejected, never misread.
FORMAT_VERSION = 1

_MANIFEST = "MANIFEST.json"


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    tmp = path.with_suffix(path.suffix + f".tmp.{os.getpid()}")
    tmp.write_bytes(data)
    os.replace(tmp, path)


def _atomic_write_text(path: Path, text: str) -> None:
    tmp = path.with_suffix(path.suffix + f".tmp.{os.getpid()}")
    tmp.write_text(text)
    os.replace(tmp, path)


@dataclass(frozen=True)
class CheckpointConfig:
    """Where and how often barrier checkpoints are written.

    ``every`` counts *windows*: after the coordinator finishes barrier
    ``k`` it checkpoints iff ``k % every == 0``.  ``keep`` retains the
    newest committed windows and prunes the rest (plus any torn,
    manifest-less directories).
    """

    dir: str
    every: int = 8
    keep: int = 2

    def __post_init__(self) -> None:
        if not self.dir:
            raise ConfigurationError("checkpoint dir must be a non-empty path")
        if not isinstance(self.every, int) or self.every < 1:
            raise ConfigurationError(
                f"checkpoint every must be a positive integer, got {self.every!r}"
            )
        if not isinstance(self.keep, int) or self.keep < 1:
            raise ConfigurationError(
                f"checkpoint keep must be a positive integer, got {self.keep!r}"
            )


@dataclass(frozen=True)
class ResumePoint:
    """One committed checkpoint, located and manifest-verified."""

    window: int
    path: Path
    manifest: dict

    def shard_blob(self, shard: int) -> bytes:
        return (self.path / f"shard-{shard:02d}.pkl").read_bytes()

    def coordinator_state(self) -> dict:
        return pickle.loads((self.path / "coord.pkl").read_bytes())


def base_dir_for(path) -> Path:
    """The store *base* directory a ``resume_from`` path belongs to.

    Users may hand back any level they kept: the base checkpoint dir,
    the ``<key>`` run dir, or one committed ``win-*`` window dir.  The
    base is what a :class:`CheckpointStore` needs so that the resumed
    run keeps writing new checkpoints into the same tree.
    """
    p = Path(path)
    if (p / _MANIFEST).exists():
        return p.parent.parent
    if p.is_dir() and any(
        d.is_dir() and d.name.startswith("win-") and (d / _MANIFEST).exists()
        for d in p.iterdir()
    ):
        return p.parent
    return p


# ----------------------------------------------------------------------
# workload identity
# ----------------------------------------------------------------------
def workload_key(workload, shards: int) -> str:
    """16-hex content address of ``(workload, shards)``.

    Everything that shapes the deterministic execution participates —
    positions (raw float bytes), traffic, protocol and its params,
    radio, world config, battery, seed, rounds, the shard count and the
    snapshot format version.  Execution-neutral knobs (checkpoint
    cadence/location, the config's own shard default) are normalized
    out, so "the same run, checkpointed elsewhere" resolves to the same
    key.
    """
    cfg = workload.world.replace(shards=1, checkpoint_dir=None, checkpoint_every=8)
    canon = (
        np.ascontiguousarray(np.asarray(workload.sensor_positions, dtype=float)).tobytes(),
        np.ascontiguousarray(np.asarray(workload.gateway_positions, dtype=float)).tobytes(),
        float(workload.comm_range),
        tuple((float(t), int(s)) for t, s in workload.traffic),
        str(workload.protocol),
        tuple(sorted(workload.protocol_params.items())),
        workload.radio,
        cfg,
        float(workload.sensor_battery),
        None if workload.seed is None else int(workload.seed),
        tuple(float(t) for t in workload.rounds),
        int(shards),
        FORMAT_VERSION,
    )
    return hashlib.sha256(pickle.dumps(canon, protocol=4)).hexdigest()[:16]


# ----------------------------------------------------------------------
# world snapshots (what one worker writes per shard file)
# ----------------------------------------------------------------------
def snapshot_world(world, proto, extra: Optional[dict] = None) -> bytes:
    """Pickle one worker's entire simulation state at a barrier.

    The world object graph (engine + network + channel + metrics) and
    the attached protocol are one strongly-connected pickle, so shared
    references (the store, the collectors, bound-method handlers)
    restore as shared.  The process-global ``uid`` watermark rides
    along, read without consuming a value; the store's column checksum
    lets :func:`restore_world` detect corrupt or truncated blobs before
    handing back a world.

    The engine refuses to snapshot mid-``run`` (its ``__getstate__``
    raises) — callers hold the barrier invariant, this just enforces it.
    """
    store = getattr(world.network, "store", None)
    payload = {
        "format": FORMAT_VERSION,
        "world": world,
        "proto": proto,
        "uid": uid_state(),
        "store_checksum": None if store is None else store.checksum(),
        "extra": dict(extra or {}),
    }
    return pickle.dumps(payload, protocol=4)


def restore_world(blob: bytes):
    """Inverse of :func:`snapshot_world` → ``(world, proto, extra)``.

    Restores the ``uid`` watermark into *this process* (the caller is a
    fresh worker replacing the dead one) and verifies the store column
    checksum — a mismatch means the blob decoded into different bytes
    than were frozen, and resuming from it would silently diverge.
    """
    try:
        payload = pickle.loads(blob)
    except Exception as exc:
        raise CheckpointError(f"undecodable checkpoint blob: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint format {payload.get('format') if isinstance(payload, dict) else '?'!r}"
            f" is not {FORMAT_VERSION} — written by an incompatible version"
        )
    world, proto = payload["world"], payload["proto"]
    store = getattr(world.network, "store", None)
    want = payload["store_checksum"]
    if store is not None and want is not None:
        got = store.checksum()
        if got != want:
            raise CheckpointError(
                f"node-state checksum mismatch after restore ({got[:12]} != "
                f"{want[:12]}) — checkpoint corrupt"
            )
    restore_uid_state(payload["uid"])
    return world, proto, payload["extra"]


# ----------------------------------------------------------------------
# the on-disk store
# ----------------------------------------------------------------------
class CheckpointStore:
    """Commit / locate / prune checkpoints for one ``(workload, shards)``.

    All paths live under ``<dir>/<key>``; the coordinator hands workers
    their shard-file paths (workers write their own snapshots — the
    blobs never cross the pipe), then commits the window by writing the
    coordinator state and, last, the manifest.
    """

    def __init__(self, config: CheckpointConfig, key: str, shards: int) -> None:
        self.config = config
        self.key = key
        self.shards = int(shards)
        self.run_dir = Path(config.dir) / key

    # -- paths ----------------------------------------------------------
    def window_dir(self, window: int) -> Path:
        return self.run_dir / f"win-{window:06d}"

    def shard_path(self, window: int, shard: int) -> Path:
        return self.window_dir(window) / f"shard-{shard:02d}.pkl"

    # -- write side -----------------------------------------------------
    def begin(self, window: int) -> Path:
        """Create (or reuse) the window directory workers will fill."""
        d = self.window_dir(window)
        d.mkdir(parents=True, exist_ok=True)
        return d

    def commit(self, window: int, coordinator_state: dict) -> Path:
        """Seal window ``window``: coord state, then the manifest marker.

        Every shard file must already be in place (workers acked their
        writes before the coordinator got here); a missing one fails the
        commit instead of publishing a checkpoint that cannot restore.
        """
        d = self.window_dir(window)
        missing = [
            s for s in range(self.shards) if not self.shard_path(window, s).exists()
        ]
        if missing:
            raise CheckpointError(
                f"cannot commit window {window}: shard files missing for {missing}"
            )
        _atomic_write_bytes(
            d / "coord.pkl", pickle.dumps(coordinator_state, protocol=4)
        )
        manifest = {
            "format": FORMAT_VERSION,
            "key": self.key,
            "window": int(window),
            "shards": self.shards,
            "files": [f"shard-{s:02d}.pkl" for s in range(self.shards)] + ["coord.pkl"],
        }
        _atomic_write_text(
            d / _MANIFEST, json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )
        self._prune(keep_window=window)
        return d

    def _prune(self, keep_window: int) -> None:
        """Drop everything but the ``keep`` newest committed windows.

        Torn directories (no manifest) older than the window just
        committed are abandoned writes — removed too.
        """
        if not self.run_dir.is_dir():  # pragma: no cover - just committed
            return
        committed, torn = [], []
        for d in self.run_dir.iterdir():
            if not d.is_dir() or not d.name.startswith("win-"):
                continue
            ((committed if (d / _MANIFEST).exists() else torn)).append(d)
        committed.sort(key=lambda d: d.name)
        for d in committed[: -self.config.keep] if len(committed) > self.config.keep else []:
            shutil.rmtree(d, ignore_errors=True)
        for d in torn:
            if d.name < f"win-{keep_window:06d}":
                shutil.rmtree(d, ignore_errors=True)

    # -- read side ------------------------------------------------------
    def latest(self) -> Optional[ResumePoint]:
        """Newest committed checkpoint of this run, or ``None``."""
        if not self.run_dir.is_dir():
            return None
        best: Optional[Path] = None
        for d in sorted(self.run_dir.iterdir()):
            if d.is_dir() and d.name.startswith("win-") and (d / _MANIFEST).exists():
                best = d
        if best is None:
            return None
        return self._load(best)

    def _load(self, window_dir: Path) -> ResumePoint:
        try:
            manifest = json.loads((window_dir / _MANIFEST).read_text())
        except (OSError, ValueError) as exc:
            raise CheckpointError(f"unreadable manifest in {window_dir}: {exc}") from exc
        if manifest.get("format") != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {window_dir} has format {manifest.get('format')!r}, "
                f"expected {FORMAT_VERSION}"
            )
        if manifest.get("key") != self.key:
            raise CheckpointError(
                f"checkpoint {window_dir} belongs to workload {manifest.get('key')!r}, "
                f"not {self.key!r} — wrong run"
            )
        if manifest.get("shards") != self.shards:
            raise CheckpointError(
                f"checkpoint {window_dir} was written by {manifest.get('shards')} "
                f"shards, cannot resume with {self.shards}"
            )
        for name in manifest.get("files", []):
            if not (window_dir / name).exists():
                raise CheckpointError(
                    f"checkpoint {window_dir} is missing {name!r} despite its manifest"
                )
        return ResumePoint(
            window=int(manifest["window"]), path=window_dir, manifest=manifest
        )

    def locate(self, path) -> ResumePoint:
        """Resolve an explicit ``resume_from`` path to a checkpoint.

        Accepts the base checkpoint dir, this run's key directory, or a
        specific committed window directory — whatever the user kept.
        """
        p = Path(path)
        if (p / _MANIFEST).exists():
            return self._load(p)
        candidates = [p / self.key, p]
        for c in candidates:
            if c.is_dir() and c.resolve() == self.run_dir.resolve():
                found = self.latest()
                if found is not None:
                    return found
            elif c.is_dir() and any(
                d.name.startswith("win-") and (d / _MANIFEST).exists()
                for d in c.iterdir()
                if d.is_dir()
            ):
                # A run dir that is not ours: its manifests will carry a
                # different key and _load will say so precisely.
                newest = max(
                    (
                        d
                        for d in c.iterdir()
                        if d.is_dir() and d.name.startswith("win-") and (d / _MANIFEST).exists()
                    ),
                    key=lambda d: d.name,
                )
                return self._load(newest)
        raise CheckpointError(
            f"no committed checkpoint found under {path!r} for workload key "
            f"{self.key!r} (looked for win-*/{_MANIFEST})"
        )
