"""Conservative spatially-decomposed parallel simulation.

Partitions the sensor field into contiguous column strips — one worker
process per strip — and runs the existing :class:`~repro.sim.engine.
Simulator` / :class:`~repro.sim.radio.Channel` / :class:`~repro.sim.
state.NodeStateStore` stack unchanged inside each worker.  Only radio
events whose source sits within one ``comm_range`` of a strip boundary
cross processes: receptions bound for another shard ship as timestamped
messages over multiprocessing pipes, alive flips of boundary-band nodes
refresh the neighbors' halo mirrors, and a conservative null-message
window protocol (lookahead = the airtime of the smallest frame) keeps
every worker's event order identical to the single-process schedule —
a sharded run replays bit-identically, which the digest-equality tests
and the merged conservation ledger (:mod:`repro.obs.merge`) assert.

Entry points: :class:`~repro.shard.runner.ShardWorkload` describes the
deployment + traffic, :func:`~repro.shard.runner.run_sharded` executes
it with ``WorldConfig(shards=N)`` workers (``shards=1`` falls back to
the plain single-process path).
"""

from repro.shard.plan import ShardPlan, conservative_lookahead
from repro.shard.runner import ShardRunResult, ShardWorkload, run_digest, run_sharded

__all__ = [
    "ShardPlan",
    "conservative_lookahead",
    "ShardRunResult",
    "ShardWorkload",
    "run_digest",
    "run_sharded",
]
