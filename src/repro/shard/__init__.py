"""Conservative spatially-decomposed parallel simulation.

Partitions the sensor field into contiguous column strips — one worker
process per strip — and runs the existing :class:`~repro.sim.engine.
Simulator` / :class:`~repro.sim.radio.Channel` / :class:`~repro.sim.
state.NodeStateStore` stack unchanged inside each worker.  Only radio
events whose source sits within one ``comm_range`` of a strip boundary
cross processes: receptions bound for another shard ship as timestamped
messages over multiprocessing pipes, alive flips of boundary-band nodes
refresh the neighbors' halo mirrors, and a conservative null-message
window protocol (lookahead = the airtime of the smallest frame) keeps
every worker's event order identical to the single-process schedule —
a sharded run replays bit-identically, which the digest-equality tests
and the merged conservation ledger (:mod:`repro.obs.merge`) assert.

Entry points: :class:`~repro.shard.runner.ShardWorkload` describes the
deployment + traffic, :func:`~repro.shard.runner.run_sharded` executes
it with ``WorldConfig(shards=N)`` workers (``shards=1`` falls back to
the plain single-process path).

Fault tolerance: the coordinator supervises its gang through
:class:`~repro.shard.supervise.WorkerGang` (deadline-bounded receives,
structured :class:`~repro.exceptions.ShardWorkerError`, total teardown)
and, when a :class:`~repro.shard.checkpoint.CheckpointConfig` is
configured, snapshots the whole gang at window barriers and respawns
from the last committed checkpoint after a crash — deterministically:
the resumed run's digest and per-node RNG states equal the
uninterrupted run's.
"""

from repro.shard.checkpoint import (
    CheckpointConfig,
    CheckpointStore,
    ResumePoint,
    restore_world,
    snapshot_world,
    workload_key,
)
from repro.shard.plan import ShardPlan, conservative_lookahead
from repro.shard.runner import ShardRunResult, ShardWorkload, run_digest, run_sharded
from repro.shard.supervise import HarnessChaos, SupervisionConfig, WorkerGang

__all__ = [
    "ShardPlan",
    "conservative_lookahead",
    "ShardRunResult",
    "ShardWorkload",
    "run_digest",
    "run_sharded",
    "CheckpointConfig",
    "CheckpointStore",
    "ResumePoint",
    "snapshot_world",
    "restore_world",
    "workload_key",
    "HarnessChaos",
    "SupervisionConfig",
    "WorkerGang",
]
