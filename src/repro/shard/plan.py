"""Spatial domain decomposition: column strips and conservative lookahead.

The field is cut along ``x`` into ``shards`` contiguous strips balanced
by node count (quantile cuts over the sorted ``x`` coordinates).  A node
belongs to the strip whose half-open interval ``[lo, hi)`` contains its
``x`` — ties on a cut go right, so ownership is a total function of
position.  Strips may be narrower than ``comm_range``: correctness never
depends on strip width, because cross-shard receptions are routed by the
*receiver's* owner, not passed neighbor-to-neighbor; narrow strips only
shrink the interior fast path.

The lookahead is the classic conservative bound: any frame sent at time
``t`` is received no earlier than ``t`` plus the airtime of the smallest
possible frame (a bare MAC header), so granting every worker
``horizon + lookahead`` guarantees no message from the window can arrive
inside it — deliveries shipped at the barrier are never in a worker's
past.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.sim.packet import MAC_HEADER_BYTES
from repro.sim.radio import RadioConfig

__all__ = ["ShardPlan", "conservative_lookahead"]


def conservative_lookahead(radio: RadioConfig) -> float:
    """Minimum latency between a send and any reception on ``radio``.

    The smallest frame the simulator can put on the air is a bare MAC
    header; propagation only adds to the bound, so the header airtime is
    a safe (and tight, for zero-distance links) lookahead.
    """
    return radio.airtime(8 * MAC_HEADER_BYTES)


@dataclass(frozen=True)
class ShardPlan:
    """A fixed column-strip partition of a deployed field.

    ``cuts`` are the ``shards - 1`` strictly-increasing interior strip
    boundaries; ``bounds`` is the field's bounding box ``(x0, y0, x1,
    y1)`` (used to phrase strips as finite rectangles for
    :meth:`~repro.sim.spatial.CellGrid.cells_in_band` queries).
    """

    shards: int
    comm_range: float
    cuts: tuple[float, ...]
    bounds: tuple[float, float, float, float]

    @classmethod
    def build(
        cls, positions: np.ndarray, comm_range: float, shards: int
    ) -> "ShardPlan":
        """Balanced strips over ``positions`` (quantiles of sorted x).

        Raises :class:`~repro.exceptions.ConfigurationError` when the
        field cannot support ``shards`` non-empty strips (fewer nodes
        than shards, or x-coordinates so clustered that quantile cuts
        collide).
        """
        positions = np.asarray(positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ConfigurationError("positions must be an (n, 2) array")
        n = len(positions)
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if n < shards:
            raise ConfigurationError(
                f"cannot cut {n} nodes into {shards} non-empty strips"
            )
        if comm_range <= 0 or not math.isfinite(comm_range):
            raise ConfigurationError("comm_range must be positive and finite")
        xs = np.sort(positions[:, 0])
        cuts = tuple(float(xs[(k * n) // shards]) for k in range(1, shards))
        if len(set(cuts)) != len(cuts):
            raise ConfigurationError(
                f"field too clustered along x for {shards} balanced strips "
                f"(duplicate quantile cuts {cuts}); use fewer shards"
            )
        bounds = (
            float(positions[:, 0].min()),
            float(positions[:, 1].min()),
            float(positions[:, 0].max()),
            float(positions[:, 1].max()),
        )
        plan = cls(shards=shards, comm_range=float(comm_range), cuts=cuts, bounds=bounds)
        counts = np.bincount(plan.owner_of(positions), minlength=shards)
        if (counts == 0).any():
            empty = [int(s) for s in np.nonzero(counts == 0)[0]]
            raise ConfigurationError(
                f"strip partition leaves shard(s) {empty} empty; use fewer shards"
            )
        return plan

    # ------------------------------------------------------------------
    def owner_of(self, positions: np.ndarray) -> np.ndarray:
        """Shard id owning each position (vectorized; ties on a cut go right)."""
        x = np.asarray(positions, dtype=float)[:, 0]
        return np.searchsorted(np.asarray(self.cuts), x, side="right")

    def strip_bounds(self, shard: int) -> tuple[float, float]:
        """The ``[lo, hi)`` x-interval of ``shard`` (±inf at the ends)."""
        if not 0 <= shard < self.shards:
            raise ConfigurationError(f"no shard {shard} in a {self.shards}-way plan")
        lo = -math.inf if shard == 0 else self.cuts[shard - 1]
        hi = math.inf if shard == self.shards - 1 else self.cuts[shard]
        return lo, hi

    def strip_rect(self, shard: int) -> tuple[float, float, float, float]:
        """The strip as a finite rectangle (clipped to the field bounds),
        the region form :meth:`~repro.sim.spatial.CellGrid.cells_in_band`
        takes."""
        lo, hi = self.strip_bounds(shard)
        x0, y0, x1, y1 = self.bounds
        return (max(lo, x0), y0, min(hi, x1), y1)

    def interior_mask(self, positions: np.ndarray, shard: int) -> np.ndarray:
        """Owned nodes strictly farther than ``comm_range`` from every cut.

        An interior sender's whole closed-ball neighborhood is owned, so
        its fan-outs skip the ownership split entirely.  Strict
        inequality keeps a node exactly ``comm_range`` from a cut out of
        the mask — its neighbor on the far side at exactly ``comm_range``
        is a real edge.
        """
        positions = np.asarray(positions, dtype=float)
        x = positions[:, 0]
        mask = self.owner_of(positions) == shard
        lo, hi = self.strip_bounds(shard)
        if math.isfinite(lo):
            mask &= (x - lo) > self.comm_range
        if math.isfinite(hi):
            mask &= (hi - x) > self.comm_range
        return mask

    def halo_shards(self, x: float) -> list[int]:
        """Shards whose strip the closed ball of radius ``comm_range``
        around x-coordinate ``x`` can reach (including the owner's)."""
        out = []
        r = self.comm_range
        for s in range(self.shards):
            lo, hi = self.strip_bounds(s)
            if lo <= x + r and hi > x - r:
                out.append(s)
        return out
