"""Worker supervision: deadline-aware pipes, gang teardown, harness chaos.

The original coordinator trusted its workers completely — a bare
``conn.recv()`` per protocol step — so a worker that died (OOM, SIGKILL)
or hung left the coordinator blocked forever and the surviving workers
orphaned.  This module is the supervision layer underneath the rewritten
coordinator loop:

:class:`WorkerGang`
    Owns the worker processes and their pipes.  Every receive runs a
    deadline loop — poll the pipe in short heartbeat ticks, probe the
    worker's liveness between ticks — so *no wait ever exceeds the
    configured per-window deadline*.  Any failure surfaces as a
    structured :class:`~repro.exceptions.ShardWorkerError` (remote
    traceback, death with exit code, or deadline expiry), and
    :meth:`WorkerGang.shutdown` tears the whole gang down without
    leaking a process or a pipe, on every path.

:class:`SupervisionConfig`
    The knobs: per-window deadline, heartbeat tick, restart budget and
    backoff for the coordinator's respawn-from-checkpoint loop.

:class:`HarnessChaos`
    The FaultPlan philosophy applied to the harness itself (test-only):
    SIGKILL worker W at window N, or delay its reply past the deadline —
    so every recovery path is exercised the way E14 exercises the
    simulated network.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Optional

from repro.exceptions import ConfigurationError, ShardWorkerError

__all__ = ["HarnessChaos", "SupervisionConfig", "WorkerGang"]

#: Pipe-level failures that mean "the peer is gone", not "bad data".
_PIPE_DEATH = (EOFError, BrokenPipeError, ConnectionResetError, OSError)


@dataclass(frozen=True)
class SupervisionConfig:
    """Supervision knobs for one sharded execution.

    Attributes
    ----------
    window_timeout_s:
        Deadline for any single worker reply (the longest the
        coordinator will ever block on one receive).  Generous by
        default — a 100k-node window can legitimately take a while —
        but always finite: a hung worker is detected within this bound.
    heartbeat_s:
        The liveness-probe tick.  While waiting, the coordinator polls
        the pipe for this long, then checks the worker process is still
        alive before polling again — so a SIGKILL'd worker is detected
        within one tick instead of one window deadline.
    max_restarts:
        Gang respawns (from the last barrier checkpoint) the
        coordinator will attempt before re-raising the worker failure.
    backoff_base_s / backoff_factor:
        Exponential respawn backoff: restart ``k`` (0-based) sleeps
        ``backoff_base_s * backoff_factor**k`` first.
    join_timeout_s:
        How long teardown waits for a worker to exit after its pipe is
        closed and ``terminate()`` has been sent, before escalating to
        ``kill()``.
    """

    window_timeout_s: float = 120.0
    heartbeat_s: float = 0.05
    max_restarts: int = 2
    backoff_base_s: float = 0.1
    backoff_factor: float = 2.0
    join_timeout_s: float = 10.0

    def __post_init__(self) -> None:
        if not self.window_timeout_s > 0:
            raise ConfigurationError(
                f"window_timeout_s must be positive, got {self.window_timeout_s!r}"
            )
        if not self.heartbeat_s > 0:
            raise ConfigurationError(
                f"heartbeat_s must be positive, got {self.heartbeat_s!r}"
            )
        if self.max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be >= 0, got {self.max_restarts!r}"
            )
        if self.backoff_base_s < 0 or self.backoff_factor < 1.0:
            raise ConfigurationError(
                "backoff_base_s must be >= 0 and backoff_factor >= 1, got "
                f"{self.backoff_base_s!r} / {self.backoff_factor!r}"
            )

    def backoff_s(self, restart: int) -> float:
        """Sleep before 0-based restart attempt ``restart``."""
        return self.backoff_base_s * self.backoff_factor ** restart


@dataclass(frozen=True)
class HarnessChaos:
    """Test-only fault injection against the *harness*, not the network.

    Applied inside the worker processes of the first gang generation
    only — a respawned gang never re-arms chaos, so an injected kill
    cannot loop forever.

    Attributes
    ----------
    kill_shard / kill_window:
        SIGKILL worker ``kill_shard`` right after it finishes simulating
        global window ``kill_window`` (1-based), *before* it reports —
        the most adversarial moment: state advanced, barrier unreported.
    delay_shard / delay_window / delay_s:
        Sleep ``delay_s`` seconds in worker ``delay_shard`` before its
        reply for window ``delay_window`` — long enough and the
        coordinator's deadline fires, exercising the hang path without
        an actual hang.
    """

    kill_shard: Optional[int] = None
    kill_window: int = 1
    delay_shard: Optional[int] = None
    delay_window: int = 1
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kill_shard is None and self.delay_shard is None:
            raise ConfigurationError(
                "HarnessChaos without a kill_shard or delay_shard does nothing"
            )
        if self.kill_window < 1 or self.delay_window < 1:
            raise ConfigurationError("chaos windows are 1-based; got window < 1")
        if self.delay_shard is not None and not self.delay_s > 0:
            raise ConfigurationError(
                f"delay_s must be positive with delay_shard set, got {self.delay_s!r}"
            )


class WorkerGang:
    """The worker processes and pipes of one gang generation.

    All pipe traffic goes through :meth:`send` / :meth:`recv`, which
    convert every failure mode — remote traceback message, closed pipe,
    dead process, deadline expiry — into a
    :class:`~repro.exceptions.ShardWorkerError`.  :meth:`shutdown` is
    idempotent and total: after it returns, no worker process of this
    gang is running and every pipe is closed.
    """

    def __init__(self, ctx, config: SupervisionConfig) -> None:
        self._ctx = ctx
        self.config = config
        self.pipes: list = []
        self.procs: list = []

    def __len__(self) -> int:
        return len(self.procs)

    def spawn(self, target, args: tuple) -> None:
        """Start one worker running ``target(conn, *args)``.

        The parent keeps one end of a fresh duplex pipe; the child's end
        is closed in the parent immediately so a dead worker turns into
        ``EOFError`` on our side instead of a silent hang.
        """
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(target=target, args=(child, *args), daemon=True)
        proc.start()
        child.close()
        self.pipes.append(parent)
        self.procs.append(proc)

    # ------------------------------------------------------------------
    def send(self, shard: int, msg: Any, phase: str = "") -> None:
        try:
            self.pipes[shard].send(msg)
        except _PIPE_DEATH as exc:
            raise ShardWorkerError(
                shard, "died", phase=phase, detail=str(exc),
                exitcode=self.procs[shard].exitcode,
            ) from exc

    def recv(self, shard: int, phase: str) -> Any:
        """One supervised receive: bounded by the window deadline.

        The loop polls the pipe one heartbeat tick at a time and probes
        the worker process between ticks.  A worker that died *after*
        writing its reply still gets that reply delivered (the pipe
        buffer outlives the sender — drained before death is declared).
        """
        conn, proc = self.pipes[shard], self.procs[shard]
        cfg = self.config
        deadline = time.monotonic() + cfg.window_timeout_s
        while True:
            remaining = deadline - time.monotonic()
            try:
                if conn.poll(min(cfg.heartbeat_s, max(remaining, 0.0))):
                    msg = conn.recv()
                    if msg[0] == "error":
                        raise ShardWorkerError(
                            shard, "remote", phase=phase, detail=msg[1]
                        )
                    return msg
            except _PIPE_DEATH as exc:
                raise ShardWorkerError(
                    shard, "died", phase=phase, detail=str(exc),
                    exitcode=proc.exitcode,
                ) from exc
            if not proc.is_alive() and not conn.poll(0):
                raise ShardWorkerError(
                    shard, "died", phase=phase, exitcode=proc.exitcode
                )
            if time.monotonic() >= deadline:
                raise ShardWorkerError(
                    shard, "deadline", phase=phase,
                    detail=f"no reply within {cfg.window_timeout_s}s",
                )

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Tear the gang down completely; safe to call repeatedly.

        Closing the pipes first turns any worker blocked in ``recv()``
        into a clean ``EOFError`` exit; stragglers are terminated, then
        killed, and every process is joined so nothing is left running
        (and nothing is left a zombie).
        """
        for conn in self.pipes:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for proc in self.procs:
            if proc.is_alive():
                proc.terminate()
        deadline = time.monotonic() + self.config.join_timeout_s
        for proc in self.procs:
            proc.join(timeout=max(deadline - time.monotonic(), 0.1))
        for proc in self.procs:
            if proc.is_alive():  # pragma: no cover - terminate() ignored
                proc.kill()
                proc.join(timeout=self.config.join_timeout_s)
        self.pipes = []
        self.procs = []
