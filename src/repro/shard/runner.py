"""The sharded executor: workers, window protocol, merge, digest.

One coordinator (the calling process) and ``shards`` workers.  Every
worker builds the *identical* deterministic world — full field, same
seed — then restricts itself to the nodes of its strip: only owned
sources' traffic is scheduled, and the channel's ownership mask
(:meth:`~repro.sim.radio.Channel.configure_sharding`) delivers fan-outs
locally to owned receivers while exporting the rest as exact timestamped
messages.  Replicating the world costs memory but buys bit-identity for
free: positions, neighbor tables and float expressions are byte-for-byte
the ones the single-process run uses.

Window protocol (conservative, BSP)::

    worker  -> ('ready', next_event_time)
    coord   -> ('advance', grant, deliveries, alive_updates,
                route_updates)                                 # repeated
    worker  -> ('window', next_event_time, exports, alive_flips,
                route_flips)
    coord   -> ('finish',)
    worker  -> ('done', metrics, (tx, rx), events_processed, wall_s,
                rng_states)

``grant = horizon + lookahead`` where ``horizon`` is the minimum of all
workers' next event times and all not-yet-injected message arrivals, and
the lookahead is :func:`~repro.shard.plan.conservative_lookahead`.  A
frame sent at ``t >= horizon`` arrives at ``t + lookahead >= grant``, so
exports collected at a barrier are never in any worker's past: workers
run ``sim.run(until=grant, inclusive=False)`` (events strictly before
the grant) and the coordinator injects each export exactly once, in the
first window after it surfaced.

Unicast protocols (SPR, MLR) ride the same machinery: every packet —
broadcast flood or routed unicast — crosses a strip boundary as an
exported reception, and every RNG draw (loss, burst, ARQ backoff,
discovery jitter) comes from the *acting node's* substream
(:meth:`~repro.sim.engine.Simulator.node_rng`), which is derived from
the seed alone and therefore identical on every worker.  Route and
liveness state is owner-authoritative; the halo rows of the
struct-of-arrays store mirror the owner's ``alive``/``died_at`` and
``next_hop``/``route_seq`` columns at window barriers.

Barrier-refreshed halo mirrors lag the owner by less than one lookahead
window.  For liveness this lag is *exactly compensated* by the routing
layer's delayed death belief
(:meth:`~repro.core.dataplane.DataPlaneForwarder._believed_alive`): a
battery death at ``t`` becomes visible to other nodes only at ``t +
lookahead``, and since every window spans at most ``lookahead`` of sim
time, the flip always crosses the barrier before any worker may observe
it — death-bearing unicast workloads are therefore bit-identical, which
the digest suite pins at 1/2/3 workers.  One caveat remains,
measure-zero for uniform random deployments: events that tie to the
exact same float timestamp execute in sequence order, and sequence
numbers are per-worker, so cross-shard same-timestamp ties may order
differently than the single-process run.

Fault tolerance.  Every pipe interaction runs through a supervised
:class:`~repro.shard.supervise.WorkerGang` — a worker that dies, hangs
past the per-window deadline, or raises remotely surfaces as a
structured :class:`~repro.exceptions.ShardWorkerError` within a bounded
time, and the gang is torn down on every exit path (no orphans, no
leaked pipes).  With a checkpoint store configured
(:mod:`repro.shard.checkpoint`) the coordinator snapshots the whole
gang at barrier every ``checkpoint_every`` windows and, on a retryable
failure, respawns the gang from the last committed checkpoint — up to
``max_restarts`` times with exponential backoff.  Because snapshots are
side-effect-free and taken at global quiescence, a crashed-and-resumed
run is *bit-identical* (digest and per-node RNG states) to an
uninterrupted one; ``resume_from=`` cold-restarts a brand-new
invocation the same way.
"""

from __future__ import annotations

import hashlib
import json
import math
import multiprocessing
import os
import signal
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

import numpy as np

from repro.baselines.flooding import Flooding
from repro.core.mlr import MLR
from repro.core.spr import SPR
from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    ShardWorkerError,
    SimulationError,
)
from repro.obs.audit import ConservationReport, assert_conserved, audit_collector
from repro.obs.merge import merge_collectors
from repro.shard.checkpoint import (
    CheckpointConfig,
    CheckpointStore,
    _atomic_write_bytes,
    base_dir_for,
    restore_world,
    snapshot_world,
    workload_key,
)
from repro.shard.plan import ShardPlan, conservative_lookahead
from repro.shard.supervise import HarnessChaos, SupervisionConfig, WorkerGang
from repro.sim.mobility import GatewaySchedule
from repro.sim.radio import IEEE802154, RadioConfig
from repro.sim.spatial import CellGrid
from repro.sim.trace import MetricsCollector, audit_default
from repro.world import WorldBuilder, WorldConfig

__all__ = ["ShardRunResult", "ShardWorkload", "run_digest", "run_sharded"]

#: Protocols whose sharded execution is bit-identical.  Flooding is
#: broadcast-only; SPR and MLR route unicast over owner-authoritative
#: state with every RNG draw taken from the acting node's substream, so
#: their frames and draws shard cleanly too.  Gossiping/LEACH still draw
#: from the *shared* ``sim.rng`` in global event order — per-worker
#: streams would diverge — and stay unsupported.
_SHARD_SAFE_PROTOCOLS = {"flooding": Flooding, "spr": SPR, "mlr": MLR}


@dataclass
class ShardWorkload:
    """A deployment plus its full traffic schedule, executor-agnostic.

    ``traffic`` is the *global* list of ``(time, source)`` datum
    originations; each worker schedules only the sources it owns, the
    single-process leg schedules all of them — both label datum ``i``
    with ``data_id == i + 1``, so ``(origin, data_id)`` identities match
    across legs bit-for-bit.

    ``rounds`` (MLR only) is the tuple of round start times: round ``r``
    of the schedule is applied at ``rounds[r]`` on *every* leg — gateway
    moves are replicated world state, the NOTIFY flood airs once on the
    moving gateway's owner.  Empty means one round at t=0.

    Construction validates the protocol/radio/world composition
    immediately (the same :func:`_validate` pass ``run_sharded`` applies
    to its final shard count), so an unsupported combination fails where
    the workload is written, not windows-deep inside a worker.
    """

    sensor_positions: np.ndarray
    gateway_positions: np.ndarray
    comm_range: float
    traffic: tuple
    world: WorldConfig = field(default_factory=WorldConfig)
    radio: RadioConfig = field(default_factory=IEEE802154.ideal)
    protocol: str = "flooding"
    protocol_params: dict = field(default_factory=dict)
    sensor_battery: float = math.inf
    seed: int = 0
    rounds: tuple = ()

    def __post_init__(self) -> None:
        _validate(self, self.world.shards)

    @property
    def positions(self) -> np.ndarray:
        """All node positions, sensors first then gateways — the id
        order :func:`~repro.sim.network.build_sensor_network` uses."""
        return np.vstack(
            [
                np.asarray(self.sensor_positions, dtype=float),
                np.asarray(self.gateway_positions, dtype=float),
            ]
        )


@dataclass
class ShardRunResult:
    """Merged outcome of one (sharded or single-process) execution."""

    shards: int
    metrics: MetricsCollector
    events_processed: int
    wall_clock_s: float
    windows: int
    digest: str
    conservation: Optional[ConservationReport] = None
    #: per-shard ``{"shard", "events_processed", "wall_clock_s"}`` rows
    parts: list = field(default_factory=list)
    #: final per-node RNG substream states, ``{node_id: bit_generator
    #: state dict}`` for every node that drew — sharded runs merge the
    #: owners' states, so equality with the single-process leg proves
    #: the partitioned streams were consumed identically.
    rng_states: dict = field(default_factory=dict)
    #: gang respawns the supervision loop performed (0 = clean run)
    restarts: int = 0
    #: barrier checkpoints committed across all gang generations
    checkpoints: int = 0
    #: window the (last) resume restarted from; ``None`` = from scratch
    resumed_window: Optional[int] = None


# ----------------------------------------------------------------------
# the order-canonical digest
# ----------------------------------------------------------------------
def run_digest(metrics: MetricsCollector, node_counts: tuple) -> str:
    """SHA-256 over the run's observable outcome, canonicalized.

    Covers per-kind frame counters, drop reasons, byte/datum totals, the
    first delivery of every datum (chosen by ``(delivered_at,
    destination)`` so list order is irrelevant), first death, and
    per-node tx/rx counts.  Floats are hex-formatted — bit-identical or
    nothing.  Deliberately excludes ``events_processed`` (batching and
    window re-parking repackage the same work into different event
    counts) and float energy sums (addition order across same-time
    receptions is unobservable).
    """
    tx, rx = node_counts
    firsts: dict[tuple, tuple] = {}
    for r in metrics.deliveries:
        key = (r.origin, r.uid)
        cand = (r.delivered_at, r.destination, r.hops, r.latency, r.created_at)
        prev = firsts.get(key)
        if prev is None or (cand[0], cand[1]) < (prev[0], prev[1]):
            firsts[key] = cand
    first_death = metrics.first_death
    obj = {
        "sent": {k.name: v for k, v in sorted(metrics.sent.items(), key=lambda kv: kv[0].name)},
        "received": {
            k.name: v for k, v in sorted(metrics.received.items(), key=lambda kv: kv[0].name)
        },
        "drops": dict(sorted(metrics.drops.items())),
        "bytes_sent": metrics.bytes_sent,
        "data_generated": metrics.data_generated,
        "control_frames": metrics.control_frames,
        "data_frames": metrics.data_frames,
        "deliveries": [
            [o, u, float(t).hex(), d, h, float(lat).hex(), float(c).hex()]
            for (o, u), (t, d, h, lat, c) in sorted(firsts.items())
        ],
        "first_death": (
            None if first_death is None else [int(first_death[0]), float(first_death[1]).hex()]
        ),
        "tx": [int(v) for v in tx],
        "rx": [int(v) for v in rx],
    }
    blob = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
# validation and world construction
# ----------------------------------------------------------------------
def _want_audit(cfg: WorldConfig) -> bool:
    return cfg.audit if cfg.audit is not None else audit_default()


def _validate(workload: ShardWorkload, shards: int) -> None:
    """Reject unsupported workload/shard compositions, loudly and early.

    Called from :meth:`ShardWorkload.__post_init__` (against the world's
    default shard count) and again from :func:`run_sharded` (against the
    actual count), so both the construction site and the execution site
    fail with the supported list in the message.
    """
    if not isinstance(shards, int) or shards < 1:
        raise ConfigurationError(f"shards must be a positive integer, got {shards!r}")
    if workload.protocol not in _SHARD_SAFE_PROTOCOLS:
        raise ConfigurationError(
            f"protocol {workload.protocol!r} is not shard-safe; supported: "
            f"{sorted(_SHARD_SAFE_PROTOCOLS)} (gossiping/LEACH draw from the "
            "shared RNG in global event order)"
        )
    if workload.protocol == "mlr":
        schedule = workload.protocol_params.get("schedule")
        if not isinstance(schedule, GatewaySchedule):
            raise ConfigurationError(
                "mlr workloads need a GatewaySchedule under "
                "protocol_params['schedule']"
            )
        n_rounds = len(workload.rounds) or 1
        if n_rounds > schedule.num_rounds:
            raise ConfigurationError(
                f"workload schedules {n_rounds} rounds but the gateway "
                f"schedule only has {schedule.num_rounds}"
            )
        times = [float(t) for t in workload.rounds]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ConfigurationError(
                f"round start times must be strictly increasing, got {times}"
            )
    elif workload.rounds:
        raise ConfigurationError(
            f"rounds only apply to mlr, not {workload.protocol!r}"
        )
    if shards == 1:
        return
    cfg = workload.world
    if not cfg.soa:
        raise ConfigurationError(
            "sharded execution requires soa=True (halo alive/route mirroring "
            "and per-node counters live on the struct-of-arrays store)"
        )
    if cfg.faults is not None:
        raise ConfigurationError(
            "sharded execution cannot arm a fault plan: the injector would "
            "fire on every shard's replicated copy of a node"
        )
    radio = workload.radio
    if radio.csma or radio.collisions:
        raise ConfigurationError(
            "sharded execution requires csma=False and collisions=False (the "
            "medium is global state); loss, burst, ARQ and backoff shard "
            "fine — their draws come from per-node RNG substreams"
        )
    if workload.protocol == "mlr":
        _validate_mlr_mobility(workload, shards)


def _validate_mlr_mobility(workload: ShardWorkload, shards: int) -> None:
    """Every place a gateway ever occupies must stay in its home strip.

    Node ownership is fixed at round 0 (the plan is built from initial
    positions), so a gateway that crossed a cut would be simulated by a
    worker that no longer matches its position — and interior sensors of
    the strip it entered would deliver to it locally instead of
    exporting.  Strip-stable schedules keep both invariants: a non-owned
    node is always beyond the cut, hence > comm_range from every
    interior sensor.
    """
    schedule: GatewaySchedule = workload.protocol_params["schedule"]
    positions = workload.positions
    plan = ShardPlan.build(positions, workload.comm_range, shards)
    home = plan.owner_of(positions)
    n_rounds = len(workload.rounds) or 1
    for r in range(n_rounds):
        for g, place in sorted(schedule.assignment(r).items()):
            pos = np.asarray(schedule.places.position(place), dtype=float)
            owner = int(plan.owner_of(pos[None, :])[0])
            if owner != int(home[g]):
                raise ConfigurationError(
                    f"gateway {g} moves to place {place!r} in round {r}, "
                    f"crossing from strip {int(home[g])} to {owner}; sharded "
                    "MLR needs strip-stable gateway schedules (ownership is "
                    "fixed at round 0)"
                )


def _schedule_rounds(sim, proto, workload: ShardWorkload) -> None:
    """Arm MLR round starts at identical sim times on every leg.

    Scheduled *before* the traffic so same-timestamp ties resolve the
    same way on workers and the single-process leg.  Gateway moves are
    replicated world state (every worker applies them); the NOTIFY
    flood airs only on the moving gateway's owner.
    """
    if workload.protocol != "mlr":
        return
    for r, when in enumerate(workload.rounds or (0.0,)):
        sim.schedule_at(float(when), proto.start_round, r)


def _build_worker_world(workload: ShardWorkload, defer_audit: bool):
    """Build the full deterministic world one worker (or the single leg) runs.

    ``defer_audit`` builds with auditing disabled and re-enables the
    ledger afterwards *without* the strict idle hook: a worker's local
    quiescence mid-window says nothing about cross-shard in-flight data,
    so only the merged ledger is audited (once, at the coordinator).
    """
    cfg = workload.world.replace(shards=1)
    want_audit = _want_audit(cfg)
    if defer_audit:
        cfg = cfg.replace(audit=False)
    world = (
        WorldBuilder()
        .seed(workload.seed)
        .sensors(np.asarray(workload.sensor_positions, dtype=float))
        .gateways(np.asarray(workload.gateway_positions, dtype=float))
        .comm_range(workload.comm_range)
        .sensor_battery(workload.sensor_battery)
        .radio(workload.radio)
        .configure(cfg)
        .build()
    )
    if defer_audit and want_audit:
        world.metrics.enable_audit()
    proto = world.attach(_SHARD_SAFE_PROTOCOLS[workload.protocol], **workload.protocol_params)
    return world, proto


# ----------------------------------------------------------------------
# the worker process
# ----------------------------------------------------------------------
def _worker_main(
    conn,
    workload: ShardWorkload,
    shard_id: int,
    plan: ShardPlan,
    chaos: Optional[HarnessChaos] = None,
    resume_path: Optional[str] = None,
) -> None:
    try:
        _worker_loop(conn, workload, shard_id, plan, chaos, resume_path)
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


def _worker_loop(
    conn,
    workload: ShardWorkload,
    shard_id: int,
    plan: ShardPlan,
    chaos: Optional[HarnessChaos],
    resume_path: Optional[str],
) -> None:
    t0 = time.perf_counter()
    if resume_path is not None:
        # Thaw the barrier snapshot: the whole world object graph plus
        # the uid watermark, exactly as the dead worker last held it.
        # Channel sharding masks, scheduled traffic and round starts are
        # all part of the frozen state — nothing is re-applied.
        world, proto, extra = restore_world(Path(resume_path).read_bytes())
        sim, channel, network = world.sim, world.channel, world.network
        positions = workload.positions
        owned = plan.owner_of(positions) == shard_id
        watch = extra["watch"]
        alive_now = extra["alive_now"]
        route_now = extra["route_now"]
        window_no = int(extra["window"])
        wall_base = float(extra["wall_s"])
        nodes = network.nodes
        store = network.store
    else:
        positions = workload.positions
        owned = plan.owner_of(positions) == shard_id
        interior = plan.interior_mask(positions, shard_id)
        world, proto = _build_worker_world(workload, defer_audit=True)
        sim, channel, network = world.sim, world.channel, world.network
        if workload.protocol == "mlr":
            # Gateways relocate between rounds: their round-0 interior
            # status goes stale the moment they move, so they always take
            # the split path (mobility is validated strip-stable, keeping
            # the static ownership mask correct).
            interior[list(network.gateway_ids)] = False
        channel.configure_sharding(owned, interior)
        _schedule_rounds(sim, proto, workload)
        for i, (when, src) in enumerate(workload.traffic):
            if owned[src]:
                sim.schedule_at(float(when), proto.send_data, int(src), None, i + 1)

        # Watch set: owned nodes whose aliveness and route columns other
        # shards can observe — everything in the comm_range band around
        # this strip's boundary.
        grid = CellGrid(positions, workload.comm_range)
        band = grid.cells_in_band(plan.strip_rect(shard_id), workload.comm_range)
        watch = [int(i) for i in band if owned[i]]
        nodes = network.nodes
        store = network.store
        alive_now = {i: bool(nodes[i].alive) for i in watch}
        route_now = {i: int(store.route_seq[i]) for i in watch}
        window_no = 0
        wall_base = 0.0

    conn.send(("ready", sim.next_event_time))
    while True:
        msg = conn.recv()
        if msg[0] == "finish":
            break
        if msg[0] == "checkpoint":
            blob = snapshot_world(
                world,
                proto,
                extra={
                    "watch": watch,
                    "alive_now": alive_now,
                    "route_now": route_now,
                    "window": window_no,
                    "wall_s": wall_base + (time.perf_counter() - t0),
                },
            )
            _atomic_write_bytes(Path(msg[1]), blob)
            conn.send(("saved", shard_id))
            continue
        _, grant, deliveries, alive_updates, route_updates = msg
        if alive_updates:
            store.mirror_alive(
                [i for i, _, _ in alive_updates],
                [up for _, up, _ in alive_updates],
                [t for _, _, t in alive_updates],
            )
        if route_updates:
            store.mirror_route(
                [i for i, _, _ in route_updates],
                [hop for _, hop, _ in route_updates],
                [seq for _, _, seq in route_updates],
            )
        for arrive, receiver, sender, packet, attempt in deliveries:
            channel.deliver_remote(arrive, receiver, sender, packet, attempt)
        sim.run(until=grant, inclusive=False)
        window_no += 1
        flips = []
        routes = []
        for i in watch:
            up = bool(nodes[i].alive)
            if up != alive_now[i]:
                alive_now[i] = up
                flips.append((i, up, float(store.died_at[i])))
            seq = int(store.route_seq[i])
            if seq != route_now[i]:
                route_now[i] = seq
                routes.append((i, int(store.next_hop[i]), seq))
        if chaos is not None:
            # State advanced, barrier unreported — the most adversarial
            # crash point (see HarnessChaos).
            if chaos.kill_shard == shard_id and window_no == chaos.kill_window:
                os.kill(os.getpid(), signal.SIGKILL)
            if chaos.delay_shard == shard_id and window_no == chaos.delay_window:
                time.sleep(chaos.delay_s)
        conn.send(
            ("window", sim.next_event_time, channel.take_shard_exports(), flips, routes)
        )

    tx, rx = store.counter_columns()
    rng_states = {
        i: st for i, st in sim.node_rng_states().items() if owned[i]
    }
    conn.send(
        (
            "done",
            world.metrics,
            (tx.tolist(), rx.tolist()),
            sim.events_processed,
            wall_base + (time.perf_counter() - t0),
            rng_states,
        )
    )


# ----------------------------------------------------------------------
# the coordinator
# ----------------------------------------------------------------------
def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def _resolve_checkpoint(
    workload: ShardWorkload, checkpoint, resume_from
) -> Optional[CheckpointConfig]:
    """Checkpointing for this run: explicit arg > WorldConfig > resume path.

    A bare path string is promoted to a :class:`CheckpointConfig` with
    the world's cadence; ``resume_from`` alone implies its own base dir
    as the store (so the resumed run keeps checkpointing into the same
    tree it is restoring from).
    """
    if isinstance(checkpoint, CheckpointConfig):
        return checkpoint
    if isinstance(checkpoint, (str, Path)):
        return CheckpointConfig(
            dir=str(checkpoint), every=workload.world.checkpoint_every
        )
    if checkpoint is not None:
        raise ConfigurationError(
            f"checkpoint must be a CheckpointConfig, a directory path or None, "
            f"got {checkpoint!r}"
        )
    cfg = workload.world
    if cfg.checkpoint_dir is not None:
        return CheckpointConfig(dir=cfg.checkpoint_dir, every=cfg.checkpoint_every)
    if resume_from is not None:
        return CheckpointConfig(
            dir=str(base_dir_for(resume_from)), every=cfg.checkpoint_every
        )
    return None


def _run_single(workload: ShardWorkload) -> ShardRunResult:
    """The ``shards=1`` leg: exactly the existing single-process path."""
    t0 = time.perf_counter()
    world, proto = _build_worker_world(workload, defer_audit=False)
    _schedule_rounds(world.sim, proto, workload)
    for i, (when, src) in enumerate(workload.traffic):
        world.sim.schedule_at(float(when), proto.send_data, int(src), None, i + 1)
    world.sim.run()
    metrics = world.metrics
    tx, rx = world.network.store.counter_columns()
    conservation = None
    if metrics.ledger is not None:
        conservation = audit_collector(metrics, strict=True)
    return ShardRunResult(
        shards=1,
        metrics=metrics,
        events_processed=world.sim.events_processed,
        wall_clock_s=time.perf_counter() - t0,
        windows=0,
        digest=run_digest(metrics, (tx.tolist(), rx.tolist())),
        conservation=conservation,
        parts=[
            {
                "shard": 0,
                "events_processed": world.sim.events_processed,
                "wall_clock_s": time.perf_counter() - t0,
            }
        ],
        rng_states=world.sim.node_rng_states(),
    )


def _coordinate(
    workload: ShardWorkload,
    shards: int,
    plan: ShardPlan,
    positions: np.ndarray,
    supervision: SupervisionConfig,
    store: Optional[CheckpointStore],
    resume_point,
    chaos: Optional[HarnessChaos],
    max_windows: Optional[int],
    stats: dict,
):
    """Drive one gang generation barrier-to-barrier; return the payloads.

    Spawns the workers (from scratch or from ``resume_point``), runs the
    window protocol with supervised sends/receives, checkpoints at the
    configured cadence, and *always* tears the gang down — a worker
    failure propagates as :class:`~repro.exceptions.ShardWorkerError`
    with no process or pipe left behind for the caller's restart loop.
    """
    owners = plan.owner_of(positions)
    xs = positions[:, 0]
    lookahead = conservative_lookahead(workload.radio)
    limit = 1_000_000 if max_windows is None else max_windows

    gang = WorkerGang(_mp_context(), supervision)
    try:
        for s in range(shards):
            shard_file = (
                str(resume_point.path / f"shard-{s:02d}.pkl")
                if resume_point is not None
                else None
            )
            gang.spawn(_worker_main, (workload, s, plan, chaos, shard_file))

        nexts = [gang.recv(s, "ready")[1] for s in range(shards)]
        if resume_point is not None:
            coord = resume_point.coordinator_state()
            if nexts != coord["nexts"]:
                raise CheckpointError(
                    f"resumed workers report next-event times {nexts} but the "
                    f"checkpoint froze {coord['nexts']} — snapshot and workload "
                    "disagree"
                )
            pending = coord["pending"]
            pending_alive = coord["pending_alive"]
            pending_routes = coord["pending_routes"]
            in_flight = coord["in_flight"]
            windows = int(coord["windows"])
        else:
            pending = [[] for _ in range(shards)]
            pending_alive = [[] for _ in range(shards)]
            pending_routes = [[] for _ in range(shards)]
            in_flight = []
            windows = 0
        while True:
            horizon = math.inf
            for t in nexts:
                if t is not None and t < horizon:
                    horizon = t
            for t in in_flight:
                if t < horizon:
                    horizon = t
            if not math.isfinite(horizon):
                break
            windows += 1
            if windows > limit:
                raise SimulationError(
                    f"sharded run exceeded {limit} windows at t={horizon} — livelock?"
                )
            grant = horizon + lookahead
            for s in range(shards):
                gang.send(
                    s,
                    ("advance", grant, pending[s], pending_alive[s], pending_routes[s]),
                    phase="advance",
                )
            pending = [[] for _ in range(shards)]
            pending_alive = [[] for _ in range(shards)]
            pending_routes = [[] for _ in range(shards)]
            in_flight = []
            for s in range(shards):
                msg = gang.recv(s, "window")
                nexts[s] = msg[1]
                for exp in msg[2]:
                    pending[int(owners[exp[1]])].append(exp)
                    in_flight.append(exp[0])
                for node, up, died in msg[3]:
                    for h in plan.halo_shards(float(xs[node])):
                        if h != s:
                            pending_alive[h].append((node, up, died))
                for node, hop, seq in msg[4]:
                    for h in plan.halo_shards(float(xs[node])):
                        if h != s:
                            pending_routes[h].append((node, hop, seq))
            for lst in pending:
                # Deterministic injection order regardless of which
                # shard reported first: by (arrive, receiver).
                lst.sort(key=lambda e: (e[0], e[1]))
            for lst in pending_alive:
                lst.sort()
            for lst in pending_routes:
                lst.sort()

            if store is not None and windows % store.config.every == 0:
                # Global quiescence: every worker drained its grant, all
                # cross-shard traffic is in the pending lists above.
                store.begin(windows)
                for s in range(shards):
                    gang.send(
                        s,
                        ("checkpoint", str(store.shard_path(windows, s))),
                        phase="checkpoint",
                    )
                for s in range(shards):
                    gang.recv(s, "saved")
                store.commit(
                    windows,
                    {
                        "windows": windows,
                        "nexts": list(nexts),
                        "pending": pending,
                        "pending_alive": pending_alive,
                        "pending_routes": pending_routes,
                        "in_flight": list(in_flight),
                    },
                )
                stats["checkpoints"] += 1

        for s in range(shards):
            gang.send(s, ("finish",), phase="finish")
        payloads = [gang.recv(s, "done") for s in range(shards)]
    finally:
        gang.shutdown()
    return payloads, windows


def run_sharded(
    workload: ShardWorkload,
    shards: Optional[int] = None,
    trace_path: Optional[str] = None,
    max_windows: Optional[int] = None,
    supervision: Optional[SupervisionConfig] = None,
    checkpoint=None,
    resume_from: Optional[str] = None,
    chaos: Optional[HarnessChaos] = None,
) -> ShardRunResult:
    """Execute ``workload`` across ``shards`` worker processes.

    ``shards`` defaults to ``workload.world.shards``; ``1`` runs the
    plain single-process path (same digest, same cache identity).  Under
    audit mode the merged ledger is strictly audited at the end — a
    violation raises :class:`~repro.exceptions.ConservationError`, the
    same contract the single-process idle hook enforces at quiescence.
    ``max_windows`` guards against livelock in the window protocol
    (default: one million barriers).  ``trace_path`` writes a JSON cell
    record at the path plus one fragment per shard
    (``<stem>.shardNN<suffix>``).

    Fault tolerance (multi-shard only):

    ``supervision``
        :class:`~repro.shard.supervise.SupervisionConfig` — per-window
        deadline, restart budget, backoff.  Defaults apply when omitted.
    ``checkpoint``
        A :class:`~repro.shard.checkpoint.CheckpointConfig` or a bare
        directory path; falls back to the workload's
        ``world.checkpoint_dir`` / ``checkpoint_every``.  When set, the
        gang snapshots at barrier every ``every`` windows and retryable
        worker failures (death, deadline) respawn from the last
        committed checkpoint — remote Python exceptions re-raise
        immediately (deterministic; a retry would replay them).
    ``resume_from``
        Path to a checkpoint tree (base dir, run dir or window dir) to
        cold-start from; the resumed run is bit-identical to the
        uninterrupted one.
    ``chaos``
        Test-only :class:`~repro.shard.supervise.HarnessChaos`, armed on
        the first gang generation only.
    """
    if shards is None:
        shards = workload.world.shards
    _validate(workload, shards)
    supervision = supervision or SupervisionConfig()
    ckpt_cfg = _resolve_checkpoint(workload, checkpoint, resume_from)
    if shards == 1:
        if resume_from is not None or chaos is not None:
            raise ConfigurationError(
                "resume_from and chaos require a sharded execution (shards > 1); "
                "the single-process leg has no worker gang to supervise"
            )
        result = _run_single(workload)
        if trace_path is not None:
            _write_trace(trace_path, result)
        return result

    t0 = time.perf_counter()
    positions = workload.positions
    plan = ShardPlan.build(positions, workload.comm_range, shards)
    store = (
        CheckpointStore(ckpt_cfg, workload_key(workload, shards), shards)
        if ckpt_cfg is not None
        else None
    )
    resume_point = None
    if resume_from is not None:
        resume_point = store.locate(resume_from)
    resumed_window = resume_point.window if resume_point is not None else None

    stats = {"checkpoints": 0}
    restarts = 0
    attempt_chaos = chaos
    while True:
        try:
            payloads, windows = _coordinate(
                workload, shards, plan, positions, supervision, store,
                resume_point, attempt_chaos, max_windows, stats,
            )
            break
        except ShardWorkerError as exc:
            retryable = (
                exc.retryable
                and store is not None
                and restarts < supervision.max_restarts
            )
            if not retryable:
                raise
            restarts += 1
            attempt_chaos = None
            time.sleep(supervision.backoff_s(restarts - 1))
            # Latest committed checkpoint, if any was reached; None
            # restarts the computation from scratch.
            resume_point = store.latest()
            if resume_point is not None:
                resumed_window = resume_point.window

    collectors = [p[1] for p in payloads]
    tx = np.sum([np.asarray(p[2][0], dtype=np.int64) for p in payloads], axis=0)
    rx = np.sum([np.asarray(p[2][1], dtype=np.int64) for p in payloads], axis=0)
    merged = merge_collectors(collectors)
    conservation = None
    if merged.ledger is not None:
        conservation = assert_conserved(merged, strict=True)
    rng_states: dict[int, dict] = {}
    for p in payloads:
        # Disjoint by construction: a node's substream only ever
        # advances on its owner (draws are keyed by the acting node).
        rng_states.update(p[5])
    result = ShardRunResult(
        shards=shards,
        metrics=merged,
        events_processed=sum(p[3] for p in payloads),
        wall_clock_s=time.perf_counter() - t0,
        windows=windows,
        digest=run_digest(merged, (tx.tolist(), rx.tolist())),
        conservation=conservation,
        parts=[
            {"shard": s, "events_processed": p[3], "wall_clock_s": p[4]}
            for s, p in enumerate(payloads)
        ],
        rng_states=dict(sorted(rng_states.items())),
        restarts=restarts,
        checkpoints=stats["checkpoints"],
        resumed_window=resumed_window,
    )
    if trace_path is not None:
        _write_trace(trace_path, result)
    return result


# ----------------------------------------------------------------------
# trace output
# ----------------------------------------------------------------------
def _cell_record(result: ShardRunResult) -> dict:
    rec: dict[str, Any] = {
        "shards": result.shards,
        "digest": result.digest,
        "events_processed": result.events_processed,
        "wall_clock_s": result.wall_clock_s,
        "windows": result.windows,
        "restarts": result.restarts,
        "checkpoints": result.checkpoints,
        "resumed_window": result.resumed_window,
        "summary": result.metrics.summary(),
    }
    if result.conservation is not None:
        rec["conservation"] = result.conservation.to_jsonable()
    return rec


def _write_trace(path: str, result: ShardRunResult) -> None:
    """One merged cell record at ``path``, one fragment per shard."""
    import pathlib

    p = pathlib.Path(path)
    p.write_text(json.dumps(_cell_record(result), indent=2, sort_keys=True) + "\n")
    for part in result.parts:
        frag = p.with_name(f"{p.stem}.shard{part['shard']:02d}{p.suffix}")
        frag.write_text(json.dumps(part, indent=2, sort_keys=True) + "\n")
