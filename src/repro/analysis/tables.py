"""Plain-text table rendering for experiment reports.

Benchmarks print the same rows/series the paper reports; this keeps the
formatting in one place so every experiment's output looks alike and
EXPERIMENTS.md can quote it directly.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table"]


def _cell(value: Any, ndigits: int = 3) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.{ndigits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
    ndigits: int = 3,
) -> str:
    """Render an aligned ASCII table.

    >>> print(format_table(["a", "b"], [[1, 2.5], ["x", 3.0]]))
    a | b
    --+------
    1 | 2.500
    x | 3
    """
    cells = [[_cell(v, ndigits) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)
