"""Statistics and reporting helpers shared by experiments and benchmarks."""

from repro.analysis.stats import (
    aggregate_records,
    energy_balance_index,
    energy_stats,
    first_death_time,
    hop_histogram,
    jain_fairness,
    residual_energy,
    summarize,
)
from repro.analysis.tables import format_table

__all__ = [
    "energy_stats",
    "residual_energy",
    "first_death_time",
    "energy_balance_index",
    "jain_fairness",
    "hop_histogram",
    "summarize",
    "aggregate_records",
    "format_table",
]
