"""Energy and topology statistics over a simulated network.

These are the derived quantities the paper's goals are phrased in:
total energy (eq. 1 first objective), the variance ``D^2`` of per-node
energy (eq. 1 second objective), lifetime (first node death, Section 5.3),
and fairness/balance indices used to compare protocols in E5.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Optional

import numpy as np

from repro.sim.network import Network
from repro.sim.trace import MetricsCollector

__all__ = [
    "energy_stats",
    "residual_energy",
    "first_death_time",
    "energy_balance_index",
    "jain_fairness",
    "hop_histogram",
]


def _sensor_spent(network: Network) -> np.ndarray:
    return np.array([network.nodes[s].energy.spent for s in network.sensor_ids])


def energy_stats(network: Network) -> dict[str, float]:
    """Total / mean / max / variance of sensor energy consumption (joules).

    ``variance`` is exactly the paper's ``D^2`` objective of eq. (1).
    """
    spent = _sensor_spent(network)
    if len(spent) == 0:
        return {"total": 0.0, "mean": 0.0, "max": 0.0, "variance": 0.0, "std": 0.0}
    return {
        "total": float(spent.sum()),
        "mean": float(spent.mean()),
        "max": float(spent.max()),
        "variance": float(spent.var()),
        "std": float(spent.std()),
    }


def residual_energy(network: Network) -> np.ndarray:
    """Remaining battery per sensor (clipped at zero for the dead)."""
    return np.array([max(0.0, network.nodes[s].energy.remaining) for s in network.sensor_ids])


def first_death_time(metrics: MetricsCollector) -> Optional[float]:
    """Network lifetime under the paper's definition (None = all alive)."""
    return metrics.lifetime


def energy_balance_index(network: Network) -> float:
    """1 - coefficient of variation of spent energy (1.0 = perfectly even).

    A compact balance score: the paper's MLR should score markedly higher
    than single-sink routing, where nodes near the sink do all the work.
    """
    spent = _sensor_spent(network)
    if len(spent) == 0 or spent.mean() == 0:
        return 1.0
    return float(max(0.0, 1.0 - spent.std() / spent.mean()))


def jain_fairness(values: Iterable[float]) -> float:
    """Jain's fairness index of a non-negative sequence (1.0 = equal)."""
    v = np.asarray(list(values), dtype=float)
    if len(v) == 0:
        return 1.0
    denom = len(v) * float((v * v).sum())
    if denom == 0:
        return 1.0
    return float(v.sum()) ** 2 / denom


def hop_histogram(metrics: MetricsCollector) -> dict[int, int]:
    """Delivered-packet count per end-to-end hop count."""
    return dict(sorted(Counter(r.hops for r in metrics.deliveries).items()))
