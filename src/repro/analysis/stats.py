"""Energy and topology statistics over a simulated network.

These are the derived quantities the paper's goals are phrased in:
total energy (eq. 1 first objective), the variance ``D^2`` of per-node
energy (eq. 1 second objective), lifetime (first node death, Section 5.3),
and fairness/balance indices used to compare protocols in E5.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Optional

import numpy as np

from repro.sim.network import Network
from repro.sim.trace import MetricsCollector

__all__ = [
    "energy_stats",
    "residual_energy",
    "first_death_time",
    "energy_balance_index",
    "jain_fairness",
    "hop_histogram",
    "summarize",
    "aggregate_records",
]


def _sensor_spent(network: Network) -> np.ndarray:
    return np.array([network.nodes[s].energy.spent for s in network.sensor_ids])


def energy_stats(network: Network) -> dict[str, float]:
    """Total / mean / max / variance of sensor energy consumption (joules).

    ``variance`` is exactly the paper's ``D^2`` objective of eq. (1).
    """
    spent = _sensor_spent(network)
    if len(spent) == 0:
        return {"total": 0.0, "mean": 0.0, "max": 0.0, "variance": 0.0, "std": 0.0}
    return {
        "total": float(spent.sum()),
        "mean": float(spent.mean()),
        "max": float(spent.max()),
        "variance": float(spent.var()),
        "std": float(spent.std()),
    }


def residual_energy(network: Network) -> np.ndarray:
    """Remaining battery per sensor (clipped at zero for the dead)."""
    return np.array([max(0.0, network.nodes[s].energy.remaining) for s in network.sensor_ids])


def first_death_time(metrics: MetricsCollector) -> Optional[float]:
    """Network lifetime under the paper's definition (None = all alive)."""
    return metrics.lifetime


def energy_balance_index(network: Network) -> float:
    """1 - coefficient of variation of spent energy (1.0 = perfectly even).

    A compact balance score: the paper's MLR should score markedly higher
    than single-sink routing, where nodes near the sink do all the work.
    """
    spent = _sensor_spent(network)
    if len(spent) == 0 or spent.mean() == 0:
        return 1.0
    return float(max(0.0, 1.0 - spent.std() / spent.mean()))


def jain_fairness(values: Iterable[float]) -> float:
    """Jain's fairness index of a non-negative sequence (1.0 = equal).

    The index is scale-invariant, so inputs are normalised by their peak
    before squaring — tiny values (below ~1e-154) would otherwise square
    into subnormals whose rounding can push the ratio past 1.
    """
    v = np.asarray(list(values), dtype=float)
    if len(v) == 0:
        return 1.0
    peak = float(v.max())
    if peak <= 0.0:
        return 1.0  # all-zero: degenerate but perfectly even
    v = v / peak
    denom = len(v) * float((v * v).sum())
    return min(1.0, float(v.sum()) ** 2 / denom)


def hop_histogram(metrics: MetricsCollector) -> dict[int, int]:
    """Delivered-packet count per end-to-end hop count."""
    return dict(sorted(Counter(r.hops for r in metrics.deliveries).items()))


def summarize(values: Iterable[float], confidence: float = 0.95) -> dict[str, float]:
    """Mean / sample std / confidence interval of a numeric sample.

    The interval uses Student's t (the sweep runner aggregates a handful
    of seeds, far too few for the normal approximation).  With ``n == 1``
    std and the half-width are 0 — a point estimate, honestly labelled.

    Returns ``{"n", "mean", "std", "ci_half_width", "ci_lo", "ci_hi"}``.
    """
    v = np.asarray(list(values), dtype=float)
    n = len(v)
    if n == 0:
        raise ValueError("cannot summarize an empty sample")
    mean = float(v.mean())
    if n == 1:
        std = half = 0.0
    else:
        from scipy.stats import t as student_t

        std = float(v.std(ddof=1))
        half = float(student_t.ppf(0.5 + confidence / 2, df=n - 1) * std / np.sqrt(n))
    return {
        "n": n,
        "mean": mean,
        "std": std,
        "ci_half_width": half,
        "ci_lo": mean - half,
        "ci_hi": mean + half,
    }


def _numeric_leaves(value, prefix: str = "") -> dict[str, float]:
    """Flatten a (possibly serialized) result to dotted-path -> number.

    Understands the :mod:`repro.sim.serialize` encoding: dataclass tags
    descend transparently into their fields, tuples behave like lists,
    and list elements are addressed by index.
    """
    out: dict[str, float] = {}
    if isinstance(value, bool):
        return out
    if isinstance(value, (int, float)):
        out[prefix or "value"] = float(value)
        return out
    if isinstance(value, dict):
        if "__dataclass__" in value and "fields" in value:
            return _numeric_leaves(value["fields"], prefix)
        if "__tuple__" in value:
            return _numeric_leaves(value["__tuple__"], prefix)
        if "__dict__" in value:
            items = value["__dict__"]
        else:
            items = value.items()
        for key, sub in items:
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(_numeric_leaves(sub, path))
        return out
    if isinstance(value, (list, tuple)):
        for i, sub in enumerate(value):
            path = f"{prefix}.{i}" if prefix else str(i)
            out.update(_numeric_leaves(sub, path))
        return out
    return out


def aggregate_records(
    records: Iterable[dict], confidence: float = 0.95
) -> dict[str, dict[str, float]]:
    """Per-field :func:`summarize` across structurally similar dicts.

    Intended for per-seed ``ScenarioResult.to_dict()`` (or any result
    dict) sequences: every numeric leaf present in *all* records is
    summarized; fields missing from some records are skipped, since a
    mean over differing supports would silently lie.
    """
    flats = [_numeric_leaves(r) for r in records]
    if not flats:
        return {}
    common_keys = set(flats[0])
    for f in flats[1:]:
        common_keys &= set(f)
    return {
        key: summarize([f[key] for f in flats], confidence=confidence)
        for key in sorted(common_keys)
    }
