"""The middle tier (wireless mesh backbone) and the Internet bridge.

Section 3.2's architecture has three logical layers; this package builds
the upper two:

* :mod:`repro.mesh.backbone` — the 802.11 mesh of WMGs and WMRs with
  link-state routing, self-healing around dead routers;
* :mod:`repro.mesh.internet` — base stations bridging the mesh to a wired
  backbone and the remote client endpoint;
* :mod:`repro.mesh.stack` — :class:`ThreeTierWMSN`, the full
  sensor → WMG → mesh → base station → Internet pipeline that the
  architecture experiment (E3) drives end to end.
"""

from repro.mesh.backbone import MeshBackbone
from repro.mesh.internet import InternetHost, WiredBackbone
from repro.mesh.stack import ThreeTierWMSN, EndToEndRecord

__all__ = [
    "MeshBackbone",
    "InternetHost",
    "WiredBackbone",
    "ThreeTierWMSN",
    "EndToEndRecord",
]
