"""Base-station-to-Internet bridge (the top tier of Fig. 1).

The paper's base stations "connect wireless mesh network with Internet";
users access sensed data remotely.  Only reachability and latency matter
to the architecture claims, so the wired segment is an abstract
store-and-forward pipe with configurable latency and bandwidth, and the
remote user is an :class:`InternetHost` that records what reached it and
when.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ConfigurationError
from repro.sim.engine import Simulator

__all__ = ["WiredBackbone", "InternetHost", "InternetRecord"]


@dataclass(frozen=True)
class InternetRecord:
    """One sensed datum as seen by the remote user."""

    data_id: int
    origin_sensor: int
    via_gateway: int
    via_base_station: int
    sensed_at: float
    received_at: float

    @property
    def end_to_end_latency(self) -> float:
        return self.received_at - self.sensed_at


class WiredBackbone:
    """Fixed-latency, fixed-bandwidth wired pipe from base stations."""

    def __init__(self, sim: Simulator, latency: float = 0.02, bandwidth_bps: float = 100e6) -> None:
        if latency < 0 or bandwidth_bps <= 0:
            raise ConfigurationError("latency must be >= 0 and bandwidth positive")
        self.sim = sim
        self.latency = latency
        self.bandwidth_bps = bandwidth_bps

    def deliver(self, host: "InternetHost", record_args: dict, size_bytes: int) -> None:
        delay = self.latency + (8 * size_bytes) / self.bandwidth_bps
        self.sim.schedule(delay, host.receive, record_args)


class InternetHost:
    """The remote user consuming sensed data."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.records: list[InternetRecord] = []

    def receive(self, record_args: dict) -> None:
        self.records.append(InternetRecord(received_at=self.sim.now, **record_args))

    @property
    def received_count(self) -> int:
        return len(self.records)

    def mean_latency(self) -> Optional[float]:
        if not self.records:
            return None
        return sum(r.end_to_end_latency for r in self.records) / len(self.records)
