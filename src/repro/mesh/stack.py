"""The full three-tier WMSN of Fig. 1, wired end to end.

:class:`ThreeTierWMSN` assembles one sensor network (with its multi-
gateway routing protocol), the 802.11 mesh backbone, base stations and
the Internet host, and chains deliveries across tiers:

    sensor --(802.15.4, SPR/MLR/SecMLR)--> WMG
           --(802.11 mesh, link-state)--> base station
           --(wired)--> Internet host

Per-tier hops/latency are recorded for every datum, which is how the
architecture experiment (E3) quantifies the tier split and checks that
WMGs really do speak both MACs (they appear as sinks in the sensor tier
*and* as sources in the mesh tier).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.base import DiscoveryProtocol
from repro.core.spr import SPR
from repro.exceptions import TopologyError
from repro.mesh.backbone import MeshBackbone
from repro.mesh.internet import InternetHost, WiredBackbone
from repro.sim.energy import EnergyModel
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.packet import Packet
from repro.sim.radio import IEEE802154, IEEE80211, Channel, RadioConfig
from repro.sim.trace import MetricsCollector
from repro.world import WorldBuilder

__all__ = ["ThreeTierWMSN", "EndToEndRecord"]


@dataclass(frozen=True)
class EndToEndRecord:
    """Per-tier accounting of one datum's journey."""

    data_id: int
    origin_sensor: int
    gateway: int
    base_station: Optional[int]
    sensor_tier_hops: int
    sensor_tier_latency: float
    mesh_tier_hops: Optional[int]
    mesh_tier_latency: Optional[float]


class ThreeTierWMSN:
    """Fig. 1 in executable form.

    Parameters
    ----------
    protocol_factory:
        Builds the sensor-tier protocol, called as
        ``factory(sim, network, channel)`` — e.g. ``SPR`` itself, or a
        lambda wiring an MLR schedule.
    sensor_positions / gateway_positions:
        Low-tier deployment; gateways appear in *both* tiers at the same
        coordinates (they speak both MACs, Section 3.2).
    router_positions / base_station_positions:
        Mesh-tier-only nodes.
    """

    def __init__(
        self,
        sim: Simulator,
        sensor_positions: np.ndarray,
        gateway_positions: np.ndarray,
        router_positions: np.ndarray,
        base_station_positions: np.ndarray,
        protocol_factory: Callable[[Simulator, Network, Channel], DiscoveryProtocol] = SPR,
        sensor_radio: RadioConfig = IEEE802154,
        mesh_radio: RadioConfig = IEEE80211,
        sensor_battery: float = float("inf"),
        wired_latency: float = 0.02,
        energy_model: Optional[EnergyModel] = None,
    ) -> None:
        self.sim = sim
        self.sensor_metrics = MetricsCollector()
        builder = (
            WorldBuilder()
            .simulator(sim)
            .sensors(sensor_positions)
            .gateways(gateway_positions)
            .comm_range(sensor_radio.comm_range)
            .sensor_battery(sensor_battery)
            .radio(sensor_radio)
            .metrics(self.sensor_metrics)
        )
        if energy_model is not None:
            builder.energy(energy_model)
        self.sensor_world = builder.build()
        self.sensor_network = self.sensor_world.network
        self.sensor_channel = self.sensor_world.channel
        self.protocol = self.sensor_world.attach(protocol_factory)

        self.mesh = MeshBackbone(
            sim, gateway_positions, router_positions, base_station_positions, mesh_radio
        )
        if not self.mesh.is_connected_to_base():
            raise TopologyError("mesh backbone does not connect every WMG to a base station")

        self.wired = WiredBackbone(sim, latency=wired_latency)
        self.internet = InternetHost(sim)

        # Gateway id mapping: sensor-tier gateway k <-> mesh-tier node k
        # (build_sensor_network appends gateways after sensors; the mesh
        # backbone numbers them first).
        self._gw_sensor_to_mesh = {
            g: k for k, g in enumerate(self.sensor_network.gateway_ids)
        }
        self.records: dict[int, EndToEndRecord] = {}

        self.protocol.delivery_callback = self._on_sensor_tier_delivery
        self.mesh.delivery_callback = self._on_mesh_delivery

    # ------------------------------------------------------------------
    def send_data(self, sensor: int) -> int:
        """Application entry: sensor reports one datum toward the Internet."""
        return self.protocol.send_data(sensor)

    # ------------------------------------------------------------------
    def _on_sensor_tier_delivery(self, pkt: Packet, gateway: int) -> None:
        mesh_src = self._gw_sensor_to_mesh[gateway]
        data_id = pkt.payload.get("data_id", pkt.uid)
        self.records[data_id] = EndToEndRecord(
            data_id=data_id,
            origin_sensor=pkt.origin,
            gateway=gateway,
            base_station=None,
            sensor_tier_hops=pkt.hop_count,
            sensor_tier_latency=self.sim.now - pkt.created_at,
            mesh_tier_hops=None,
            mesh_tier_latency=None,
        )
        self.mesh.transmit(
            mesh_src,
            None,
            payload={
                "data_id": data_id,
                "origin_sensor": pkt.origin,
                "gateway": gateway,
                "sensed_at": pkt.created_at,
                "mesh_start": self.sim.now,
            },
            payload_bytes=pkt.payload_bytes,
        )

    def _on_mesh_delivery(self, pkt: Packet, base_station: int) -> None:
        p = pkt.payload
        rec = self.records.get(p["data_id"])
        if rec is not None:
            self.records[p["data_id"]] = EndToEndRecord(
                data_id=rec.data_id,
                origin_sensor=rec.origin_sensor,
                gateway=rec.gateway,
                base_station=base_station,
                sensor_tier_hops=rec.sensor_tier_hops,
                sensor_tier_latency=rec.sensor_tier_latency,
                mesh_tier_hops=pkt.hop_count,
                mesh_tier_latency=self.sim.now - p["mesh_start"],
            )
        self.wired.deliver(
            self.internet,
            {
                "data_id": p["data_id"],
                "origin_sensor": p["origin_sensor"],
                "via_gateway": p["gateway"],
                "via_base_station": base_station,
                "sensed_at": p["sensed_at"],
            },
            size_bytes=pkt.payload_bytes,
        )

    # ------------------------------------------------------------------
    def completed_records(self) -> list[EndToEndRecord]:
        """Records that traversed both wireless tiers."""
        return [r for r in self.records.values() if r.mesh_tier_hops is not None]
