"""The 802.11 wireless mesh backbone of WMGs and WMRs (Section 3.1/3.2).

Mesh routers "with powerful capacities and lower mobility automatically
set up and maintain wireless connection, forming the backbone of WMNs".
We model the backbone as its own :class:`~repro.sim.network.Network` +
:class:`~repro.sim.radio.Channel` (802.11 parameters, mains power) on the
same simulator as the sensor tier, with link-state routing: every mesh
node knows the backbone topology (the standard assumption for
proactively-routed mesh networks) and packets are source-routed along
current shortest paths.  The self-healing property the paper advertises —
"if one node drops out of the network ... its neighbors simply find
another route" — falls out of recomputing the path on the live topology
at every forwarding decision point.
"""

from __future__ import annotations

from typing import Callable, Optional

import networkx as nx
import numpy as np

from repro.exceptions import ConfigurationError, TopologyError
from repro.sim.engine import Simulator
from repro.sim.node import NodeKind
from repro.sim.packet import Packet, PacketKind
from repro.sim.radio import IEEE80211, RadioConfig
from repro.sim.trace import MetricsCollector
from repro.world import WorldBuilder

__all__ = ["MeshBackbone"]


class MeshBackbone:
    """The WMG/WMR/base-station mesh with link-state routing.

    Parameters
    ----------
    sim:
        Shared simulator (same clock as the sensor tier).
    gateway_positions / router_positions / base_station_positions:
        Coordinates of WMGs, pure WMRs and base stations.  Node ids in the
        mesh tier are local to the backbone: gateways first, then routers,
        then base stations (query them via :attr:`gateway_mesh_ids` etc.).
    radio:
        802.11 parameter set by default.
    """

    def __init__(
        self,
        sim: Simulator,
        gateway_positions: np.ndarray,
        router_positions: np.ndarray,
        base_station_positions: np.ndarray,
        radio: RadioConfig = IEEE80211,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        gpos = np.asarray(gateway_positions, dtype=float).reshape(-1, 2)
        rpos = np.asarray(router_positions, dtype=float).reshape(-1, 2) if len(router_positions) else np.empty((0, 2))
        bpos = np.asarray(base_station_positions, dtype=float).reshape(-1, 2)
        if len(bpos) == 0:
            raise ConfigurationError("the mesh needs at least one base station")
        positions = np.vstack([gpos, rpos, bpos])
        kinds = (
            [NodeKind.GATEWAY] * len(gpos)
            + [NodeKind.MESH_ROUTER] * len(rpos)
            + [NodeKind.BASE_STATION] * len(bpos)
        )
        world = (
            WorldBuilder()
            .simulator(sim)
            .nodes(positions, kinds, comm_range=radio.comm_range)
            .radio(radio)
            .metrics(metrics or MetricsCollector())
            .build()
        )
        self.world = world
        self.sim = sim
        self.network = world.network
        self.metrics = world.metrics
        self.channel = world.channel
        self.gateway_mesh_ids = list(range(len(gpos)))
        self.router_mesh_ids = list(range(len(gpos), len(gpos) + len(rpos)))
        self.base_station_mesh_ids = list(
            range(len(gpos) + len(rpos), len(gpos) + len(rpos) + len(bpos))
        )
        #: invoked as ``(packet, mesh_node_id)`` when a frame reaches its
        #: mesh destination (a base station, usually).
        self.delivery_callback: Optional[Callable[[Packet, int], None]] = None
        for node in self.network.nodes:
            node.handler = self._make_handler(node.node_id)

    # ------------------------------------------------------------------
    # topology / routing
    # ------------------------------------------------------------------
    def graph(self) -> nx.Graph:
        """Live backbone topology (dead routers excluded)."""
        return self.network.graph(alive_only=True)

    def shortest_path(self, src: int, dst: int) -> list[int]:
        """Current least-hop mesh path; raises TopologyError if none."""
        try:
            return nx.shortest_path(self.graph(), src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            raise TopologyError(f"no mesh path {src} -> {dst}") from None

    def nearest_base_station(self, src: int) -> int:
        """The base station with the shortest mesh path from ``src``."""
        g = self.graph()
        lengths = nx.single_source_shortest_path_length(g, src)
        candidates = [(lengths[b], b) for b in self.base_station_mesh_ids if b in lengths]
        if not candidates:
            raise TopologyError(f"no base station reachable from mesh node {src}")
        return min(candidates)[1]

    def is_connected_to_base(self) -> bool:
        """Every gateway can reach a base station over the live mesh."""
        g = self.graph()
        for gw in self.gateway_mesh_ids:
            if gw not in g.nodes:
                return False
            lengths = nx.single_source_shortest_path_length(g, gw)
            if not any(b in lengths for b in self.base_station_mesh_ids):
                return False
        return True

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def transmit(self, src: int, dst: Optional[int], payload: dict, payload_bytes: int) -> bool:
        """Send a payload from ``src`` to ``dst`` (None = nearest base station).

        Returns False if no route exists right now (caller may retry after
        the topology changes).
        """
        did = payload.get("data_id")
        if did is not None:
            # Identified payloads (the three-tier stack's uplinks) enter
            # mesh-tier conservation; anonymous payloads stay untracked.
            self.metrics.on_data_generated(origin=src, data_id=did, now=self.sim.now)
        if dst is None:
            try:
                dst = self.nearest_base_station(src)
            except TopologyError:
                self.metrics.on_terminal_drop(
                    "no_route",
                    key=(src, did) if did is not None else None,
                    node=src,
                    now=self.sim.now,
                )
                return False
        try:
            path = self.shortest_path(src, dst)
        except TopologyError:
            self.metrics.on_terminal_drop(
                "no_route",
                key=(src, did) if did is not None else None,
                node=src,
                now=self.sim.now,
            )
            return False
        pkt = Packet(
            kind=PacketKind.DATA,
            origin=src,
            target=dst,
            path=tuple(path),
            payload=dict(payload),
            payload_bytes=payload_bytes,
            created_at=self.sim.now,
        )
        self._forward(src, pkt)
        return True

    def _forward(self, node_id: int, pkt: Packet) -> None:
        if node_id == pkt.target:
            self.metrics.on_data_delivered(pkt, node_id, self.sim.now)
            if self.delivery_callback is not None:
                self.delivery_callback(pkt, node_id)
            return
        try:
            i = pkt.path.index(node_id)
        except ValueError:
            self.metrics.on_terminal_drop("misrouted", pkt, node=node_id, now=self.sim.now)
            return
        next_hop = pkt.path[i + 1]
        if not self.network.nodes[next_hop].alive:
            # Self-healing: recompute on the live topology.
            try:
                new_path = self.shortest_path(node_id, pkt.target)
            except TopologyError:
                self.metrics.on_terminal_drop("no_route", pkt, node=node_id, now=self.sim.now)
                return
            pkt = pkt.fork(path=tuple(pkt.path[: i] if i else ()) + tuple(new_path))
            next_hop = new_path[1]
        self.channel.send(node_id, pkt.with_hop(node_id, next_hop))

    def _make_handler(self, node_id: int):
        def handler(pkt: Packet) -> None:
            if pkt.kind is PacketKind.DATA:
                self._forward(node_id, pkt)

        return handler

    # ------------------------------------------------------------------
    def fail_router(self, mesh_id: int) -> None:
        """Kill a mesh node (robustness experiments)."""
        self.network.nodes[mesh_id].fail()

    def recover_router(self, mesh_id: int) -> None:
        self.network.nodes[mesh_id].recover()
