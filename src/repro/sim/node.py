"""Node state machines for the three-tier WMSN architecture.

The architecture (Section 3.2, Fig. 1) distinguishes four node kinds:

``SENSOR``
    Battery-powered 802.15.4 node; senses, forwards for neighbors.
``GATEWAY`` (WMG)
    Mesh gateway: sink of the low-tier sensor network *and* router of the
    middle-tier mesh.  Speaks both 802.15.4 and 802.11.  Mains-powered
    ("let gateways have unrestricted energy", Section 5.3) unless an
    experiment says otherwise (the paper notes forest deployments where
    gateways are also energy-restricted, Section 4.1).
``MESH_ROUTER`` (WMR)
    Pure middle-tier router; 802.11 only.
``BASE_STATION``
    Bridges the wireless mesh to the Internet; supports WMG/WMR mobility.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, Optional, TYPE_CHECKING

from repro.sim.energy import EnergyAccount

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.packet import Packet

__all__ = ["NodeKind", "Node"]


class NodeKind(enum.Enum):
    """Role of a node in the three-tier architecture."""

    SENSOR = "sensor"
    GATEWAY = "gateway"
    MESH_ROUTER = "mesh_router"
    BASE_STATION = "base_station"

    @property
    def is_sink(self) -> bool:
        """Whether sensor-tier data terminates here."""
        return self in (NodeKind.GATEWAY, NodeKind.BASE_STATION)


@dataclass
class Node:
    """A single network node.

    The node itself is a thin container: position lives in the
    :class:`~repro.sim.network.Network` arrays (vectorised neighbor math),
    behaviour lives in the protocol that registers ``handler``.

    Attributes
    ----------
    node_id:
        Index into the network's position arrays.
    kind:
        Role (sensor / gateway / mesh router / base station).
    energy:
        Battery account; infinite for mains-powered kinds by default.
    handler:
        Callback invoked with each successfully received packet.
    failed:
        Set by fault-injection experiments; a failed node neither sends
        nor receives but keeps its residual energy (hardware fault, not
        battery exhaustion).
    """

    node_id: int
    kind: NodeKind
    energy: EnergyAccount = field(default_factory=lambda: EnergyAccount(capacity=math.inf))
    handler: Optional[Callable[["Packet"], None]] = None
    failed: bool = False
    sleeping: bool = False

    # Class-level defaults: no listener until the network binds one, so the
    # dataclass __init__ and listener-free nodes stay on the fast path.
    _alive_listener: Optional[Callable[[int, bool], None]] = None
    #: last liveness value the listener saw — the edge detector that
    #: guarantees exactly one notification per actual alive flip, no
    #: matter which path (fail/sleep/recover/battery death/energy swap)
    #: triggered the check.
    _last_alive: bool = True

    def bind_alive_listener(self, listener: Callable[[int, bool], None]) -> None:
        """Register ``listener(node_id, alive)``, fired on liveness flips.

        The :class:`~repro.sim.network.Network` binds this to maintain its
        NumPy alive mask incrementally.  Every way a node's ``alive`` can
        change is covered: ``failed``/``sleeping`` assignments are caught
        by :meth:`__setattr__`, battery exhaustion by the energy account's
        ``on_death`` hook (re-bound if ``energy`` is swapped out).  The
        listener fires exactly once per actual flip: a battery dying on a
        node that is already failed or sleeping changes nothing and stays
        silent.
        """
        object.__setattr__(self, "_alive_listener", listener)
        object.__setattr__(self, "_last_alive", self.alive)
        self.energy.on_death = self._notify_alive

    def _notify_alive(self) -> None:
        if self._alive_listener is None:
            return
        now = self.alive
        if now != self._last_alive:
            object.__setattr__(self, "_last_alive", now)
            self._alive_listener(self.node_id, now)

    def __setattr__(self, name: str, value) -> None:
        listener = self.__dict__.get("_alive_listener")
        if listener is None:
            object.__setattr__(self, name, value)
            return
        object.__setattr__(self, name, value)
        if name in ("failed", "sleeping"):
            self._notify_alive()
        elif name == "energy":
            value.on_death = self._notify_alive
            self._notify_alive()

    @property
    def alive(self) -> bool:
        """True when the node can participate in the network.

        A sleeping node (topology control, Section 4.4) has its radio off:
        it neither transmits nor receives until woken, but unlike a failed
        node it resumes seamlessly.
        """
        return self.energy.alive and not self.failed and not self.sleeping

    @property
    def died_at(self) -> Optional[float]:
        """Battery-death time, or None while the battery lives.

        Same contract as the struct-of-arrays ``NodeView.died_at``:
        battery exhaustion only — injected failures keep residual energy
        and leave this None.
        """
        return self.energy.died_at

    def receive(self, packet: "Packet") -> None:
        """Hand a delivered packet to the registered protocol handler."""
        if self.handler is not None and self.alive:
            self.handler(packet)

    def fail(self) -> None:
        """Inject a hardware failure (robustness experiments, E9)."""
        self.failed = True

    def recover(self) -> bool:
        """Clear an injected failure.

        Returns whether the node is actually alive afterwards.  A node
        whose battery died while (or before) it was failed stays dead:
        the cleared flag never signals an alive transition, because
        :meth:`__setattr__` only notifies when :attr:`alive` really
        flips — battery exhaustion is permanent, hardware faults are
        not.  Callers that rejoin the node to a protocol (the fault
        injector) must check the return value before re-announcing.
        """
        self.failed = False
        return self.alive
