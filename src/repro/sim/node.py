"""Node state machines for the three-tier WMSN architecture.

The architecture (Section 3.2, Fig. 1) distinguishes four node kinds:

``SENSOR``
    Battery-powered 802.15.4 node; senses, forwards for neighbors.
``GATEWAY`` (WMG)
    Mesh gateway: sink of the low-tier sensor network *and* router of the
    middle-tier mesh.  Speaks both 802.15.4 and 802.11.  Mains-powered
    ("let gateways have unrestricted energy", Section 5.3) unless an
    experiment says otherwise (the paper notes forest deployments where
    gateways are also energy-restricted, Section 4.1).
``MESH_ROUTER`` (WMR)
    Pure middle-tier router; 802.11 only.
``BASE_STATION``
    Bridges the wireless mesh to the Internet; supports WMG/WMR mobility.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, Optional, TYPE_CHECKING

from repro.sim.energy import EnergyAccount

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.packet import Packet

__all__ = ["NodeKind", "Node"]


class NodeKind(enum.Enum):
    """Role of a node in the three-tier architecture."""

    SENSOR = "sensor"
    GATEWAY = "gateway"
    MESH_ROUTER = "mesh_router"
    BASE_STATION = "base_station"

    @property
    def is_sink(self) -> bool:
        """Whether sensor-tier data terminates here."""
        return self in (NodeKind.GATEWAY, NodeKind.BASE_STATION)


@dataclass
class Node:
    """A single network node.

    The node itself is a thin container: position lives in the
    :class:`~repro.sim.network.Network` arrays (vectorised neighbor math),
    behaviour lives in the protocol that registers ``handler``.

    Attributes
    ----------
    node_id:
        Index into the network's position arrays.
    kind:
        Role (sensor / gateway / mesh router / base station).
    energy:
        Battery account; infinite for mains-powered kinds by default.
    handler:
        Callback invoked with each successfully received packet.
    failed:
        Set by fault-injection experiments; a failed node neither sends
        nor receives but keeps its residual energy (hardware fault, not
        battery exhaustion).
    """

    node_id: int
    kind: NodeKind
    energy: EnergyAccount = field(default_factory=lambda: EnergyAccount(capacity=math.inf))
    handler: Optional[Callable[["Packet"], None]] = None
    failed: bool = False
    sleeping: bool = False

    @property
    def alive(self) -> bool:
        """True when the node can participate in the network.

        A sleeping node (topology control, Section 4.4) has its radio off:
        it neither transmits nor receives until woken, but unlike a failed
        node it resumes seamlessly.
        """
        return self.energy.alive and not self.failed and not self.sleeping

    def receive(self, packet: "Packet") -> None:
        """Hand a delivered packet to the registered protocol handler."""
        if self.handler is not None and self.alive:
            self.handler(packet)

    def fail(self) -> None:
        """Inject a hardware failure (robustness experiments, E9)."""
        self.failed = True

    def recover(self) -> None:
        """Clear an injected failure."""
        self.failed = False
