"""Topology container and deployment generators.

A :class:`Network` owns node positions (NumPy arrays, so neighbor sets are
computed with vectorised distance math — the one genuinely hot path in the
substrate), the :class:`~repro.sim.node.Node` objects, and the symmetric
one-hop link relation of the paper's network model (Section 5.1):

    ``G(V, E)`` with ``V = V_S ∪ V_G`` and an edge wherever two nodes can
    immediately communicate — here, wherever their distance is at most the
    communication range.

Gateways may move between rounds (Section 5.1: sensors static, gateways
discretely mobile).  Two index implementations maintain the neighbor
relation under such moves:

``index="grid"`` (default)
    A :class:`~repro.sim.spatial.CellGrid` with ``comm_range``-sized
    cells.  ``move_node`` is *incremental*: only the moved node's row and
    the affected reverse rows are touched, the cached ``networkx`` graph
    is edge-patched in place, and a topology epoch is bumped — O(k) per
    move instead of an O(n²) rebuild.  ``hops_to`` runs multi-source BFS
    over a cached CSR adjacency (:mod:`scipy.sparse.csgraph`), revalidated
    by (epoch, alive-version) instead of rebuilt per query.

``index="bruteforce"``
    The reference implementation: dense n × n distance matrix, full
    invalidation on every change, ``networkx`` Dijkstra for hop counts.
    Kept so the equivalence suite can hold the incremental path to the
    simple one, mirroring the scalar/vectorized radio fan-out split.

Node liveness (battery death, injected failures, sleep scheduling) feeds
a maintained NumPy alive mask through per-node listeners — no per-query
Python scan over ``self.nodes``.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

import networkx as nx
import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

from repro.exceptions import ConfigurationError, TopologyError
from repro.sim.energy import EnergyAccount
from repro.sim.node import Node, NodeKind
from repro.sim.spatial import CellGrid
from repro.sim.state import NodeStateStore

__all__ = [
    "Network",
    "uniform_deployment",
    "grid_deployment",
    "build_sensor_network",
]

#: Valid spatial index implementations.
SPATIAL_INDEXES = ("grid", "bruteforce")


class Network:
    """Positions, nodes and the one-hop neighbor relation.

    Parameters
    ----------
    positions:
        ``(n, 2)`` array of node coordinates in meters.
    kinds:
        Node kind per row of ``positions``.
    comm_range:
        Symmetric communication range defining one-hop links.
    sensor_battery:
        Initial battery (J) of each SENSOR node; ``math.inf`` gives the
        idealised unlimited-energy setting used by the worked examples.
        Non-sensor kinds are always mains powered.
    index:
        Neighbor maintenance strategy: ``"grid"`` (incremental cell-grid
        index, the default) or ``"bruteforce"`` (dense distance matrix
        with full invalidation — the reference implementation).
    soa:
        Keep per-node state in a :class:`~repro.sim.state.NodeStateStore`
        (struct-of-arrays), with ``nodes`` holding thin
        :class:`~repro.sim.state.NodeView` rows instead of
        :class:`~repro.sim.node.Node` objects.  ``False`` (the default
        for directly constructed networks) is the bit-identity reference
        path, gated exactly like ``index="bruteforce"``; worlds built
        through :class:`~repro.world.WorldBuilder` enable it via
        ``WorldConfig.soa``.
    """

    def __init__(
        self,
        positions: np.ndarray,
        kinds: Sequence[NodeKind],
        comm_range: float = 40.0,
        sensor_battery: float = math.inf,
        index: str = "grid",
        soa: bool = False,
    ) -> None:
        positions = np.asarray(positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ConfigurationError("positions must be an (n, 2) array")
        if len(kinds) != len(positions):
            raise ConfigurationError("kinds and positions must have equal length")
        if comm_range <= 0:
            raise ConfigurationError("comm_range must be positive")
        if index not in SPATIAL_INDEXES:
            raise ConfigurationError(
                f"unknown spatial index {index!r}; choose from {SPATIAL_INDEXES}"
            )

        self.positions = positions.copy()
        self.comm_range = float(comm_range)
        self.index = index
        capacities = [
            sensor_battery if kind is NodeKind.SENSOR else math.inf for kind in kinds
        ]
        #: the struct-of-arrays state core (None on the object reference path)
        self.store: Optional[NodeStateStore] = None
        if soa:
            self.store = NodeStateStore(kinds, capacities)
            self.nodes = [self.store.node_view(i) for i in range(len(kinds))]
        else:
            self.nodes = [
                Node(node_id=i, kind=kind, energy=EnergyAccount(capacity=capacities[i]))
                for i, kind in enumerate(kinds)
            ]

        self._neighbor_cache: Optional[list[np.ndarray]] = None
        self._grid: Optional[CellGrid] = None
        # graph() cache: alive_only -> (alive version at build, graph).
        # The grid index patches cached graphs in place on moves/deaths;
        # the brute-force reference drops them and rebuilds.
        self._graph_cache: dict[bool, tuple[int, nx.Graph]] = {}
        # hops_to() cache: alive_only -> (edge epoch, alive version, CSR).
        self._csr_cache: dict[bool, tuple[int, int, csr_matrix]] = {}
        # alive_neighbors() cache: node -> filtered ndarray, stamped by
        # the (edge epoch, alive version) pair it was computed under.
        self._alive_nbr_cache: dict[int, np.ndarray] = {}
        self._alive_nbr_stamp: tuple[int, int] = (-1, -1)

        #: bumped whenever the edge set may have changed (moves, full
        #: invalidation); alive transitions bump ``_alive_version`` instead.
        self._edge_epoch = 0
        self._alive_version = 0
        # Maintained liveness mask: nodes notify the network on every
        # alive-flag transition (battery death, fail/recover, sleep/wake),
        # so no query ever re-derives liveness with a Python generator.
        self._alive = np.fromiter(
            (n.alive for n in self.nodes), dtype=bool, count=len(self.nodes)
        )
        for node in self.nodes:
            node.bind_alive_listener(self._on_alive_change)

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def sensor_ids(self) -> list[int]:
        """Ids of all SENSOR nodes."""
        return [n.node_id for n in self.nodes if n.kind is NodeKind.SENSOR]

    @property
    def gateway_ids(self) -> list[int]:
        """Ids of all GATEWAY (WMG) nodes."""
        return [n.node_id for n in self.nodes if n.kind is NodeKind.GATEWAY]

    def ids_of_kind(self, kind: NodeKind) -> list[int]:
        return [n.node_id for n in self.nodes if n.kind is kind]

    @property
    def topology_epoch(self) -> tuple[int, int]:
        """(edge epoch, alive version) — changes iff the link graph may have."""
        return (self._edge_epoch, self._alive_version)

    @property
    def alive_mask(self) -> np.ndarray:
        """Maintained per-node liveness mask.  Treat as read-only."""
        return self._alive

    def distance(self, i: int, j: int) -> float:
        """Euclidean distance between nodes ``i`` and ``j`` in meters."""
        d = self.positions[i] - self.positions[j]
        return float(math.hypot(d[0], d[1]))

    def nodes_in_region(self, center: Sequence[float], radius: float) -> list[int]:
        """Ids of all nodes within ``radius`` meters of ``center``.

        One vectorised distance pass over the position array — used by
        region-outage fault events, which must resolve their victim set
        at outage time (gateways may have moved since the plan was
        written).
        """
        if radius < 0:
            raise ConfigurationError("radius must be non-negative")
        c = np.asarray(center, dtype=float)
        diff = self.positions - c
        within = np.hypot(diff[:, 0], diff[:, 1]) <= radius
        return [int(i) for i in np.nonzero(within)[0]]

    def distances_from(self, i: int, ids: np.ndarray) -> np.ndarray:
        """Distances from node ``i`` to every node in ``ids``, vectorised.

        The radio fan-out hot path computes one propagation delay per
        neighbor per frame; batching the distance math here keeps that a
        single NumPy pass instead of ``len(ids)`` Python-level calls.
        """
        diff = self.positions[ids] - self.positions[i]
        return np.hypot(diff[:, 0], diff[:, 1])

    # ------------------------------------------------------------------
    # neighbor sets (vectorised, cached)
    # ------------------------------------------------------------------
    def _build_neighbor_cache(self) -> list[np.ndarray]:
        if self.index == "grid":
            self._grid = CellGrid(self.positions, self.comm_range)
            return self._grid.neighbor_rows(self.comm_range)
        # Pairwise squared distances via broadcasting; the O(n^2) matrix
        # is the reference the grid index is tested against.
        pos = self.positions
        diff = pos[:, None, :] - pos[None, :, :]
        d2 = np.einsum("ijk,ijk->ij", diff, diff)
        within = d2 <= self.comm_range * self.comm_range
        np.fill_diagonal(within, False)
        return [np.nonzero(row)[0] for row in within]

    def neighbors(self, i: int) -> np.ndarray:
        """Ids within communication range of node ``i`` (excluding ``i``)."""
        if self._neighbor_cache is None:
            self._neighbor_cache = self._build_neighbor_cache()
        return self._neighbor_cache[i]

    def alive_neighbors(self, i: int) -> np.ndarray:
        """Neighbor ids that are currently alive, as a cached ndarray.

        Vectorised mask lookup over the maintained alive array; entries
        are cached per node and stamped with the topology epoch, so
        repeated queries between topology changes are dictionary hits.
        """
        stamp = (self._edge_epoch, self._alive_version)
        if stamp != self._alive_nbr_stamp:
            self._alive_nbr_cache.clear()
            self._alive_nbr_stamp = stamp
        out = self._alive_nbr_cache.get(i)
        if out is None:
            nbrs = self.neighbors(i)
            out = nbrs[self._alive[nbrs]]
            self._alive_nbr_cache[i] = out
        return out

    def invalidate(self) -> None:
        """Drop every topology cache after a wholesale change.

        The incremental grid index never needs this for single-node moves
        (``move_node`` patches in place); it remains the escape hatch for
        callers that rewrite ``positions`` directly.
        """
        self._neighbor_cache = None
        self._grid = None
        self._graph_cache.clear()
        self._csr_cache.clear()
        self._alive_nbr_cache.clear()
        self._edge_epoch += 1

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def move_node(self, node_id: int, pos: Iterable[float]) -> None:
        """Relocate a node (gateway mobility).

        With the grid index this is incremental: only node ``node_id``'s
        neighbor row and the affected reverse rows (old minus new, new
        minus old) are updated, cached graphs are edge-patched around the
        node, and the epoch is bumped only when the edge set actually
        changed.  The brute-force reference invalidates everything.
        """
        if not 0 <= node_id < len(self.nodes):
            raise TopologyError(f"no such node: {node_id}")
        new_pos = np.asarray(list(pos), dtype=float)
        self.positions[node_id] = new_pos
        if self.index == "bruteforce" or self._neighbor_cache is None:
            # No cache built yet: nothing to patch, the next query builds
            # from the already-updated positions.
            if self.index == "bruteforce":
                self.invalidate()
            return

        self._grid.move(node_id)
        new_row = self._grid.neighbors_within(node_id, self.comm_range)
        old_row = self._neighbor_cache[node_id]
        if np.array_equal(new_row, old_row):
            return  # position changed, edge set did not
        removed = np.setdiff1d(old_row, new_row, assume_unique=True)
        added = np.setdiff1d(new_row, old_row, assume_unique=True)
        self._neighbor_cache[node_id] = new_row
        cache = self._neighbor_cache
        for j in removed:
            row = cache[j]
            cache[j] = row[row != node_id]
        for j in added:
            row = cache[j]
            cache[j] = np.insert(row, int(np.searchsorted(row, node_id)), node_id)
        self._edge_epoch += 1
        self._csr_cache.clear()
        self._alive_nbr_cache.clear()
        self._patch_graphs_after_move(node_id, removed, added)

    def _patch_graphs_after_move(
        self, node_id: int, removed: np.ndarray, added: np.ndarray
    ) -> None:
        """Edge-patch cached nx graphs in place around a moved node."""
        for alive_only, (_, g) in self._graph_cache.items():
            if node_id not in g:
                continue  # dead/sleeping node in the alive view: no edges
            for j in removed:
                jj = int(j)
                if g.has_edge(node_id, jj):
                    g.remove_edge(node_id, jj)
            for j in added:
                jj = int(j)
                if jj in g:
                    g.add_edge(node_id, jj, weight=1.0)

    # ------------------------------------------------------------------
    # liveness maintenance (listener target; see Node.bind_alive_listener)
    # ------------------------------------------------------------------
    def _on_alive_change(self, node_id: int, alive: bool) -> None:
        if bool(self._alive[node_id]) == bool(alive):
            return
        self._alive[node_id] = alive
        self._alive_version += 1
        self._csr_cache.pop(True, None)
        self._alive_nbr_cache.clear()
        cached = self._graph_cache.get(True)
        if cached is None:
            return
        if self.index == "bruteforce":
            # Reference behavior: the alive graph goes stale and is
            # rebuilt wholesale on the next query.
            self._graph_cache.pop(True, None)
            return
        _, g = cached
        if alive:
            g.add_node(node_id, kind=self.nodes[node_id].kind)
            for j in self.neighbors(node_id):
                jj = int(j)
                if self._alive[jj]:
                    g.add_edge(node_id, jj, weight=1.0)
        elif node_id in g:
            g.remove_node(node_id)
        self._graph_cache[True] = (self._alive_version, g)

    # ------------------------------------------------------------------
    # graph views
    # ------------------------------------------------------------------
    def graph(self, alive_only: bool = True) -> nx.Graph:
        """The one-hop link graph as a :class:`networkx.Graph`.

        The graph is cached; with the grid index it is *patched* in place
        as nodes move, die or recover, so repeated queries (the mesh
        backbone recomputes routes on every forwarding decision; E9
        recomputes reachability per failure step) almost never rebuild.
        Treat the returned graph as read-only.
        """
        cached = self._graph_cache.get(alive_only)
        if cached is not None:
            version, g = cached
            if not alive_only or version == self._alive_version:
                return g
        g = nx.Graph()
        alive = self._alive
        for node in self.nodes:
            if alive_only and not alive[node.node_id]:
                continue
            g.add_node(node.node_id, kind=node.kind)
        for i in g.nodes:
            for j in self.neighbors(i):
                j = int(j)
                if j > i and j in g.nodes:
                    g.add_edge(i, j, weight=1.0)
        self._graph_cache[alive_only] = (self._alive_version if alive_only else -1, g)
        return g

    # ------------------------------------------------------------------
    # hop counts (CSR multi-source BFS)
    # ------------------------------------------------------------------
    def _csr_adjacency(self, alive_only: bool) -> csr_matrix:
        """Cached CSR adjacency, rebuilt only when epoch/alive change."""
        version = self._alive_version if alive_only else -1
        cached = self._csr_cache.get(alive_only)
        if cached is not None and cached[0] == self._edge_epoch and cached[1] == version:
            return cached[2]
        if self._neighbor_cache is None:
            self._neighbor_cache = self._build_neighbor_cache()
        rows = self._neighbor_cache
        n = len(self.nodes)
        lens = np.fromiter((len(r) for r in rows), dtype=np.int64, count=n)
        flat = np.concatenate(rows) if lens.sum() else np.empty(0, dtype=np.intp)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lens, out=indptr[1:])
        if alive_only:
            # Keep an entry iff both endpoints are alive; the segmented
            # cumulative-sum trick rebuilds indptr without a Python loop.
            keep = self._alive[flat] & np.repeat(self._alive, lens)
            kept = np.zeros(len(flat) + 1, dtype=np.int64)
            np.cumsum(keep, out=kept[1:])
            indices = flat[keep]
            indptr = kept[indptr]
        else:
            indices = flat
        mat = csr_matrix(
            (np.ones(len(indices), dtype=np.int8), indices.astype(np.int64), indptr),
            shape=(n, n),
        )
        self._csr_cache[alive_only] = (self._edge_epoch, version, mat)
        return mat

    def hops_to(self, targets: Sequence[int], alive_only: bool = True) -> dict[int, int]:
        """Minimum hop count from every reachable node to the nearest target.

        Multi-source BFS; the ground truth that SPR's discovered routes
        are tested against.  The grid index runs it as one unweighted
        Dijkstra sweep over the cached CSR adjacency; the brute-force
        reference keeps the original networkx implementation.
        """
        n = len(self.nodes)
        if alive_only:
            valid = sorted({int(t) for t in targets if 0 <= int(t) < n and self._alive[int(t)]})
        else:
            valid = sorted({int(t) for t in targets if 0 <= int(t) < n})
        if not valid:
            return {}
        if self.index == "bruteforce":
            g = self.graph(alive_only=alive_only)
            return dict(nx.multi_source_dijkstra_path_length(g, set(valid), weight=None))
        mat = self._csr_adjacency(alive_only)
        dist = _csgraph_dijkstra(
            mat, directed=True, unweighted=True, indices=valid, min_only=True
        )
        reachable = np.isfinite(dist)
        return {int(i): int(dist[i]) for i in np.nonzero(reachable)[0]}

    def is_collection_connected(self) -> bool:
        """True when every alive sensor can reach at least one gateway."""
        hops = self.hops_to(self.gateway_ids)
        return all(s in hops for s in self.sensor_ids if self.nodes[s].alive)


# ----------------------------------------------------------------------
# deployment generators
# ----------------------------------------------------------------------
def uniform_deployment(
    n: int, field_size: float, seed: int | None = 0, margin: float = 0.0
) -> np.ndarray:
    """``n`` i.i.d.-uniform positions on a ``field_size`` × ``field_size`` field."""
    if n <= 0:
        raise ConfigurationError("n must be positive")
    if field_size <= 0 or margin < 0 or 2 * margin >= field_size:
        raise ConfigurationError("invalid field_size/margin")
    rng = np.random.default_rng(seed)
    return rng.uniform(margin, field_size - margin, size=(n, 2))


def grid_deployment(
    rows: int, cols: int, spacing: float, jitter: float = 0.0, seed: int | None = 0
) -> np.ndarray:
    """A ``rows`` × ``cols`` grid with optional positional jitter."""
    if rows <= 0 or cols <= 0 or spacing <= 0 or jitter < 0:
        raise ConfigurationError("rows, cols, spacing must be positive; jitter >= 0")
    xs, ys = np.meshgrid(np.arange(cols) * spacing, np.arange(rows) * spacing)
    pos = np.column_stack([xs.ravel(), ys.ravel()]).astype(float)
    if jitter > 0:
        rng = np.random.default_rng(seed)
        pos += rng.uniform(-jitter, jitter, size=pos.shape)
    return pos


def build_sensor_network(
    sensor_positions: np.ndarray,
    gateway_positions: np.ndarray,
    comm_range: float = 40.0,
    sensor_battery: float = math.inf,
    index: str = "grid",
    soa: bool = False,
) -> Network:
    """Assemble a sensor-tier :class:`Network`: sensors first, then gateways.

    Gateway ids therefore start at ``len(sensor_positions)``, which every
    protocol in :mod:`repro.core` relies on being stable across rounds.
    """
    sensor_positions = np.asarray(sensor_positions, dtype=float)
    gateway_positions = np.asarray(gateway_positions, dtype=float)
    if gateway_positions.ndim == 1:
        gateway_positions = gateway_positions.reshape(1, 2)
    positions = np.vstack([sensor_positions, gateway_positions])
    kinds = [NodeKind.SENSOR] * len(sensor_positions) + [NodeKind.GATEWAY] * len(gateway_positions)
    return Network(
        positions, kinds, comm_range=comm_range, sensor_battery=sensor_battery,
        index=index, soa=soa,
    )
