"""Topology container and deployment generators.

A :class:`Network` owns node positions (NumPy arrays, so neighbor sets are
computed with vectorised distance math — the one genuinely hot path in the
substrate), the :class:`~repro.sim.node.Node` objects, and the symmetric
one-hop link relation of the paper's network model (Section 5.1):

    ``G(V, E)`` with ``V = V_S ∪ V_G`` and an edge wherever two nodes can
    immediately communicate — here, wherever their distance is at most the
    communication range.

Gateways may move between rounds (Section 5.1: sensors static, gateways
discretely mobile), which invalidates the cached neighbor sets.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

import networkx as nx
import numpy as np

from repro.exceptions import ConfigurationError, TopologyError
from repro.sim.energy import EnergyAccount
from repro.sim.node import Node, NodeKind

__all__ = [
    "Network",
    "uniform_deployment",
    "grid_deployment",
    "build_sensor_network",
]


class Network:
    """Positions, nodes and the one-hop neighbor relation.

    Parameters
    ----------
    positions:
        ``(n, 2)`` array of node coordinates in meters.
    kinds:
        Node kind per row of ``positions``.
    comm_range:
        Symmetric communication range defining one-hop links.
    sensor_battery:
        Initial battery (J) of each SENSOR node; ``math.inf`` gives the
        idealised unlimited-energy setting used by the worked examples.
        Non-sensor kinds are always mains powered.
    """

    def __init__(
        self,
        positions: np.ndarray,
        kinds: Sequence[NodeKind],
        comm_range: float = 40.0,
        sensor_battery: float = math.inf,
    ) -> None:
        positions = np.asarray(positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ConfigurationError("positions must be an (n, 2) array")
        if len(kinds) != len(positions):
            raise ConfigurationError("kinds and positions must have equal length")
        if comm_range <= 0:
            raise ConfigurationError("comm_range must be positive")

        self.positions = positions.copy()
        self.comm_range = float(comm_range)
        self.nodes: list[Node] = []
        for i, kind in enumerate(kinds):
            capacity = sensor_battery if kind is NodeKind.SENSOR else math.inf
            self.nodes.append(Node(node_id=i, kind=kind, energy=EnergyAccount(capacity=capacity)))
        self._neighbor_cache: Optional[list[np.ndarray]] = None
        # graph() cache: alive_only -> (alive mask at build time, graph).
        # Nodes die without notifying the network, so the mask is the
        # validity stamp; invalidate() clears this alongside the neighbor
        # cache on topology changes.
        self._graph_cache: dict[bool, tuple[np.ndarray, nx.Graph]] = {}

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def sensor_ids(self) -> list[int]:
        """Ids of all SENSOR nodes."""
        return [n.node_id for n in self.nodes if n.kind is NodeKind.SENSOR]

    @property
    def gateway_ids(self) -> list[int]:
        """Ids of all GATEWAY (WMG) nodes."""
        return [n.node_id for n in self.nodes if n.kind is NodeKind.GATEWAY]

    def ids_of_kind(self, kind: NodeKind) -> list[int]:
        return [n.node_id for n in self.nodes if n.kind is kind]

    def distance(self, i: int, j: int) -> float:
        """Euclidean distance between nodes ``i`` and ``j`` in meters."""
        d = self.positions[i] - self.positions[j]
        return float(math.hypot(d[0], d[1]))

    def distances_from(self, i: int, ids: np.ndarray) -> np.ndarray:
        """Distances from node ``i`` to every node in ``ids``, vectorised.

        The radio fan-out hot path computes one propagation delay per
        neighbor per frame; batching the distance math here keeps that a
        single NumPy pass instead of ``len(ids)`` Python-level calls.
        """
        diff = self.positions[ids] - self.positions[i]
        return np.hypot(diff[:, 0], diff[:, 1])

    # ------------------------------------------------------------------
    # neighbor sets (vectorised, cached)
    # ------------------------------------------------------------------
    def _build_neighbor_cache(self) -> list[np.ndarray]:
        pos = self.positions
        # Pairwise squared distances via broadcasting; n is at most a few
        # thousand in every experiment so the O(n^2) matrix is cheap and
        # far faster than per-pair Python loops.
        diff = pos[:, None, :] - pos[None, :, :]
        d2 = np.einsum("ijk,ijk->ij", diff, diff)
        within = d2 <= self.comm_range * self.comm_range
        np.fill_diagonal(within, False)
        return [np.nonzero(row)[0] for row in within]

    def neighbors(self, i: int) -> np.ndarray:
        """Ids within communication range of node ``i`` (excluding ``i``)."""
        if self._neighbor_cache is None:
            self._neighbor_cache = self._build_neighbor_cache()
        return self._neighbor_cache[i]

    def alive_neighbors(self, i: int) -> list[int]:
        """Neighbor ids that are currently alive."""
        return [int(j) for j in self.neighbors(i) if self.nodes[j].alive]

    def invalidate(self) -> None:
        """Drop cached neighbor sets and graphs after a topology change."""
        self._neighbor_cache = None
        self._graph_cache.clear()

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def move_node(self, node_id: int, pos: Iterable[float]) -> None:
        """Relocate a node (gateway mobility) and invalidate caches."""
        if not 0 <= node_id < len(self.nodes):
            raise TopologyError(f"no such node: {node_id}")
        self.positions[node_id] = np.asarray(list(pos), dtype=float)
        self.invalidate()

    # ------------------------------------------------------------------
    # graph views
    # ------------------------------------------------------------------
    def _alive_mask(self) -> np.ndarray:
        return np.fromiter(
            (n.alive for n in self.nodes), dtype=bool, count=len(self.nodes)
        )

    def graph(self, alive_only: bool = True) -> nx.Graph:
        """The one-hop link graph as a :class:`networkx.Graph`.

        The graph is cached and revalidated against the current alive
        mask, so repeated queries (the mesh backbone recomputes routes on
        every forwarding decision; E9 recomputes reachability per failure
        step) rebuild only when a node moved, died or recovered.  Treat
        the returned graph as read-only.
        """
        mask = self._alive_mask() if alive_only else None
        cached = self._graph_cache.get(alive_only)
        if cached is not None:
            cached_mask, cached_graph = cached
            if mask is None or np.array_equal(mask, cached_mask):
                return cached_graph
        g = nx.Graph()
        for node in self.nodes:
            if alive_only and not node.alive:
                continue
            g.add_node(node.node_id, kind=node.kind)
        for i in g.nodes:
            for j in self.neighbors(i):
                j = int(j)
                if j > i and j in g.nodes:
                    g.add_edge(i, j, weight=1.0)
        self._graph_cache[alive_only] = (mask, g)
        return g

    def hops_to(self, targets: Sequence[int], alive_only: bool = True) -> dict[int, int]:
        """Minimum hop count from every reachable node to the nearest target.

        Multi-source BFS over the link graph; the ground truth that SPR's
        discovered routes are tested against.
        """
        g = self.graph(alive_only=alive_only)
        targets = [t for t in targets if t in g.nodes]
        if not targets:
            return {}
        return nx.multi_source_dijkstra_path_length(g, set(targets), weight=None)

    def is_collection_connected(self) -> bool:
        """True when every alive sensor can reach at least one gateway."""
        hops = self.hops_to(self.gateway_ids)
        return all(s in hops for s in self.sensor_ids if self.nodes[s].alive)


# ----------------------------------------------------------------------
# deployment generators
# ----------------------------------------------------------------------
def uniform_deployment(
    n: int, field_size: float, seed: int | None = 0, margin: float = 0.0
) -> np.ndarray:
    """``n`` i.i.d.-uniform positions on a ``field_size`` × ``field_size`` field."""
    if n <= 0:
        raise ConfigurationError("n must be positive")
    if field_size <= 0 or margin < 0 or 2 * margin >= field_size:
        raise ConfigurationError("invalid field_size/margin")
    rng = np.random.default_rng(seed)
    return rng.uniform(margin, field_size - margin, size=(n, 2))


def grid_deployment(rows: int, cols: int, spacing: float, jitter: float = 0.0, seed: int | None = 0) -> np.ndarray:
    """A ``rows`` × ``cols`` grid with optional positional jitter."""
    if rows <= 0 or cols <= 0 or spacing <= 0 or jitter < 0:
        raise ConfigurationError("rows, cols, spacing must be positive; jitter >= 0")
    xs, ys = np.meshgrid(np.arange(cols) * spacing, np.arange(rows) * spacing)
    pos = np.column_stack([xs.ravel(), ys.ravel()]).astype(float)
    if jitter > 0:
        rng = np.random.default_rng(seed)
        pos += rng.uniform(-jitter, jitter, size=pos.shape)
    return pos


def build_sensor_network(
    sensor_positions: np.ndarray,
    gateway_positions: np.ndarray,
    comm_range: float = 40.0,
    sensor_battery: float = math.inf,
) -> Network:
    """Assemble a sensor-tier :class:`Network`: sensors first, then gateways.

    Gateway ids therefore start at ``len(sensor_positions)``, which every
    protocol in :mod:`repro.core` relies on being stable across rounds.
    """
    sensor_positions = np.asarray(sensor_positions, dtype=float)
    gateway_positions = np.asarray(gateway_positions, dtype=float)
    if gateway_positions.ndim == 1:
        gateway_positions = gateway_positions.reshape(1, 2)
    positions = np.vstack([sensor_positions, gateway_positions])
    kinds = [NodeKind.SENSOR] * len(sensor_positions) + [NodeKind.GATEWAY] * len(gateway_positions)
    return Network(positions, kinds, comm_range=comm_range, sensor_battery=sensor_battery)
