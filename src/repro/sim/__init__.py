"""Discrete-event wireless network simulation substrate.

This package implements everything below the routing layer: the event
engine, packet model, radio propagation, medium access control, the
first-order radio energy model, node state machines, topology generation,
gateway mobility and metrics collection.

The substrate replaces the physical 802.15.4 / 802.11 testbed the paper
assumes (see ``DESIGN.md``, *Substitutions*).
"""

from repro.sim.engine import Event, Simulator
from repro.sim.serialize import (
    from_jsonable,
    serializable,
    to_jsonable,
)
from repro.sim.energy import EnergyModel, EnergyAccount
from repro.sim.packet import Packet, PacketKind, SecurityEnvelope
from repro.sim.radio import RadioConfig, IEEE802154, IEEE80211, Channel
from repro.sim.node import Node, NodeKind
from repro.sim.state import EnergyView, NodeStateStore, NodeView
from repro.sim.network import (
    Network,
    build_sensor_network,
    grid_deployment,
    uniform_deployment,
)
from repro.sim.mobility import FeasiblePlaces, GatewaySchedule
from repro.sim.trace import MetricsCollector, DeliveryRecord

__all__ = [
    "Event",
    "Simulator",
    "serializable",
    "to_jsonable",
    "from_jsonable",
    "EnergyModel",
    "EnergyAccount",
    "Packet",
    "PacketKind",
    "SecurityEnvelope",
    "RadioConfig",
    "IEEE802154",
    "IEEE80211",
    "Channel",
    "Node",
    "NodeKind",
    "NodeStateStore",
    "NodeView",
    "EnergyView",
    "Network",
    "build_sensor_network",
    "uniform_deployment",
    "grid_deployment",
    "FeasiblePlaces",
    "GatewaySchedule",
    "MetricsCollector",
    "DeliveryRecord",
]
