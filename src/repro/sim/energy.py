"""First-order radio energy model and per-node energy accounting.

This is the model used throughout the paper's reference set (LEACH [17],
multi-base-station placement [34]): transmitting ``k`` bits over distance
``d`` costs

.. math::

    E_{tx}(k, d) = E_{elec} k + \\epsilon_{amp} k d^{\\alpha}

with free-space (:math:`\\alpha = 2`) amplification below the crossover
distance :math:`d_0 = \\sqrt{\\epsilon_{fs} / \\epsilon_{mp}}` and multipath
(:math:`\\alpha = 4`) above it, and receiving ``k`` bits costs
:math:`E_{rx}(k) = E_{elec} k`.

The paper's SPR analysis assumes "all sensor nodes transmit data in
identical power so that transmitting 1 bit data consumes the same energy to
all of them" (Section 5.2); set ``fixed_tx_distance`` to model that
assumption while still letting baselines such as LEACH pay true
distance-dependent cost for their long-range hops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import ConfigurationError

__all__ = ["EnergyModel", "EnergyAccount"]


@dataclass(frozen=True)
class EnergyModel:
    """First-order radio model parameters (Heinzelman et al. defaults).

    Attributes
    ----------
    e_elec:
        Electronics energy per bit, J/bit (TX and RX circuitry).
    eps_fs:
        Free-space amplifier energy, J/bit/m^2.
    eps_mp:
        Multipath amplifier energy, J/bit/m^4.
    idle_power:
        Idle listening power in watts; charged per second by the
        simulation driver when enabled (0 disables idle accounting).
    fixed_tx_distance:
        If not ``None``, every transmission is charged as if sent over
        exactly this distance — the paper's identical-power assumption.
    """

    e_elec: float = 50e-9
    eps_fs: float = 10e-12
    eps_mp: float = 0.0013e-12
    idle_power: float = 0.0
    fixed_tx_distance: float | None = None

    def __post_init__(self) -> None:
        if min(self.e_elec, self.eps_fs, self.eps_mp) < 0 or self.idle_power < 0:
            raise ConfigurationError("energy parameters must be non-negative")

    @property
    def crossover_distance(self) -> float:
        """Distance :math:`d_0` where free-space and multipath costs meet."""
        return math.sqrt(self.eps_fs / self.eps_mp)

    def tx_cost(self, bits: int, distance: float) -> float:
        """Energy in joules to transmit ``bits`` over ``distance`` meters."""
        if bits < 0 or distance < 0:
            raise ConfigurationError("bits and distance must be non-negative")
        d = self.fixed_tx_distance if self.fixed_tx_distance is not None else distance
        if d < self.crossover_distance:
            amp = self.eps_fs * d * d
        else:
            amp = self.eps_mp * d ** 4
        return bits * (self.e_elec + amp)

    def rx_cost(self, bits: int) -> float:
        """Energy in joules to receive ``bits``."""
        if bits < 0:
            raise ConfigurationError("bits must be non-negative")
        return bits * self.e_elec


@dataclass
class EnergyAccount:
    """Battery state of a single node.

    Gateways/mesh routers are modelled with ``math.inf`` capacity ("let
    gateways have unrestricted energy", Section 5.3); sensor nodes get a
    finite budget and die — permanently — when it is exhausted.  The time of
    the *first* sensor death is the paper's network-lifetime definition.

    ``on_death`` is an optional zero-argument callback fired exactly once,
    at the drain that exhausts the battery — how the owning
    :class:`~repro.sim.node.Node` propagates liveness changes to the
    :class:`~repro.sim.network.Network`'s maintained alive mask without
    any per-query scanning.
    """

    capacity: float
    remaining: float = field(default=None)  # type: ignore[assignment]
    spent_tx: float = 0.0
    spent_rx: float = 0.0
    spent_idle: float = 0.0
    died_at: float | None = None
    on_death: Callable[[], None] | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.remaining is None:
            self.remaining = self.capacity
        if self.capacity < 0:
            raise ConfigurationError("battery capacity must be non-negative")

    @property
    def alive(self) -> bool:
        return self.died_at is None

    @property
    def spent(self) -> float:
        """Total energy consumed so far, in joules."""
        return self.spent_tx + self.spent_rx + self.spent_idle

    def _drain(self, joules: float, now: float) -> bool:
        if not self.alive:
            return False
        self.remaining -= joules
        if self.remaining <= 0 and not math.isinf(self.capacity):
            self.remaining = 0.0
            self.died_at = now
            if self.on_death is not None:
                self.on_death()
        return True

    def charge_tx(self, joules: float, now: float) -> bool:
        """Charge a transmission; returns False if the node was dead."""
        ok = self._drain(joules, now)
        if ok:
            self.spent_tx += joules
        return ok

    def charge_rx(self, joules: float, now: float) -> bool:
        """Charge a reception; returns False if the node was dead."""
        ok = self._drain(joules, now)
        if ok:
            self.spent_rx += joules
        return ok

    def charge_idle(self, joules: float, now: float) -> bool:
        """Charge idle listening; returns False if the node was dead."""
        ok = self._drain(joules, now)
        if ok:
            self.spent_idle += joules
        return ok
