"""Discrete-event simulation engine.

A deliberately small, deterministic event engine: a binary heap of timed
events with a monotonically increasing tie-break counter so that events
scheduled at the same simulated time fire in scheduling order.  All
randomness used by higher layers flows through :attr:`Simulator.rng`, a
``numpy.random.Generator`` seeded at construction, which makes every
simulation reproducible from ``(topology seed, protocol seed)``.

The engine is single-threaded on purpose.  Per the optimisation guidance in
the HPC coding guides, the engine is kept simple and legible; the hot paths
that matter (neighbor-set computation, flood fan-out) are vectorised in
:mod:`repro.sim.network`, not here.
"""

from __future__ import annotations

import heapq
import itertools
import warnings
import weakref
from typing import Any, Callable

import numpy as np

from repro.exceptions import SimulationError

__all__ = ["Event", "Simulator", "events_processed_total"]

#: live Simulator instances in this process; used only by the deprecated
#: :func:`events_processed_total` shim below.
_LIVE_SIMULATORS: "weakref.WeakSet[Simulator]" = weakref.WeakSet()


def events_processed_total() -> int:
    """Events executed across live simulators (deprecated diagnostic).

    .. deprecated::
        The process-global counter is gone: event accounting is per
        simulator (:attr:`Simulator.events_processed`), aggregated per
        world by :func:`repro.world.record_world_events` — which is what
        the sweep runner reports.  This shim sums over simulators still
        alive in the process; garbage-collected ones no longer contribute.
    """
    warnings.warn(
        "events_processed_total() is deprecated; use Simulator.events_processed "
        "or repro.world.record_world_events() for per-world accounting",
        DeprecationWarning,
        stacklevel=2,
    )
    return sum(sim.events_processed for sim in _LIVE_SIMULATORS)


class Event:
    """A scheduled callback.

    Events are ordered by ``(time, seq)``; ``seq`` is a global counter so
    simultaneous events preserve FIFO scheduling order.  The engine keeps
    the ordering key *outside* the event — the heap stores
    ``(time, seq, event)`` tuples, so ordering is C-level tuple comparison
    and never reaches a Python ``__lt__`` (events are compared millions of
    times per run; this is the engine's one genuinely hot comparison)."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., None],
        args: tuple = (),
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = cancelled

    def __repr__(self) -> str:
        return (
            f"Event(time={self.time!r}, seq={self.seq!r}, fn={self.fn!r}, "
            f"args={self.args!r}, cancelled={self.cancelled!r})"
        )

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulator's random generator.  Two simulators built
        with the same seed and fed the same schedule of events produce
        bit-identical runs.

    Examples
    --------
    >>> sim = Simulator(seed=7)
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    def __init__(self, seed: int | None = 0) -> None:
        self._queue: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._running = False
        self._events_processed = 0
        self._idle_hooks: list[Callable[[], None]] = []
        self.rng: np.random.Generator = np.random.default_rng(seed)
        _LIVE_SIMULATORS.add(self)

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (diagnostic)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which can be cancelled.  A negative
        delay is a programming error and raises :class:`SimulationError`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        ev = Event(self._now + delay, next(self._counter), fn, args)
        heapq.heappush(self._queue, (ev.time, ev.seq, ev))
        return ev

    def schedule_at(self, when: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated time ``when``.

        ``when`` is pushed onto the heap as-is: round-tripping through a
        relative delay (``when - now + now``) loses precision once ``when``
        is large relative to the float epsilon, which made repeated
        absolute scheduling drift against ``run(until=...)`` horizons.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past (when={when!r}, now={self._now!r})"
            )
        ev = Event(when, next(self._counter), fn, args)
        heapq.heappush(self._queue, (when, ev.seq, ev))
        return ev

    def add_idle_hook(self, fn: Callable[[], None]) -> None:
        """Register ``fn()`` to run whenever :meth:`run` drains the queue.

        Idle hooks fire at *quiescence* — the heap is empty, so nothing
        can make further progress.  That is the one moment end-of-run
        invariants (packet conservation under audit mode) are checkable:
        any datum still queued or in flight is permanently stuck.  Hooks
        run in registration order and must not schedule new events.
        """
        if fn not in self._idle_hooks:  # == dedupes re-bound methods too
            self._idle_hooks.append(fn)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue was empty.
        Cancelled events are discarded without running.
        """
        while self._queue:
            when, _, ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            if when < self._now:
                raise SimulationError(
                    f"event queue corrupted: event at t={when} < now={self._now}"
                )
            self._now = when
            self._events_processed += 1
            ev.fn(*ev.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events in time order.

        Parameters
        ----------
        until:
            Stop once the next event lies strictly beyond this time; the
            clock is then advanced to ``until`` (so repeated ``run(until=t)``
            calls behave like a progressing wall clock).
        max_events:
            Safety valve for runaway protocols: stop after this many events.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        processed = 0
        try:
            while self._queue:
                when, _, nxt = self._queue[0]
                if nxt.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and when > until:
                    break
                if max_events is not None and processed >= max_events:
                    break
                if self.step():
                    # Only executed events count toward the budget;
                    # cancelled events are discarded above without cost.
                    processed += 1
            if until is not None and self._now < until:
                self._now = until
            if not self._queue:
                for hook in self._idle_hooks:
                    hook()
        finally:
            self._running = False

    def clear(self) -> None:
        """Drop all pending events (the clock is left where it is)."""
        self._queue.clear()
