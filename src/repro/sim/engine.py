"""Discrete-event simulation engine.

A deliberately small, deterministic event engine: a binary heap of timed
events with a monotonically increasing tie-break counter so that events
scheduled at the same simulated time fire in scheduling order.  All
randomness used by higher layers flows through :attr:`Simulator.rng`, a
``numpy.random.Generator`` seeded at construction, which makes every
simulation reproducible from ``(topology seed, protocol seed)``.  Draws
made *on behalf of a specific node* (MAC jitter/backoff, per-link loss)
instead come from :meth:`Simulator.node_rng` — a per-node substream
derived as ``SeedSequence(entropy=seed, spawn_key=(node_id,))`` — so a
node's draw sequence is a pure function of ``(seed, node_id)``,
independent of the global draw order.  That independence is what lets
the sharded executor replay draws bit-identically on any worker count.

The engine is single-threaded on purpose.  Per the optimisation guidance in
the HPC coding guides, the engine is kept simple and legible; the hot paths
that matter (neighbor-set computation, flood fan-out, batched delivery
draining) are vectorised in :mod:`repro.sim.network` /
:mod:`repro.sim.radio`, not here.  What the engine *does* provide for the
struct-of-arrays hot path is a small batching contract:

* :meth:`Simulator.alloc_seqs` reserves a contiguous block of tie-break
  sequence numbers, so a radio fan-out can stamp every delivery of one
  frame with the exact sequence numbers a per-event schedule loop would
  have produced;
* :meth:`Simulator.peek_key` exposes the ``(time, seq)`` key of the next
  pending event, letting a drain callback process consecutive batch
  entries *only while nothing else would have fired between them*;
* :meth:`Simulator.advance_clock` / :meth:`Simulator.push_event_at` let
  the drain micro-step the clock through its entries and park the
  remainder back on the heap under the original sequence number.

Together these make the batched path a pure re-ordering of *work inside
one process loop*, never of simulated causality: every batched entry
observes exactly the heap position it would have had as its own event.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

import numpy as np

from repro.exceptions import SimulationError

__all__ = ["Event", "Simulator"]


class Event:
    """A scheduled callback.

    Events are ordered by ``(time, seq)``; ``seq`` is a global counter so
    simultaneous events preserve FIFO scheduling order.  The engine keeps
    the ordering key *outside* the event — the heap stores
    ``(time, seq, event)`` tuples, so ordering is C-level tuple comparison
    and almost never reaches the Python ``__lt__`` below (events are
    compared millions of times per run; this is the engine's one
    genuinely hot comparison)."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., None],
        args: tuple = (),
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = cancelled

    def __lt__(self, other: "Event") -> bool:
        """Tie-break for heap tuples whose ``(time, seq)`` keys are equal.

        Exact key collisions only arise between a cancelled batch-pump
        parking and its re-issue under the same reserved seq (live
        events always hold distinct seqs), and cancelled events are
        skipped unexecuted — so the relative order of a tied pair is
        unobservable and any deterministic answer is correct.
        """
        return False

    def __repr__(self) -> str:
        return (
            f"Event(time={self.time!r}, seq={self.seq!r}, fn={self.fn!r}, "
            f"args={self.args!r}, cancelled={self.cancelled!r})"
        )

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulator's random generator.  Two simulators built
        with the same seed and fed the same schedule of events produce
        bit-identical runs.

    Examples
    --------
    >>> sim = Simulator(seed=7)
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    def __init__(self, seed: int | None = 0) -> None:
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._horizon: Optional[float] = None
        self._horizon_exclusive = False
        self._events_processed = 0
        self._idle_hooks: list[Callable[[], None]] = []
        self.rng: np.random.Generator = np.random.default_rng(seed)
        self._node_entropy = np.random.SeedSequence(seed).entropy
        self._node_rngs: dict[int, np.random.Generator] = {}

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (diagnostic).

        Batched deliveries count one per drained entry (via
        :meth:`tally_batch_entries`), so the figure is comparable between
        the per-event and batched execution paths.
        """
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones).

        A delivery batch counts as a single queue entry however many
        entries it still carries; ``pending == 0`` still means quiescent
        (a parked batch always keeps one continuation event queued).
        """
        return len(self._queue)

    @property
    def horizon(self) -> Optional[float]:
        """The ``until`` bound of the active :meth:`run`, if any.

        Batch drains consult this so entries beyond the horizon are
        parked instead of executed, exactly as their per-event
        counterparts would have stayed on the heap.
        """
        return self._horizon

    @property
    def horizon_exclusive(self) -> bool:
        """Whether the active :meth:`run` bound excludes its endpoint.

        ``run(until=t, inclusive=False)`` executes strictly-before-``t``
        events only; batch drains must then also park entries *at* ``t``
        (an inclusive horizon lets them drain).  Meaningless when
        :attr:`horizon` is ``None``.
        """
        return self._horizon_exclusive

    @property
    def next_event_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` at quiescence.

        Parked delivery batches are covered: their pump event always sits
        at the earliest pending entry's key.  Conservative shard
        synchronization uses this as the worker's lower bound on future
        activity.
        """
        key = self.peek_key()
        return None if key is None else key[0]

    # ------------------------------------------------------------------
    # per-node randomness
    # ------------------------------------------------------------------
    def node_rng(self, node_id: int) -> np.random.Generator:
        """The dedicated random stream of ``node_id`` (lazily created).

        Streams derive as ``SeedSequence(entropy=seed, spawn_key=(node_id,))``,
        so each node's draw sequence is a pure function of ``(seed,
        node_id)`` — independent of creation order, of how many other
        nodes draw, and of which process hosts the node.  This is the
        shard-safety primitive: jitter/backoff/loss draws are keyed by
        the *acting* node (the frame's sender) instead of consuming the
        shared :attr:`rng`, so any worker replays exactly the draws its
        nodes would have made in a single-process run.
        """
        gen = self._node_rngs.get(node_id)
        if gen is None:
            seq = np.random.SeedSequence(
                entropy=self._node_entropy, spawn_key=(int(node_id),)
            )
            gen = np.random.default_rng(seq)
            self._node_rngs[node_id] = gen
        return gen

    def node_rng_states(self) -> dict[int, dict]:
        """Final bit-generator states of every spawned per-node stream.

        Only nodes whose stream was actually touched have entries.  The
        sharded executor ships each worker's owned entries home so the
        digest-equality tests can pin the partitioned streams end to end
        (same draws *and* same leftover state at every worker count).
        """
        return {
            int(i): gen.bit_generator.state
            for i, gen in sorted(self._node_rngs.items())
        }

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which can be cancelled.  A negative
        delay is a programming error and raises :class:`SimulationError`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        seq = self._seq
        self._seq = seq + 1
        ev = Event(self._now + delay, seq, fn, args)
        heapq.heappush(self._queue, (ev.time, seq, ev))
        return ev

    def schedule_at(self, when: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated time ``when``.

        ``when`` is pushed onto the heap as-is: round-tripping through a
        relative delay (``when - now + now``) loses precision once ``when``
        is large relative to the float epsilon, which made repeated
        absolute scheduling drift against ``run(until=...)`` horizons.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past (when={when!r}, now={self._now!r})"
            )
        seq = self._seq
        self._seq = seq + 1
        ev = Event(when, seq, fn, args)
        heapq.heappush(self._queue, (when, seq, ev))
        return ev

    # ------------------------------------------------------------------
    # batching contract (struct-of-arrays delivery draining)
    # ------------------------------------------------------------------
    @property
    def seq_marker(self) -> int:
        """The next sequence number to be handed out.

        A drain loop snapshots this before invoking a handler; if it
        changed, the handler scheduled something that may now precede the
        batch's next entry, so the drain must re-derive its run bound.
        """
        return self._seq

    def alloc_seqs(self, count: int) -> int:
        """Reserve ``count`` consecutive sequence numbers; returns the base.

        The reserved block orders exactly like ``count`` back-to-back
        :meth:`schedule` calls would have — which is what makes a batched
        fan-out's entries tie-break identically to per-event scheduling.
        """
        if count < 0:
            raise SimulationError(f"cannot reserve {count!r} sequence numbers")
        base = self._seq
        self._seq = base + count
        return base

    def peek_key(self) -> Optional[tuple[float, int]]:
        """``(time, seq)`` of the next live event, or ``None`` when empty.

        Cancelled events at the top of the heap are discarded as a side
        effect (they would be skipped by :meth:`step` anyway).
        """
        q = self._queue
        while q:
            when, seq, ev = q[0]
            if ev.cancelled:
                heapq.heappop(q)
                continue
            return (when, seq)
        return None

    def advance_clock(self, when: float) -> None:
        """Micro-step the clock to ``when`` from inside a batch drain.

        Only forward moves are allowed; the drain uses this so handlers
        invoked for batched entries observe the same :attr:`now` they
        would have seen as individual events.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot move the clock backwards (when={when!r}, now={self._now!r})"
            )
        self._now = when

    def push_event_at(
        self, when: float, seq: int, fn: Callable[..., None], *args: Any
    ) -> Event:
        """Re-queue work under an explicit, previously reserved ``seq``.

        This is how a drain parks the unprocessed remainder of a batch:
        the continuation re-enters the heap at the *original* ``(time,
        seq)`` of its next entry, so interleaving against every other
        event is bit-identical to per-event scheduling.  ``seq`` must come
        from :meth:`alloc_seqs` — the engine does not verify it, and a
        fabricated value would corrupt tie-break ordering.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot park into the past (when={when!r}, now={self._now!r})"
            )
        ev = Event(when, seq, fn, args)
        heapq.heappush(self._queue, (when, seq, ev))
        return ev

    def tally_batch_entries(self, count: int) -> None:
        """Credit ``count`` executed batch entries to the event counter.

        The heap pop that started the drain already counted one event;
        drains call this with the *additional* entries they processed so
        :attr:`events_processed` stays comparable across execution paths.
        """
        self._events_processed += count

    def add_idle_hook(self, fn: Callable[[], None]) -> None:
        """Register ``fn()`` to run whenever :meth:`run` drains the queue.

        Idle hooks fire at *quiescence* — the heap is empty, so nothing
        can make further progress.  That is the one moment end-of-run
        invariants (packet conservation under audit mode) are checkable:
        any datum still queued or in flight is permanently stuck.  Hooks
        run in registration order and must not schedule new events.
        """
        if fn not in self._idle_hooks:  # == dedupes re-bound methods too
            self._idle_hooks.append(fn)

    # ------------------------------------------------------------------
    # snapshot / restore (barrier checkpoints, repro.shard.checkpoint)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle support with a barrier-only guard.

        The engine's whole state — pending heap, clock, tie-break
        counter, per-node RNG substreams — pickles as plain attributes,
        *except* mid-:meth:`run`: an event currently executing is on no
        queue, so a snapshot taken from inside a callback would silently
        drop it.  Sharded checkpoints only ever fire between windows
        (the gang is quiescent at the null-message barrier), so hitting
        this guard means a checkpoint hook ran from the wrong place.
        """
        if self._running:
            raise SimulationError(
                "cannot snapshot a Simulator from inside run(): the executing "
                "event is not on the queue; snapshot at a window barrier or "
                "after run() returns"
            )
        return dict(self.__dict__)

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def checkpoint_state(self) -> dict:
        """Compact jsonable summary of engine state for checkpoint manifests.

        Diagnostic only (the authoritative state travels in the pickled
        snapshot): lets a human — or a resume validator — eyeball what a
        checkpoint contains without unpickling worlds.
        """
        return {
            "now": self._now,
            "seq": self._seq,
            "pending": len(self._queue),
            "events_processed": self._events_processed,
            "node_streams": len(self._node_rngs),
        }

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue was empty.
        Cancelled events are discarded without running.
        """
        while self._queue:
            when, _, ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            if when < self._now:
                raise SimulationError(
                    f"event queue corrupted: event at t={when} < now={self._now}"
                )
            self._now = when
            self._events_processed += 1
            ev.fn(*ev.args)
            return True
        return False

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
        inclusive: bool = True,
    ) -> None:
        """Run events in time order.

        Parameters
        ----------
        until:
            Stop once the next event lies strictly beyond this time; the
            clock is then advanced to ``until`` (so repeated ``run(until=t)``
            calls behave like a progressing wall clock).
        max_events:
            Safety valve for runaway protocols: stop after this many events.
            A batched delivery drain checks the budget only between heap
            pops, so one drain may overshoot by the entries it coalesced.
        inclusive:
            When ``False``, events *at* ``until`` stay queued: only
            strictly-earlier events run, and delivery batches park their
            at-bound entries too.  This is the conservative-window
            primitive for sharded execution — a worker granted a window
            ending at ``t`` must leave time ``t`` untouched, because a
            cross-shard frame may still arrive exactly then.  The clock
            still ends at ``until``, so arrivals at ``t`` can be
            scheduled afterwards and execute in the next window.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        if until is None and not inclusive:
            raise SimulationError("run(inclusive=False) needs an explicit until bound")
        self._running = True
        self._horizon = until
        self._horizon_exclusive = not inclusive
        processed_before = self._events_processed
        try:
            while self._queue:
                when, _, nxt = self._queue[0]
                if nxt.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and (when > until or (not inclusive and when >= until)):
                    break
                if max_events is not None and (
                    self._events_processed - processed_before >= max_events
                ):
                    break
                self.step()
            if until is not None and self._now < until:
                self._now = until
            if not self._queue:
                for hook in self._idle_hooks:
                    hook()
        finally:
            self._running = False
            self._horizon = None
            self._horizon_exclusive = False

    def clear(self) -> None:
        """Drop all pending events (the clock is left where it is)."""
        self._queue.clear()
