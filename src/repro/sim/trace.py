"""Metrics collection.

A single :class:`MetricsCollector` instance is threaded through the channel
and the protocols.  It records the raw material every experiment in
``EXPERIMENTS.md`` is computed from: per-kind packet counters, bytes on the
air, end-to-end delivery records with latency and hop counts, drop reasons,
and the network-lifetime event (first sensor death, the paper's lifetime
definition in Section 5.3).

Packet conservation
-------------------
Under audit mode the collector additionally feeds a
:class:`repro.obs.ledger.PacketLedger` that tracks every application datum
``(origin, data_id)`` to a terminal state, enforcing::

    data_generated == unique_delivered + terminal_drops + pending

Drops come in two flavours.  :meth:`on_drop` counts a *frame-level* event
(a collision that will be retried, an RRES copy suppressed) — it feeds
the per-reason counters only.  :meth:`on_terminal_drop` declares a datum
*dead*: it feeds the same counters **and** closes the ledger entry, so
the datum can never be reported as still pending.  Audit mode is enabled
per collector (``audit=True``), per world (``WorldBuilder().audit()``)
or process-wide (``REPRO_AUDIT=1``).
"""

from __future__ import annotations

import os
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.sim.packet import Packet, PacketKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> packet only)
    from repro.obs.ledger import PacketLedger

__all__ = ["DeliveryRecord", "MetricsCollector", "audit_default", "set_audit_default"]


_FORCE_AUDIT = False


def set_audit_default(enabled: bool) -> None:
    """Force audit mode on/off for collectors built after this call
    (used by the test suite's ``REPRO_AUDIT=1`` job)."""
    global _FORCE_AUDIT
    _FORCE_AUDIT = bool(enabled)


def audit_default() -> bool:
    """Whether new collectors audit by default (``REPRO_AUDIT`` env)."""
    return _FORCE_AUDIT or os.environ.get("REPRO_AUDIT", "") not in ("", "0")


@dataclass(frozen=True)
class DeliveryRecord:
    """One application packet that reached its destination."""

    origin: int
    destination: int
    hops: int
    latency: float
    created_at: float
    delivered_at: float
    uid: int


@dataclass
class MetricsCollector:
    """Accumulates simulation statistics.

    Counters are keyed so experiments can slice by packet kind; the
    security experiments additionally use :attr:`drops` keyed by reason
    (``"bad_mac"``, ``"replay"``, ``"no_route"``, ``"collision"``,
    ``"loss"``, ``"dead_node"``, ``"ttl"``, ``"blackhole"`` ...).
    """

    sent: Counter = field(default_factory=Counter)  # kind -> frames put on air
    received: Counter = field(default_factory=Counter)  # kind -> frames delivered
    drops: Counter = field(default_factory=Counter)  # reason -> count
    bytes_sent: int = 0
    data_generated: int = 0
    deliveries: list[DeliveryRecord] = field(default_factory=list)
    first_death: Optional[tuple[int, float]] = None  # (node_id, time)
    control_frames: int = 0
    data_frames: int = 0
    #: Enforce conservation: attach a ledger and make overcounting raise.
    audit: bool = field(default_factory=audit_default)
    ledger: Optional["PacketLedger"] = None

    def __post_init__(self) -> None:
        if self.ledger is None and self.audit:
            from repro.obs.ledger import PacketLedger

            self.ledger = PacketLedger()

    def enable_audit(self) -> None:
        """Turn audit mode on, attaching a ledger if none exists yet."""
        self.audit = True
        if self.ledger is None:
            from repro.obs.ledger import PacketLedger

            self.ledger = PacketLedger()

    # ------------------------------------------------------------------
    # channel-side hooks
    # ------------------------------------------------------------------
    def on_send(self, packet: Packet) -> None:
        self.sent[packet.kind] += 1
        self.bytes_sent += packet.size_bytes()
        if packet.kind is PacketKind.DATA:
            self.data_frames += 1
        else:
            self.control_frames += 1
        if self.ledger is not None:
            self.ledger.on_frame_sent(packet)

    def on_receive(self, packet: Packet) -> None:
        self.received[packet.kind] += 1

    def on_drop(self, reason: str) -> None:
        """A frame-level drop that does *not* kill a datum (a retried
        collision, a suppressed flood copy, a lost control frame)."""
        self.drops[reason] += 1

    def on_terminal_drop(
        self,
        reason: str,
        packet: Optional[Packet] = None,
        *,
        key: Optional[tuple[int, int]] = None,
        node: Optional[int] = None,
        now: Optional[float] = None,
    ) -> None:
        """A drop after which the datum can never be delivered.

        Counts into :attr:`drops` exactly like :meth:`on_drop` (so every
        pre-existing drop slice keeps its meaning) and additionally closes
        the ledger entry identified by ``packet`` (via
        :func:`repro.obs.ledger.datum_key`) or an explicit ``key``.
        """
        self.drops[reason] += 1
        if self.ledger is not None:
            self.ledger.on_dropped(reason, packet, key=key, node=node, now=now)

    def on_node_death(self, node_id: int, now: float) -> None:
        if self.first_death is None:
            self.first_death = (node_id, now)

    # ------------------------------------------------------------------
    # application-side hooks
    # ------------------------------------------------------------------
    def on_data_generated(
        self,
        count: int = 1,
        *,
        origin: Optional[int] = None,
        data_id: Optional[int] = None,
        now: float = 0.0,
    ) -> None:
        """Count ``count`` new application datums.

        Callers that know the datum identity pass ``origin``/``data_id``
        (with ``count == 1``) so the ledger can open an entry; counting
        without identity under audit mode is flagged by the auditor.
        """
        self.data_generated += count
        if self.ledger is not None and origin is not None and data_id is not None:
            self.ledger.on_generated(origin, data_id, now=now)

    def on_data_queued(self, origin: int, data_id: int) -> None:
        """The datum entered a protocol queue (e.g. awaiting discovery)."""
        if self.ledger is not None:
            self.ledger.on_queued(origin, data_id)

    def on_data_delivered(self, packet: Packet, destination: int, now: float) -> None:
        self.deliveries.append(
            DeliveryRecord(
                origin=packet.origin,
                destination=destination,
                hops=packet.hop_count,
                latency=now - packet.created_at,
                created_at=packet.created_at,
                delivered_at=now,
                uid=packet.payload.get("data_id", packet.uid),
            )
        )
        if self.ledger is not None:
            self.ledger.on_delivered(packet, now)

    # ------------------------------------------------------------------
    # derived statistics
    # ------------------------------------------------------------------
    def unique_deliveries(self) -> list[DeliveryRecord]:
        """First delivery of each unique ``(origin, uid)`` datum, in order.

        Multi-gateway routing (MLR sends toward *m* gateways) can deliver
        the same datum several times; every per-datum statistic —
        delivery ratio, latency, hops — is computed over first deliveries
        so duplicates affect none of them.
        """
        seen: set[tuple[int, int]] = set()
        firsts: list[DeliveryRecord] = []
        for r in self.deliveries:
            key = (r.origin, r.uid)
            if key not in seen:
                seen.add(key)
                firsts.append(r)
        return firsts

    @property
    def delivery_ratio(self) -> float:
        """Unique application packets delivered / generated (0 if none sent).

        A ratio above 1 means deliveries were double-counted or forged
        data was accepted; under audit mode that raises
        :class:`~repro.exceptions.ConservationError` instead of being
        silently clamped.
        """
        if self.data_generated == 0:
            return 0.0
        ratio = len(self.unique_deliveries()) / self.data_generated
        if ratio > 1.0 and self.audit:
            from repro.exceptions import ConservationError

            raise ConservationError(
                f"delivery ratio {ratio:.4f} > 1: "
                f"{len(self.unique_deliveries())} unique deliveries for "
                f"{self.data_generated} generated data packets"
            )
        return ratio

    @property
    def mean_latency(self) -> float:
        """Mean end-to-end latency over unique first deliveries (0 if none)."""
        firsts = self.unique_deliveries()
        if not firsts:
            return 0.0
        return sum(r.latency for r in firsts) / len(firsts)

    @property
    def mean_hops(self) -> float:
        """Mean end-to-end hop count over unique first deliveries (0 if none)."""
        firsts = self.unique_deliveries()
        if not firsts:
            return 0.0
        return sum(r.hops for r in firsts) / len(firsts)

    @property
    def lifetime(self) -> Optional[float]:
        """Time of first sensor death, or None if all survived."""
        return None if self.first_death is None else self.first_death[1]

    # ------------------------------------------------------------------
    # conservation
    # ------------------------------------------------------------------
    def conservation_report(self, strict: bool = False):
        """Audit the ledger (see :func:`repro.obs.audit.audit_collector`)."""
        from repro.obs.audit import audit_collector

        return audit_collector(self, strict=strict)

    def assert_conserved(self, strict: bool = False):
        """Raise :class:`~repro.exceptions.ConservationError` on violation."""
        from repro.obs.audit import assert_conserved

        return assert_conserved(self, strict=strict)

    def _audit_idle_hook(self) -> None:
        """Simulator idle hook: strict conservation at quiescence."""
        self.assert_conserved(strict=True)

    def summary(self) -> dict[str, float]:
        """Flat dict of headline numbers, convenient for table rows."""
        return {
            "data_generated": float(self.data_generated),
            "data_delivered": float(len(self.unique_deliveries())),
            "delivery_ratio": self.delivery_ratio,
            "mean_latency": self.mean_latency,
            "mean_hops": self.mean_hops,
            "bytes_sent": float(self.bytes_sent),
            "control_frames": float(self.control_frames),
            "data_frames": float(self.data_frames),
            "lifetime": float("nan") if self.lifetime is None else self.lifetime,
        }
