"""Metrics collection.

A single :class:`MetricsCollector` instance is threaded through the channel
and the protocols.  It records the raw material every experiment in
``EXPERIMENTS.md`` is computed from: per-kind packet counters, bytes on the
air, end-to-end delivery records with latency and hop counts, drop reasons,
and the network-lifetime event (first sensor death, the paper's lifetime
definition in Section 5.3).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.sim.packet import Packet, PacketKind

__all__ = ["DeliveryRecord", "MetricsCollector"]


@dataclass(frozen=True)
class DeliveryRecord:
    """One application packet that reached its destination."""

    origin: int
    destination: int
    hops: int
    latency: float
    created_at: float
    delivered_at: float
    uid: int


@dataclass
class MetricsCollector:
    """Accumulates simulation statistics.

    Counters are keyed so experiments can slice by packet kind; the
    security experiments additionally use :attr:`drops` keyed by reason
    (``"bad_mac"``, ``"replay"``, ``"no_route"``, ``"collision"``,
    ``"loss"``, ``"dead_node"``, ``"ttl"``, ``"blackhole"`` ...).
    """

    sent: Counter = field(default_factory=Counter)  # kind -> frames put on air
    received: Counter = field(default_factory=Counter)  # kind -> frames delivered
    drops: Counter = field(default_factory=Counter)  # reason -> count
    bytes_sent: int = 0
    data_generated: int = 0
    deliveries: list[DeliveryRecord] = field(default_factory=list)
    first_death: Optional[tuple[int, float]] = None  # (node_id, time)
    control_frames: int = 0
    data_frames: int = 0

    # ------------------------------------------------------------------
    # channel-side hooks
    # ------------------------------------------------------------------
    def on_send(self, packet: Packet) -> None:
        self.sent[packet.kind] += 1
        self.bytes_sent += packet.size_bytes()
        if packet.kind is PacketKind.DATA:
            self.data_frames += 1
        else:
            self.control_frames += 1

    def on_receive(self, packet: Packet) -> None:
        self.received[packet.kind] += 1

    def on_drop(self, reason: str) -> None:
        self.drops[reason] += 1

    def on_node_death(self, node_id: int, now: float) -> None:
        if self.first_death is None:
            self.first_death = (node_id, now)

    # ------------------------------------------------------------------
    # application-side hooks
    # ------------------------------------------------------------------
    def on_data_generated(self, count: int = 1) -> None:
        self.data_generated += count

    def on_data_delivered(self, packet: Packet, destination: int, now: float) -> None:
        self.deliveries.append(
            DeliveryRecord(
                origin=packet.origin,
                destination=destination,
                hops=packet.hop_count,
                latency=now - packet.created_at,
                created_at=packet.created_at,
                delivered_at=now,
                uid=packet.payload.get("data_id", packet.uid),
            )
        )

    # ------------------------------------------------------------------
    # derived statistics
    # ------------------------------------------------------------------
    @property
    def delivery_ratio(self) -> float:
        """Unique application packets delivered / generated (0 if none sent)."""
        if self.data_generated == 0:
            return 0.0
        unique = {(r.origin, r.uid) for r in self.deliveries}
        return min(1.0, len(unique) / self.data_generated)

    @property
    def mean_latency(self) -> float:
        """Mean end-to-end latency over delivered packets (0 if none)."""
        if not self.deliveries:
            return 0.0
        return sum(r.latency for r in self.deliveries) / len(self.deliveries)

    @property
    def mean_hops(self) -> float:
        """Mean end-to-end hop count over delivered packets (0 if none)."""
        if not self.deliveries:
            return 0.0
        return sum(r.hops for r in self.deliveries) / len(self.deliveries)

    @property
    def lifetime(self) -> Optional[float]:
        """Time of first sensor death, or None if all survived."""
        return None if self.first_death is None else self.first_death[1]

    def summary(self) -> dict[str, float]:
        """Flat dict of headline numbers, convenient for table rows."""
        return {
            "data_generated": float(self.data_generated),
            "data_delivered": float(len({(r.origin, r.uid) for r in self.deliveries})),
            "delivery_ratio": self.delivery_ratio,
            "mean_latency": self.mean_latency,
            "mean_hops": self.mean_hops,
            "bytes_sent": float(self.bytes_sent),
            "control_frames": float(self.control_frames),
            "data_frames": float(self.data_frames),
            "lifetime": float("nan") if self.lifetime is None else self.lifetime,
        }
