"""Radio configurations and the shared wireless channel.

:class:`Channel` is the only way packets move: protocols call
:meth:`Channel.send` (broadcast when ``packet.dst is None``, link-layer
unicast otherwise) and the channel handles CSMA deferral, airtime, loss,
receiver-side collisions, energy charging and delivery to the receiving
nodes' handlers.

Two parameter presets mirror the paper's tier split (Section 3.2): sensor
nodes speak :data:`IEEE802154`, mesh routers :data:`IEEE80211`, and
gateways both.
"""

from __future__ import annotations

import itertools
import math
from bisect import bisect
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.sim.energy import EnergyModel
from repro.sim.engine import Simulator
from repro.sim.mac import MediumState
from repro.sim.packet import Packet
from repro.sim.serialize import serializable
from repro.sim.trace import MetricsCollector

__all__ = ["GilbertElliott", "RadioConfig", "IEEE802154", "IEEE80211", "Channel"]

_SPEED_OF_LIGHT = 3.0e8


@serializable
@dataclass(frozen=True)
class GilbertElliott:
    """Two-state bursty link-loss model (Gilbert–Elliott).

    Each directed link ``(sender, receiver)`` carries an independent
    two-state Markov chain.  Per frame the chain advances one step —
    Good→Bad with probability ``p_gb``, Bad→Good with ``p_bg`` — and the
    frame is then lost with the state's loss probability (``loss_good``
    on a good link, ``loss_bad`` inside a burst).  Mean burst length is
    ``1 / p_bg`` frames; stationary bad-state probability is
    ``p_gb / (p_gb + p_bg)``.

    The chain consumes exactly two RNG draws per intended receiver —
    one transition, one loss — regardless of parameter values, so the
    scalar and vectorized fan-out paths stay stream-identical.
    """

    p_gb: float
    p_bg: float
    loss_good: float = 0.0
    loss_bad: float = 1.0
    start_bad: bool = False

    def __post_init__(self) -> None:
        for name in ("p_gb", "p_bg", "loss_good", "loss_bad"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {v!r}")

    @property
    def stationary_bad(self) -> float:
        """Long-run fraction of frames finding the link in the bad state."""
        denom = self.p_gb + self.p_bg
        return 0.0 if denom == 0.0 else self.p_gb / denom


@dataclass(frozen=True)
class RadioConfig:
    """Physical/MAC parameters of one radio technology."""

    name: str
    bitrate: float  # bits per second
    comm_range: float  # meters
    loss_rate: float = 0.0  # independent per-link frame loss probability
    backoff_window: float = 2e-3  # seconds of random CSMA jitter
    collisions: bool = True
    csma: bool = True
    arq_retries: int = 3
    """Link-layer retransmissions for unicast frames whose reception fails
    (collision or loss) — 802.15.4/802.11 both ACK unicast and retry.
    Broadcast frames are never acknowledged, hence never retried."""
    burst: Optional[GilbertElliott] = None
    """Bursty per-link loss (Gilbert–Elliott).  When set it *replaces*
    the i.i.d. ``loss_rate`` draw: per-state loss probabilities come from
    the model and ``loss_rate`` is ignored."""

    def __post_init__(self) -> None:
        if self.bitrate <= 0 or self.comm_range <= 0:
            raise ConfigurationError("bitrate and comm_range must be positive")
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ConfigurationError("loss_rate must be in [0, 1]")

    def airtime(self, bits: int) -> float:
        """Seconds needed to push ``bits`` onto the air."""
        return bits / self.bitrate

    def ideal(self) -> "RadioConfig":
        """A lossless, collision-free copy (worked-example experiments)."""
        return replace(
            self, loss_rate=0.0, collisions=False, csma=False,
            backoff_window=0.0, arq_retries=0, burst=None,
        )


#: Sensor-tier radio (2.4 GHz 802.15.4: 250 kb/s, short range).
IEEE802154 = RadioConfig(name="802.15.4", bitrate=250_000.0, comm_range=40.0)

#: Mesh-tier radio (802.11b: 11 Mb/s, long range).
IEEE80211 = RadioConfig(name="802.11", bitrate=11_000_000.0, comm_range=250.0)


class Channel:
    """The shared wireless medium of one network tier.

    Parameters
    ----------
    sim:
        The discrete-event engine (also the source of randomness).
    network:
        Topology provider; must expose ``nodes``, ``neighbors(i)`` and
        ``distance(i, j)`` (see :class:`repro.sim.network.Network`).
    config:
        Radio parameters (default 802.15.4 — the sensor tier).
    energy_model:
        First-order radio model used to charge TX/RX energy.
    metrics:
        Collector receiving send/receive/drop events.
    vectorized:
        Batch the per-neighbor fan-out math (distance, propagation, loss
        draws) with NumPy.  On by default; the scalar loop is kept as a
        reference implementation for equivalence tests and the hot-path
        benchmark.  Both paths draw from the RNG in the same order, so
        they are stream-identical.
    """

    def __init__(
        self,
        sim: Simulator,
        network,
        config: RadioConfig = IEEE802154,
        energy_model: Optional[EnergyModel] = None,
        metrics: Optional[MetricsCollector] = None,
        vectorized: bool = True,
    ) -> None:
        self.sim = sim
        self.network = network
        self.config = config
        self.energy_model = energy_model or EnergyModel()
        self.metrics = metrics or MetricsCollector()
        self.medium = MediumState()
        self.vectorized = vectorized
        self._prune_every = 256
        self._sends_since_prune = 0
        # With carrier sensing and collision detection both off, nothing
        # ever reads the medium bookkeeping — skip it on the hot path.
        self._medium_observed = config.csma or config.collisions
        #: the network's struct-of-arrays core, when it has one
        self._store = getattr(network, "store", None)
        # Batched same-timestamp delivery draining requires columnar
        # state and an unobserved medium (CSMA deferrals and collision
        # records are inherently per-reception); worlds that fail either
        # condition fall back to per-event delivery — the per-world
        # scalar fallback.  LinkDegrade fault windows only swap
        # loss_rate/burst, so the gate is stable for a channel's lifetime.
        self._batched = vectorized and self._store is not None and not self._medium_observed
        # Pending broadcast deliveries as one flat sorted buffer of
        # ``(time, seq, node, rx_joules, packet, kind)`` entries with a
        # consume cursor.  New fan-out runs bisect-insert into the
        # unconsumed tail; consumed entries stay in place (compacted
        # periodically), so nothing already merged is ever re-sorted or
        # re-sliced.  One engine event — the "pump" — is parked at the
        # earliest pending key and drains entries in global key order,
        # so concurrent frames whose delivery windows interleave still
        # process with zero per-delivery heap traffic.
        self._buf: list[tuple] = []
        self._pos = 0
        self._pump_event = None
        # Sharded execution (repro.shard): when configured, fan-outs
        # deliver only to owned receivers; receptions bound for other
        # shards are exported as timestamped messages instead.
        self._shard_owned: Optional[np.ndarray] = None
        self._shard_interior: Optional[np.ndarray] = None
        self._shard_out: list[tuple] = []
        # Gilbert–Elliott chain state per directed link: True = bad
        # (inside a burst).  Links start in the model's ``start_bad``
        # state on first use; state survives config swaps so a
        # link-degrade window resuming the same model continues its
        # bursts instead of resetting every chain.
        self._link_bad: dict[tuple[int, int], bool] = {}

    def _jitter(self, node: int) -> float:
        """One uniform backoff draw from ``node``'s own stream, or exactly
        zero without burning a draw when the window is zero
        (``RadioConfig.ideal()``).

        Keying the draw by the acting node (the frame's sender) makes the
        jitter sequence a pure function of ``(seed, node)`` — the
        partitioned-stream property sharded execution relies on.
        """
        window = self.config.backoff_window
        if window <= 0.0:
            return 0.0
        return self.sim.node_rng(node).uniform(0.0, window)

    def _burst_losses(self, sender: int, receivers) -> list[bool]:
        """Advance the per-link burst chains one step and draw losses.

        ``receivers`` are the intended receivers in neighbor order.  The
        draws are taken as one ``(k, 2)`` batch — transition then loss
        per receiver — from the *sender's* per-node stream: every link
        chain ``(sender, *)`` is advanced only by the sender's own
        fan-outs, so both the chain state and the draw sequence live
        entirely on whichever process owns the sender.  The batch
        consumes the stream in exactly the order a scalar
        two-draws-per-receiver loop would, so the fan-out paths share
        this helper and stay bit-identical.
        """
        ge = self.config.burst
        k = len(receivers)
        if k == 0:
            return []
        draws = self.sim.node_rng(sender).random((k, 2))
        states = self._link_bad
        lost: list[bool] = []
        for i, nb in enumerate(receivers):
            key = (sender, int(nb))
            bad = states.get(key, ge.start_bad)
            bad = (draws[i, 0] < ge.p_gb) if not bad else not (draws[i, 0] < ge.p_bg)
            states[key] = bad
            lost.append(bool(draws[i, 1] < (ge.loss_bad if bad else ge.loss_good)))
        return lost

    # ------------------------------------------------------------------
    # sharded execution (spatial domain decomposition, repro.shard)
    # ------------------------------------------------------------------
    def configure_sharding(
        self, owned: np.ndarray, interior: Optional[np.ndarray] = None
    ) -> None:
        """Restrict local delivery to ``owned`` nodes, exporting the rest.

        ``owned`` is a boolean mask over node ids: fan-outs deliver to
        owned receivers through the normal paths, while receptions bound
        for non-owned nodes are appended to the export buffer as exact
        ``(arrive_time, receiver, sender, packet, attempt)`` tuples —
        the event times the single-process schedule would have used,
        computed with the same float expressions.  Fan-out membership is
        position-only (:meth:`Network.neighbors` ignores liveness — dead
        receivers drop at delivery time), so exports never depend on the
        halo mirror's alive staleness; the owning shard's delivery path
        applies the authoritative alive check.  ``interior``
        optionally marks owned senders whose whole neighborhood is owned
        (one ``cells_in_band`` query per shard); their fan-outs skip the
        ownership mask entirely.

        Loss draws, burst chains, backoff and ARQ jitter all shard
        cleanly because they come from the acting sender's per-node
        stream (:meth:`Simulator.node_rng`) and are drawn before the
        ownership split — the sender's owner makes exactly the draws a
        single-process run would.  Only a *observed medium* (CSMA
        carrier sensing, receiver-side collisions) cannot shard: the
        medium is global state no conservative protocol can reproduce
        locally.
        """
        if self._medium_observed:
            raise ConfigurationError(
                "sharded execution requires csma=False and collisions=False "
                "(the medium is global state)"
            )
        self._shard_owned = np.asarray(owned, dtype=bool)
        self._shard_interior = (
            None if interior is None else np.asarray(interior, dtype=bool)
        )

    def owns(self, node: int) -> bool:
        """Whether this process simulates ``node`` authoritatively.

        Always ``True`` unsharded.  Protocol-layer actions that every
        replicated world would otherwise perform (MLR's round-boundary
        NOTIFY floods) gate on this so exactly one worker puts the frame
        on the air.
        """
        return self._shard_owned is None or bool(self._shard_owned[node])

    def take_shard_exports(self) -> list[tuple]:
        """Drain and return receptions exported since the last call."""
        out = self._shard_out
        self._shard_out = []
        return out

    def deliver_remote(
        self, arrive: float, receiver: int, sender: int, packet: Packet, attempt: int = 0
    ) -> None:
        """Inject a reception exported by another shard.

        Scheduled at the exact absolute ``arrive`` time the exporting
        shard computed, through :meth:`_deliver_direct` — the same
        terminal path an ideal-radio reception takes locally, so energy
        charges, death handling and metrics are bit-identical.
        """
        self.sim.schedule_at(arrive, self._deliver_direct, receiver, packet, sender, attempt)

    def _shard_split(
        self, sender: int, packet: Packet, attempt: int,
        neighbors: np.ndarray, start: float, end: float,
    ) -> Optional[tuple[np.ndarray, bool]]:
        """Partition a fan-out into locally-delivered and exported parts.

        Draw-then-split: when the radio is lossy, the sender's per-node
        stream is consumed for the *full* intended receiver set in
        neighbor order — exactly the draws the single-process fan-out
        makes — and only the survivors are then partitioned by
        ownership.  Returns ``(owned_neighbors, resolved)`` where
        ``resolved`` tells the local fan-out that loss draws were
        already taken, or ``None`` when nothing local remains to do (a
        unicast whose destination was exported or lost on the way
        there).  Export times replicate the delivery schedule's float
        expression ``((end + prop) - now) + now`` elementwise.
        """
        owned = self._shard_owned
        mask = owned[neighbors]
        cfg = self.config
        if packet.dst is not None:
            dst = packet.dst
            if not owned[dst] and bool((neighbors == dst).any()):
                # Remote destination: make its loss draw here — the
                # exact ``random(k)`` batch the local vectorized fan-out
                # would have taken — then either ship the reception or
                # count the loss and arm the sender-side ARQ retry.
                k = int((neighbors == dst).sum())
                lost = False
                if cfg.burst is not None:
                    lost = any(self._burst_losses(sender, [int(dst)] * k))
                elif cfg.loss_rate > 0.0:
                    draws = self.sim.node_rng(sender).random(k)
                    lost = bool((draws < cfg.loss_rate).any())
                prop = self.network.distance(sender, dst) / _SPEED_OF_LIGHT
                arrive = end + prop
                if lost:
                    self.metrics.on_drop("loss")
                    self.sim.schedule(
                        arrive - start, self._maybe_retry, sender, packet, attempt
                    )
                    return None
                self._shard_out.append(
                    ((arrive - start) + start, int(dst), sender, packet, attempt)
                )
                return None
            # Owned (or absent) destination: the local fan-out makes the
            # destination's loss draw itself, from the sender's stream —
            # non-intended neighbors observe nothing under an unobserved
            # medium, so dropping them changes no draw.
            return neighbors[mask], False
        if mask.all() and cfg.loss_rate <= 0.0 and cfg.burst is None:
            return neighbors, False
        # Broadcast: draw losses for the full neighbor set first (the
        # single-process draw), then split the survivors.
        lost_arr = None
        if cfg.burst is not None:
            lost_arr = np.asarray(
                self._burst_losses(sender, neighbors.tolist()), dtype=bool
            )
        elif cfg.loss_rate > 0.0:
            lost_arr = self.sim.node_rng(sender).random(len(neighbors)) < cfg.loss_rate
        if lost_arr is not None and lost_arr.any():
            for _ in range(int(lost_arr.sum())):
                self.metrics.on_drop("loss")
            keep = ~lost_arr
            survivors = neighbors[keep]
            smask = mask[keep]
        else:
            survivors = neighbors
            smask = mask
        remote = survivors[~smask]
        if len(remote):
            props = self.network.distances_from(sender, remote) / _SPEED_OF_LIGHT
            times = ((end + props) - start) + start
            out = self._shard_out
            for arrive, nb in zip(times.tolist(), remote.tolist()):
                out.append((arrive, nb, sender, packet, attempt))
        return survivors[smask], lost_arr is not None

    # ------------------------------------------------------------------
    def send(self, sender: int, packet: Packet) -> bool:
        """Queue a frame for transmission by ``sender``.

        Returns ``False`` (and records a drop) if the sender is dead.  The
        frame's link source is stamped to ``sender``; ``packet.dst`` decides
        unicast (one intended receiver) vs broadcast (all neighbors).
        """
        node = self.network.nodes[sender]
        if not node.alive:
            # A dead sender holds the only copy of whatever it carries —
            # terminal for any datum aboard.
            self.metrics.on_terminal_drop("dead_node", packet, node=sender, now=self.sim.now)
            return False
        packet.src = sender

        if self._medium_observed:
            self._sends_since_prune += 1
            if self._sends_since_prune >= self._prune_every:
                self.medium.prune(self.sim.now)
                self._sends_since_prune = 0

        jitter = self._jitter(sender) if self.config.csma else 0.0
        self.sim.schedule(jitter, self._begin_tx, sender, packet)
        return True

    # ------------------------------------------------------------------
    def _begin_tx(self, sender: int, packet: Packet, attempt: int = 0) -> None:
        node = self.network.nodes[sender]
        if not node.alive:
            # Sender died between queuing and transmit — the frame (and
            # any datum it carries) dies with it.
            self.metrics.on_terminal_drop("dead_node", packet, node=sender, now=self.sim.now)
            return
        if self.config.csma:
            # Carrier sensing happens at transmit time: defer while any
            # frame this node can hear (or its own) is on the air, then
            # back off by a random slice of the contention window.
            hearers = set(int(x) for x in self.network.neighbors(sender))
            free = self.medium.earliest_free(hearers, sender, self.sim.now)
            if free > self.sim.now:
                backoff = self._jitter(sender)
                if self._store is not None:
                    # Columnar observability: when this node's current
                    # hold-off expires (absolute time).
                    self._store.backoff[sender] = free + backoff
                self.sim.schedule(
                    free - self.sim.now + backoff, self._begin_tx, sender, packet, attempt
                )
                return

        bits = packet.size_bits()
        airtime = self.config.airtime(bits)
        start = self.sim.now
        end = start + airtime
        if self._medium_observed:
            self.medium.register_tx(sender, start, end)

        # The paper's identical-power assumption: every frame is amplified
        # to cover the full communication range (Section 5.2).
        tx_joules = self.energy_model.tx_cost(bits, self.config.comm_range)
        was_alive = node.energy.alive
        node.energy.charge_tx(tx_joules, start)
        if was_alive and not node.energy.alive:
            self.metrics.on_node_death(sender, start)
        self.metrics.on_send(packet)

        neighbors = self.network.neighbors(sender)
        resolved = False
        if self._shard_owned is not None and (
            self._shard_interior is None or not self._shard_interior[sender]
        ):
            split = self._shard_split(sender, packet, attempt, neighbors, start, end)
            if split is None:
                return
            neighbors, resolved = split
        if self._batched and packet.dst is None:
            self._fanout_batched(sender, packet, neighbors, start, end, resolved)
        elif self.vectorized:
            self._fanout_vectorized(sender, packet, attempt, neighbors, start, end, resolved)
        else:
            self._fanout_scalar(sender, packet, attempt, neighbors, start, end, resolved)

    def _fanout_scalar(
        self, sender: int, packet: Packet, attempt: int,
        neighbors: np.ndarray, start: float, end: float,
        resolved: bool = False,
    ) -> None:
        """The pre-refactor per-neighbor Python loop (reference path).

        ``resolved`` means a sharded split already made the loss draws
        for this frame (and dropped the casualties), so ``neighbors``
        are all survivors.
        """
        rng = None
        found_dst = packet.dst is None
        burst_lost = None
        if not resolved and self.config.burst is not None:
            # Pre-draw the burst chain for the intended receivers (in
            # neighbor order — the exact sequence this loop visits them);
            # nothing else consumes the sender's stream inside the loop,
            # so it is identical to interleaved per-receiver draws.
            intended_ids = [
                int(nb) for nb in neighbors if packet.dst is None or packet.dst == nb
            ]
            burst_lost = iter(self._burst_losses(sender, intended_ids))
        elif not resolved and self.config.loss_rate > 0.0:
            rng = self.sim.node_rng(sender)
        for nb in neighbors:
            intended = packet.dst is None or packet.dst == nb
            if intended:
                found_dst = True
            prop = self.network.distance(sender, nb) / _SPEED_OF_LIGHT
            arrive = end + prop
            if burst_lost is not None:
                lost = intended and next(burst_lost)
            else:
                lost = (
                    intended
                    and rng is not None
                    and rng.random() < self.config.loss_rate
                )
            if lost:
                self.metrics.on_drop("loss")
                if self._medium_observed:
                    # The frame is lost to the receiver, not to physics:
                    # its energy still occupies the medium and collides
                    # with overlapping receptions (non-deliverable entry).
                    self.medium.register_reception(
                        nb, start + prop, arrive, packet, sender, False, self.config.collisions
                    )
                if packet.dst is not None:
                    self.sim.schedule(
                        arrive - self.sim.now, self._maybe_retry, sender, packet, attempt
                    )
                continue
            rec = self.medium.register_reception(
                nb, start + prop, arrive, packet, sender, intended, self.config.collisions
            )
            if intended:
                self.sim.schedule(arrive - self.sim.now, self._deliver, nb, rec, sender, attempt)

        if not found_dst:
            # Link-layer unicast to a node that moved/died out of range —
            # the flag replaces an O(n) NumPy membership scan per frame
            # and keeps drop accounting identical to the vectorized path.
            # No reception exists, so ARQ never fires: terminal.
            self.metrics.on_terminal_drop("no_link", packet, node=sender, now=self.sim.now)

    def _fanout_vectorized(
        self, sender: int, packet: Packet, attempt: int,
        neighbors: np.ndarray, start: float, end: float,
        resolved: bool = False,
    ) -> None:
        """Batched fan-out: one NumPy pass for distance/propagation/loss.

        Draw-order stable with :meth:`_fanout_scalar`: loss draws are taken
        as one batch in neighbor order, exactly the sequence the scalar
        loop consumes, so both paths produce identical RNG streams and
        identical schedules.  ``resolved`` means a sharded split already
        made this frame's draws and ``neighbors`` are all survivors.
        """
        dst = packet.dst
        n = len(neighbors)
        if n == 0:
            if dst is not None:
                self.metrics.on_terminal_drop("no_link", packet, node=sender, now=self.sim.now)
            return
        props = self.network.distances_from(sender, neighbors) / _SPEED_OF_LIGHT
        arrive_l = (end + props).tolist()
        nb_l = neighbors.tolist()

        loss_rate = self.config.loss_rate
        lost_l = None
        if resolved:
            pass
        elif self.config.burst is not None:
            if dst is None:
                lost_l = self._burst_losses(sender, nb_l)
            else:
                intended_ids = [nb for nb in nb_l if nb == dst]
                if intended_ids:
                    flags = iter(self._burst_losses(sender, intended_ids))
                    lost_l = [nb == dst and next(flags) for nb in nb_l]
        elif loss_rate > 0.0:
            if dst is None:
                lost_l = (self.sim.node_rng(sender).random(n) < loss_rate).tolist()
            else:
                intended_mask = neighbors == dst
                k = int(intended_mask.sum())
                if k:
                    lost = np.zeros(n, dtype=bool)
                    lost[intended_mask] = self.sim.node_rng(sender).random(k) < loss_rate
                    lost_l = lost.tolist()

        detect = self.config.collisions
        interference = self._medium_observed
        deliver = self._deliver if interference else None
        register = self.medium.register_reception
        schedule = self.sim.schedule
        now = self.sim.now
        start_l = (start + props).tolist() if interference else None
        found_dst = dst is None
        for idx in range(n):
            nb = nb_l[idx]
            intended = dst is None or nb == dst
            if not intended:
                if interference:
                    register(nb, start_l[idx], arrive_l[idx], packet, sender, False, detect)
                continue
            found_dst = True
            arrive = arrive_l[idx]
            if lost_l is not None and lost_l[idx]:
                self.metrics.on_drop("loss")
                if interference:
                    # Mirror of the scalar path: a lost frame still lands
                    # as non-deliverable interference at the receiver.
                    register(nb, start_l[idx], arrive, packet, sender, False, detect)
                if dst is not None:
                    schedule(arrive - now, self._maybe_retry, sender, packet, attempt)
                continue
            if interference:
                rec = register(nb, start_l[idx], arrive, packet, sender, True, detect)
                schedule(arrive - now, deliver, nb, rec, sender, attempt)
            else:
                # Ideal radio: no carrier sensing, no collisions — the
                # reception record would never be read, deliver directly.
                schedule(arrive - now, self._deliver_direct, nb, packet, sender, attempt)

        if not found_dst:
            # Link-layer unicast to a node that moved/died out of range.
            self.metrics.on_terminal_drop("no_link", packet, node=sender, now=self.sim.now)

    # ------------------------------------------------------------------
    # batched draining (struct-of-arrays hot path)
    # ------------------------------------------------------------------
    def _fanout_batched(
        self, sender: int, packet: Packet,
        neighbors: np.ndarray, start: float, end: float,
        resolved: bool = False,
    ) -> None:
        """Broadcast fan-out as one sorted delivery run.

        Instead of one heap event per surviving receiver, all deliveries
        of the frame become a single queued run whose entries carry the
        exact ``(time, seq)`` keys per-event scheduling would have
        produced: sequence numbers are reserved in neighbor order (the
        order :meth:`_fanout_vectorized` consumes them), event times are
        computed with the same float expression ``schedule`` uses, and
        entries are stably sorted by time.  RNG draws are taken in the
        identical order and shapes, so the run is a pure re-packaging
        of the reference schedule.
        """
        n = len(neighbors)
        if n == 0:
            return
        props = self.network.distances_from(sender, neighbors) / _SPEED_OF_LIGHT
        now = self.sim.now
        # Exactly Event.time as schedule(arrive - now) computes it:
        # now + ((end + prop) - now), elementwise.
        ev_times = ((end + props) - now) + now

        lost = None
        loss_rate = self.config.loss_rate
        if resolved:
            pass  # a sharded split already drew; neighbors are survivors
        elif self.config.burst is not None:
            lost = np.asarray(self._burst_losses(sender, neighbors.tolist()), dtype=bool)
        elif loss_rate > 0.0:
            lost = self.sim.node_rng(sender).random(n) < loss_rate

        if lost is not None and lost.any():
            for _ in range(int(lost.sum())):
                self.metrics.on_drop("loss")
            keep = ~lost
            kept_ids = neighbors[keep]
            kept_times = ev_times[keep]
        else:
            kept_ids = neighbors
            kept_times = ev_times
        k = len(kept_ids)
        if k == 0:
            return
        # One seq per scheduled delivery, reserved in neighbor order —
        # the reference path's allocation — then stably sorted by time,
        # which yields exact (time, seq) heap order.
        base = self.sim.alloc_seqs(k)
        order = np.argsort(kept_times, kind="stable")
        rx_j = self.energy_model.rx_cost(packet.size_bits())
        entries = list(
            zip(
                kept_times[order].tolist(),
                (base + order).tolist(),
                kept_ids[order].tolist(),
                itertools.repeat(rx_j),
                itertools.repeat(packet),
                itertools.repeat(packet.kind),
            )
        )
        self._enqueue_run(entries)

    def _enqueue_run(self, entries: list) -> None:
        """Merge a sorted delivery run, re-arming the pump if now earliest.

        When the buffer is drained the run simply becomes the new buffer;
        otherwise each entry bisect-inserts into the unconsumed tail
        (entries within a run are increasing, so each search starts where
        the previous insert landed).  New deliveries are always in the
        strict future, so the consumed prefix is never disturbed.

        The pump's engine event always sits at the earliest pending
        delivery's *original* ``(time, seq)`` key, so its ordering
        against every other event equals that delivery's.  Fan-outs only
        ever run from engine-event context (``send`` schedules
        ``_begin_tx``; handlers never transmit synchronously), so this
        never executes while :meth:`_pump` is mid-drain.
        """
        buf = self._buf
        if self._pos >= len(buf):
            self._buf = buf = entries
            self._pos = 0
        else:
            lo = self._pos
            insert = buf.insert
            for e in entries:
                j = bisect(buf, e, lo)
                insert(j, e)
                lo = j + 1
        head = buf[self._pos]
        t0 = head[0]
        s0 = head[1]
        ev = self._pump_event
        if ev is None:
            self._pump_event = self.sim.push_event_at(t0, s0, self._pump)
        elif t0 < ev.time or (t0 == ev.time and s0 < ev.seq):
            ev.cancel()
            self._pump_event = self.sim.push_event_at(t0, s0, self._pump)

    def _pump(self) -> None:
        """Drain pending broadcast deliveries in global ``(time, seq)`` order.

        Pending deliveries live in one flat key-sorted buffer (new runs
        are merged at enqueue time), so the drain is a single tight loop
        advancing a cursor.  Three ordering guards keep this a pure
        re-packaging of per-event delivery:

        * every entry executes at exactly the ``(time, seq)`` key its own
          heap event would have had — an entry never runs past a key that
          precedes it, whether that key belongs to another frame's
          delivery or to any other scheduled event;
        * after a handler that scheduled new work the engine bound is
          re-derived, since the new event may have to interleave;
        * energy charges, deaths and drops happen per entry in that exact
          order (one scalar store op each), so float accumulation order
          matches the reference path bitwise.

        Only the ``received`` counters are coalesced (they are pure
        increments — addition order cannot be observed): consecutive
        entries of one packet kind accumulate locally and flush on kind
        change and at exit, so metrics are complete whenever the engine
        regains control.  When entries remain past the engine bound or
        the ``run(until=...)`` horizon, the pump re-parks at the next
        entry's original key — the buffer itself stays in place.

        The loop reads ``sim._now``/``sim._seq`` directly rather than
        through :meth:`Simulator.advance_clock` /
        :attr:`Simulator.seq_marker` — entry keys are globally
        nondecreasing by construction, and at ~100k entries per simulated
        flood the property/method dispatch is measurable.
        """
        sim = self.sim
        store = self._store
        metrics = self.metrics
        self._pump_event = None
        entries = self._buf

        alive_l = store.alive_list
        handlers = store.handlers
        spent_rx = store.spent_rx
        rx_count = store.rx_count
        fast_l = store.fast_list
        peek = sim.peek_key
        q = sim._queue
        horizon = sim.horizon
        if horizon is None:
            horizon = math.inf
        inf_key = (math.inf, 0)
        maxseq = sim.seq_marker + (1 << 32)  # beyond any live seq
        # Exclusive horizons (conservative shard windows) must park even
        # the entries *at* the bound: their horizon key sorts before any
        # live seq, so the lexicographic min below excludes them.
        hseq = -1 if sim.horizon_exclusive else maxseq
        received = metrics.received
        on_drop = metrics.on_drop

        # Run bound: min(engine top, horizon key).  An inclusive horizon
        # wins only when strictly earlier — a live event at the horizon
        # still precedes parked entries with the same time and a later
        # seq; an exclusive horizon wins ties too.
        top = peek() or inf_key
        if horizon < top[0] or (horizon == top[0] and hseq < top[1]):
            bt = horizon
            bs = hseq
        else:
            bt = top[0]
            bs = top[1]

        n = len(entries)
        i = i0 = self._pos
        got = 0
        cur_kind = None
        seq_mark = sim._seq
        while i < n:
            t, s, nb, rx_j, packet, kind = entries[i]
            if t > bt or (t == bt and s > bs):
                break
            sim._now = t  # nondecreasing: entries run in global key order
            i += 1
            if fast_l[nb]:
                # Mains powered and alive: remaining stays inf (inf - j
                # is inf bitwise, as the reference path computes it) and
                # no death is possible — the charge is two adds.
                spent_rx[nb] += rx_j
                rx_count[nb] += 1
                if kind is cur_kind:
                    got += 1
                else:
                    if got:
                        received[cur_kind] += got
                    cur_kind = kind
                    got = 1
                handler = handlers[nb]
                if handler is not None:
                    handler(packet)
                    if sim._seq != seq_mark:
                        # The handler scheduled something; it may have
                        # to fire before our next entry — re-derive the
                        # engine part of the bound.  A seq bump means at
                        # least one push, so the queue is non-empty;
                        # only a cancelled top forces the full lazy peek.
                        seq_mark = sim._seq
                        tk = q[0]
                        top = tk if not tk[2].cancelled else (peek() or inf_key)
                        if horizon < top[0] or (horizon == top[0] and hseq < top[1]):
                            bt = horizon
                            bs = hseq
                        else:
                            bt = top[0]
                            bs = top[1]
            elif alive_l[nb]:
                # Finite battery: full scalar charge with the death
                # bookkeeping of the reference path.
                store.charge_rx(nb, rx_j, t)
                if not store.energy_alive[nb]:
                    # Battery died mid-reception; the frame was never
                    # processed.
                    metrics.on_node_death(nb, t)
                    on_drop("dead_node")
                    continue
                if kind is cur_kind:
                    got += 1
                else:
                    if got:
                        received[cur_kind] += got
                    cur_kind = kind
                    got = 1
                handler = handlers[nb]
                if handler is not None:
                    handler(packet)
                    if sim._seq != seq_mark:
                        seq_mark = sim._seq
                        tk = q[0]
                        top = tk if not tk[2].cancelled else (peek() or inf_key)
                        if horizon < top[0] or (horizon == top[0] and hseq < top[1]):
                            bt = horizon
                            bs = hseq
                        else:
                            bt = top[0]
                            bs = top[1]
            else:
                # Broadcast copy to a dead receiver: frame-level loss
                # only, sibling copies may still deliver.
                on_drop("dead_node")

        if got:
            received[cur_kind] += got
        # The pump's own engine event already counted as one processed
        # event; only the surplus entries are tallied on top of it.
        sim.tally_batch_entries(i - i0 - 1)
        if i < n:
            if i > 8192:
                # Amortized compaction: drop the consumed prefix at most
                # once per 8k entries so the buffer stays bounded without
                # re-copying the unconsumed tail on every park.
                del entries[:i]
                i = 0
            self._pos = i
            head = entries[i]
            self._pump_event = sim.push_event_at(head[0], head[1], self._pump)
        else:
            entries.clear()
            self._pos = 0

    # ------------------------------------------------------------------
    def _maybe_retry(self, sender: int, packet: Packet, attempt: int) -> None:
        """ARQ: retransmit a failed unicast frame (802.15.4 macMaxFrameRetries)."""
        if attempt >= self.config.arq_retries:
            self.metrics.on_terminal_drop(
                "arq_exhausted", packet, node=sender, now=self.sim.now
            )
            return
        if not self.network.nodes[sender].alive:
            # The retransmitter died between the failed attempt and the
            # retry: the frame vanished silently before this fix.
            self.metrics.on_terminal_drop("dead_node", packet, node=sender, now=self.sim.now)
            return
        self.sim.schedule(self._jitter(sender), self._begin_tx, sender, packet, attempt + 1)

    # ------------------------------------------------------------------
    def _deliver(self, receiver: int, rec, sender: int, attempt: int) -> None:
        if self.config.collisions and rec.collided:
            self.metrics.on_drop("collision")
            if rec.packet.dst is not None:
                self._maybe_retry(sender, rec.packet, attempt)
            return
        self._deliver_direct(receiver, rec.packet, sender, attempt)

    def _deliver_direct(self, receiver: int, packet: Packet, sender: int, attempt: int) -> None:
        """Reception without medium bookkeeping (collision-free radios)."""
        node = self.network.nodes[receiver]
        if not node.alive:
            # Unicast to a dead receiver gets no ACK and no retry event:
            # terminal for the frame's datum.  A broadcast copy is only a
            # frame-level loss — sibling copies may still deliver.
            if packet.dst is not None:
                self.metrics.on_terminal_drop(
                    "dead_node", packet, node=receiver, now=self.sim.now
                )
            else:
                self.metrics.on_drop("dead_node")
            return
        bits = packet.size_bits()
        was_alive = node.energy.alive
        node.energy.charge_rx(self.energy_model.rx_cost(bits), self.sim.now)
        if was_alive and not node.energy.alive:
            self.metrics.on_node_death(receiver, self.sim.now)
            # The receiver's battery died mid-reception — the frame was
            # never processed, and nothing else will account for it.
            if packet.dst is not None:
                self.metrics.on_terminal_drop(
                    "dead_node", packet, node=receiver, now=self.sim.now
                )
            else:
                self.metrics.on_drop("dead_node")
            return
        self.metrics.on_receive(packet)
        node.receive(packet)
