"""Struct-of-arrays node state: the columnar core behind the object API.

:class:`NodeStateStore` keeps every *hot* per-node scalar — battery
columns, liveness flags, tx/rx counters, protocol queue depths, the
best-route summary and CSMA backoff state — in contiguous NumPy arrays
(one array per column: the classic struct-of-arrays layout), while
:class:`NodeView` / :class:`EnergyView` re-present single rows through
exactly the surface of :class:`repro.sim.node.Node` and
:class:`repro.sim.energy.EnergyAccount`.  Protocols, fault injection and
analysis code keep talking to "node objects"; the radio hot path talks to
the columns directly (:meth:`NodeStateStore.charge`,
:meth:`NodeStateStore.alive_view`), which is what makes batched
same-timestamp delivery draining (see :meth:`repro.sim.radio.Channel`)
one vector operation instead of thousands of attribute chains.

Bit-identity contract
---------------------
The store is not an approximation of the object path — it *is* the object
path, re-laid-out.  Every scalar operation replicates the corresponding
``EnergyAccount`` / ``Node`` code word for word (same IEEE-754 double
arithmetic, same comparison and death-at-drain semantics, same
edge-detected liveness notification), so a world built over a store
produces bit-identical metrics rows, RNG streams and conservation ledgers
to one built over plain objects.  The equivalence suite
(``tests/test_soa_equivalence.py``) and the benchmark digest gate
(``benchmarks/bench_hotpath.py``) hold it to that.

View invalidation
-----------------
Views never cache row values — every property reads the column at access
time — so there is nothing to invalidate when the store mutates.  The
one derived column, ``alive``, is *maintained*: every mutation that can
flip liveness (battery death, ``failed``/``sleeping`` writes, an energy
reload) funnels through :meth:`NodeStateStore.refresh_alive`, which
edge-detects against the stored value and fires the per-node listener
exactly once per actual flip — the same contract as
``Node.bind_alive_listener``.  Arrays returned by :meth:`alive_view` /
:meth:`route_columns` are live read-only windows onto the columns: they
reflect later mutations and must never be written through.
"""

from __future__ import annotations

import hashlib
import math
from typing import Callable, Optional, Sequence, TYPE_CHECKING

import numpy as np

from repro.exceptions import ConfigurationError
from repro.sim.node import NodeKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.packet import Packet

__all__ = ["NodeStateStore", "EnergyView", "NodeView"]

#: Sentinel for "no route installed" in the ``next_hop`` column.
NO_ROUTE = -1


def _readonly(arr: np.ndarray) -> np.ndarray:
    view = arr.view()
    view.flags.writeable = False
    return view


class NodeStateStore:
    """Columnar per-node state for one network.

    Parameters
    ----------
    kinds:
        Node role per row (fixed at construction, like positions).
    capacities:
        Initial battery capacity per row in joules (``math.inf`` for
        mains-powered kinds).

    Columns (all length ``n``)
    --------------------------
    ``capacity, remaining, spent_tx, spent_rx, spent_idle`` : float64
        The :class:`~repro.sim.energy.EnergyAccount` fields.
    ``died_at`` : float64
        Battery-death time; ``nan`` while the battery lives (the
        object path's ``None``).
    ``energy_alive, failed, sleeping, alive, finite`` : bool
        Liveness flags; ``alive`` is the maintained conjunction
        ``energy_alive & ~failed & ~sleeping``; ``finite`` marks rows
        whose battery can actually be exhausted (the batched-charge
        fast path requires an all-infinite run — see
        :meth:`charge`).
    ``tx_count, rx_count`` : Python int lists
        Frames transmitted / received per node (per-node observability
        the object path never had; not part of the bit-identity set).
        These two columns are plain Python lists rather than arrays:
        they are bumped once per delivered frame on the pump hot path,
        integer increments are order-free, and a list index costs a
        fraction of a NumPy scalar access — :meth:`counter_columns`
        materializes int64 arrays on demand.
    ``queue_depth`` : int64
        Payloads waiting in the owning protocol's pending queue.
    ``next_hop, route_seq`` : int64
        Best-route summary maintained by the routing layer:
        ``next_hop`` is the current best entry's first hop
        (:data:`NO_ROUTE` when none) and ``route_seq`` counts route
        changes — the columns ROADMAP item 2's shard exchange will
        ship instead of pickled tables.
    ``backoff`` : float64
        Time until which the node's CSMA backoff holds it off the air.
    """

    __slots__ = (
        "n", "kinds", "capacity", "remaining", "spent_tx", "spent_rx",
        "spent_idle", "died_at", "energy_alive", "failed", "sleeping",
        "alive", "finite", "finite_count", "tx_count", "rx_count",
        "queue_depth", "next_hop", "route_seq", "backoff", "handlers",
        "alive_list", "finite_list", "fast_list", "_listeners",
        "_death_hooks", "_energy_views",
    )

    def __init__(self, kinds: Sequence[NodeKind], capacities: Sequence[float]) -> None:
        n = len(kinds)
        if len(capacities) != n:
            raise ConfigurationError("kinds and capacities must have equal length")
        cap = np.asarray(capacities, dtype=np.float64)
        if np.any(cap < 0):
            raise ConfigurationError("battery capacity must be non-negative")
        self.n = n
        self.kinds: list[NodeKind] = list(kinds)
        self.capacity = cap.copy()
        self.remaining = cap.copy()
        self.spent_tx = np.zeros(n, dtype=np.float64)
        self.spent_rx = np.zeros(n, dtype=np.float64)
        self.spent_idle = np.zeros(n, dtype=np.float64)
        self.died_at = np.full(n, np.nan, dtype=np.float64)
        self.energy_alive = np.ones(n, dtype=bool)
        self.failed = np.zeros(n, dtype=bool)
        self.sleeping = np.zeros(n, dtype=bool)
        self.alive = np.ones(n, dtype=bool)
        self.finite = np.isfinite(cap)
        self.finite_count = int(self.finite.sum())
        self.tx_count: list[int] = [0] * n
        self.rx_count: list[int] = [0] * n
        self.queue_depth = np.zeros(n, dtype=np.int64)
        self.next_hop = np.full(n, NO_ROUTE, dtype=np.int64)
        self.route_seq = np.zeros(n, dtype=np.int64)
        self.backoff = np.zeros(n, dtype=np.float64)
        self.handlers: list[Optional[Callable[["Packet"], None]]] = [None] * n
        # Python-list mirrors of ``alive`` and ``finite``: the delivery
        # pump checks liveness once per drained entry, and a list index
        # is ~3x cheaper than a NumPy scalar lookup at that call
        # frequency.  ``fast_list`` is the maintained conjunction
        # ``alive and not finite`` — the pump's one-lookup test for "no
        # death possible, charge is two adds".
        self.alive_list: list[bool] = [True] * n
        self.finite_list: list[bool] = [bool(f) for f in self.finite]
        self.fast_list: list[bool] = [not f for f in self.finite_list]
        self._listeners: list[Optional[Callable[[int, bool], None]]] = [None] * n
        self._death_hooks: list[Optional[Callable[[], None]]] = [None] * n
        self._energy_views: list[Optional[EnergyView]] = [None] * n

    # ------------------------------------------------------------------
    # public column windows
    # ------------------------------------------------------------------
    def alive_view(self) -> np.ndarray:
        """Live read-only window onto the maintained alive column."""
        return _readonly(self.alive)

    def route_columns(self) -> tuple[np.ndarray, np.ndarray]:
        """Read-only ``(next_hop, route_seq)`` windows (see class docs)."""
        return _readonly(self.next_hop), _readonly(self.route_seq)

    def energy_columns(self) -> tuple[np.ndarray, np.ndarray]:
        """Read-only ``(remaining, spent)`` windows; ``spent`` is computed."""
        spent = self.spent_tx + self.spent_rx + self.spent_idle
        spent.flags.writeable = False
        return _readonly(self.remaining), spent

    def counter_columns(self) -> tuple[np.ndarray, np.ndarray]:
        """``(tx_count, rx_count)`` materialized as int64 arrays."""
        return (
            np.asarray(self.tx_count, dtype=np.int64),
            np.asarray(self.rx_count, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    # snapshot validation (barrier checkpoints, repro.shard.checkpoint)
    # ------------------------------------------------------------------
    def checksum(self) -> str:
        """SHA-256 over every column's exact bytes.

        A checkpoint records this at snapshot time and re-derives it
        after restore: any corruption of the columnar state across the
        pickle round-trip (or a truncated checkpoint file that still
        unpickled) fails loudly instead of silently diverging the run.
        Float columns hash bit-for-bit — the same all-or-nothing
        standard the run digest holds metrics to.
        """
        h = hashlib.sha256()
        for arr in (
            self.capacity, self.remaining, self.spent_tx, self.spent_rx,
            self.spent_idle, self.died_at, self.energy_alive, self.failed,
            self.sleeping, self.alive, self.finite, self.queue_depth,
            self.next_hop, self.route_seq, self.backoff,
        ):
            h.update(np.ascontiguousarray(arr).tobytes())
        h.update(repr(self.tx_count).encode())
        h.update(repr(self.rx_count).encode())
        return h.hexdigest()

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def node_view(self, node_id: int) -> "NodeView":
        return NodeView(self, node_id)

    def energy_view(self, node_id: int) -> "EnergyView":
        view = self._energy_views[node_id]
        if view is None:
            view = EnergyView(self, node_id)
            self._energy_views[node_id] = view
        return view

    # ------------------------------------------------------------------
    # liveness maintenance
    # ------------------------------------------------------------------
    def refresh_alive(self, i: int) -> None:
        """Re-derive ``alive[i]``; edge-detect and notify the listener.

        Exactly mirrors ``Node._notify_alive``: the listener fires once
        per actual flip, and a battery dying on an already-failed node
        stays silent.
        """
        now_alive = bool(
            self.energy_alive[i] and not self.failed[i] and not self.sleeping[i]
        )
        if now_alive != self.alive_list[i]:
            self.alive[i] = now_alive
            self.alive_list[i] = now_alive
            self.fast_list[i] = now_alive and not self.finite_list[i]
            listener = self._listeners[i]
            if listener is not None:
                listener(i, now_alive)

    def bind_alive_listener(self, i: int, listener: Callable[[int, bool], None]) -> None:
        self._listeners[i] = listener

    def set_failed(self, i: int, value: bool) -> None:
        self.failed[i] = value
        self.refresh_alive(i)

    def set_sleeping(self, i: int, value: bool) -> None:
        self.sleeping[i] = value
        self.refresh_alive(i)

    def mirror_alive(
        self,
        ids: Sequence[int],
        alive: Sequence[bool],
        died: Optional[Sequence[float]] = None,
    ) -> None:
        """Apply authoritative liveness to halo-mirror rows (repro.shard).

        A sharded worker's rows for nodes owned by *other* shards are
        read-only replicas: no local event ever charges or kills them, so
        their liveness must be imported.  The update funnels through the
        ``failed`` flag and :meth:`refresh_alive` — the same
        edge-detected listener path local flips take — so the network's
        maintained alive mask and cached graphs stay consistent.

        ``died`` carries the owner's battery-death timestamps (``nan``
        for a non-death flip): the routing layer's delayed liveness
        belief (``DataPlaneForwarder._believed_alive``) reads
        ``died_at``, so the mirror must import it for the belief to
        flip at the same sim time on every worker.
        """
        for k, (i, up) in enumerate(zip(ids, alive)):
            self.failed[i] = not up
            if died is not None:
                self.died_at[i] = died[k]
            self.refresh_alive(i)

    def _kill_battery(self, i: int, now: float) -> None:
        """Battery exhaustion: matches ``EnergyAccount._drain``'s death arm."""
        self.remaining[i] = 0.0
        self.died_at[i] = now
        self.energy_alive[i] = False
        hook = self._death_hooks[i]
        if hook is not None:
            hook()
        self.refresh_alive(i)

    # ------------------------------------------------------------------
    # scalar energy ops (EnergyAccount replicas, see bit-identity contract)
    # ------------------------------------------------------------------
    def _drain(self, i: int, joules: float, now: float) -> bool:
        if not self.energy_alive[i]:
            return False
        r = float(self.remaining[i]) - joules
        self.remaining[i] = r
        if r <= 0 and self.finite[i]:
            self._kill_battery(i, now)
        return True

    def charge_tx(self, i: int, joules: float, now: float) -> bool:
        """Charge one transmission; returns False if the battery was dead."""
        ok = self._drain(i, joules, now)
        if ok:
            self.spent_tx[i] += joules
            self.tx_count[i] += 1
        return ok

    def charge_rx(self, i: int, joules: float, now: float) -> bool:
        """Charge one reception; returns False if the battery was dead."""
        ok = self._drain(i, joules, now)
        if ok:
            self.spent_rx[i] += joules
            self.rx_count[i] += 1
        return ok

    def charge_idle(self, i: int, joules: float, now: float) -> bool:
        """Charge idle listening; returns False if the battery was dead."""
        ok = self._drain(i, joules, now)
        if ok:
            self.spent_idle[i] += joules
        return ok

    # ------------------------------------------------------------------
    # batched energy ops (the drain hot path)
    # ------------------------------------------------------------------
    def charge(self, ids: np.ndarray, joules: float, kind: str = "rx") -> None:
        """Charge every node in ``ids`` with ``joules`` as one vector op.

        Only valid for a run of *distinct, alive, infinite-capacity*
        receivers (:meth:`batchable`): an infinite battery's
        ``remaining`` stays ``inf`` under any finite subtraction, no
        death can occur, and each ``spent_*`` cell receives exactly one
        addition, so there is no accumulation order to preserve — which
        is what makes the vector form bit-identical to per-entry scalar
        charges.
        """
        self.remaining[ids] -= joules
        if kind == "rx":
            self.spent_rx[ids] += joules
            counts = self.rx_count
        elif kind == "tx":
            self.spent_tx[ids] += joules
            counts = self.tx_count
        else:
            self.spent_idle[ids] += joules
            return
        for i in ids:
            counts[i] += 1

    def batchable(self, ids: np.ndarray) -> bool:
        """Whether :meth:`charge` is valid for this run of receivers:
        every row alive, none with a finite battery."""
        if self.finite_count and self.finite[ids].any():
            return False
        return bool(self.alive[ids].all())

    # ------------------------------------------------------------------
    # energy reload (Node.energy assignment parity)
    # ------------------------------------------------------------------
    def load_energy(self, i: int, account) -> None:
        """Copy an :class:`~repro.sim.energy.EnergyAccount`'s fields into
        row ``i`` (the object path's ``node.energy = account``)."""
        self.capacity[i] = account.capacity
        self.remaining[i] = account.remaining
        self.spent_tx[i] = account.spent_tx
        self.spent_rx[i] = account.spent_rx
        self.spent_idle[i] = account.spent_idle
        died = getattr(account, "died_at", None)
        self.died_at[i] = np.nan if died is None else died
        self.energy_alive[i] = died is None
        finite = math.isfinite(account.capacity)
        if finite != bool(self.finite[i]):
            self.finite[i] = finite
            self.finite_list[i] = finite
            self.finite_count += 1 if finite else -1
        self.refresh_alive(i)
        self.fast_list[i] = self.alive_list[i] and not finite

    # ------------------------------------------------------------------
    # routing / queue columns (maintained by the protocol layer)
    # ------------------------------------------------------------------
    def note_route(self, i: int, next_hop: Optional[int]) -> None:
        """Record the owner's current best next hop (None = routeless).

        Bumps ``route_seq`` only on actual change, so the column pair
        doubles as a cheap "did my route move?" signal.
        """
        hop = NO_ROUTE if next_hop is None else int(next_hop)
        if self.next_hop[i] != hop:
            self.next_hop[i] = hop
            self.route_seq[i] += 1

    def note_queued(self, i: int, delta: int = 1) -> None:
        """Adjust the pending-payload depth for node ``i``."""
        self.queue_depth[i] += delta

    def mirror_route(
        self, ids: Sequence[int], hops: Sequence[int], seqs: Sequence[int]
    ) -> None:
        """Apply authoritative route columns to halo-mirror rows (repro.shard).

        The counterpart of :meth:`mirror_alive` for the routing summary:
        a non-owned row's table never changes locally (protocol handlers
        run only on the owner), so its ``next_hop``/``route_seq`` pair is
        imported wholesale — including the owner's sequence number, which
        is why this bypasses :meth:`note_route`'s change-detection bump.
        Observability coherence only: the authoritative route state still
        travels in the protocol's own control frames.
        """
        for i, hop, seq in zip(ids, hops, seqs):
            self.next_hop[i] = hop
            self.route_seq[i] = seq


class EnergyView(object):
    """One store row presented as an :class:`~repro.sim.energy.EnergyAccount`.

    Supports every read and mutation the codebase performs on an account
    (fault injection drains batteries, LEACH cross-charges cluster heads,
    analysis sums ``spent``).  Scalars come back as Python floats, so
    downstream arithmetic is literally the same operations the object
    path performs.
    """

    __slots__ = ("_store", "_i")

    def __init__(self, store: NodeStateStore, i: int) -> None:
        object.__setattr__(self, "_store", store)
        object.__setattr__(self, "_i", i)

    # -- EnergyAccount fields ------------------------------------------
    @property
    def capacity(self) -> float:
        return float(self._store.capacity[self._i])

    @property
    def remaining(self) -> float:
        return float(self._store.remaining[self._i])

    @remaining.setter
    def remaining(self, value: float) -> None:
        self._store.remaining[self._i] = value

    @property
    def spent_tx(self) -> float:
        return float(self._store.spent_tx[self._i])

    @property
    def spent_rx(self) -> float:
        return float(self._store.spent_rx[self._i])

    @property
    def spent_idle(self) -> float:
        return float(self._store.spent_idle[self._i])

    @property
    def died_at(self) -> Optional[float]:
        v = self._store.died_at[self._i]
        return None if math.isnan(v) else float(v)

    @property
    def on_death(self) -> Optional[Callable[[], None]]:
        return self._store._death_hooks[self._i]

    @on_death.setter
    def on_death(self, hook: Optional[Callable[[], None]]) -> None:
        self._store._death_hooks[self._i] = hook

    # -- EnergyAccount API ---------------------------------------------
    @property
    def alive(self) -> bool:
        return bool(self._store.energy_alive[self._i])

    @property
    def spent(self) -> float:
        return self.spent_tx + self.spent_rx + self.spent_idle

    def charge_tx(self, joules: float, now: float) -> bool:
        return self._store.charge_tx(self._i, joules, now)

    def charge_rx(self, joules: float, now: float) -> bool:
        return self._store.charge_rx(self._i, joules, now)

    def charge_idle(self, joules: float, now: float) -> bool:
        return self._store.charge_idle(self._i, joules, now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EnergyView(node={self._i}, capacity={self.capacity!r}, "
            f"remaining={self.remaining!r}, spent={self.spent!r})"
        )


class NodeView(object):
    """One store row presented as a :class:`~repro.sim.node.Node`.

    ``node_id`` and ``kind`` are plain attributes (immutable per row);
    everything stateful routes through the store, including the
    edge-detected alive-listener contract the network's maintained masks
    rely on.
    """

    __slots__ = ("_store", "node_id", "kind")

    def __init__(self, store: NodeStateStore, node_id: int) -> None:
        object.__setattr__(self, "_store", store)
        object.__setattr__(self, "node_id", node_id)
        object.__setattr__(self, "kind", store.kinds[node_id])

    # -- stateful fields ------------------------------------------------
    @property
    def handler(self) -> Optional[Callable[["Packet"], None]]:
        return self._store.handlers[self.node_id]

    @handler.setter
    def handler(self, fn: Optional[Callable[["Packet"], None]]) -> None:
        self._store.handlers[self.node_id] = fn

    @property
    def failed(self) -> bool:
        return bool(self._store.failed[self.node_id])

    @failed.setter
    def failed(self, value: bool) -> None:
        self._store.set_failed(self.node_id, value)

    @property
    def sleeping(self) -> bool:
        return bool(self._store.sleeping[self.node_id])

    @sleeping.setter
    def sleeping(self, value: bool) -> None:
        self._store.set_sleeping(self.node_id, value)

    @property
    def energy(self) -> EnergyView:
        return self._store.energy_view(self.node_id)

    @energy.setter
    def energy(self, account) -> None:
        if not isinstance(account, EnergyView):
            self._store.load_energy(self.node_id, account)

    # -- Node API --------------------------------------------------------
    def bind_alive_listener(self, listener: Callable[[int, bool], None]) -> None:
        """Register ``listener(node_id, alive)``; same edge-detection
        contract as :meth:`repro.sim.node.Node.bind_alive_listener`."""
        self._store.bind_alive_listener(self.node_id, listener)

    @property
    def alive(self) -> bool:
        return self._store.alive_list[self.node_id]

    @property
    def died_at(self) -> Optional[float]:
        """Battery-death time, or None while the battery lives (the
        same contract as ``Node.died_at`` on the object path)."""
        v = self._store.died_at[self.node_id]
        return None if math.isnan(v) else float(v)

    def receive(self, packet: "Packet") -> None:
        """Hand a delivered packet to the registered protocol handler."""
        store = self._store
        i = self.node_id
        handler = store.handlers[i]
        if handler is not None and store.alive_list[i]:
            handler(packet)

    def fail(self) -> None:
        """Inject a hardware failure (robustness experiments, E9)."""
        self.failed = True

    def recover(self) -> bool:
        """Clear an injected failure; returns whether the node is alive
        afterwards (battery exhaustion is permanent, faults are not)."""
        self.failed = False
        return self.alive

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NodeView(node_id={self.node_id!r}, kind={self.kind!r}, "
            f"alive={self.alive!r})"
        )
