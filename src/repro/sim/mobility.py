"""Gateway mobility: feasible places and round schedules.

MLR's network model (Section 5.3) restricts gateway positions to a finite
set of *feasible places* ``P``; in each round exactly ``m`` of them host a
gateway, and between rounds some gateways move to different places.  A
:class:`GatewaySchedule` is the full plan — which gateway sits where in
which round — and is what the MLR protocol and the Table 1 reproduction
consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["FeasiblePlaces", "GatewaySchedule"]


@dataclass(frozen=True)
class FeasiblePlaces:
    """The labelled set ``P`` of positions where gateways may be deployed.

    The paper's Table 1 example uses five places labelled A-E with three
    gateways; :func:`repro.experiments.table1_mlr` builds exactly that.
    """

    labels: tuple[str, ...]
    coordinates: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.labels) != len(self.coordinates):
            raise ConfigurationError("labels and coordinates must have equal length")
        if len(set(self.labels)) != len(self.labels):
            raise ConfigurationError("place labels must be unique")
        # Label -> index lookup (frozen dataclass, hence object.__setattr__):
        # position() sits on MLR's per-round path, so O(1) beats the
        # linear labels.index scan once |P| grows beyond the toy examples.
        object.__setattr__(
            self, "_label_index", {label: k for k, label in enumerate(self.labels)}
        )

    @classmethod
    def from_mapping(cls, places: Mapping[str, tuple[float, float]]) -> "FeasiblePlaces":
        labels = tuple(places.keys())
        return cls(labels=labels, coordinates=tuple(tuple(map(float, places[lb])) for lb in labels))

    def __len__(self) -> int:
        return len(self.labels)

    def __contains__(self, label: str) -> bool:
        return label in self._label_index

    def position(self, label: str) -> tuple[float, float]:
        """Coordinates of place ``label``."""
        k = self._label_index.get(label)
        if k is None:
            raise ConfigurationError(f"unknown feasible place: {label!r}")
        return self.coordinates[k]


@dataclass
class GatewaySchedule:
    """Round-by-round assignment of gateways to feasible places.

    ``rounds[r]`` maps gateway node id to the place label it occupies in
    round ``r``.  Every round must deploy each gateway at a distinct place.
    """

    places: FeasiblePlaces
    rounds: list[dict[int, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        for r, assignment in enumerate(self.rounds):
            self._validate(assignment, r)

    def _validate(self, assignment: Mapping[int, str], r: int) -> None:
        labels = list(assignment.values())
        if len(set(labels)) != len(labels):
            raise ConfigurationError(f"round {r}: two gateways share one place")
        for label in labels:
            if label not in self.places:
                raise ConfigurationError(f"round {r}: unknown place {label!r}")

    # ------------------------------------------------------------------
    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    def assignment(self, r: int) -> dict[int, str]:
        """Gateway → place mapping for round ``r``."""
        return dict(self.rounds[r])

    def moved_gateways(self, r: int) -> dict[int, str]:
        """Gateways whose place differs from round ``r - 1`` (all in round 0).

        Per Section 5.3: only *moved* gateways notify the sensors, so this
        is exactly the set of NOTIFY broadcasts at the start of round ``r``.
        """
        current = self.rounds[r]
        if r == 0:
            return dict(current)
        previous = self.rounds[r - 1]
        return {g: p for g, p in current.items() if previous.get(g) != p}

    def places_covered_by(self, r: int) -> set[str]:
        """Labels that hosted a gateway in any round up to and including ``r``."""
        covered: set[str] = set()
        for assignment in self.rounds[: r + 1]:
            covered.update(assignment.values())
        return covered

    # ------------------------------------------------------------------
    @classmethod
    def rotating(
        cls,
        places: FeasiblePlaces,
        gateway_ids: Sequence[int],
        num_rounds: int,
        seed: int | None = 0,
        moves_per_round: int = 1,
    ) -> "GatewaySchedule":
        """Generate a schedule that eventually covers every feasible place.

        Round 0 deploys gateways on the first ``m`` places; each later round
        moves ``moves_per_round`` randomly chosen gateways to randomly
        chosen currently-unoccupied places, preferring places never yet
        covered (so MLR's accumulated tables converge to ``|P|`` entries as
        the paper describes).
        """
        m = len(gateway_ids)
        if m > len(places):
            raise ConfigurationError("more gateways than feasible places")
        if num_rounds <= 0:
            raise ConfigurationError("num_rounds must be positive")
        rng = np.random.default_rng(seed)
        gateway_ids = list(gateway_ids)

        current = {g: places.labels[i] for i, g in enumerate(gateway_ids)}
        rounds = [dict(current)]
        covered = set(current.values())
        for _ in range(1, num_rounds):
            occupied = set(current.values())
            free = [lb for lb in places.labels if lb not in occupied]
            movers = list(rng.choice(gateway_ids, size=min(moves_per_round, m), replace=False))
            for g in movers:
                if not free:
                    break
                uncovered = [lb for lb in free if lb not in covered]
                pool = uncovered if uncovered else free
                dest = str(rng.choice(pool))
                free.remove(dest)
                free.append(current[int(g)])
                current[int(g)] = dest
                covered.add(dest)
            rounds.append(dict(current))
        return cls(places=places, rounds=rounds)
