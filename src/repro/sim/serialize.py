"""One serialization path for every result dataclass.

The runner's on-disk cache, its JSONL traces, and the cross-process
transport of sweep results all need the same property: an experiment
result must survive ``to_jsonable -> json -> from_jsonable`` *exactly*,
so that a cached or worker-produced result compares equal to one
computed in-process.  Rather than hand-writing ``to_dict``/``from_dict``
on a dozen dataclasses, result types register themselves with the
:func:`serializable` decorator, which also injects ``to_dict()`` and
``from_dict()`` round-trip methods derived from the dataclass fields.

Encoding rules (chosen so the output is plain JSON):

* registered dataclasses  -> ``{"__dataclass__": name, "fields": {...}}``
* tuples                  -> ``{"__tuple__": [...]}`` (lists stay lists)
* dicts with non-string keys -> ``{"__dict__": [[k, v], ...]}``
* numpy scalars           -> native Python numbers
* everything JSON-native passes through unchanged
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

import numpy as np

__all__ = [
    "serializable",
    "registered_types",
    "to_jsonable",
    "from_jsonable",
    "dumps",
    "loads",
]

#: registry of dataclasses allowed to cross the serialization boundary
_REGISTRY: dict[str, type] = {}


def registered_types() -> dict[str, type]:
    """A copy of the name -> dataclass registry (for tests/tooling)."""
    return dict(_REGISTRY)


def serializable(cls):
    """Class decorator registering ``cls`` for dict/JSON round-trips.

    Injects ``to_dict()`` (field name -> jsonable value) and a
    ``from_dict()`` classmethod unless the class defines its own.  The
    two are exact inverses: ``cls.from_dict(obj.to_dict()) == obj``.
    """
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"@serializable requires a dataclass, got {cls!r}")
    name = cls.__name__
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate serializable name {name!r}")
    _REGISTRY[name] = cls

    if "to_dict" not in cls.__dict__:

        def to_dict(self) -> dict:
            return {
                f.name: to_jsonable(getattr(self, f.name))
                for f in dataclasses.fields(self)
            }

        cls.to_dict = to_dict

    if "from_dict" not in cls.__dict__:

        def from_dict(cls_, data: dict):
            kwargs = {
                f.name: from_jsonable(data[f.name])
                for f in dataclasses.fields(cls_)
                if f.name in data
            }
            return cls_(**kwargs)

        cls.from_dict = classmethod(from_dict)

    return cls


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-native structures."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        name = type(obj).__name__
        if name not in _REGISTRY:
            raise TypeError(
                f"{name} is not @serializable; register it in its module"
            )
        fields = {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__dataclass__": name, "fields": fields}
    if isinstance(obj, tuple):
        return {"__tuple__": [to_jsonable(v) for v in obj]}
    if isinstance(obj, list):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, dict):
        if all(isinstance(k, str) for k in obj):
            if "__dataclass__" in obj or "__tuple__" in obj or "__dict__" in obj:
                # A plain dict shadowing our tags would decode wrongly.
                return {"__dict__": [[k, to_jsonable(v)] for k, v in obj.items()]}
            return {k: to_jsonable(v) for k, v in obj.items()}
        return {"__dict__": [[to_jsonable(k), to_jsonable(v)] for k, v in obj.items()]}
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return {"__tuple__": [to_jsonable(v) for v in obj.tolist()]}
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot serialize {type(obj).__name__}: {obj!r}")


def from_jsonable(data: Any) -> Any:
    """Inverse of :func:`to_jsonable`."""
    if isinstance(data, dict):
        if "__dataclass__" in data:
            name = data["__dataclass__"]
            cls = _REGISTRY.get(name)
            if cls is None:
                raise TypeError(f"unknown serialized dataclass {name!r}")
            fields = {k: from_jsonable(v) for k, v in data["fields"].items()}
            known = {f.name for f in dataclasses.fields(cls)}
            return cls(**{k: v for k, v in fields.items() if k in known})
        if "__tuple__" in data:
            return tuple(from_jsonable(v) for v in data["__tuple__"])
        if "__dict__" in data:
            return {from_jsonable(k): from_jsonable(v) for k, v in data["__dict__"]}
        return {k: from_jsonable(v) for k, v in data.items()}
    if isinstance(data, list):
        return [from_jsonable(v) for v in data]
    return data


def dumps(obj: Any) -> str:
    """Canonical JSON text of ``obj`` (sorted keys, compact separators).

    Canonical form matters: the cache hashes this text, so two equal
    objects must produce byte-identical strings.
    """
    return json.dumps(to_jsonable(obj), sort_keys=True, separators=(",", ":"))


def loads(text: str) -> Any:
    """Parse canonical JSON text back into live objects."""
    return from_jsonable(json.loads(text))
