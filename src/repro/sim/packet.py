"""Packet model.

The paper's protocols exchange five kinds of packets (Sections 5 and 6):

``RREQ``
    Routing query, flooded by a source toward all *m* gateways (Step 2 of
    SPR; Section 6.2.1 of SecMLR).
``RRES``
    Routing response, returned along the discovered path (Step 3 of SPR;
    Section 6.2.2).
``DATA``
    Sensed data, source-routed on its first trip and table-forwarded
    afterwards (Step 5; Section 6.2.4).
``NOTIFY``
    Gateway place-change notification broadcast at the start of a round
    (Section 5.3 step 2; secured with μTESLA in Section 6.2.3).
``HELLO``
    Neighbor discovery beacon (also the vehicle of the HELLO-flood attack).

Sizes follow 802.15.4 framing: an 11-byte MAC header plus the payload the
protocol puts on the air.  Secured packets additionally carry the SNEP
envelope (8-byte counter + 16-byte truncated MAC), which is how the
security-overhead experiment (E7) measures SecMLR's cost in bytes.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Optional

__all__ = [
    "PacketKind",
    "SecurityEnvelope",
    "Packet",
    "MAC_HEADER_BYTES",
    "PATH_ENTRY_BYTES",
    "DATA_PAYLOAD_BYTES",
    "uid_state",
    "restore_uid_state",
]

#: Bytes of link-layer framing charged to every transmission (802.15.4-ish).
MAC_HEADER_BYTES = 11
#: Bytes charged per node id carried in a ``path`` field.
PATH_ENTRY_BYTES = 2
#: Default application payload for a DATA packet.
DATA_PAYLOAD_BYTES = 24

_uid_counter = itertools.count()


def uid_state() -> int:
    """The next packet ``uid`` this process would hand out.

    Reads the counter without consuming a value (``itertools.count``
    exposes its position through ``__reduce__``), so snapshotting the
    watermark is side-effect-free — a run checkpointed every window
    stays bit-identical to one never checkpointed.
    """
    return int(_uid_counter.__reduce__()[1][0])


def restore_uid_state(value: int) -> None:
    """Reset the process-global ``uid`` watermark (checkpoint restore).

    A resumed worker process replays uids exactly as the interrupted
    process would have issued them, so uids stay unique within the run
    and trace records match the uninterrupted execution.  Only call
    this in a process that is discarding all packets minted before the
    snapshot (a fresh worker, or a test replacing its world wholesale).
    """
    global _uid_counter
    _uid_counter = itertools.count(int(value))


class PacketKind(enum.Enum):
    """The packet types exchanged by the routing protocols."""

    RREQ = "rreq"
    RRES = "rres"
    DATA = "data"
    NOTIFY = "notify"
    HELLO = "hello"
    ACK = "ack"
    RERR = "rerr"


@dataclass(frozen=True)
class SecurityEnvelope:
    """SNEP-style security metadata attached by SecMLR (Section 6.2).

    Attributes
    ----------
    ciphertext:
        ``{M}<Kij,C>`` — the encrypted protocol message.
    mac:
        ``MAC(Kij, C | ciphertext)`` — message authentication code.
    counter:
        The incremental counter ``C`` providing freshness/anti-replay.
    claimed_sender:
        The sensor id the packet *claims* to originate from.  Verification
        checks the MAC under the key shared between this id and the
        gateway; a spoofing adversary can set the field but cannot forge
        the MAC.
    """

    ciphertext: bytes
    mac: bytes
    counter: int
    claimed_sender: int

    @property
    def overhead_bytes(self) -> int:
        """Extra bytes on the air relative to an unsecured packet."""
        # counter (8) + MAC (len). Ciphertext replaces the plaintext body
        # one-for-one with a stream cipher, so it adds nothing.
        return 8 + len(self.mac)


@dataclass
class Packet:
    """A single frame travelling through the simulated network.

    ``src``/``dst`` are the link-layer endpoints of the current hop
    (``dst is None`` means local broadcast); ``origin``/``target`` are the
    end-to-end endpoints.  ``path`` carries the accumulated route for RREQ
    and the source route for RRES/first DATA, exactly as in Figs. 4-6.
    """

    kind: PacketKind
    origin: int
    target: Optional[int]  # None = "any gateway" (multi-destination RREQ)
    src: int = -1
    dst: Optional[int] = None
    path: tuple[int, ...] = ()
    payload: dict[str, Any] = field(default_factory=dict)
    payload_bytes: int = 0
    security: Optional[SecurityEnvelope] = None
    uid: int = field(default_factory=lambda: next(_uid_counter))
    hop_count: int = 0
    ttl: int = 64
    created_at: float = 0.0
    # Memoised on-air size: the channel asks for it at least twice per
    # frame (TX charge at _begin_tx, RX charge per delivery).  init=False
    # keeps the cache out of dataclasses.replace, so fork()/with_hop()
    # copies start fresh and recompute for their own path/security.
    _size_bytes_cached: Optional[int] = field(
        default=None, init=False, repr=False, compare=False
    )

    #: Fields whose mutation changes the on-air size (SecMLR decorates
    #: packets in place, e.g. ``payload_bytes += ENVELOPE_BYTES``).
    _SIZE_FIELDS = frozenset({"payload_bytes", "path", "security"})

    def __setattr__(self, name: str, value: Any) -> None:
        object.__setattr__(self, name, value)
        if name in Packet._SIZE_FIELDS:
            object.__setattr__(self, "_size_bytes_cached", None)

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Total on-air size of this frame (computed once, then cached)."""
        size = self._size_bytes_cached
        if size is None:
            size = MAC_HEADER_BYTES + self.payload_bytes
            size += PATH_ENTRY_BYTES * len(self.path)
            if self.security is not None:
                size += self.security.overhead_bytes
            self._size_bytes_cached = size
        return size

    def size_bits(self) -> int:
        """Total on-air size in bits (what the energy model charges)."""
        return 8 * self.size_bytes()

    def fork(self, **changes: Any) -> "Packet":
        """Copy this packet for re-broadcast, assigning a fresh ``uid`` only
        when the caller does not supply one.

        Flood duplicate-suppression keys on ``(origin, flood_id)`` carried in
        ``payload``, not on ``uid``, so forwarded copies keep distinct uids
        for tracing while remaining one logical packet.  The size cache is
        invalidated on the copy (``_size_bytes_cached`` is ``init=False``,
        so ``replace`` re-initialises it to ``None``) — a fork that grows
        ``path`` or adds a security envelope recomputes its own size.
        """
        changes.setdefault("payload", dict(self.payload))
        changes.setdefault("uid", next(_uid_counter))
        return replace(self, **changes)

    def with_hop(self, src: int, dst: Optional[int]) -> "Packet":
        """Copy for the next hop ``src -> dst``, bumping the hop counter."""
        return self.fork(src=src, dst=dst, hop_count=self.hop_count + 1, ttl=self.ttl - 1)
