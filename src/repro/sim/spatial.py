"""Uniform-cell spatial index for O(n·k) neighbor maintenance.

The brute-force neighbor computation in :class:`repro.sim.network.Network`
builds the full ``n × n`` pairwise-distance matrix — fine for a static
field, quadratic waste when one gateway moves between rounds (MLR moves
gateways every round, Section 5.3).  :class:`CellGrid` buckets nodes into
square cells whose side equals the query radius, so the nodes within
``r`` of any point all sit in the 3 × 3 cell block around it.  That makes

* a full neighbor-table build O(n·k) (k = mean neighborhood size), and
* the update for a single moved node O(k): rebucket the node, re-scan its
  3 × 3 block, done.

This is the same virtual-grid decomposition GAF uses for coordinator
election (Section 4.4 cites it) — here applied to the simulation
substrate instead of the protocol.

Float semantics match the brute-force path bit-for-bit: candidate
distances are computed with the same subtract/multiply/sum element
operations on the same float64 positions, and rows are returned sorted
ascending exactly like ``np.nonzero`` on the dense mask, so the two index
implementations produce *identical* neighbor arrays (the equivalence
suite in ``tests/test_spatial_index.py`` holds them to that).
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["CellGrid"]

#: Offsets of the 3 × 3 cell block that covers every point within one
#: cell side of a cell's interior.
_BLOCK = [(-1, -1), (-1, 0), (-1, 1), (0, -1), (0, 0), (0, 1), (1, -1), (1, 0), (1, 1)]


class CellGrid:
    """Square-cell bucketing of 2-D points supporting incremental moves.

    Parameters
    ----------
    positions:
        ``(n, 2)`` float array.  The grid keeps a *reference*: callers
        (the :class:`~repro.sim.network.Network`) update rows in place and
        then call :meth:`move` so the bucketing follows.
    cell_size:
        Cell side in meters.  Must be at least the query radius used with
        :meth:`neighbors_within` — the 3 × 3 block scan is only exhaustive
        under that invariant, which :meth:`neighbors_within` asserts.
    """

    def __init__(self, positions: np.ndarray, cell_size: float) -> None:
        if cell_size <= 0 or not math.isfinite(cell_size):
            raise ConfigurationError("cell_size must be positive and finite")
        positions = np.asarray(positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ConfigurationError("positions must be an (n, 2) array")
        self.positions = positions
        self.cell_size = float(cell_size)
        self._cells: dict[tuple[int, int], list[int]] = {}
        keys = np.floor(positions / self.cell_size).astype(np.int64)
        self._cell_of: list[tuple[int, int]] = [tuple(k) for k in keys.tolist()]
        for i, key in enumerate(self._cell_of):
            self._cells.setdefault(key, []).append(i)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._cell_of)

    @property
    def num_occupied_cells(self) -> int:
        return len(self._cells)

    def cell_of(self, i: int) -> tuple[int, int]:
        """Current cell coordinates of node ``i``."""
        return self._cell_of[i]

    # ------------------------------------------------------------------
    def _block_members(self, cell: tuple[int, int]) -> np.ndarray:
        """Ids of every node in the 3 × 3 block centered on ``cell``."""
        cx, cy = cell
        cells = self._cells
        chunks = []
        for dx, dy in _BLOCK:
            members = cells.get((cx + dx, cy + dy))
            if members:
                chunks.append(members)
        if not chunks:
            return np.empty(0, dtype=np.intp)
        if len(chunks) == 1:
            return np.asarray(chunks[0], dtype=np.intp)
        return np.concatenate([np.asarray(c, dtype=np.intp) for c in chunks])

    def neighbors_within(self, i: int, radius: float) -> np.ndarray:
        """Ids within ``radius`` of node ``i`` (excluding ``i``), sorted.

        The closed ball ``d <= radius`` is used, matching the network
        model's "can immediately communicate" edge predicate.
        """
        if radius > self.cell_size:
            raise ConfigurationError(
                f"query radius {radius} exceeds cell size {self.cell_size}"
            )
        cand = self._block_members(self._cell_of[i])
        cand = cand[cand != i]
        if len(cand) == 0:
            return cand
        diff = self.positions[cand] - self.positions[i]
        d2 = np.einsum("ij,ij->i", diff, diff)
        out = cand[d2 <= radius * radius]
        out.sort()
        return out

    def neighbor_rows(self, radius: float) -> list[np.ndarray]:
        """Per-node neighbor arrays for the whole field, O(n·k).

        Batched per occupied cell: one vectorised distance pass from each
        cell's members to its 3 × 3 block, instead of the dense n × n
        matrix of the brute-force path.
        """
        if radius > self.cell_size:
            raise ConfigurationError(
                f"query radius {radius} exceeds cell size {self.cell_size}"
            )
        n = len(self._cell_of)
        rows: list[np.ndarray] = [np.empty(0, dtype=np.intp)] * n
        r2 = radius * radius
        pos = self.positions
        for cell, members in self._cells.items():
            cand = self._block_members(cell)
            mem = np.asarray(members, dtype=np.intp)
            diff = pos[mem, None, :] - pos[cand][None, :, :]
            d2 = np.einsum("ijk,ijk->ij", diff, diff)
            within = d2 <= r2
            for k, i in enumerate(members):
                row = cand[within[k]]
                row = row[row != i]
                row.sort()
                rows[i] = row
        return rows

    # ------------------------------------------------------------------
    def cells_in_band(
        self, region: tuple[float, float, float, float], width: float
    ) -> np.ndarray:
        """Node ids in the cells straddling ``region``'s boundary band.

        ``region`` is an axis-aligned rectangle ``(x0, y0, x1, y1)``; the
        *band* is the set of points within ``width`` of its boundary, on
        either side.  The query is cell-granular: a cell contributes all
        its members iff it intersects the region grown by ``width`` and
        is not strictly contained in the region shrunk by ``width``.
        That gives two guarantees the shard runner (and the hypothesis
        suite) relies on:

        * **superset** — every node whose distance to the boundary is at
          most ``width`` is returned;
        * **bounded slack** — every returned node is within
          ``√2·(width + cell_size)`` of the boundary: the rectangle
          tests are per-axis, so a grown-rectangle corner point can sit
          ``√2·width`` from the region, and a contributing cell can
          overhang by its own diagonal.

        Returned ids are sorted ascending.  Degenerate regions (shrunk
        rectangle empty) simply return everything inside the grown one.
        """
        x0, y0, x1, y1 = (float(v) for v in region)
        if not (x1 >= x0 and y1 >= y0):
            raise ConfigurationError(f"region must be a non-empty rectangle, got {region!r}")
        if width < 0 or not math.isfinite(width):
            raise ConfigurationError(f"band width must be non-negative and finite, got {width!r}")
        s = self.cell_size
        gx0, gy0, gx1, gy1 = x0 - width, y0 - width, x1 + width, y1 + width
        sx0, sy0, sx1, sy1 = x0 + width, y0 + width, x1 - width, y1 - width
        chunks: list[list[int]] = []
        for (cx, cy), members in self._cells.items():
            lo_x, lo_y = cx * s, cy * s
            hi_x, hi_y = lo_x + s, lo_y + s
            # Intersects the grown rectangle?
            if hi_x <= gx0 or lo_x >= gx1 or hi_y <= gy0 or lo_y >= gy1:
                continue
            # Strictly inside the shrunk rectangle (open containment, so
            # a node exactly ``width`` from the boundary is never lost)?
            if lo_x > sx0 and hi_x < sx1 and lo_y > sy0 and hi_y < sy1:
                continue
            chunks.append(members)
        if not chunks:
            return np.empty(0, dtype=np.intp)
        out = np.concatenate([np.asarray(c, dtype=np.intp) for c in chunks])
        out.sort()
        return out

    # ------------------------------------------------------------------
    def move(self, i: int) -> None:
        """Rebucket node ``i`` after its position row changed in place."""
        x, y = self.positions[i]
        new_key = (int(math.floor(x / self.cell_size)), int(math.floor(y / self.cell_size)))
        old_key = self._cell_of[i]
        if new_key == old_key:
            return
        old_members = self._cells[old_key]
        old_members.remove(i)
        if not old_members:
            del self._cells[old_key]
        self._cells.setdefault(new_key, []).append(i)
        self._cell_of[i] = new_key
