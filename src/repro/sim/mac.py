"""Medium-access control: CSMA-style deferral and receiver-side collisions.

The architecture runs two MACs (Section 3.2): 802.15.4 in the sensor tier
and 802.11 in the mesh tier.  Both are modelled with the same mechanics and
different parameters (bitrate, range, backoff window):

* **Carrier sensing / deferral** — a sender defers until every transmission
  it can hear has ended, then starts after a random backoff jitter drawn
  from ``[0, backoff_window)``.  A node never overlaps its own frames.
* **Receiver-side collisions** — two receptions whose airtimes overlap at
  the same receiver destroy each other (no capture effect).  Hidden
  terminals therefore still collide, which CSMA cannot prevent — exactly
  the loss mode that matters for flooding-heavy protocols.

Experiments that reproduce the paper's *worked examples* (E1, E2) disable
collisions to obtain the clean hop counts of Fig. 2 / Table 1; the
performance experiments leave them on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.packet import Packet

__all__ = ["Reception", "MediumState"]


@dataclass
class Reception:
    """A frame in flight toward one receiver (or interference at it)."""

    start: float
    end: float
    packet: Packet
    sender: int
    intended: bool
    collided: bool = False


@dataclass
class MediumState:
    """Per-channel bookkeeping for carrier sensing and collisions.

    ``active`` holds (sender, start, end) of every frame currently or
    recently on the air; ``inbound`` maps receiver id to its reception
    intervals.  Both are pruned lazily against the simulation clock.
    """

    active: list[tuple[int, float, float]] = field(default_factory=list)
    inbound: dict[int, list[Reception]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def prune(self, now: float) -> None:
        """Discard transmissions that ended before ``now``."""
        self.active = [t for t in self.active if t[2] > now]
        for rid in list(self.inbound):
            live = [r for r in self.inbound[rid] if r.end > now]
            if live:
                self.inbound[rid] = live
            else:
                del self.inbound[rid]

    def earliest_free(self, hearers: set[int], sender: int, now: float) -> float:
        """Earliest time ``sender`` may start transmitting.

        The sender defers for any active frame transmitted by itself or by
        a node it can hear (carrier sensing is receive-range symmetric in
        this model).
        """
        free = now
        for tx_sender, _start, end in self.active:
            if end <= now:
                continue
            if tx_sender == sender or tx_sender in hearers:
                free = max(free, end)
        return free

    def register_tx(self, sender: int, start: float, end: float) -> None:
        """Record a frame occupying the medium."""
        self.active.append((sender, start, end))

    def register_reception(
        self,
        receiver: int,
        start: float,
        end: float,
        packet: Packet,
        sender: int,
        intended: bool,
        detect_collisions: bool,
    ) -> Reception:
        """Record a frame (or interference) arriving at ``receiver``.

        When ``detect_collisions`` is set, any time-overlap with another
        inbound frame at the same receiver marks *both* frames collided.
        """
        rec = Reception(start=start, end=end, packet=packet, sender=sender, intended=intended)
        slots = self.inbound.setdefault(receiver, [])
        if detect_collisions:
            for other in slots:
                if other.start < end and start < other.end:
                    other.collided = True
                    rec.collided = True
        slots.append(rec)
        return rec
