"""QoS / load balancing across gateways (Section 4.3).

The paper's scenario: "When data transmission from partial monitoring
area is too heavy (e.g., a forest fire occurs) ... some gateways in that
area possibly become over loading. Routing protocols should provide the
capacity to automatically dispatch parts of traffic to other gateways
with low load", while other gateways sit in "starvation state".

:class:`LoadBalancedMLR` implements the mechanism on top of MLR:

* every gateway counts the data frames it absorbed in the current round;
* the per-round NOTIFY (and a lightweight load beacon from unmoved
  gateways) piggybacks that number, so sensors learn per-gateway load
  one round behind — the information pattern the paper sketches;
* route selection minimises ``hops + load_weight * normalised_load``
  instead of hops alone, so heavily loaded gateways shed *marginal*
  traffic (sources whose second-best place is almost as close) while
  nearby sources keep their short routes.

``load_weight = 0`` reduces exactly to MLR (the ablation handle).
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.core.base import ProtocolConfig
from repro.core.mlr import MLR
from repro.core.routing_table import RouteEntry
from repro.exceptions import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.mobility import GatewaySchedule
from repro.sim.network import Network
from repro.sim.packet import Packet, PacketKind
from repro.sim.radio import Channel

__all__ = ["LoadBalancedMLR"]


class LoadBalancedMLR(MLR):
    """MLR with gateway-load-aware route selection (Section 4.3).

    Parameters
    ----------
    load_weight:
        Hops-equivalent penalty of routing to the most loaded gateway.
        With weight ``w``, a source deviates to a longer route only when
        the detour costs fewer than ``w * (load difference as a fraction
        of the round's heaviest load)`` extra hops.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        channel: Channel,
        schedule: GatewaySchedule,
        config: Optional[ProtocolConfig] = None,
        load_weight: float = 2.0,
        bootstrap_known: bool = True,
    ) -> None:
        if load_weight < 0:
            raise ConfigurationError("load_weight must be non-negative")
        super().__init__(sim, network, channel, schedule, config, bootstrap_known)
        self.load_weight = load_weight
        #: frames absorbed by each gateway in the current round
        self.round_load: dict[int, int] = {g: 0 for g in network.gateway_ids}
        #: what sensors believe about last round's load, per node
        self.known_load: dict[int, dict[int, int]] = {
            n.node_id: {} for n in network.nodes
        }
        self._beacon_seq = itertools.count(30_000_000)

    # ------------------------------------------------------------------
    # load accounting and dissemination
    # ------------------------------------------------------------------
    def _on_data(self, node_id: int, pkt: Packet) -> None:
        if self.network.nodes[node_id].kind.value == "gateway":
            self.round_load[node_id] = self.round_load.get(node_id, 0) + 1
        super()._on_data(node_id, pkt)

    def start_round(self, r: int) -> None:
        loads = dict(self.round_load)
        self.round_load = {g: 0 for g in self.network.gateway_ids}
        super().start_round(r)
        if r == 0:
            return
        # Unmoved gateways still beacon their load (moved ones put it in
        # their NOTIFY via decorate_notify below).
        moved = set(self.schedule.moved_gateways(r))
        for g in self.network.gateway_ids:
            if g in moved:
                continue
            self._broadcast_load_beacon(g, loads.get(g, 0), r)

    def decorate_notify(self, gateway: int, packet: Packet) -> Packet:
        packet.payload["load"] = self.round_load.get(gateway, 0)
        return super().decorate_notify(gateway, packet)

    def _broadcast_load_beacon(self, gateway: int, load: int, r: int) -> None:
        seq = next(self._beacon_seq)
        pkt = Packet(
            kind=PacketKind.NOTIFY,
            origin=gateway,
            target=None,
            payload={
                "seq": seq,
                "gw": gateway,
                "place": self.gateway_place[gateway],
                "round": r,
                "load": load,
            },
            payload_bytes=self.config.control_payload_bytes,
            ttl=self.config.ttl,
            created_at=self.sim.now,
        )
        self._seen_floods[gateway].add((gateway, seq))
        self.channel.send(gateway, pkt)

    def apply_notify(self, node_id: int, gw: int, place: str) -> None:
        super().apply_notify(node_id, gw, place)

    def _on_notify(self, node_id: int, pkt: Packet) -> None:
        if "load" in pkt.payload:
            key = (pkt.origin, pkt.payload["seq"])
            if key not in self._seen_floods[node_id]:
                self.known_load[node_id][pkt.payload["gw"]] = pkt.payload["load"]
        super()._on_notify(node_id, pkt)

    # ------------------------------------------------------------------
    # load-aware selection
    # ------------------------------------------------------------------
    def _score(self, node_id: int, entry: RouteEntry) -> float:
        gw = self.gateway_for_key(node_id, entry.key, entry.gateway)
        loads = self.known_load[node_id]
        heaviest = max(loads.values(), default=0)
        if heaviest <= 0 or self.load_weight == 0:
            return float(entry.hops)
        load = loads.get(gw, 0)
        return entry.hops + self.load_weight * (load / heaviest)

    def _best_entry(self, node_id: int):
        active = self.active_keys(node_id)
        table = self.tables[node_id]
        candidates = [e for e in table.entries() if active is None or e.key in active]
        return min(candidates, key=lambda e: (self._score(node_id, e), str(e.key)), default=None)

    def _dispatch_or_queue(self, source: int, payload) -> None:
        missing = self.discovery_targets(source)
        if missing and source not in self._discovery:
            self._queue_pending(source, payload)
            self.metrics.on_data_queued(source, payload["data_id"])
            self._start_discovery(source)
            return
        if source in self._discovery:
            self._queue_pending(source, payload)
            self.metrics.on_data_queued(source, payload["data_id"])
            return
        entry = self._best_entry(source)
        if entry is not None:
            self._transmit_data(source, entry, payload)
            return
        self.metrics.on_terminal_drop(
            "no_route", key=(source, payload["data_id"]), node=source, now=self.sim.now
        )

    def _flush_via_existing(self, source: int) -> None:
        pending = self._take_pending(source)
        entry = self._best_entry(source)
        for payload in pending:
            if entry is None:
                self.metrics.on_terminal_drop(
                    "no_route",
                    key=(source, payload["data_id"]),
                    node=source,
                    now=self.sim.now,
                )
            else:
                self._transmit_data(source, entry, payload)

    # ------------------------------------------------------------------
    def gateway_loads(self) -> dict[int, int]:
        """Ground-truth frames absorbed per gateway this round."""
        return dict(self.round_load)
