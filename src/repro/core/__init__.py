"""The paper's primary contribution: routing protocols for WMSNs.

* :mod:`repro.core.routing_table` — route entries, the accumulated MLR
  table of Table 1, and SecMLR's 4-tuple forwarding entries.
* :mod:`repro.core.base` — the shared on-demand discovery machinery
  (flooded RREQ, table answering per Property 1, RRES return, source
  routing on the first DATA).
* :mod:`repro.core.spr` — Shortest Path Routing (Section 5.2).
* :mod:`repro.core.mlr` — Maximal network Lifetime Routing (Section 5.3).
* :mod:`repro.core.secmlr` — secure MLR (Section 6.2).
* :mod:`repro.core.placement` — gateway number/deployment models (Section 4.1).
* :mod:`repro.core.lifetime` — the LP formulation of equations (1)-(6).
"""

from repro.core.routing_table import ForwardingEntry, RouteEntry, RoutingTable
from repro.core.base import DiscoveryProtocol, ProtocolConfig
from repro.core.spr import SPR
from repro.core.mlr import MLR
from repro.core.secmlr import SecMLR
from repro.core.placement import (
    greedy_gateway_placement,
    kmax_gateway_count,
    mean_hops_for_placement,
)
from repro.core.lifetime import LifetimeLP, LifetimeSolution
from repro.core.topology_control import SleepScheduler
from repro.core.qos import LoadBalancedMLR

__all__ = [
    "RouteEntry",
    "ForwardingEntry",
    "RoutingTable",
    "DiscoveryProtocol",
    "ProtocolConfig",
    "SPR",
    "MLR",
    "SecMLR",
    "greedy_gateway_placement",
    "kmax_gateway_count",
    "mean_hops_for_placement",
    "LifetimeLP",
    "LifetimeSolution",
    "SleepScheduler",
    "LoadBalancedMLR",
]
