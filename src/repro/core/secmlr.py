"""SecMLR — secure maximal-lifetime routing (Section 6.2).

SecMLR is MLR hardened with the SNEP/μTESLA toolbox:

Routing query (6.2.1)
    The RREQ carries, for every destination gateway ``Gj``, the envelope
    ``{req}<Kij,C>, MAC(Kij, C | {req})`` under the pairwise key of the
    *claimed* source.  Intermediate nodes only append themselves to the
    path; they cannot forge or alter the envelope.
Response (6.2.2)
    A gateway first verifies origin (MAC) and freshness (counter) and
    drops failures; then it buffers path copies for a timeout and answers
    once with the least-hop path, MAC-protected (the path is covered, so
    en-route alteration is detected by the source).  Every node the RRES
    traverses installs its route suffix *and* the 4-tuple forwarding
    entry of Section 6.2.4.
Routing update (6.2.3)
    Moved gateways announce their new place with μTESLA-authenticated
    broadcast; sensors buffer announcements until the interval key is
    disclosed, then verify and apply.  Forged NOTIFYs die silently.
Data forwarding (6.2.4)
    DATA carries the routing information RI = (source, destination,
    immediate sender, immediate receiver); a node forwards only on an
    exact 4-tuple match, rewriting IS/IR hop by hop.  The gateway verifies
    MAC and counter before accepting.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.core.mlr import MLR
from repro.core.base import ProtocolConfig
from repro.core.routing_table import ForwardingEntry, RouteEntry
from repro.exceptions import ConfigurationError
from repro.security.crypto import (
    MAC_LENGTH,
    CounterState,
    compute_mac,
    encode_message,
    encrypt,
    verify_mac,
)
from repro.security.keys import KeyStore
from repro.security.tesla import TeslaBroadcaster, TeslaMessage, TeslaReceiver
from repro.sim.engine import Simulator
from repro.sim.mobility import GatewaySchedule
from repro.sim.network import Network
from repro.sim.node import NodeKind
from repro.sim.packet import Packet, PacketKind
from repro.sim.radio import Channel

__all__ = ["SecMLR", "ENVELOPE_BYTES"]

#: bytes added to a packet per SNEP envelope (8-byte counter + MAC).
ENVELOPE_BYTES = 8 + MAC_LENGTH


class SecMLR(MLR):
    """Secure MLR.

    Parameters
    ----------
    master_secret:
        Deployment master secret for :class:`~repro.security.keys.KeyStore`.
    tesla_interval / tesla_lag / tesla_chain:
        μTESLA parameters: interval length (seconds), disclosure lag
        (intervals) and hash-chain length.  The chain must outlast the
        simulation: ``tesla_chain * tesla_interval`` seconds.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        channel: Channel,
        schedule: GatewaySchedule,
        config: Optional[ProtocolConfig] = None,
        master_secret: bytes = b"wmsn-deployment-master",
        tesla_interval: float = 0.5,
        tesla_lag: int = 2,
        tesla_chain: int = 4096,
        bootstrap_known: bool = True,
    ) -> None:
        if config is None:
            config = ProtocolConfig(gateway_collect_timeout=0.05)
        elif config.gateway_collect_timeout <= 0:
            raise ConfigurationError(
                "SecMLR requires gateway_collect_timeout > 0 (Section 6.2.2)"
            )
        super().__init__(sim, network, channel, schedule, config, bootstrap_known)

        self.keystore = KeyStore(master_secret, network.gateway_ids)
        #: per-sensor outbound counters toward each gateway
        self._sensor_counters: dict[int, CounterState] = {
            s: CounterState() for s in network.sensor_ids
        }
        #: per-gateway state: inbound counters (per sensor) and outbound
        self._gateway_counters: dict[int, CounterState] = {
            g: CounterState() for g in network.gateway_ids
        }
        #: per-sensor inbound counters for RRES verification, keyed by gw
        self._sensor_in: dict[int, CounterState] = {s: CounterState() for s in network.sensor_ids}

        # μTESLA: one broadcaster per gateway, one receiver per (node, gw).
        self._tesla_tx: dict[int, TeslaBroadcaster] = {}
        self._tesla_rx: dict[tuple[int, int], TeslaReceiver] = {}
        self.tesla_interval = tesla_interval
        self.tesla_lag = tesla_lag
        for g in network.gateway_ids:
            tx = TeslaBroadcaster(
                sender_id=g,
                seed=self.keystore.individual_key(g),
                chain_length=tesla_chain,
                interval=tesla_interval,
                start_time=0.0,
                disclosure_lag=tesla_lag,
            )
            self._tesla_tx[g] = tx
            for node in network.nodes:
                if node.kind is NodeKind.SENSOR:
                    self._tesla_rx[(node.node_id, g)] = TeslaReceiver(
                        commitment=tx.commitment,
                        interval=tesla_interval,
                        start_time=0.0,
                        disclosure_lag=tesla_lag,
                    )
        self._disclosure_seq = itertools.count(20_000_000)
        #: diagnostics for the attack experiments
        self.rejected = {"bad_mac": 0, "replay": 0, "bad_rres": 0, "bad_notify": 0}

    # ------------------------------------------------------------------
    # RREQ security (6.2.1)
    # ------------------------------------------------------------------
    def decorate_rreq(self, source: int, packet: Packet, targets) -> Packet:
        envelopes: dict[int, dict] = {}
        counters = self._sensor_counters[source]
        for g in targets:
            key = self.keystore.pairwise_key(source, g)
            c = counters.next(g)
            req = {"t": "req", "src": source, "gw": g, "seq": packet.payload["seq"]}
            ct = encrypt(key, c, encode_message(req))
            envelopes[g] = {
                "ctr": c,
                "ct": ct.hex(),
                "mac": compute_mac(key, c, ct).hex(),
                "claimed": source,
            }
        packet.payload["sec"] = envelopes
        packet.payload_bytes += ENVELOPE_BYTES * len(envelopes)
        return packet

    def gateway_accepts_rreq(self, gateway: int, packet: Packet) -> bool:
        env = packet.payload.get("sec", {}).get(gateway)
        if env is None:
            self.rejected["bad_mac"] += 1
            self.metrics.on_drop("bad_mac")
            return False
        claimed = env["claimed"]
        key = self.keystore.pairwise_key(claimed, gateway)
        ct = bytes.fromhex(env["ct"])
        if not verify_mac(key, env["ctr"], ct, bytes.fromhex(env["mac"])):
            self.rejected["bad_mac"] += 1
            self.metrics.on_drop("bad_mac")
            return False
        if claimed != packet.origin:
            # MAC is valid for `claimed` but the flood claims another
            # origin: spoofed routing information.
            self.rejected["bad_mac"] += 1
            self.metrics.on_drop("spoofed")
            return False
        if not self._gateway_counters[gateway].accept(("rreq", claimed), env["ctr"], allow_current=True):
            self.rejected["replay"] += 1
            self.metrics.on_drop("replay")
            return False
        return True

    def _table_answer(self, node_id: int, targets):
        """Sensors never answer queries in SecMLR.

        Only a gateway holds the pairwise key needed to produce an
        authentic RRES, so the Property-1 table-answering optimisation of
        SPR/MLR is structurally impossible here — an intermediate node's
        answer would be indistinguishable from a sinkhole attack.  This is
        part of SecMLR's measured overhead (experiment E7).
        """
        return None

    # ------------------------------------------------------------------
    # RRES security (6.2.2) + forwarding-entry installation (6.2.4)
    # ------------------------------------------------------------------
    def decorate_rres(self, gateway: int, packet: Packet, origin: int) -> Packet:
        key = self.keystore.pairwise_key(origin, gateway)
        c = self._gateway_counters[gateway].next(("rres", origin))
        res = {
            "t": "res",
            "gw": gateway,
            "key": str(packet.payload["key"]),
            "path": [int(x) for x in packet.path],
            "seq": packet.payload["seq"],
        }
        ct = encrypt(key, c, encode_message(res))
        packet.payload["sec_res"] = {
            "ctr": c,
            "ct": ct.hex(),
            "mac": compute_mac(key, c, ct).hex(),
            "res": res,
        }
        packet.payload_bytes += ENVELOPE_BYTES
        return packet

    def source_accepts_rres(self, source: int, packet: Packet) -> bool:
        env = packet.payload.get("sec_res")
        if env is None:
            self.rejected["bad_rres"] += 1
            self.metrics.on_drop("bad_mac")
            return False
        gateway = packet.payload["gw"]
        key = self.keystore.pairwise_key(source, gateway)
        ct = bytes.fromhex(env["ct"])
        if not verify_mac(key, env["ctr"], ct, bytes.fromhex(env["mac"])):
            self.rejected["bad_rres"] += 1
            self.metrics.on_drop("bad_mac")
            return False
        # The MAC covers the path; a path altered en route no longer
        # matches the protected copy.
        protected = env["res"]
        if list(packet.path) != protected["path"] or str(packet.payload["key"]) != protected["key"]:
            self.rejected["bad_rres"] += 1
            self.metrics.on_drop("altered")
            return False
        if not self._sensor_in[source].accept(("rres", gateway), env["ctr"]):
            self.rejected["replay"] += 1
            self.metrics.on_drop("replay")
            return False
        return True

    def on_rres_hop(self, node_id: int, packet: Packet) -> None:
        """Install route suffix + 4-tuple at every traversed sensor."""
        if self.network.nodes[node_id].kind is not NodeKind.SENSOR:
            return
        path = packet.path
        try:
            i = path.index(node_id)
        except ValueError:
            return
        suffix = RouteEntry(key=packet.payload["key"], gateway=path[-1], path=path[i:])
        self.tables[node_id].install(suffix, replace_worse_only=True)
        self.tables[node_id].install_forwarding(
            ForwardingEntry(
                source=path[0],
                destination=path[-1],
                immediate_sender=path[i - 1] if i > 0 else None,
                immediate_receiver=path[i + 1] if i + 1 < len(path) else path[-1],
                route_key=packet.payload["key"],
            )
        )

    # ------------------------------------------------------------------
    # DATA security (6.2.4)
    # ------------------------------------------------------------------
    def decorate_data(self, source: int, packet: Packet, entry: RouteEntry) -> Packet:
        gateway = packet.target
        key = self.keystore.pairwise_key(source, gateway)
        c = self._sensor_counters[source].next(gateway)
        body = {"t": "data", "src": source, "gw": gateway, "data_id": packet.payload["data_id"]}
        ct = encrypt(key, c, encode_message(body))
        packet.payload["sec"] = {
            "ctr": c,
            "ct": ct.hex(),
            "mac": compute_mac(key, c, ct).hex(),
            "claimed": source,
        }
        packet.payload_bytes += ENVELOPE_BYTES
        return packet

    def gateway_accepts_data(self, gateway: int, packet: Packet) -> bool:
        # Rejections are terminal for the datum copy carried by this
        # frame (the ledger ignores forged/unknown keys and keeps the
        # DELIVERED state of an original whose replay is rejected).
        env = packet.payload.get("sec")
        if env is None:
            self.rejected["bad_mac"] += 1
            self.metrics.on_terminal_drop("bad_mac", packet, node=gateway, now=self.sim.now)
            return False
        claimed = env["claimed"]
        key = self.keystore.pairwise_key(claimed, gateway)
        ct = bytes.fromhex(env["ct"])
        if not verify_mac(key, env["ctr"], ct, bytes.fromhex(env["mac"])):
            self.rejected["bad_mac"] += 1
            self.metrics.on_terminal_drop("bad_mac", packet, node=gateway, now=self.sim.now)
            return False
        if claimed != packet.origin:
            self.rejected["bad_mac"] += 1
            self.metrics.on_terminal_drop("spoofed", packet, node=gateway, now=self.sim.now)
            return False
        if not self._gateway_counters[gateway].accept(("data", claimed), env["ctr"]):
            self.rejected["replay"] += 1
            self.metrics.on_terminal_drop("replay", packet, node=gateway, now=self.sim.now)
            return False
        return True

    # ------------------------------------------------------------------
    # μTESLA NOTIFY (6.2.3)
    # ------------------------------------------------------------------
    def decorate_notify(self, gateway: int, packet: Packet) -> Packet:
        tx = self._tesla_tx[gateway]
        msg = tx.authenticate(
            {"gw": gateway, "place": packet.payload["place"], "round": packet.payload["round"]},
            now=self.sim.now,
        )
        packet.payload["tesla"] = {
            "interval": msg.interval,
            "mac": msg.mac.hex(),
            "sender": msg.sender,
        }
        packet.payload_bytes += MAC_LENGTH + 4
        # Schedule the interval-key disclosure flood.
        when = tx.disclosure_time(msg.interval)
        self.sim.schedule(max(0.0, when - self.sim.now), self._disclose_key, gateway, msg.interval)
        return packet

    def accept_notify(self, node_id: int, packet: Packet) -> bool:
        """Buffer under μTESLA instead of applying immediately."""
        if self.network.nodes[node_id].kind is not NodeKind.SENSOR:
            return False
        tinfo = packet.payload.get("tesla")
        if tinfo is None:
            self.rejected["bad_notify"] += 1
            self.metrics.on_drop("bad_notify")
            return False
        gw = packet.payload["gw"]
        rx = self._tesla_rx.get((node_id, gw))
        if rx is None:
            self.rejected["bad_notify"] += 1
            self.metrics.on_drop("bad_notify")
            return False
        msg = TeslaMessage(
            payload={"gw": gw, "place": packet.payload["place"], "round": packet.payload["round"]},
            interval=tinfo["interval"],
            mac=bytes.fromhex(tinfo["mac"]),
            sender=tinfo["sender"],
        )
        if not rx.receive(msg, arrival_time=self.sim.now):
            self.rejected["bad_notify"] += 1
            self.metrics.on_drop("bad_notify")
        # Never apply now — application happens at key disclosure.
        return False

    def _disclose_key(self, gateway: int, interval: int) -> None:
        if not self.network.nodes[gateway].alive:
            return
        tx = self._tesla_tx[gateway]
        seq = next(self._disclosure_seq)
        pkt = Packet(
            kind=PacketKind.NOTIFY,
            origin=gateway,
            target=None,
            payload={
                "seq": seq,
                "disclose": {"gw": gateway, "interval": interval, "key": tx.key_for_interval(interval).hex()},
                # plain-notify fields absent: handled by _on_notify override
            },
            payload_bytes=self.config.control_payload_bytes + 32,
            ttl=self.config.ttl,
            created_at=self.sim.now,
        )
        self._seen_floods[gateway].add((gateway, seq))
        self.channel.send(gateway, pkt)

    def _on_notify(self, node_id: int, pkt: Packet) -> None:
        if "disclose" not in pkt.payload:
            super()._on_notify(node_id, pkt)
            return
        key = (pkt.origin, pkt.payload["seq"])
        if key in self._seen_floods[node_id]:
            return
        self._seen_floods[node_id].add(key)
        info = pkt.payload["disclose"]
        rx = self._tesla_rx.get((node_id, info["gw"]))
        if rx is not None:
            for payload in rx.disclose(info["interval"], bytes.fromhex(info["key"])):
                self.apply_notify(node_id, payload["gw"], payload["place"])
        if pkt.ttl > 1:
            self._flood_send(
                node_id, pkt.fork(src=node_id, dst=None, ttl=pkt.ttl - 1, hop_count=pkt.hop_count + 1)
            )

    # ------------------------------------------------------------------
    # 4-tuple data forwarding (6.2.4)
    # ------------------------------------------------------------------
    def _transmit_data(self, source: int, entry: RouteEntry, payload) -> None:
        """DATA never needs source routing: 4-tuples were installed by RRES.

        If the 4-tuple chain is missing (e.g. the entry was installed from
        a source-routed first packet under plain-MLR semantics), fall back
        to the base behaviour.
        """
        gateway = self.gateway_for_key(source, entry.key, entry.gateway)
        fe = self.tables[source].match_forwarding(source, entry.key)
        pkt = Packet(
            kind=PacketKind.DATA,
            origin=source,
            target=gateway,
            path=(),
            payload={
                **payload,
                "key": entry.key,
                "traversed": [source],
                "IS": source,
                "IR": fe.immediate_receiver if fe is not None else entry.next_hop,
            },
            payload_bytes=payload["bytes"] + 8,  # RI field of Fig. 6
            created_at=self.sim.now,
        )
        pkt = self.decorate_data(source, pkt, entry)
        next_hop = pkt.payload["IR"]
        if entry.hops <= 1:
            next_hop = gateway
            pkt.payload["IR"] = gateway
        self._forward_data(source, pkt, next_hop)

    def _on_data(self, node_id: int, pkt: Packet) -> None:
        node = self.network.nodes[node_id]
        if node.kind is NodeKind.GATEWAY:
            if not self.gateway_accepts_data(node_id, pkt):
                return
            self.metrics.on_data_delivered(pkt, node_id, self.sim.now)
            if self.delivery_callback is not None:
                self.delivery_callback(pkt, node_id)
            return
        # Sensor: exact 4-tuple match required ("Otherwise, it drops the
        # data packet").
        fe = self.tables[node_id].match_forwarding(pkt.origin, pkt.payload.get("key"))
        if fe is None:
            if self.config.repair_routes:
                self.metrics.on_drop("no_route")
                bounce = pkt.fork()
                bounce.payload["traversed"] = list(pkt.payload.get("traversed", ())) + [node_id]
                self._report_route_error(node_id, bounce)
            else:
                self.metrics.on_terminal_drop("no_route", pkt, node=node_id, now=self.sim.now)
            return
        if pkt.payload.get("IR") != node_id or pkt.payload.get("IS") != pkt.src:
            self.metrics.on_terminal_drop("misrouted", pkt, node=node_id, now=self.sim.now)
            return
        traversed = list(pkt.payload.get("traversed", ()))
        if node_id in traversed or pkt.ttl <= 0:
            self.metrics.on_terminal_drop(
                "loop" if node_id in traversed else "ttl", pkt, node=node_id, now=self.sim.now
            )
            self.tables[node_id].remove(pkt.payload.get("key"))
            return
        traversed.append(node_id)
        fwd = pkt.fork()
        fwd.payload["traversed"] = traversed
        fwd.payload["IS"] = node_id
        next_hop = fe.immediate_receiver
        # Re-bind the final hop to the gateway currently at the place.
        if next_hop == fe.destination:
            next_hop = self.gateway_for_key(node_id, pkt.payload.get("key"), fe.destination)
            fwd = fwd.fork(target=next_hop)
        fwd.payload["IR"] = next_hop
        self._forward_data(node_id, fwd, next_hop)

    # SecMLR's security-overhead accounting helper -----------------------
    @property
    def security_rejections(self) -> dict[str, int]:
        """Counts of packets rejected by cryptographic checks."""
        return dict(self.rejected)
