"""The lifetime optimisation of Section 5.3, equations (1)-(6), as LPs.

The paper states the routing goal as a two-objective program — minimise
total energy ``sum E_i`` and the variance of per-node energy — subject to
flow conservation (eq. 3), per-node energy accounting (eq. 2) and
single-gateway assignment per round (eq. 4, 5), and notes that solving it
exactly "probably is a NP problem", motivating the heuristic MLR.

This module provides the standard LP relaxations used to *bound* the
heuristic (experiment E11):

* :meth:`LifetimeLP.solve_min_energy` — stage 1: minimise total energy;
  stage 2 (the variance surrogate): minimise the maximum per-node energy
  subject to total energy staying within a tolerance of the stage-1
  optimum.  Min-max is the standard linearisable stand-in for eq. (1)'s
  variance term.
* :meth:`LifetimeLP.solve_max_lifetime` — the classic maximum-lifetime
  flow LP (Chang–Tassiulas; the paper cites its descendants [9, 10]):
  maximise ``L`` such that a per-round flow pattern sustained for ``L``
  rounds respects every battery.  Its optimum upper-bounds any schedule,
  including MLR's.

Fractional, splittable flows make these *relaxations*: real packets are
integral and MLR pins each node to one gateway per round (eq. 4), so the
LP value is an upper bound on lifetime / lower bound on energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import linprog

from repro.exceptions import ConfigurationError, TopologyError
from repro.sim.network import Network

__all__ = ["LifetimeSolution", "LifetimeLP"]


@dataclass(frozen=True)
class LifetimeSolution:
    """Result of one LP solve."""

    objective: float
    node_energy: dict[int, float]  # per-round joules per sensor
    flows: dict[tuple[int, int], float]  # packets/round on each used edge
    status: str

    @property
    def total_energy(self) -> float:
        return float(sum(self.node_energy.values()))

    @property
    def max_energy(self) -> float:
        return float(max(self.node_energy.values(), default=0.0))

    @property
    def energy_variance(self) -> float:
        values = np.array(list(self.node_energy.values()))
        return float(values.var()) if len(values) else 0.0


class LifetimeLP:
    """LP model over a sensor network's directed link graph.

    Parameters
    ----------
    network:
        The sensor-tier topology (gateways included).
    et, er:
        Energy per *packet* for transmit and receive (joules).  Compute
        them from the energy model and packet size, e.g.
        ``model.tx_cost(bits, range)`` and ``model.rx_cost(bits)``.
    generation_rate:
        ``T`` of eq. (3): packets generated per sensor per round (scalar
        or per-sensor sequence).
    """

    def __init__(
        self,
        network: Network,
        et: float,
        er: float,
        generation_rate: float | Sequence[float] = 1.0,
    ) -> None:
        if et <= 0 or er < 0:
            raise ConfigurationError("et must be positive and er non-negative")
        self.network = network
        self.et = float(et)
        self.er = float(er)
        self.sensors = network.sensor_ids
        self.gateways = network.gateway_ids
        if not self.sensors or not self.gateways:
            raise ConfigurationError("need at least one sensor and one gateway")
        if np.isscalar(generation_rate):
            self.rates = {s: float(generation_rate) for s in self.sensors}
        else:
            rates = list(generation_rate)
            if len(rates) != len(self.sensors):
                raise ConfigurationError("one generation rate per sensor required")
            self.rates = dict(zip(self.sensors, map(float, rates)))

        # Directed edges: sensor->sensor (both directions) and
        # sensor->gateway. Gateways only absorb.
        sensor_set = set(self.sensors)
        self.edges: list[tuple[int, int]] = []
        for i in self.sensors:
            for j in self.network.neighbors(i):
                j = int(j)
                if j in sensor_set or j in set(self.gateways):
                    self.edges.append((i, j))
        if not self.edges:
            raise TopologyError("sensor network has no usable links")
        self._edge_index = {e: k for k, e in enumerate(self.edges)}

    # ------------------------------------------------------------------
    def _flow_conservation(self) -> tuple[np.ndarray, np.ndarray]:
        """A_eq x = b_eq for eq. (3): out(i) - in(i) = T_i per sensor."""
        ne = len(self.edges)
        ns = len(self.sensors)
        a = np.zeros((ns, ne))
        b = np.zeros(ns)
        row = {s: r for r, s in enumerate(self.sensors)}
        for k, (i, j) in enumerate(self.edges):
            a[row[i], k] += 1.0
            if j in row:
                a[row[j], k] -= 1.0
        for s in self.sensors:
            b[row[s]] = self.rates[s]
        return a, b

    def _energy_rows(self) -> np.ndarray:
        """Matrix E with E[s] @ x = per-round energy of sensor s (eq. 2)."""
        ne = len(self.edges)
        ns = len(self.sensors)
        e = np.zeros((ns, ne))
        row = {s: r for r, s in enumerate(self.sensors)}
        for k, (i, j) in enumerate(self.edges):
            e[row[i], k] += self.et
            if j in row:
                e[row[j], k] += self.er
        return e

    def _extract(self, x: np.ndarray) -> tuple[dict[int, float], dict[tuple[int, int], float]]:
        energy_rows = self._energy_rows()
        node_energy = {
            s: float(energy_rows[r] @ x[: len(self.edges)])
            for r, s in enumerate(self.sensors)
        }
        flows = {
            e: float(x[k])
            for e, k in self._edge_index.items()
            if x[k] > 1e-9
        }
        return node_energy, flows

    # ------------------------------------------------------------------
    def solve_min_energy(self, minmax_stage: bool = True, tolerance: float = 1e-6) -> LifetimeSolution:
        """Equations (1)-(3): minimise total energy, then balance it.

        Stage 1 minimises ``sum_i E_i``; stage 2 re-optimises for minimal
        ``max_i E_i`` with total energy constrained to within
        ``(1 + tolerance)`` of the stage-1 optimum (the linear surrogate
        of the variance objective D^2).
        """
        ne = len(self.edges)
        a_eq, b_eq = self._flow_conservation()
        energy = self._energy_rows()
        total_cost = energy.sum(axis=0)

        res = linprog(c=total_cost, A_eq=a_eq, b_eq=b_eq, bounds=(0, None), method="highs")
        if not res.success:
            raise TopologyError(f"min-energy LP infeasible: {res.message}")
        if not minmax_stage:
            node_energy, flows = self._extract(res.x)
            return LifetimeSolution(float(res.fun), node_energy, flows, "min_total")

        # Stage 2: variables [x, z]; minimise z s.t. E_s x <= z, total <= opt.
        c2 = np.zeros(ne + 1)
        c2[-1] = 1.0
        a_ub = np.hstack([energy, -np.ones((len(self.sensors), 1))])
        b_ub = np.zeros(len(self.sensors))
        a_ub = np.vstack([a_ub, np.append(total_cost, 0.0)])
        b_ub = np.append(b_ub, res.fun * (1.0 + tolerance))
        a_eq2 = np.hstack([a_eq, np.zeros((a_eq.shape[0], 1))])
        res2 = linprog(
            c=c2, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq2, b_eq=b_eq, bounds=(0, None), method="highs"
        )
        if not res2.success:
            raise TopologyError(f"min-max LP infeasible: {res2.message}")
        node_energy, flows = self._extract(res2.x)
        return LifetimeSolution(float(res2.x[-1]), node_energy, flows, "min_total+minmax")

    def solve_max_lifetime(self, battery: float) -> LifetimeSolution:
        """Maximum-lifetime LP: the upper bound MLR is compared to (E11).

        Variables are total packets ``x_e`` over the whole network life and
        the lifetime ``L`` (rounds).  Constraints: conservation
        ``out - in = rate * L`` and energy ``E_s x <= battery``.  Returns
        ``objective = L*``; per-node energies are totals over the lifetime.
        """
        if battery <= 0:
            raise ConfigurationError("battery must be positive")
        ne = len(self.edges)
        a_c, _ = self._flow_conservation()
        rates = np.array([self.rates[s] for s in self.sensors])
        # out - in - rate * L = 0
        a_eq = np.hstack([a_c, -rates.reshape(-1, 1)])
        b_eq = np.zeros(len(self.sensors))
        energy = self._energy_rows()
        a_ub = np.hstack([energy, np.zeros((len(self.sensors), 1))])
        b_ub = np.full(len(self.sensors), battery)
        c = np.zeros(ne + 1)
        c[-1] = -1.0  # maximise L
        res = linprog(c=c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=(0, None), method="highs")
        if not res.success:
            raise TopologyError(f"max-lifetime LP infeasible: {res.message}")
        node_energy, flows = self._extract(res.x)
        return LifetimeSolution(float(res.x[-1]), node_energy, flows, "max_lifetime")
