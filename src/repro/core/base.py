"""Composition of the three protocol layers into one node stack.

The five-step machinery of Section 5.2 is implemented once across three
layer modules, and :class:`DiscoveryProtocol` stacks them:

* :class:`repro.core.policy.ProtocolPolicy` — what a protocol *decides*:
  table keys, discovery targets, frame decoration/validation, NOTIFY
  semantics.  SPR/MLR/SecMLR specialise this layer.
* :class:`repro.core.discovery.FloodDiscoveryEngine` — Steps 2-4: RREQ
  flood with duplicate suppression, Property-1 table answering, RRES
  hop-back, least-hop selection with retry/backoff.
* :class:`repro.core.dataplane.DataPlaneForwarder` — Steps 1 and 5:
  table-driven DATA forwarding, source-routed announcements, RERR route
  repair.

The layers are mixins rather than delegate objects on purpose: the
concrete protocols override internals across all three (MLR retargets
``_finish_discovery`` and ``_dispatch_or_queue``; SecMLR wraps
``_table_answer``, ``_transmit_data``, ``_on_data``), and a single class
per protocol keeps every such override resolvable on ``self`` with no
forwarding shims.

This module keeps what is genuinely shared plumbing: per-node state,
handler wiring onto the network's nodes, the packet-kind dispatcher and
the attack-behaviour interception point (a compromised node's behaviour
object — see :mod:`repro.security.attacks` — is consulted before normal
processing and may suppress, mutate or fabricate traffic).

:class:`ProtocolConfig` is re-exported here for compatibility; it lives
in :mod:`repro.core.policy`.
"""

from __future__ import annotations

import functools
import itertools
from typing import Any, Hashable, Optional

from repro.core.dataplane import DataPlaneForwarder
from repro.core.discovery import FloodDiscoveryEngine, _DiscoveryState  # noqa: F401 (re-export)
from repro.core.policy import ProtocolConfig, ProtocolPolicy
from repro.core.routing_table import RoutingTable
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.packet import Packet, PacketKind
from repro.sim.radio import Channel

__all__ = ["ProtocolConfig", "DiscoveryProtocol"]


class DiscoveryProtocol(ProtocolPolicy, FloodDiscoveryEngine, DataPlaneForwarder):
    """Base class wiring protocol handlers onto every node of a network.

    Subclasses implement the key policy methods (:meth:`entry_key_for`,
    :meth:`discovery_targets`, :meth:`active_keys`) and may override the
    packet hooks for security processing.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        channel: Channel,
        config: Optional[ProtocolConfig] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.channel = channel
        self.config = config or ProtocolConfig()
        self.metrics = channel.metrics

        self.tables: dict[int, RoutingTable] = {
            n.node_id: RoutingTable(n.node_id) for n in network.nodes
        }
        #: the network's struct-of-arrays core, when it has one — route
        #: and queue-depth columns mirror protocol state through it
        self._store = getattr(network, "store", None)
        if self._store is not None:
            for node_id, table in self.tables.items():
                table.on_change = functools.partial(
                    self._sync_route_column, node_id, table
                )
        self._seen_floods: dict[int, set[tuple[int, int]]] = {n.node_id: set() for n in network.nodes}
        self._pending_data: dict[int, list[dict[str, Any]]] = {}
        self._discovery: dict[int, _DiscoveryState] = {}
        self._seq = itertools.count(1)
        self._data_ids = itertools.count(1)
        self._collect_buckets: dict = {}
        #: optional hook invoked as ``(packet, gateway_id)`` when a DATA
        #: frame terminates at a gateway — the three-tier stack chains the
        #: mesh uplink from here.
        self.delivery_callback = None
        # (source, key, path) triples whose source route has been announced:
        # the first DATA on a route carries the path, later ones do not
        # (Step 5.3).  Keyed on the path so a repaired route re-announces.
        self._announced: set[tuple[int, Hashable, tuple[int, ...]]] = set()
        #: node id -> attack behaviour (see repro.security.attacks)
        self.behaviors: dict[int, Any] = {}

        for node in network.nodes:
            node.handler = self._make_handler(node.node_id)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def routing_table(self, node_id: int) -> RoutingTable:
        """The routing table of ``node_id`` (introspection/testing)."""
        return self.tables[node_id]

    # ------------------------------------------------------------------
    # struct-of-arrays mirrors
    # ------------------------------------------------------------------
    def _sync_route_column(self, node_id: int, table: RoutingTable) -> None:
        """Mirror ``table.best().next_hop`` into the store route columns."""
        best = table.best()
        self._store.note_route(node_id, None if best is None else best.next_hop)

    def _queue_pending(self, node_id: int, payload: dict) -> None:
        """Park a datum awaiting a route, mirroring the queue-depth column."""
        self._pending_data.setdefault(node_id, []).append(payload)
        if self._store is not None:
            self._store.note_queued(node_id, 1)

    def _take_pending(self, node_id: int) -> list:
        """Drain and return ``node_id``'s parked data (possibly empty)."""
        pending = self._pending_data.pop(node_id, [])
        if pending and self._store is not None:
            self._store.note_queued(node_id, -len(pending))
        return pending

    # ------------------------------------------------------------------
    # packet dispatch
    # ------------------------------------------------------------------
    def _make_handler(self, node_id: int):
        # functools.partial instead of a closure: the bound call skips a
        # Python frame, and this runs once per reception — the single
        # hottest callback in the simulator.
        return functools.partial(self._on_packet, node_id)

    def _on_packet(self, node_id: int, pkt: Packet) -> None:
        behavior = self.behaviors.get(node_id)
        if behavior is not None and behavior.intercept(node_id, pkt, self):
            return
        if pkt.kind is PacketKind.RREQ:
            self._on_rreq(node_id, pkt)
        elif pkt.kind is PacketKind.RRES:
            self._on_rres(node_id, pkt)
        elif pkt.kind is PacketKind.DATA:
            self._on_data(node_id, pkt)
        elif pkt.kind is PacketKind.RERR:
            self._on_rerr(node_id, pkt)
        elif pkt.kind is PacketKind.NOTIFY:
            self._on_notify(node_id, pkt)
        elif pkt.kind is PacketKind.HELLO:
            self._on_hello(node_id, pkt)
