"""Shared on-demand discovery machinery for SPR / MLR / SecMLR.

This module implements the five-step protocol skeleton of Section 5.2 once,
with the hooks the three protocols specialise:

Step 1
    ``send_data`` checks the local routing table; with a usable entry the
    DATA goes straight out, otherwise the payload is queued and a
    discovery starts.
Step 2
    Discovery floods an RREQ naming its target gateways.  Duplicate
    suppression is per ``(origin, seq)``.
Step 3
    Intermediate nodes holding a matching route answer from their tables
    instead of re-flooding (Property 1 — the ``table_answering`` switch
    exists so the ablation benchmark can turn it off); gateways answer
    with the accumulated path.  Responses travel hop-by-hop back along
    the reverse of the recorded path.
Step 4
    After ``discovery_timeout`` the source picks the least-hop response
    (ties break on gateway id) and installs the entry.
Step 5
    The first DATA packet carries the source route; every node it
    traverses installs its path suffix (Property 1 again), and subsequent
    packets are forwarded from tables only.

Fault handling: forwarders check next-hop liveness (the abstraction of a
HELLO/link-layer beacon) and return a RERR carrying the stranded payload
back to the source, which removes the broken entry and redirects via
another gateway — the paper's fault-tolerance behaviour ("sensor nodes may
redirect data transmission using other routes", Section 8).

Attack instrumentation: a compromised node's behaviour object (see
:mod:`repro.security.attacks`) is consulted before normal processing and
may suppress, mutate or fabricate traffic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Optional

from repro.exceptions import RoutingError
from repro.core.routing_table import RouteEntry, RoutingTable
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.node import NodeKind
from repro.sim.packet import DATA_PAYLOAD_BYTES, Packet, PacketKind
from repro.sim.radio import Channel

__all__ = ["ProtocolConfig", "DiscoveryProtocol"]


@dataclass(frozen=True)
class ProtocolConfig:
    """Tunables shared by all protocols in :mod:`repro.core`."""

    discovery_timeout: float = 0.25
    """Seconds a source waits collecting RRES before choosing (Step 4)."""

    gateway_collect_timeout: float = 0.0
    """Seconds a gateway buffers RREQ copies before answering with the
    least-hop path; 0 answers the first copy immediately (plain SPR).
    SecMLR sets this per Section 6.2.2."""

    table_answering: bool = True
    """Property-1 optimisation: nodes with a matching route answer RREQs
    from their tables and do not re-flood."""

    max_discovery_attempts: int = 3
    """Discovery retries before queued data is dropped as unroutable."""

    data_payload_bytes: int = DATA_PAYLOAD_BYTES
    control_payload_bytes: int = 8
    ttl: int = 32
    """Flood TTL (max hops, Section 2.2.1 style bound)."""

    repair_routes: bool = True
    """Send RERR to the source on a dead next hop and redirect."""

    flood_jitter: float = 0.01
    """Random delay before re-broadcasting a flood frame, applied only on
    contention radios (CSMA enabled).  Desynchronises rebroadcasts so a
    flood does not collide with itself at every hidden terminal; on the
    ideal radio it stays zero so floods arrive in BFS order."""

    max_repairs_per_packet: int = 3
    """Redirect attempts before a data packet is abandoned.  Bounds the
    repair loop when stale tables keep advertising routes through dead
    nodes faster than RERRs purge them."""


@dataclass
class _DiscoveryState:
    seq: int
    targets: dict[int, Hashable]  # gateway id -> table key
    responses: list[RouteEntry] = field(default_factory=list)
    attempts: int = 1


class DiscoveryProtocol:
    """Base class wiring protocol handlers onto every node of a network.

    Subclasses implement the key policy methods (:meth:`entry_key_for`,
    :meth:`discovery_targets`, :meth:`active_keys`) and may override the
    packet hooks for security processing.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        channel: Channel,
        config: Optional[ProtocolConfig] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.channel = channel
        self.config = config or ProtocolConfig()
        self.metrics = channel.metrics

        self.tables: dict[int, RoutingTable] = {
            n.node_id: RoutingTable(n.node_id) for n in network.nodes
        }
        self._seen_floods: dict[int, set[tuple[int, int]]] = {n.node_id: set() for n in network.nodes}
        self._pending_data: dict[int, list[dict[str, Any]]] = {}
        self._discovery: dict[int, _DiscoveryState] = {}
        self._seq = itertools.count(1)
        self._data_ids = itertools.count(1)
        self._collect_buckets: dict = {}
        #: optional hook invoked as ``(packet, gateway_id)`` when a DATA
        #: frame terminates at a gateway — the three-tier stack chains the
        #: mesh uplink from here.
        self.delivery_callback = None
        # (source, key, path) triples whose source route has been announced:
        # the first DATA on a route carries the path, later ones do not
        # (Step 5.3).  Keyed on the path so a repaired route re-announces.
        self._announced: set[tuple[int, Hashable, tuple[int, ...]]] = set()
        #: node id -> attack behaviour (see repro.security.attacks)
        self.behaviors: dict[int, Any] = {}

        for node in network.nodes:
            node.handler = self._make_handler(node.node_id)

    # ------------------------------------------------------------------
    # policy hooks (overridden by SPR / MLR / SecMLR)
    # ------------------------------------------------------------------
    def entry_key_for(self, gateway_id: int) -> Hashable:
        """Routing-table key under which routes to this gateway live."""
        return gateway_id

    def discovery_targets(self, source: int) -> dict[int, Hashable]:
        """Gateways (id -> key) a new discovery from ``source`` should query."""
        return {g: self.entry_key_for(g) for g in self.network.gateway_ids}

    def active_keys(self, node_id: int) -> Optional[Iterable[Hashable]]:
        """Table keys usable *right now* (None = all keys usable)."""
        return None

    def gateway_for_key(self, node_id: int, key: Hashable, recorded: int) -> int:
        """The gateway node currently serving ``key`` (MLR rebinds places)."""
        return recorded

    # -- security hooks (SecMLR overrides) ------------------------------
    def decorate_rreq(self, source: int, packet: Packet, targets: dict[int, Hashable]) -> Packet:
        return packet

    def gateway_accepts_rreq(self, gateway: int, packet: Packet) -> bool:
        return True

    def decorate_rres(self, gateway: int, packet: Packet, origin: int) -> Packet:
        return packet

    def source_accepts_rres(self, source: int, packet: Packet) -> bool:
        return True

    def on_rres_hop(self, node_id: int, packet: Packet) -> None:
        """Called at every node an RRES traverses (SecMLR installs 4-tuples)."""

    def decorate_data(self, source: int, packet: Packet, entry: RouteEntry) -> Packet:
        return packet

    def gateway_accepts_data(self, gateway: int, packet: Packet) -> bool:
        return True

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def send_data(self, source: int, payload_bytes: Optional[int] = None) -> int:
        """Application call: sensor ``source`` has one sensed datum to report.

        Returns the data id used in delivery records.  Implements Step 1:
        route from table when possible, otherwise queue + discover.
        """
        node = self.network.nodes[source]
        if node.kind is not NodeKind.SENSOR:
            raise RoutingError(f"only sensors generate data (node {source} is {node.kind})")
        data_id = next(self._data_ids)
        self.metrics.on_data_generated()
        if not node.alive:
            self.metrics.on_drop("dead_source")
            return data_id
        payload = {
            "data_id": data_id,
            "bytes": payload_bytes if payload_bytes is not None else self.config.data_payload_bytes,
        }
        self._dispatch_or_queue(source, payload)
        return data_id

    def routing_table(self, node_id: int) -> RoutingTable:
        """The routing table of ``node_id`` (introspection/testing)."""
        return self.tables[node_id]

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def _dispatch_or_queue(self, source: int, payload: dict[str, Any]) -> None:
        entry = self.tables[source].best(self.active_keys(source))
        if entry is not None:
            self._transmit_data(source, entry, payload)
            return
        self._pending_data.setdefault(source, []).append(payload)
        if source not in self._discovery:
            self._start_discovery(source)

    def _transmit_data(self, source: int, entry: RouteEntry, payload: dict[str, Any]) -> None:
        gateway = self.gateway_for_key(source, entry.key, entry.gateway)
        path = entry.path[:-1] + (gateway,)
        # Source-route the first packet over this entry so intermediate
        # nodes install their suffixes (Step 5.1/5.2); afterwards the path
        # field stays empty (Step 5.3).
        announce_key = (source, entry.key, path)
        source_routed = announce_key not in self._announced
        pkt = Packet(
            kind=PacketKind.DATA,
            origin=source,
            target=gateway,
            path=path if source_routed else (),
            payload={
                **payload,
                "key": entry.key,
                "traversed": [source],
            },
            payload_bytes=payload["bytes"],
            created_at=self.sim.now,
        )
        pkt = self.decorate_data(source, pkt, entry)
        if source_routed:
            self._announced.add(announce_key)
        next_hop = path[1] if len(path) > 1 else gateway
        self._forward_data(source, pkt, next_hop)

    def _valid_node(self, node_id) -> bool:
        """Packet fields are attacker-controlled; validate before indexing."""
        return isinstance(node_id, int) and 0 <= node_id < len(self.network.nodes)

    def _forward_data(self, node_id: int, pkt: Packet, next_hop: int) -> None:
        behavior = self.behaviors.get(node_id)
        if behavior is not None and behavior.drop_outgoing_data(pkt):
            self.metrics.on_drop("blackhole")
            return
        if not self._valid_node(next_hop):
            self.metrics.on_drop("misrouted")
            return
        if not self.network.nodes[next_hop].alive:
            self.metrics.on_drop("dead_next_hop")
            if self.config.repair_routes:
                self._report_route_error(node_id, pkt)
            return
        self.channel.send(node_id, pkt.with_hop(node_id, next_hop))

    def _report_route_error(self, detector: int, pkt: Packet) -> None:
        """Send the stranded payload back to the source along ``traversed``."""
        traversed = list(pkt.payload.get("traversed", ()))
        key = pkt.payload.get("key")
        if pkt.origin == detector:
            self._handle_route_error_at_source(detector, key, pkt.payload)
            return
        if not traversed or detector not in traversed:
            self.metrics.on_drop("unrepairable")
            return
        idx = traversed.index(detector)
        if idx == 0:
            self.metrics.on_drop("unrepairable")
            return
        back = traversed[: idx + 1]
        rerr = Packet(
            kind=PacketKind.RERR,
            origin=detector,
            target=pkt.origin,
            dst=back[idx - 1],
            payload={
                "key": key,
                "back_path": back,
                # "pos" is always the index of the node currently holding
                # the RERR; the receiver's index is idx - 1.
                "pos": idx - 1,
                "data": {
                    k: v for k, v in pkt.payload.items()
                    if k in ("data_id", "bytes", "repairs")
                },
            },
            payload_bytes=self.config.control_payload_bytes + pkt.payload.get("bytes", 0),
            created_at=pkt.created_at,
        )
        self.channel.send(detector, rerr)

    def _handle_route_error_at_source(self, source: int, key: Hashable, data_payload: dict) -> None:
        self.tables[source].remove(key)
        # Force the next packet on a re-discovered route to carry the
        # source route again (downstream entries may be missing).
        self._announced = {
            a for a in self._announced if not (a[0] == source and a[1] == key)
        }
        repairs = data_payload.get("repairs", 0) + 1
        if repairs > self.config.max_repairs_per_packet:
            self.metrics.on_drop("unrepairable")
            return
        payload = {
            "data_id": data_payload["data_id"],
            "bytes": data_payload["bytes"],
            "repairs": repairs,
        }
        self._dispatch_or_queue(source, payload)

    # ------------------------------------------------------------------
    # discovery (Steps 2-4)
    # ------------------------------------------------------------------
    def _start_discovery(self, source: int, attempts: int = 1) -> None:
        targets = self.discovery_targets(source)
        if not targets:
            self._fail_discovery(source)
            return
        seq = next(self._seq)
        self._discovery[source] = _DiscoveryState(seq=seq, targets=targets, attempts=attempts)
        pkt = Packet(
            kind=PacketKind.RREQ,
            origin=source,
            target=None,
            path=(source,),
            payload={"seq": seq, "targets": dict(targets)},
            payload_bytes=self.config.control_payload_bytes,
            ttl=self.config.ttl,
            created_at=self.sim.now,
        )
        pkt = self.decorate_rreq(source, pkt, targets)
        self._seen_floods[source].add((source, seq))
        self.channel.send(source, pkt.fork(src=source, dst=None))
        self.sim.schedule(self.config.discovery_timeout, self._finish_discovery, source, seq)

    def _finish_discovery(self, source: int, seq: int) -> None:
        state = self._discovery.get(source)
        if state is None or state.seq != seq:
            return  # superseded
        if not state.responses:
            del self._discovery[source]
            if state.attempts < self.config.max_discovery_attempts:
                self._schedule_retry(source, state.attempts)
            else:
                self._fail_discovery(source)
            return
        best = min(state.responses, key=lambda e: (e.hops, e.gateway))
        self.tables[source].install(best, replace_worse_only=True)
        del self._discovery[source]
        for payload in self._pending_data.pop(source, []):
            self._dispatch_or_queue(source, payload)

    def _schedule_retry(self, source: int, attempts: int) -> None:
        """Back off linearly between discovery attempts.

        Immediate re-flooding after a timeout amplifies exactly the
        congestion that caused the timeout; spreading retries lets the
        channel drain (only matters on contention radios, but is harmless
        on the ideal one).
        """
        delay = 0.0
        if self.channel.config.csma:
            delay = attempts * self.config.discovery_timeout
            delay += float(self.sim.rng.uniform(0.0, self.config.discovery_timeout))
        self.sim.schedule(delay, self._retry_discovery, source, attempts)

    def _retry_discovery(self, source: int, attempts: int) -> None:
        if source in self._discovery or not self.network.nodes[source].alive:
            return
        self._start_discovery(source, attempts=attempts + 1)

    def _fail_discovery(self, source: int) -> None:
        for _ in self._pending_data.pop(source, []):
            self.metrics.on_drop("no_route")

    # ------------------------------------------------------------------
    # packet dispatch
    # ------------------------------------------------------------------
    def _make_handler(self, node_id: int):
        def handler(pkt: Packet) -> None:
            self._on_packet(node_id, pkt)

        return handler

    def _on_packet(self, node_id: int, pkt: Packet) -> None:
        behavior = self.behaviors.get(node_id)
        if behavior is not None and behavior.intercept(node_id, pkt, self):
            return
        if pkt.kind is PacketKind.RREQ:
            self._on_rreq(node_id, pkt)
        elif pkt.kind is PacketKind.RRES:
            self._on_rres(node_id, pkt)
        elif pkt.kind is PacketKind.DATA:
            self._on_data(node_id, pkt)
        elif pkt.kind is PacketKind.RERR:
            self._on_rerr(node_id, pkt)
        elif pkt.kind is PacketKind.NOTIFY:
            self._on_notify(node_id, pkt)
        elif pkt.kind is PacketKind.HELLO:
            self._on_hello(node_id, pkt)

    # -- RREQ ------------------------------------------------------------
    def _on_rreq(self, node_id: int, pkt: Packet) -> None:
        key = (pkt.origin, pkt.payload["seq"])
        node = self.network.nodes[node_id]
        targets: dict[int, Hashable] = pkt.payload["targets"]

        if node.kind is NodeKind.GATEWAY:
            if node_id not in targets:
                return
            if not self.gateway_accepts_rreq(node_id, pkt):
                return
            self._gateway_handle_rreq(node_id, pkt)
            return

        if key in self._seen_floods[node_id] or node_id in pkt.path:
            return
        self._seen_floods[node_id].add(key)

        if self.config.table_answering:
            answer = self._table_answer(node_id, targets)
            if answer is not None:
                full_path = pkt.path + answer.path
                self._send_rres(node_id, pkt.origin, full_path, answer.key, answer.gateway, pkt)
                return

        if pkt.ttl <= 1:
            self.metrics.on_drop("ttl")
            return
        fwd = pkt.fork(path=pkt.path + (node_id,), src=node_id, dst=None, ttl=pkt.ttl - 1,
                       hop_count=pkt.hop_count + 1)
        self._flood_send(node_id, fwd)

    def _flood_send(self, node_id: int, pkt: Packet) -> None:
        """Re-broadcast a flood frame, jittered on contention radios."""
        if self.channel.config.csma and self.config.flood_jitter > 0:
            delay = float(self.sim.rng.uniform(0.0, self.config.flood_jitter))
            self.sim.schedule(delay, self.channel.send, node_id, pkt)
        else:
            self.channel.send(node_id, pkt)

    def _table_answer(self, node_id: int, targets: dict[int, Hashable]) -> Optional[RouteEntry]:
        """Least-hop local entry matching any requested key (Property 1)."""
        wanted = set(targets.values())
        table = self.tables[node_id]
        candidates = [e for e in table.entries() if e.key in wanted]
        return min(candidates, key=lambda e: (e.hops, e.gateway), default=None)

    def gateway_answer_key(self, gateway: int, requested_key: Hashable) -> Hashable:
        """The key a gateway stamps on its response.

        MLR overrides this to the gateway's *true* current place: a sensor
        whose beliefs were poisoned (e.g. by a forged NOTIFY) may ask for
        the wrong place, but the authoritative answer always names where
        the gateway actually is.
        """
        return requested_key

    def _gateway_handle_rreq(self, gateway: int, pkt: Packet) -> None:
        path = pkt.path + (gateway,)
        key = self.gateway_answer_key(gateway, pkt.payload["targets"][gateway])
        if self.config.gateway_collect_timeout <= 0:
            flood = (pkt.origin, pkt.payload["seq"])
            if flood in self._seen_floods[gateway]:
                return
            self._seen_floods[gateway].add(flood)
            self._send_rres(gateway, pkt.origin, path, key, gateway, pkt)
            return
        # SecMLR-style collection: buffer paths, answer once with the best.
        bucket_key = (gateway, pkt.origin, pkt.payload["seq"])
        bucket = self._collect_buckets.setdefault(bucket_key, [])
        bucket.append(path)
        if len(bucket) == 1:
            self.sim.schedule(
                self.config.gateway_collect_timeout,
                self._gateway_answer_collected,
                bucket_key,
                key,
                pkt,
            )

    def _gateway_answer_collected(self, bucket_key, key: Hashable, pkt: Packet) -> None:
        gateway, origin, _seq = bucket_key
        paths = self._collect_buckets.pop(bucket_key, [])
        if not paths or not self.network.nodes[gateway].alive:
            return
        best = min(paths, key=len)  # path_ij = Min(|path_ij(k)|), Section 6.2.2
        self._send_rres(gateway, origin, best, key, gateway, pkt)

    def _send_rres(
        self,
        responder: int,
        origin: int,
        full_path: tuple[int, ...],
        key: Hashable,
        gateway: int,
        request: Packet,
    ) -> None:
        """Unicast a routing response back along ``full_path`` toward origin."""
        pos = full_path.index(responder)
        pkt = Packet(
            kind=PacketKind.RRES,
            origin=responder,
            target=origin,
            path=full_path,
            payload={
                "key": key,
                "gw": gateway,
                "pos": pos,
                "seq": request.payload["seq"],
            },
            payload_bytes=self.config.control_payload_bytes,
            created_at=self.sim.now,
        )
        pkt = self.decorate_rres(responder, pkt, origin)
        if pos == 0:
            # responder is the origin's neighbor table case — degenerate
            self._accept_rres(origin, pkt)
            return
        self._forward_rres(responder, pkt, pos)

    def _forward_rres(self, node_id: int, pkt: Packet, pos: int) -> None:
        prev = pkt.path[pos - 1]
        if not self._valid_node(prev):
            self.metrics.on_drop("misrouted")
            return
        if not self.network.nodes[prev].alive:
            self.metrics.on_drop("dead_next_hop")
            return
        nxt = pkt.fork(src=node_id, dst=prev, hop_count=pkt.hop_count + 1)
        nxt.payload["pos"] = pos - 1
        self.channel.send(node_id, nxt)

    def _on_rres(self, node_id: int, pkt: Packet) -> None:
        pos = pkt.payload["pos"]
        if pos >= len(pkt.path) or pkt.path[pos] != node_id:
            self.metrics.on_drop("misrouted")
            return
        if node_id == pkt.target and pos == 0:
            # The source verifies BEFORE installing anything: a forged or
            # altered response must not leave state behind.
            self._accept_rres(node_id, pkt)
            return
        self.on_rres_hop(node_id, pkt)
        self._forward_rres(node_id, pkt, pos)

    def _accept_rres(self, source: int, pkt: Packet) -> None:
        if not self.source_accepts_rres(source, pkt):
            return
        self.on_rres_hop(source, pkt)
        state = self._discovery.get(source)
        entry = RouteEntry(key=pkt.payload["key"], gateway=pkt.payload["gw"], path=tuple(pkt.path))
        if state is not None and state.seq == pkt.payload.get("seq"):
            state.responses.append(entry)
        else:
            # Late response: still useful, install if better.
            self.tables[source].install(entry, replace_worse_only=True)

    # -- DATA ------------------------------------------------------------
    def _on_data(self, node_id: int, pkt: Packet) -> None:
        node = self.network.nodes[node_id]
        if node.kind is NodeKind.GATEWAY:
            if not self.gateway_accepts_data(node_id, pkt):
                return
            self.metrics.on_data_delivered(pkt, node_id, self.sim.now)
            if self.delivery_callback is not None:
                self.delivery_callback(pkt, node_id)
            return

        traversed = list(pkt.payload.get("traversed", ()))
        if node_id in traversed or pkt.ttl <= 0:
            # Routing loop (stale entries can point at each other after
            # repairs) or hop budget exhausted: drop and purge the local
            # entry so the loop cannot re-form from this node's table.
            self.metrics.on_drop("loop" if node_id in traversed else "ttl")
            self.tables[node_id].remove(pkt.payload.get("key"))
            return
        traversed.append(node_id)
        fwd = pkt.fork()
        fwd.payload["traversed"] = traversed

        if pkt.path:
            # First packet on this route: install the suffix (Step 5.2).
            try:
                i = pkt.path.index(node_id)
            except ValueError:
                self.metrics.on_drop("misrouted")
                return
            suffix = RouteEntry(key=pkt.payload["key"], gateway=pkt.path[-1], path=pkt.path[i:])
            self.tables[node_id].install(suffix, replace_worse_only=True)
            if i + 1 >= len(pkt.path):
                self.metrics.on_drop("misrouted")
                return
            self._forward_data(node_id, fwd, pkt.path[i + 1])
            return

        entry = self.tables[node_id].get(pkt.payload.get("key"))
        if entry is None:
            # The source-routed announcement for this flow never reached us
            # (lost or swallowed en route): bounce the payload back so the
            # source re-announces / re-routes.
            self.metrics.on_drop("no_route")
            if self.config.repair_routes:
                self._report_route_error(node_id, fwd)
            return
        next_hop = entry.next_hop if entry.hops > 0 else entry.gateway
        next_hop = self.gateway_for_key(node_id, entry.key, next_hop) if entry.hops <= 1 else next_hop
        self._forward_data(node_id, fwd, next_hop)

    # -- RERR ------------------------------------------------------------
    def _on_rerr(self, node_id: int, pkt: Packet) -> None:
        pos = pkt.payload["pos"]
        back = pkt.payload["back_path"]
        if node_id == pkt.target:
            self._handle_route_error_at_source(node_id, pkt.payload["key"], pkt.payload["data"])
            return
        if pos >= len(back) or back[pos] != node_id or pos == 0:
            self.metrics.on_drop("misrouted")
            return
        # The downstream segment of this route is broken: purge the local
        # entry so Property-1 table answering stops advertising it.
        self.tables[node_id].remove(pkt.payload["key"])
        prev = back[pos - 1]
        if not self._valid_node(prev) or not self.network.nodes[prev].alive:
            self.metrics.on_drop("unrepairable")
            return
        nxt = pkt.fork(src=node_id, dst=prev, hop_count=pkt.hop_count + 1)
        nxt.payload["pos"] = pos - 1
        self.channel.send(node_id, nxt)

    # -- NOTIFY / HELLO ----------------------------------------------------
    def _on_notify(self, node_id: int, pkt: Packet) -> None:
        """Gateway place notifications only exist in MLR/SecMLR."""

    def _on_hello(self, node_id: int, pkt: Packet) -> None:
        """HELLO beacons are inert by default (used by the HELLO-flood attack)."""
