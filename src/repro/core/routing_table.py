"""Routing state stored on sensor nodes.

Three structures, straight from the paper:

* :class:`RouteEntry` — one row of Table 1: a destination key (gateway id
  for SPR, feasible-place label for MLR), the hop count and the full path.
* :class:`RoutingTable` — the per-node table.  For MLR it *accumulates*
  entries round by round ("our principle is to accumulate routing tables
  round by round", Section 5.3) and selects the best among the places
  occupied in the current round.
* :class:`ForwardingEntry` — SecMLR's 4-tuple ``(source, destination,
  immediate sender, immediate receiver)`` installed along a discovered
  path (Section 6.2.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Optional

from repro.exceptions import RoutingError

__all__ = ["RouteEntry", "ForwardingEntry", "RoutingTable"]


@dataclass(frozen=True)
class RouteEntry:
    """A route from this node to a gateway.

    ``path`` starts at the owning node and ends at the gateway, inclusive
    (``path[0]`` is the owner, ``path[-1]`` the gateway), so
    ``hops == len(path) - 1``.
    """

    key: Hashable  # gateway id (SPR) or feasible-place label (MLR)
    gateway: int
    path: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.path) < 1:
            raise RoutingError("a route path cannot be empty")
        if self.path[-1] != self.gateway:
            raise RoutingError("route path must end at the gateway")

    @property
    def hops(self) -> int:
        return len(self.path) - 1

    @property
    def next_hop(self) -> int:
        """First forwarding hop (the gateway itself for 1-hop routes)."""
        if len(self.path) == 1:
            return self.gateway
        return self.path[1]

    def suffix_from(self, node_id: int) -> "RouteEntry":
        """Sub-path entry from ``node_id`` to the gateway (Property 1).

        Property 1: a sub-path of a shortest path is itself a shortest
        path, so any node on ``path`` can install/answer with its suffix.
        """
        try:
            i = self.path.index(node_id)
        except ValueError:
            raise RoutingError(f"{node_id} is not on path {self.path}") from None
        return RouteEntry(key=self.key, gateway=self.gateway, path=self.path[i:])


@dataclass(frozen=True)
class ForwardingEntry:
    """SecMLR data-forwarding 4-tuple (Section 6.2.4, Fig. 6).

    ``(source, destination, immediate_sender, immediate_receiver)`` — a
    node forwards a DATA packet only if a matching entry exists; the entry
    names who the packet must arrive from and where it goes next.

    Under gateway mobility the stable identity of a destination is its
    feasible *place*, not the gateway node that happened to answer the
    discovery (the same gateway serves different places in different
    rounds); ``route_key`` carries that identity and, when set, is the
    lookup key alongside ``source``.
    """

    source: int
    destination: int
    immediate_sender: Optional[int]  # None at the source itself
    immediate_receiver: int
    route_key: Optional[Hashable] = None

    @property
    def lookup_key(self) -> Hashable:
        return self.route_key if self.route_key is not None else self.destination


class RoutingTable:
    """Per-node routing state.

    Route entries are keyed by destination key; SecMLR forwarding entries
    are keyed by ``(source, destination)``.
    """

    def __init__(self, owner: int) -> None:
        self.owner = owner
        self._routes: dict[Hashable, RouteEntry] = {}
        self._forwarding: dict[tuple[int, int], ForwardingEntry] = {}
        #: no-arg callback fired after any *route* mutation (install that
        #: changed the table, remove of a present key, clear, purge that
        #: dropped route rows).  SecMLR forwarding 4-tuples do not fire
        #: it — they never affect route selection.  The struct-of-arrays
        #: world uses this to mirror ``best().next_hop`` into the
        #: :class:`~repro.sim.state.NodeStateStore` route columns.
        self.on_change: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------
    # route entries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._routes

    def keys(self) -> list[Hashable]:
        return list(self._routes.keys())

    def get(self, key: Hashable) -> Optional[RouteEntry]:
        return self._routes.get(key)

    def install(self, entry: RouteEntry, replace_worse_only: bool = False) -> bool:
        """Install a route entry.

        With ``replace_worse_only`` the entry is kept only if it is strictly
        better (fewer hops) than an existing entry for the same key —
        discovery responses may arrive in any order.
        Returns True if the table changed.
        """
        if entry.path[0] != self.owner:
            raise RoutingError(
                f"entry path {entry.path} does not start at owner {self.owner}"
            )
        current = self._routes.get(entry.key)
        if replace_worse_only and current is not None and current.hops <= entry.hops:
            return False
        self._routes[entry.key] = entry
        if self.on_change is not None:
            self.on_change()
        return True

    def remove(self, key: Hashable) -> None:
        if self._routes.pop(key, None) is not None and self.on_change is not None:
            self.on_change()

    def clear(self) -> None:
        """Drop every route and forwarding entry (recovered-node rejoin:
        a node returning from a crash cannot trust its pre-crash state)."""
        self._routes.clear()
        self._forwarding.clear()
        if self.on_change is not None:
            self.on_change()

    def purge_through(self, node_id: int) -> int:
        """Remove all state that routes through (or at) ``node_id``.

        Covers route entries whose path visits the node and SecMLR
        forwarding 4-tuples that name it as an endpoint or immediate
        hop.  Returns how many entries were removed — the recovery
        rejoin uses this to decide whether anything was stale.
        """
        stale = [k for k, e in self._routes.items() if node_id in e.path]
        for k in stale:
            del self._routes[k]
        stale_fwd = [
            k for k, e in self._forwarding.items()
            if node_id in (e.source, e.destination, e.immediate_sender, e.immediate_receiver)
        ]
        for k in stale_fwd:
            del self._forwarding[k]
        if stale and self.on_change is not None:
            self.on_change()
        return len(stale) + len(stale_fwd)

    def best(self, active_keys: Optional[Iterable[Hashable]] = None) -> Optional[RouteEntry]:
        """Least-hops entry, optionally restricted to ``active_keys``.

        This is MLR's per-round selection: among the places currently
        hosting a gateway, pick the shortest path.  Ties break on the
        smaller key representation for determinism.
        """
        pool = self._routes.values()
        if active_keys is not None:
            wanted = set(active_keys)
            pool = [e for e in self._routes.values() if e.key in wanted]
        return min(pool, key=lambda e: (e.hops, str(e.key)), default=None)

    def entries(self) -> list[RouteEntry]:
        """All entries, ordered by key for stable display (Table 1 rows)."""
        return sorted(self._routes.values(), key=lambda e: str(e.key))

    # ------------------------------------------------------------------
    # SecMLR forwarding entries
    # ------------------------------------------------------------------
    def install_forwarding(self, entry: ForwardingEntry) -> None:
        self._forwarding[(entry.source, entry.lookup_key)] = entry

    def match_forwarding(self, source: int, destination: Hashable) -> Optional[ForwardingEntry]:
        """The 4-tuple for flow ``source -> destination``, if installed.

        ``destination`` is the entry's lookup key: the route key (feasible
        place) when one was recorded, the gateway id otherwise.
        """
        return self._forwarding.get((source, destination))

    @property
    def forwarding_entries(self) -> list[ForwardingEntry]:
        return list(self._forwarding.values())
