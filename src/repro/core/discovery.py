"""Flood/discovery engine: Steps 2-4 of the Section 5.2 skeleton.

The middle layer of the protocol stack.  It owns everything between "a
source has no route" and "a route entry is installed":

Step 2
    :meth:`FloodDiscoveryEngine._start_discovery` floods an RREQ naming
    its target gateways; duplicate suppression is per ``(origin, seq)``,
    re-broadcasts are jittered on contention radios.
Step 3
    Intermediate nodes holding a matching route answer from their tables
    instead of re-flooding (Property 1 — the ``table_answering`` switch
    exists so the ablation benchmark can turn it off); gateways answer
    with the accumulated path, either immediately or after the SecMLR
    collect window.  Responses travel hop-by-hop back along the reverse
    of the recorded path.
Step 4
    After ``discovery_timeout`` the source picks the least-hop response
    (ties break on gateway id) and installs the entry; empty rounds back
    off linearly and retry up to ``max_discovery_attempts``.

The engine is a mixin: it calls the policy hooks of
:class:`repro.core.policy.ProtocolPolicy` (``decorate_rreq``,
``gateway_accepts_rreq``, ``gateway_answer_key``, ...) and hands installed
routes to :class:`repro.core.dataplane.DataPlaneForwarder` for the queued
payloads — all through ``self``, so MLR/SecMLR can override any stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional

from repro.core.routing_table import RouteEntry
from repro.sim.node import NodeKind
from repro.sim.packet import Packet, PacketKind

__all__ = ["_DiscoveryState", "FloodDiscoveryEngine"]


@dataclass
class _DiscoveryState:
    seq: int
    targets: dict[int, Hashable]  # gateway id -> table key
    responses: list[RouteEntry] = field(default_factory=list)
    attempts: int = 1


class FloodDiscoveryEngine:
    """RREQ flood out, RRES hop-back, least-hop selection (Steps 2-4)."""

    # ------------------------------------------------------------------
    # discovery lifecycle
    # ------------------------------------------------------------------
    def _start_discovery(self, source: int, attempts: int = 1) -> None:
        targets = self.discovery_targets(source)
        if not targets:
            self._fail_discovery(source)
            return
        seq = next(self._seq)
        self._discovery[source] = _DiscoveryState(seq=seq, targets=targets, attempts=attempts)
        pkt = Packet(
            kind=PacketKind.RREQ,
            origin=source,
            target=None,
            path=(source,),
            payload={"seq": seq, "targets": dict(targets)},
            payload_bytes=self.config.control_payload_bytes,
            ttl=self.config.ttl,
            created_at=self.sim.now,
        )
        pkt = self.decorate_rreq(source, pkt, targets)
        self._seen_floods[source].add((source, seq))
        self.channel.send(source, pkt.fork(src=source, dst=None))
        self.sim.schedule(self.config.discovery_timeout, self._finish_discovery, source, seq)

    def _finish_discovery(self, source: int, seq: int) -> None:
        state = self._discovery.get(source)
        if state is None or state.seq != seq:
            return  # superseded
        if not state.responses:
            del self._discovery[source]
            if state.attempts < self.config.max_discovery_attempts:
                self._schedule_retry(source, state.attempts)
            else:
                self._fail_discovery(source)
            return
        best = min(state.responses, key=lambda e: (e.hops, e.gateway))
        self.tables[source].install(best, replace_worse_only=True)
        del self._discovery[source]
        for payload in self._take_pending(source):
            self._dispatch_or_queue(source, payload)

    def _schedule_retry(self, source: int, attempts: int) -> None:
        """Back off linearly between discovery attempts.

        Immediate re-flooding after a timeout amplifies exactly the
        congestion that caused the timeout; spreading retries lets the
        channel drain (only matters on contention radios, but is harmless
        on the ideal one).
        """
        delay = 0.0
        if self.channel.config.csma:
            delay = attempts * self.config.discovery_timeout
            delay += float(
                self.sim.node_rng(source).uniform(0.0, self.config.discovery_timeout)
            )
        self.sim.schedule(delay, self._retry_discovery, source, attempts)

    def _retry_discovery(self, source: int, attempts: int) -> None:
        if source in self._discovery:
            return
        if not self.network.nodes[source].alive:
            # A dead source can never finish discovery: drain its queued
            # data to a terminal state instead of stranding it forever.
            for payload in self._take_pending(source):
                self.metrics.on_terminal_drop(
                    "dead_source",
                    key=(source, payload["data_id"]),
                    node=source,
                    now=self.sim.now,
                )
            return
        self._start_discovery(source, attempts=attempts + 1)

    def _fail_discovery(self, source: int) -> None:
        for payload in self._take_pending(source):
            self.metrics.on_terminal_drop(
                "no_route", key=(source, payload["data_id"]), node=source, now=self.sim.now
            )

    # ------------------------------------------------------------------
    # recovery rejoin
    # ------------------------------------------------------------------
    def on_node_recovered(self, node_id: int) -> None:
        """Rejoin a node that just recovered from an injected failure.

        A recovered node cannot trust its pre-crash routing state, and
        the rest of the network cannot trust entries routed through it
        (the node's own suffix entries are gone, so those paths now
        dead-end).  The clean rejoin therefore:

        1. wipes the recovered node's own routes, forwarding entries
           and flood-suppression memory;
        2. purges every other node's entries through the node, plus the
           source-route announcements over those paths, so the next DATA
           on an affected flow re-discovers and re-announces;
        3. restarts discovery for data still queued at the node (its
           in-progress discovery died with it — queued datums would
           otherwise sit stuck until the strict audit flags them).

        Called by the fault injector after :meth:`~repro.sim.node.Node.
        recover` reports the node actually came back alive; never for
        battery-dead nodes.
        """
        self.tables[node_id].clear()
        self._seen_floods[node_id].clear()
        self._purge_routes_through(node_id)
        self._discovery.pop(node_id, None)
        if self._pending_data.get(node_id):
            self._start_discovery(node_id)

    # ------------------------------------------------------------------
    # RREQ flood (Step 2/3)
    # ------------------------------------------------------------------
    def _on_rreq(self, node_id: int, pkt: Packet) -> None:
        key = (pkt.origin, pkt.payload["seq"])
        node = self.network.nodes[node_id]
        targets: dict[int, Hashable] = pkt.payload["targets"]

        if node.kind is NodeKind.GATEWAY:
            if node_id not in targets:
                return
            if not self.gateway_accepts_rreq(node_id, pkt):
                return
            self._gateway_handle_rreq(node_id, pkt)
            return

        if key in self._seen_floods[node_id] or node_id in pkt.path:
            return
        self._seen_floods[node_id].add(key)

        if self.config.table_answering:
            answer = self._table_answer(node_id, targets)
            if answer is not None:
                full_path = pkt.path + answer.path
                self._send_rres(node_id, pkt.origin, full_path, answer.key, answer.gateway, pkt)
                return

        if pkt.ttl <= 1:
            self.metrics.on_drop("ttl")
            return
        fwd = pkt.fork(path=pkt.path + (node_id,), src=node_id, dst=None, ttl=pkt.ttl - 1,
                       hop_count=pkt.hop_count + 1)
        self._flood_send(node_id, fwd)

    def _flood_send(self, node_id: int, pkt: Packet) -> None:
        """Re-broadcast a flood frame, jittered on contention radios."""
        if self.channel.config.csma and self.config.flood_jitter > 0:
            delay = float(
                self.sim.node_rng(node_id).uniform(0.0, self.config.flood_jitter)
            )
            self.sim.schedule(delay, self.channel.send, node_id, pkt)
        else:
            self.channel.send(node_id, pkt)

    def _table_answer(self, node_id: int, targets: dict[int, Hashable]) -> Optional[RouteEntry]:
        """Least-hop local entry matching any requested key (Property 1)."""
        wanted = set(targets.values())
        table = self.tables[node_id]
        candidates = [e for e in table.entries() if e.key in wanted]
        return min(candidates, key=lambda e: (e.hops, e.gateway), default=None)

    def _gateway_handle_rreq(self, gateway: int, pkt: Packet) -> None:
        path = pkt.path + (gateway,)
        key = self.gateway_answer_key(gateway, pkt.payload["targets"][gateway])
        if self.config.gateway_collect_timeout <= 0:
            flood = (pkt.origin, pkt.payload["seq"])
            if flood in self._seen_floods[gateway]:
                return
            self._seen_floods[gateway].add(flood)
            self._send_rres(gateway, pkt.origin, path, key, gateway, pkt)
            return
        # SecMLR-style collection: buffer paths, answer once with the best.
        bucket_key = (gateway, pkt.origin, pkt.payload["seq"])
        bucket = self._collect_buckets.setdefault(bucket_key, [])
        bucket.append(path)
        if len(bucket) == 1:
            self.sim.schedule(
                self.config.gateway_collect_timeout,
                self._gateway_answer_collected,
                bucket_key,
                key,
                pkt,
            )

    def _gateway_answer_collected(self, bucket_key, key: Hashable, pkt: Packet) -> None:
        gateway, origin, _seq = bucket_key
        paths = self._collect_buckets.pop(bucket_key, [])
        if not paths or not self.network.nodes[gateway].alive:
            return
        best = min(paths, key=len)  # path_ij = Min(|path_ij(k)|), Section 6.2.2
        self._send_rres(gateway, origin, best, key, gateway, pkt)

    # ------------------------------------------------------------------
    # RRES hop-back (Step 3/4)
    # ------------------------------------------------------------------
    def _send_rres(
        self,
        responder: int,
        origin: int,
        full_path: tuple[int, ...],
        key: Hashable,
        gateway: int,
        request: Packet,
    ) -> None:
        """Unicast a routing response back along ``full_path`` toward origin."""
        pos = full_path.index(responder)
        pkt = Packet(
            kind=PacketKind.RRES,
            origin=responder,
            target=origin,
            path=full_path,
            payload={
                "key": key,
                "gw": gateway,
                "pos": pos,
                "seq": request.payload["seq"],
            },
            payload_bytes=self.config.control_payload_bytes,
            created_at=self.sim.now,
        )
        pkt = self.decorate_rres(responder, pkt, origin)
        if pos == 0:
            # responder is the origin's neighbor table case — degenerate
            self._accept_rres(origin, pkt)
            return
        self._forward_rres(responder, pkt, pos)

    def _forward_rres(self, node_id: int, pkt: Packet, pos: int) -> None:
        prev = pkt.path[pos - 1]
        if not self._valid_node(prev):
            self.metrics.on_drop("misrouted")
            return
        if not self._believed_alive(prev):
            # Belief, not ground truth: a battery death within one header
            # airtime is still invisible here (see DataPlaneForwarder).
            self.metrics.on_drop("dead_next_hop")
            return
        nxt = pkt.fork(src=node_id, dst=prev, hop_count=pkt.hop_count + 1)
        nxt.payload["pos"] = pos - 1
        self.channel.send(node_id, nxt)

    def _on_rres(self, node_id: int, pkt: Packet) -> None:
        pos = pkt.payload["pos"]
        if pos >= len(pkt.path) or pkt.path[pos] != node_id:
            self.metrics.on_drop("misrouted")
            return
        if node_id == pkt.target and pos == 0:
            # The source verifies BEFORE installing anything: a forged or
            # altered response must not leave state behind.
            self._accept_rres(node_id, pkt)
            return
        self.on_rres_hop(node_id, pkt)
        self._forward_rres(node_id, pkt, pos)

    def _accept_rres(self, source: int, pkt: Packet) -> None:
        if not self.source_accepts_rres(source, pkt):
            return
        self.on_rres_hop(source, pkt)
        state = self._discovery.get(source)
        entry = RouteEntry(key=pkt.payload["key"], gateway=pkt.payload["gw"], path=tuple(pkt.path))
        if state is not None and state.seq == pkt.payload.get("seq"):
            state.responses.append(entry)
        else:
            # Late response: still useful, install if better.
            self.tables[source].install(entry, replace_worse_only=True)
