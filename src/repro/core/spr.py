"""SPR — Shortest Path Routing (Section 5.2).

SPR is the base discovery machinery with routes keyed by gateway id: every
discovery queries *all* gateways ("Si floods a query packet RREQ with m
destinations", Step 2), the source selects the least-hop response
(Step 4), and the first DATA source-routes so on-path nodes install their
suffixes (Step 5, justified by Property 1).

With a single gateway this is exactly the *flat* single-sink protocol the
paper argues against, which is how the baselines reuse it
(:class:`repro.baselines.flat.FlatSinkRouting`).
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.core.base import DiscoveryProtocol, ProtocolConfig
from repro.core.routing_table import RouteEntry
from repro.exceptions import RoutingError
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.radio import Channel

__all__ = ["SPR"]


class SPR(DiscoveryProtocol):
    """Multi-gateway minimum-hop routing.

    Examples
    --------
    Build a world, attach SPR and send one datum::

        world = (
            WorldBuilder()
            .seed(0)
            .sensors(sensors)
            .gateways(gateways)
            .comm_range(40)
            .build()
        )
        spr = world.attach(SPR)
        spr.send_data(source=0)
        world.sim.run()
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        channel: Channel,
        config: Optional[ProtocolConfig] = None,
    ) -> None:
        if not network.gateway_ids:
            raise RoutingError("SPR requires at least one gateway")
        super().__init__(sim, network, channel, config)

    # Routes are keyed by gateway id; all gateways are always active.
    def entry_key_for(self, gateway_id: int) -> Hashable:
        return gateway_id

    def best_gateway_of(self, source: int) -> Optional[int]:
        """The gateway the source currently routes to (None = undiscovered)."""
        entry = self.tables[source].best()
        return None if entry is None else entry.gateway

    def route_of(self, source: int) -> Optional[RouteEntry]:
        """The installed best route of ``source`` (None = undiscovered)."""
        return self.tables[source].best()
