"""Protocol-policy layer: the knobs and hooks SPR / MLR / SecMLR implement.

This is the thin top layer of the protocol stack.  The mechanism lives in
the two layers below — :class:`repro.core.discovery.FloodDiscoveryEngine`
(RREQ flood, table answering, RRES hop-back, least-hop selection) and
:class:`repro.core.dataplane.DataPlaneForwarder` (source-routed first
packet, table forwarding, RERR repair) — while everything a concrete
protocol *decides* is declared here:

* which routing-table keys exist and which gateways a discovery targets
  (:meth:`ProtocolPolicy.entry_key_for`, :meth:`~ProtocolPolicy.discovery_targets`,
  :meth:`~ProtocolPolicy.active_keys`, :meth:`~ProtocolPolicy.gateway_for_key`,
  :meth:`~ProtocolPolicy.gateway_answer_key`) — SPR keys routes by gateway id,
  MLR by feasible place;
* how control/data frames are decorated and validated
  (``decorate_* / *_accepts_* / on_rres_hop``) — SecMLR hangs its
  4-tuple authentication off these;
* what NOTIFY / HELLO frames mean (:meth:`~ProtocolPolicy.on_notify` via
  ``_on_notify`` — place announcements in MLR/SecMLR, inert otherwise).

The hooks are deliberately plain methods on a mixin (not a delegate
object): the concrete protocols override internals of all three layers
freely, and a single class per protocol keeps every override resolvable
on ``self``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Optional

from repro.core.routing_table import RouteEntry
from repro.sim.packet import DATA_PAYLOAD_BYTES, Packet

__all__ = ["ProtocolConfig", "ProtocolPolicy"]


@dataclass(frozen=True)
class ProtocolConfig:
    """Tunables shared by all protocols in :mod:`repro.core`."""

    discovery_timeout: float = 0.25
    """Seconds a source waits collecting RRES before choosing (Step 4)."""

    gateway_collect_timeout: float = 0.0
    """Seconds a gateway buffers RREQ copies before answering with the
    least-hop path; 0 answers the first copy immediately (plain SPR).
    SecMLR sets this per Section 6.2.2."""

    table_answering: bool = True
    """Property-1 optimisation: nodes with a matching route answer RREQs
    from their tables and do not re-flood."""

    max_discovery_attempts: int = 3
    """Discovery retries before queued data is dropped as unroutable."""

    data_payload_bytes: int = DATA_PAYLOAD_BYTES
    control_payload_bytes: int = 8
    ttl: int = 32
    """Flood TTL (max hops, Section 2.2.1 style bound)."""

    repair_routes: bool = True
    """Send RERR to the source on a dead next hop and redirect."""

    flood_jitter: float = 0.01
    """Random delay before re-broadcasting a flood frame, applied only on
    contention radios (CSMA enabled).  Desynchronises rebroadcasts so a
    flood does not collide with itself at every hidden terminal; on the
    ideal radio it stays zero so floods arrive in BFS order."""

    max_repairs_per_packet: int = 3
    """Redirect attempts before a data packet is abandoned.  Bounds the
    repair loop when stale tables keep advertising routes through dead
    nodes faster than RERRs purge them."""


class ProtocolPolicy:
    """Default (SPR-shaped) policy decisions; subclasses specialise."""

    # ------------------------------------------------------------------
    # routing policy (overridden by SPR / MLR / SecMLR)
    # ------------------------------------------------------------------
    def entry_key_for(self, gateway_id: int) -> Hashable:
        """Routing-table key under which routes to this gateway live."""
        return gateway_id

    def discovery_targets(self, source: int) -> dict[int, Hashable]:
        """Gateways (id -> key) a new discovery from ``source`` should query."""
        return {g: self.entry_key_for(g) for g in self.network.gateway_ids}

    def active_keys(self, node_id: int) -> Optional[Iterable[Hashable]]:
        """Table keys usable *right now* (None = all keys usable)."""
        return None

    def gateway_for_key(self, node_id: int, key: Hashable, recorded: int) -> int:
        """The gateway node currently serving ``key`` (MLR rebinds places)."""
        return recorded

    def gateway_answer_key(self, gateway: int, requested_key: Hashable) -> Hashable:
        """The key a gateway stamps on its response.

        MLR overrides this to the gateway's *true* current place: a sensor
        whose beliefs were poisoned (e.g. by a forged NOTIFY) may ask for
        the wrong place, but the authoritative answer always names where
        the gateway actually is.
        """
        return requested_key

    # ------------------------------------------------------------------
    # security hooks (SecMLR overrides)
    # ------------------------------------------------------------------
    def decorate_rreq(self, source: int, packet: Packet, targets: dict[int, Hashable]) -> Packet:
        return packet

    def gateway_accepts_rreq(self, gateway: int, packet: Packet) -> bool:
        return True

    def decorate_rres(self, gateway: int, packet: Packet, origin: int) -> Packet:
        return packet

    def source_accepts_rres(self, source: int, packet: Packet) -> bool:
        return True

    def on_rres_hop(self, node_id: int, packet: Packet) -> None:
        """Called at every node an RRES traverses (SecMLR installs 4-tuples)."""

    def decorate_data(self, source: int, packet: Packet, entry: RouteEntry) -> Packet:
        return packet

    def gateway_accepts_data(self, gateway: int, packet: Packet) -> bool:
        return True

    # ------------------------------------------------------------------
    # auxiliary frame kinds
    # ------------------------------------------------------------------
    def _on_notify(self, node_id: int, pkt: Packet) -> None:
        """Gateway place notifications only exist in MLR/SecMLR."""

    def _on_hello(self, node_id: int, pkt: Packet) -> None:
        """HELLO beacons are inert by default (used by the HELLO-flood attack)."""
