"""Topology control by sleep scheduling (Section 4.4).

The paper names two topology-control families — power control and sleep
scheduling — and defers both to future work.  This module implements the
sleep-scheduling half in the GAF style the paper cites ([26], Section
2.2.3): the field is partitioned into *virtual grid cells* small enough
that any node in one cell can talk to any node in every 4-adjacent cell;
then one *coordinator* per cell suffices for routing, and everyone else
can sleep with the radio off.

Cell side: nodes at opposite far corners of 4-adjacent cells are at most
``sqrt(r^2) = r`` apart when the side is ``r / sqrt(5)`` (GAF's bound),
so connectivity of the coordinator subgraph mirrors connectivity of the
full graph.

Coordinators rotate by **residual energy** each epoch — the node with the
most battery left serves, which is the balanced-energy-use principle of
eq. (1) applied to duty cycling.

Usage::

    scheduler = SleepScheduler(network)
    scheduler.apply_epoch()     # picks coordinators, sleeps the rest
    ...run a round of traffic (senders are woken automatically by wake())
    scheduler.apply_epoch()     # rotate

Sleeping nodes neither transmit nor receive (``Node.alive`` is False); a
node with data of its own is woken by :meth:`SleepScheduler.wake_to_send`
and resumes sleeping at the next epoch boundary.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.sim.network import Network

__all__ = ["SleepScheduler"]


class SleepScheduler:
    """GAF-style virtual-grid duty cycling over a sensor network."""

    def __init__(self, network: Network, cell_side: Optional[float] = None) -> None:
        self.network = network
        side = cell_side if cell_side is not None else network.comm_range / math.sqrt(5.0)
        if side <= 0:
            raise ConfigurationError("cell side must be positive")
        self.cell_side = side
        self._cells: dict[tuple[int, int], list[int]] = defaultdict(list)
        sensor_ids = network.sensor_ids
        if sensor_ids:
            # One vectorised floor-divide instead of a per-node cell_of()
            # round trip through the position array.
            cells = np.floor(network.positions[sensor_ids] / side).astype(np.int64)
            for s, key in zip(sensor_ids, map(tuple, cells.tolist())):
                self._cells[key].append(s)
        self.epoch = -1
        self.coordinators: dict[tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    def cell_of(self, node_id: int) -> tuple[int, int]:
        """Virtual grid cell coordinates of a node."""
        x, y = self.network.positions[node_id]
        return (int(math.floor(x / self.cell_side)), int(math.floor(y / self.cell_side)))

    def cell_members(self, cell: tuple[int, int]) -> list[int]:
        """Sensors deployed in ``cell`` (dead ones included)."""
        return list(self._cells.get(cell, []))

    @property
    def num_cells(self) -> int:
        return len(self._cells)

    # ------------------------------------------------------------------
    def apply_epoch(self) -> dict[tuple[int, int], int]:
        """Start a new epoch: elect coordinators, sleep everyone else.

        The member with the largest residual energy coordinates (ties
        break on node id for determinism); nodes that died stay dead.
        Returns the coordinator map.
        """
        self.epoch += 1
        self.coordinators = {}
        for cell, members in self._cells.items():
            candidates = [
                s for s in members
                if self.network.nodes[s].energy.alive and not self.network.nodes[s].failed
            ]
            if not candidates:
                continue
            coordinator = max(
                candidates,
                key=lambda s: (self.network.nodes[s].energy.remaining, -s),
            )
            self.coordinators[cell] = coordinator
            for s in candidates:
                self.network.nodes[s].sleeping = s != coordinator
        return dict(self.coordinators)

    def wake_all(self) -> None:
        """End duty cycling: wake every sleeping sensor."""
        for members in self._cells.values():
            for s in members:
                self.network.nodes[s].sleeping = False

    def wake_to_send(self, node_id: int) -> None:
        """Wake a sleeping node that has its own datum to report.

        The node stays awake until the next :meth:`apply_epoch` (it needs
        to hear the route response and any link-layer traffic).
        """
        self.network.nodes[node_id].sleeping = False

    # ------------------------------------------------------------------
    def awake_sensors(self) -> list[int]:
        return [s for s in self.network.sensor_ids if self.network.nodes[s].alive]

    def sleeping_sensors(self) -> list[int]:
        return [s for s in self.network.sensor_ids if self.network.nodes[s].sleeping]

    def duty_cycle(self) -> float:
        """Fraction of living sensors currently awake."""
        living = [
            s for s in self.network.sensor_ids
            if self.network.nodes[s].energy.alive and not self.network.nodes[s].failed
        ]
        if not living:
            return 0.0
        awake = sum(1 for s in living if not self.network.nodes[s].sleeping)
        return awake / len(living)

    def coordinator_backbone_connected(self) -> bool:
        """Whether every coordinator can reach a gateway through awake nodes."""
        hops = self.network.hops_to(self.network.gateway_ids)
        return all(c in hops for c in self.coordinators.values())
