"""Data-plane forwarder: Steps 1 and 5 plus RERR route repair.

The bottom layer of the protocol stack.  It moves application payloads
once the :class:`~repro.core.discovery.FloodDiscoveryEngine` has installed
routes:

Step 1
    :meth:`DataPlaneForwarder.send_data` checks the local routing table;
    with a usable entry the DATA goes straight out, otherwise the payload
    is queued and a discovery starts.
Step 5
    The first DATA packet on a route carries the source route; every node
    it traverses installs its path suffix (Property 1 again), and
    subsequent packets are forwarded from tables only.

Fault handling: forwarders check next-hop liveness (the abstraction of a
HELLO/link-layer beacon) and return a RERR carrying the stranded payload
back to the source, which removes the broken entry and redirects via
another gateway — the paper's fault-tolerance behaviour ("sensor nodes may
redirect data transmission using other routes", Section 8).  Redirects
are bounded by ``max_repairs_per_packet`` and gated on ``repair_routes``.

Liveness checks about *another* node go through :meth:`_believed_alive`:
knowledge of a battery death travels no faster than a frame, so a
neighbour's exhaustion becomes visible one MAC-header airtime after it
happens.  Injected fail-stop crashes stay instantly visible (the HELLO
abstraction the recovery experiments rely on); a node reading its *own*
state always sees the truth.

Like the discovery engine, this is a mixin operating through ``self``:
MLR overrides :meth:`_dispatch_or_queue` (round gating), SecMLR overrides
:meth:`_transmit_data` / :meth:`_on_data` (authentication); the policy
hooks (``gateway_for_key``, ``decorate_data``, ``gateway_accepts_data``)
come from :class:`repro.core.policy.ProtocolPolicy`.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.exceptions import RoutingError
from repro.core.routing_table import RouteEntry
from repro.sim.node import NodeKind
from repro.sim.packet import MAC_HEADER_BYTES, Packet, PacketKind

__all__ = ["DataPlaneForwarder"]


class DataPlaneForwarder:
    """Table-driven DATA forwarding with RERR repair (Steps 1 and 5)."""

    # ------------------------------------------------------------------
    # routing-layer liveness belief
    # ------------------------------------------------------------------
    @property
    def _death_latency(self) -> float:
        """How long a battery death stays invisible to other nodes.

        One MAC-header airtime: the fastest any frame — hence any
        death evidence — can cross a link.  This equals the sharded
        executor's window lookahead, which is exactly what makes
        barrier-mirrored liveness bit-identical across workers: a flip
        always reaches every worker before any node there is allowed
        to observe it.
        """
        latency = getattr(self, "_death_latency_cache", None)
        if latency is None:
            latency = self.channel.config.airtime(8 * MAC_HEADER_BYTES)
            self._death_latency_cache = latency
        return latency

    def _believed_alive(self, node_id: int) -> bool:
        """What the routing layer believes about ANOTHER node's liveness.

        Battery deaths propagate with :attr:`_death_latency`; injected
        fail-stop crashes (fault experiments, never sharded) remain
        instantly visible — recovery probing depends on the failed
        flag's HELLO abstraction.  Never use this for a node's reads of
        its own state.
        """
        node = self.network.nodes[node_id]
        if node.alive:
            return True
        died = node.died_at
        if died is None:
            return False  # crash or sleep: instant visibility
        return self.sim.now < died + self._death_latency

    # ------------------------------------------------------------------
    # public API (Step 1)
    # ------------------------------------------------------------------
    def send_data(
        self,
        source: int,
        payload_bytes: int | None = None,
        data_id: int | None = None,
    ) -> int:
        """Application call: sensor ``source`` has one sensed datum to report.

        Returns the data id used in delivery records.  Implements Step 1:
        route from table when possible, otherwise queue + discover.
        ``data_id`` defaults to a process-local counter; sharded execution
        passes it explicitly so every worker labels the datum with the
        same *global* identity.
        """
        node = self.network.nodes[source]
        if node.kind is not NodeKind.SENSOR:
            raise RoutingError(f"only sensors generate data (node {source} is {node.kind})")
        if data_id is None:
            data_id = next(self._data_ids)
        self.metrics.on_data_generated(origin=source, data_id=data_id, now=self.sim.now)
        if not node.alive:
            self.metrics.on_terminal_drop(
                "dead_source", key=(source, data_id), node=source, now=self.sim.now
            )
            return data_id
        payload = {
            "data_id": data_id,
            "bytes": payload_bytes if payload_bytes is not None else self.config.data_payload_bytes,
        }
        self._dispatch_or_queue(source, payload)
        return data_id

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def _dispatch_or_queue(self, source: int, payload: dict[str, Any]) -> None:
        entry = self.tables[source].best(self.active_keys(source))
        if entry is not None:
            self._transmit_data(source, entry, payload)
            return
        self._queue_pending(source, payload)
        self.metrics.on_data_queued(source, payload["data_id"])
        if source not in self._discovery:
            self._start_discovery(source)

    def _transmit_data(self, source: int, entry: RouteEntry, payload: dict[str, Any]) -> None:
        gateway = self.gateway_for_key(source, entry.key, entry.gateway)
        path = entry.path[:-1] + (gateway,)
        # Source-route the first packet over this entry so intermediate
        # nodes install their suffixes (Step 5.1/5.2); afterwards the path
        # field stays empty (Step 5.3).
        announce_key = (source, entry.key, path)
        source_routed = announce_key not in self._announced
        pkt = Packet(
            kind=PacketKind.DATA,
            origin=source,
            target=gateway,
            path=path if source_routed else (),
            payload={
                **payload,
                "key": entry.key,
                "traversed": [source],
            },
            payload_bytes=payload["bytes"],
            created_at=self.sim.now,
        )
        pkt = self.decorate_data(source, pkt, entry)
        if source_routed:
            self._announced.add(announce_key)
        next_hop = path[1] if len(path) > 1 else gateway
        self._forward_data(source, pkt, next_hop)

    def _valid_node(self, node_id) -> bool:
        """Packet fields are attacker-controlled; validate before indexing."""
        return isinstance(node_id, int) and 0 <= node_id < len(self.network.nodes)

    def _forward_data(self, node_id: int, pkt: Packet, next_hop: int) -> None:
        behavior = self.behaviors.get(node_id)
        if behavior is not None and behavior.drop_outgoing_data(pkt):
            self.metrics.on_terminal_drop("blackhole", pkt, node=node_id, now=self.sim.now)
            return
        if not self._valid_node(next_hop):
            self.metrics.on_terminal_drop("misrouted", pkt, node=node_id, now=self.sim.now)
            return
        if not self._believed_alive(next_hop):
            if self.config.repair_routes:
                # Non-terminal: the RERR below carries the stranded datum
                # back toward its source (the ledger follows it there).
                self.metrics.on_drop("dead_next_hop")
                self._report_route_error(node_id, pkt)
            else:
                self.metrics.on_terminal_drop(
                    "dead_next_hop", pkt, node=node_id, now=self.sim.now
                )
            return
        self.channel.send(node_id, pkt.with_hop(node_id, next_hop))

    # ------------------------------------------------------------------
    # recovery support
    # ------------------------------------------------------------------
    def _purge_routes_through(self, node_id: int) -> int:
        """Drop every table entry and announcement routed through ``node_id``.

        While a node is down, RERR repair purges the entries that actual
        traffic trips over — but unused entries through the node survive
        in other nodes' tables, and the node's own suffix entries are
        gone, so a post-recovery DATA forwarded on such a stale entry
        dead-ends at the recovered node with ``no_route``.  The rejoin
        path (:meth:`~repro.core.discovery.FloodDiscoveryEngine.
        on_node_recovered`) calls this to force fresh source-routed
        announcements and re-discovery instead.
        """
        purged = 0
        for table in self.tables.values():
            purged += table.purge_through(node_id)
        self._announced = {a for a in self._announced if node_id not in a[2]}
        return purged

    # ------------------------------------------------------------------
    # route repair (RERR)
    # ------------------------------------------------------------------
    def _report_route_error(self, detector: int, pkt: Packet) -> None:
        """Send the stranded payload back to the source along ``traversed``."""
        traversed = list(pkt.payload.get("traversed", ()))
        key = pkt.payload.get("key")
        if pkt.origin == detector:
            self._handle_route_error_at_source(detector, key, pkt.payload)
            return
        if not traversed or detector not in traversed:
            self.metrics.on_terminal_drop("unrepairable", pkt, node=detector, now=self.sim.now)
            return
        idx = traversed.index(detector)
        if idx == 0:
            # The detector heads the traversed list but is not the origin
            # (pos == 0 with no upstream hop): nowhere to send the RERR.
            self.metrics.on_terminal_drop("unrepairable", pkt, node=detector, now=self.sim.now)
            return
        back = traversed[: idx + 1]
        rerr = Packet(
            kind=PacketKind.RERR,
            origin=detector,
            target=pkt.origin,
            dst=back[idx - 1],
            payload={
                "key": key,
                "back_path": back,
                # "pos" is always the index of the node currently holding
                # the RERR; the receiver's index is idx - 1.
                "pos": idx - 1,
                "data": {
                    k: v for k, v in pkt.payload.items()
                    if k in ("data_id", "bytes", "repairs")
                },
            },
            payload_bytes=self.config.control_payload_bytes + pkt.payload.get("bytes", 0),
            created_at=pkt.created_at,
        )
        self.channel.send(detector, rerr)

    def _handle_route_error_at_source(self, source: int, key: Hashable, data_payload: dict) -> None:
        self.tables[source].remove(key)
        # Force the next packet on a re-discovered route to carry the
        # source route again (downstream entries may be missing).
        self._announced = {
            a for a in self._announced if not (a[0] == source and a[1] == key)
        }
        repairs = data_payload.get("repairs", 0) + 1
        if repairs > self.config.max_repairs_per_packet:
            self.metrics.on_terminal_drop(
                "unrepairable",
                key=(source, data_payload["data_id"]),
                node=source,
                now=self.sim.now,
            )
            return
        payload = {
            "data_id": data_payload["data_id"],
            "bytes": data_payload["bytes"],
            "repairs": repairs,
        }
        self._dispatch_or_queue(source, payload)

    # ------------------------------------------------------------------
    # DATA reception / forwarding (Step 5)
    # ------------------------------------------------------------------
    def _on_data(self, node_id: int, pkt: Packet) -> None:
        node = self.network.nodes[node_id]
        if node.kind is NodeKind.GATEWAY:
            if not self.gateway_accepts_data(node_id, pkt):
                return
            self.metrics.on_data_delivered(pkt, node_id, self.sim.now)
            if self.delivery_callback is not None:
                self.delivery_callback(pkt, node_id)
            return

        traversed = list(pkt.payload.get("traversed", ()))
        if node_id in traversed or pkt.ttl <= 0:
            # Routing loop (stale entries can point at each other after
            # repairs) or hop budget exhausted: drop and purge the local
            # entry so the loop cannot re-form from this node's table.
            self.metrics.on_terminal_drop(
                "loop" if node_id in traversed else "ttl", pkt, node=node_id, now=self.sim.now
            )
            self.tables[node_id].remove(pkt.payload.get("key"))
            return
        traversed.append(node_id)
        fwd = pkt.fork()
        fwd.payload["traversed"] = traversed

        if pkt.path:
            # First packet on this route: install the suffix (Step 5.2).
            try:
                i = pkt.path.index(node_id)
            except ValueError:
                self.metrics.on_terminal_drop("misrouted", pkt, node=node_id, now=self.sim.now)
                return
            suffix = RouteEntry(key=pkt.payload["key"], gateway=pkt.path[-1], path=pkt.path[i:])
            self.tables[node_id].install(suffix, replace_worse_only=True)
            if i + 1 >= len(pkt.path):
                self.metrics.on_terminal_drop("misrouted", pkt, node=node_id, now=self.sim.now)
                return
            self._forward_data(node_id, fwd, pkt.path[i + 1])
            return

        entry = self.tables[node_id].get(pkt.payload.get("key"))
        if entry is None:
            # The source-routed announcement for this flow never reached us
            # (lost or swallowed en route): bounce the payload back so the
            # source re-announces / re-routes.
            if self.config.repair_routes:
                self.metrics.on_drop("no_route")
                self._report_route_error(node_id, fwd)
            else:
                self.metrics.on_terminal_drop("no_route", pkt, node=node_id, now=self.sim.now)
            return
        next_hop = entry.next_hop if entry.hops > 0 else entry.gateway
        next_hop = self.gateway_for_key(node_id, entry.key, next_hop) if entry.hops <= 1 else next_hop
        self._forward_data(node_id, fwd, next_hop)

    # ------------------------------------------------------------------
    # RERR reception
    # ------------------------------------------------------------------
    def _on_rerr(self, node_id: int, pkt: Packet) -> None:
        pos = pkt.payload["pos"]
        back = pkt.payload["back_path"]
        if node_id == pkt.target:
            self._handle_route_error_at_source(node_id, pkt.payload["key"], pkt.payload["data"])
            return
        if pos >= len(back) or back[pos] != node_id or pos == 0:
            # The RERR is off its back path (corrupted pos, or a detector
            # at pos 0 with no upstream hop): the stranded datum it
            # carries dies with it.
            self.metrics.on_terminal_drop("misrouted", pkt, node=node_id, now=self.sim.now)
            return
        # The downstream segment of this route is broken: purge the local
        # entry so Property-1 table answering stops advertising it.
        self.tables[node_id].remove(pkt.payload["key"])
        prev = back[pos - 1]
        if not self._valid_node(prev) or not self._believed_alive(prev):
            self.metrics.on_terminal_drop("unrepairable", pkt, node=node_id, now=self.sim.now)
            return
        nxt = pkt.fork(src=node_id, dst=prev, hop_count=pkt.hop_count + 1)
        nxt.payload["pos"] = pos - 1
        self.channel.send(node_id, nxt)
