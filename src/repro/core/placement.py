"""Gateway number and deployment models (Section 4.1).

The paper poses two questions — *how many* gateways and *where* — and
points to the multi-base-station literature ([34]) for machinery.  This
module provides:

* :func:`sensor_hops_to_point` — hop distance from every sensor to a
  candidate gateway position;
* :func:`mean_hops_for_placement` — the quality measure behind Fig. 2's
  argument (total/average hops shrink with more gateways);
* :func:`greedy_gateway_placement` — a k-median-style greedy that places
  ``k`` gateways on candidate sites minimising total hop count (the
  paper's "minimizing the total energy consumption ... while balancing"
  principle, with hops as the energy proxy of Section 5.2);
* :func:`kmax_gateway_count` — the saturation count K_max of [34]: the
  smallest ``k`` whose greedy placement puts every sensor within one hop
  of a gateway; adding gateways beyond K_max cannot shorten any route,
  which is why the lifetime curve of experiment E6 flattens there.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import networkx as nx
import numpy as np

from repro.exceptions import ConfigurationError, TopologyError
from repro.sim.spatial import CellGrid

__all__ = [
    "sensor_graph",
    "sensor_hops_to_point",
    "mean_hops_for_placement",
    "greedy_gateway_placement",
    "kmax_gateway_count",
]


def sensor_graph(sensor_positions: np.ndarray, comm_range: float) -> nx.Graph:
    """Unit-disk graph over the sensor positions only.

    Built through the cell-grid spatial index (O(n·k)) rather than the
    dense pairwise-distance matrix — gateway-count sweeps call this once
    per candidate set and the quadratic build dominated at scale.
    """
    pos = np.asarray(sensor_positions, dtype=float)
    if pos.ndim != 2 or pos.shape[1] != 2:
        raise ConfigurationError("sensor_positions must be (n, 2)")
    n = len(pos)
    g = nx.Graph()
    g.add_nodes_from(range(n))
    rows = CellGrid(pos, comm_range).neighbor_rows(comm_range)
    for i, row in enumerate(rows):
        upper = row[row > i]
        if len(upper):
            g.add_edges_from((i, int(j)) for j in upper)
    return g


def sensor_hops_to_point(
    graph: nx.Graph,
    sensor_positions: np.ndarray,
    point: Sequence[float],
    comm_range: float,
) -> dict[int, int]:
    """Hops from each sensor to a gateway placed at ``point``.

    Sensors within radio range of the point are 1 hop away; everything
    else is 1 + BFS distance to one of those. Unreachable sensors are
    absent from the result.
    """
    pos = np.asarray(sensor_positions, dtype=float)
    pt = np.asarray(list(point), dtype=float)
    d2 = np.einsum("ij,ij->i", pos - pt, pos - pt)
    adjacent = np.nonzero(d2 <= comm_range * comm_range)[0]
    if len(adjacent) == 0:
        return {}
    dist = nx.multi_source_dijkstra_path_length(graph, set(adjacent.tolist()), weight=None)
    return {s: int(d) + 1 for s, d in dist.items()}


def mean_hops_for_placement(
    sensor_positions: np.ndarray,
    gateway_positions: np.ndarray,
    comm_range: float,
    graph: Optional[nx.Graph] = None,
) -> tuple[float, dict[int, int]]:
    """Mean hops to the nearest gateway, plus the per-sensor hop map.

    Raises :class:`TopologyError` if any sensor cannot reach any gateway.
    """
    gpos = np.asarray(gateway_positions, dtype=float)
    if gpos.ndim == 1:
        gpos = gpos.reshape(1, 2)
    g = graph if graph is not None else sensor_graph(sensor_positions, comm_range)
    best: dict[int, int] = {}
    for gw in gpos:
        hops = sensor_hops_to_point(g, sensor_positions, gw, comm_range)
        for s, h in hops.items():
            if s not in best or h < best[s]:
                best[s] = h
    n = len(np.asarray(sensor_positions))
    if len(best) != n:
        missing = sorted(set(range(n)) - set(best))
        raise TopologyError(f"sensors unreachable from every gateway: {missing[:10]}")
    return float(np.mean(list(best.values()))), best


def greedy_gateway_placement(
    sensor_positions: np.ndarray,
    candidate_positions: np.ndarray,
    k: int,
    comm_range: float,
) -> tuple[list[int], float]:
    """Pick ``k`` candidate sites greedily minimising total hops.

    Returns ``(chosen candidate indices, mean hops)``.  Classic greedy
    k-median on the hop metric: each step adds the candidate with the
    largest marginal reduction in total hop count.  Candidates that cover
    no sensor are never chosen.
    """
    cand = np.asarray(candidate_positions, dtype=float)
    if k <= 0 or k > len(cand):
        raise ConfigurationError(f"k must be in 1..{len(cand)}")
    g = sensor_graph(sensor_positions, comm_range)
    n = len(np.asarray(sensor_positions))

    # Precompute hop vectors per candidate (inf where unreachable).
    hop_vectors = np.full((len(cand), n), np.inf)
    for c, point in enumerate(cand):
        for s, h in sensor_hops_to_point(g, sensor_positions, point, comm_range).items():
            hop_vectors[c, s] = h

    chosen: list[int] = []
    best = np.full(n, np.inf)
    for _ in range(k):
        # Vectorised marginal gain of each remaining candidate.
        improved = np.minimum(hop_vectors, best[None, :])
        totals = improved.sum(axis=1)
        totals[chosen] = np.inf
        c = int(np.argmin(totals))
        if not math.isfinite(totals[c]):
            break
        chosen.append(c)
        best = improved[c]
    if not chosen:
        raise TopologyError("no candidate position covers any sensor")
    reachable = best[np.isfinite(best)]
    if len(reachable) != n:
        raise TopologyError("greedy placement leaves sensors unreachable")
    return chosen, float(reachable.mean())


def kmax_gateway_count(
    sensor_positions: np.ndarray,
    candidate_positions: np.ndarray,
    comm_range: float,
) -> int:
    """K_max: gateways needed so every sensor is one hop from a gateway.

    Greedy set cover over the candidate coverage sets — [34]'s empirical
    finding is that lifetime stops improving once ``k`` exceeds this
    count, which experiment E6 reproduces.
    """
    pos = np.asarray(sensor_positions, dtype=float)
    cand = np.asarray(candidate_positions, dtype=float)
    n = len(pos)
    cover: list[set[int]] = []
    for point in cand:
        d2 = np.einsum("ij,ij->i", pos - point, pos - point)
        cover.append(set(np.nonzero(d2 <= comm_range * comm_range)[0].tolist()))
    uncovered = set(range(n))
    if not set().union(*cover) >= uncovered:
        raise TopologyError("candidates cannot 1-hop-cover all sensors")
    k = 0
    while uncovered:
        best = max(range(len(cand)), key=lambda c: len(cover[c] & uncovered))
        gain = cover[best] & uncovered
        if not gain:
            raise TopologyError("greedy cover stalled")  # pragma: no cover
        uncovered -= gain
        k += 1
    return k
