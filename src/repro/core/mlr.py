"""MLR — Maximal network Lifetime Routing (Section 5.3).

MLR runs in *rounds*.  Gateways occupy ``m`` of the ``|P|`` feasible
places; between rounds some move, and the protocol's defining trick is to
**accumulate** routing-table entries keyed by feasible place instead of
rebuilding tables every round:

* Round 0 deploys gateways and sensors learn the initial assignment at
  deployment time (no packets — the paper treats initial placement as
  given).
* At the start of a later round only *moved* gateways flood a NOTIFY with
  their new place ("unmoved gateways do not need to issue such a
  notification").
* A sensor that needs to send checks its table: any currently-occupied
  place without an entry triggers one discovery flood targeted at exactly
  those gateways; places already in the table cost nothing, so after every
  place has been visited the table has ``|P|`` entries and **no discovery
  ever floods again** — the sensor just re-selects the least-hop entry
  among this round's active places (the Table 1 walkthrough).

Because paths lead to *places* (positions), a stored path stays valid when
a different gateway occupies the place later; the final hop is re-bound to
the current occupant at forwarding time.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterable, Optional

from repro.core.base import DiscoveryProtocol, ProtocolConfig
from repro.core.routing_table import RouteEntry
from repro.exceptions import ConfigurationError, RoutingError
from repro.sim.engine import Simulator
from repro.sim.mobility import GatewaySchedule
from repro.sim.network import Network
from repro.sim.packet import Packet, PacketKind
from repro.sim.radio import Channel

__all__ = ["MLR"]


class MLR(DiscoveryProtocol):
    """Maximal-lifetime routing with accumulated place-keyed tables.

    Parameters
    ----------
    schedule:
        The round-by-round gateway placement plan.  The gateways named in
        the schedule must be exactly the network's gateways.
    bootstrap_known:
        When True (default) sensors know the round-0 assignment without
        any packets; set False to force NOTIFY floods for round 0 too
        (used when measuring worst-case setup cost).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        channel: Channel,
        schedule: GatewaySchedule,
        config: Optional[ProtocolConfig] = None,
        bootstrap_known: bool = True,
    ) -> None:
        super().__init__(sim, network, channel, config)
        gws = set(network.gateway_ids)
        for r in range(schedule.num_rounds):
            if set(schedule.assignment(r)) != gws:
                raise ConfigurationError(
                    f"schedule round {r} names gateways {sorted(schedule.assignment(r))} "
                    f"but the network has {sorted(gws)}"
                )
        if len(schedule.places) < len(gws):
            raise ConfigurationError("fewer feasible places than gateways")
        self.schedule = schedule
        self.bootstrap_known = bootstrap_known
        self.current_round = -1
        #: ground truth gateway -> place (what the schedule last applied)
        self.gateway_place: dict[int, str] = {}
        #: per-node belief: node id -> {gateway id -> place label}
        self.known: dict[int, dict[int, str]] = {n.node_id: {} for n in network.nodes}
        # Places a node failed to discover this round (don't retry every
        # packet; cleared when the topology changes at the next round).
        self._unreachable: dict[int, set[str]] = {n.node_id: set() for n in network.nodes}
        self._notify_seq = itertools.count(10_000_000)

    # ------------------------------------------------------------------
    # rounds
    # ------------------------------------------------------------------
    def start_round(self, r: int) -> None:
        """Apply round ``r`` of the schedule: move gateways, send NOTIFYs."""
        if r != self.current_round + 1:
            raise RoutingError(f"rounds must advance sequentially (at {self.current_round}, got {r})")
        self.current_round = r
        assignment = self.schedule.assignment(r)
        moved = self.schedule.moved_gateways(r)
        for blocked in self._unreachable.values():
            blocked.clear()

        # Only gateways whose place actually changed are moved (round 0
        # moves everyone): unmoved gateways are already in position, and
        # skipping them keeps the incremental spatial index from doing
        # even O(k) work for a no-op relocation.
        for g, place in moved.items():
            self.network.move_node(g, self.schedule.places.position(place))
        self.gateway_place.update(assignment)

        if r == 0 and self.bootstrap_known:
            for node in self.network.nodes:
                self.known[node.node_id].update(assignment)
            return

        for g, place in moved.items():
            # The moving gateway itself always knows where it is.
            self.known[g][g] = place
            self._broadcast_notify(g, place, r)

    def _broadcast_notify(self, gateway: int, place: str, r: int) -> None:
        """Flood the place-change announcement (Section 5.3 step 2).

        Under sharded execution every replicated worker world applies
        the same ``start_round``; only the gateway's owner actually puts
        the NOTIFY on the air (the flood then reaches the other shards
        as ordinary cross-shard receptions), so the frame — and its tx
        energy/counter — exists exactly once network-wide.
        """
        if not self.channel.owns(gateway):
            return
        seq = next(self._notify_seq)
        pkt = Packet(
            kind=PacketKind.NOTIFY,
            origin=gateway,
            target=None,
            payload={"seq": seq, "gw": gateway, "place": place, "round": r},
            payload_bytes=self.config.control_payload_bytes,
            ttl=self.config.ttl,
            created_at=self.sim.now,
        )
        pkt = self.decorate_notify(gateway, pkt)
        self._seen_floods[gateway].add((gateway, seq))
        self.channel.send(gateway, pkt)

    # -- NOTIFY hooks (SecMLR overrides with μTESLA) ----------------------
    def decorate_notify(self, gateway: int, packet: Packet) -> Packet:
        return packet

    def accept_notify(self, node_id: int, packet: Packet) -> bool:
        """Whether the announcement is authentic (always, unsecured)."""
        return True

    def apply_notify(self, node_id: int, gw: int, place: str) -> None:
        self.known[node_id][gw] = place

    def _on_notify(self, node_id: int, pkt: Packet) -> None:
        key = (pkt.origin, pkt.payload["seq"])
        if key in self._seen_floods[node_id]:
            return
        self._seen_floods[node_id].add(key)
        if self.accept_notify(node_id, pkt):
            self.apply_notify(node_id, pkt.payload["gw"], pkt.payload["place"])
        if pkt.ttl > 1:
            self._flood_send(
                node_id, pkt.fork(src=node_id, dst=None, ttl=pkt.ttl - 1, hop_count=pkt.hop_count + 1)
            )

    # ------------------------------------------------------------------
    # policy hooks
    # ------------------------------------------------------------------
    def entry_key_for(self, gateway_id: int) -> Hashable:
        place = self.gateway_place.get(gateway_id)
        if place is None:
            raise RoutingError(f"gateway {gateway_id} has no place yet; call start_round(0)")
        return place

    def active_keys(self, node_id: int) -> Optional[Iterable[Hashable]]:
        return set(self.known[node_id].values())

    def discovery_targets(self, source: int) -> dict[int, Hashable]:
        """Gateways at believed-occupied places the source has no entry for."""
        table = self.tables[source]
        blocked = self._unreachable[source]
        return {
            g: place
            for g, place in self.known[source].items()
            if place not in table and place not in blocked
        }

    def gateway_answer_key(self, gateway: int, requested_key: Hashable) -> Hashable:
        """Gateways answer with their true place, whatever was asked for."""
        return self.gateway_place.get(gateway, requested_key)

    def gateway_for_key(self, node_id: int, key: Hashable, recorded: int) -> int:
        for g, place in self.known[node_id].items():
            if place == key:
                return g
        return recorded

    # ------------------------------------------------------------------
    # discovery: install best response per place, not one overall best
    # ------------------------------------------------------------------
    def _finish_discovery(self, source: int, seq: int) -> None:
        state = self._discovery.get(source)
        if state is None or state.seq != seq:
            return
        if not state.responses:
            del self._discovery[source]
            if state.attempts < self.config.max_discovery_attempts:
                self._schedule_retry(source, state.attempts)
            else:
                # Give up on these places for the rest of the round and
                # fall back to whatever entries already exist.
                self._unreachable[source].update(str(k) for k in state.targets.values())
                self._flush_via_existing(source)
            return
        by_key: dict[Hashable, RouteEntry] = {}
        for entry in state.responses:
            best = by_key.get(entry.key)
            if best is None or (entry.hops, entry.gateway) < (best.hops, best.gateway):
                by_key[entry.key] = entry
        for entry in by_key.values():
            self.tables[source].install(entry, replace_worse_only=True)
        # A queried place that still has no entry will never answer this
        # round (e.g. the belief about it was poisoned and the gateway
        # answered under its true place): stop re-querying it.
        for place in state.targets.values():
            if place not in self.tables[source]:
                self._unreachable[source].add(str(place))
        del self._discovery[source]
        for payload in self._take_pending(source):
            self._dispatch_or_queue(source, payload)

    def _flush_via_existing(self, source: int) -> None:
        """Drain queued data through already-known routes (or drop)."""
        pending = self._take_pending(source)
        entry = self.tables[source].best(self.active_keys(source))
        for payload in pending:
            if entry is None:
                self.metrics.on_terminal_drop(
                    "no_route",
                    key=(source, payload["data_id"]),
                    node=source,
                    now=self.sim.now,
                )
            else:
                self._transmit_data(source, entry, payload)

    # ------------------------------------------------------------------
    # Data dispatch: discover missing active places before selecting
    # ------------------------------------------------------------------
    def _dispatch_or_queue(self, source: int, payload) -> None:
        missing = self.discovery_targets(source)
        if missing and source not in self._discovery:
            self._queue_pending(source, payload)
            self.metrics.on_data_queued(source, payload["data_id"])
            self._start_discovery(source)
            return
        if source in self._discovery:
            self._queue_pending(source, payload)
            self.metrics.on_data_queued(source, payload["data_id"])
            return
        entry = self.tables[source].best(self.active_keys(source))
        if entry is not None:
            self._transmit_data(source, entry, payload)
            return
        self.metrics.on_terminal_drop(
            "no_route", key=(source, payload["data_id"]), node=source, now=self.sim.now
        )

    # ------------------------------------------------------------------
    # introspection (Table 1)
    # ------------------------------------------------------------------
    def table_snapshot(self, node_id: int) -> list[tuple[str, int, tuple[int, ...]]]:
        """Rows of the node's accumulated table: (place, hops, path).

        This is exactly one panel of the paper's Table 1, ordered by place
        label.
        """
        return [
            (str(e.key), e.hops, e.path)
            for e in self.tables[node_id].entries()
        ]

    def selected_place(self, node_id: int) -> Optional[str]:
        """The place the node would currently route to (min hops, active)."""
        entry = self.tables[node_id].best(self.active_keys(node_id))
        return None if entry is None else str(entry.key)
