"""Flooding and gossiping (Section 2.2.1).

Flooding
    "each node receiving a data or management packet broadcasts the packet
    to all of its neighbors, unless a maximum number of hops for the
    packet is reached or the destination of the packet is the node
    itself."  No topology maintenance, no routing state — and the
    implosion/overlap/resource-blindness costs the paper quotes from [3].

Gossiping
    "sends data to one randomly selected neighbor", trading implosion for
    propagation delay (and, on an unlucky walk, non-delivery within TTL).
"""

from __future__ import annotations

import functools
import itertools
from typing import Optional

from repro.exceptions import RoutingError
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.node import NodeKind
from repro.sim.packet import DATA_PAYLOAD_BYTES, Packet, PacketKind
from repro.sim.radio import Channel

__all__ = ["Flooding", "Gossiping"]


class Flooding:
    """Classic data flooding toward any gateway."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        channel: Channel,
        max_hops: int = 32,
        payload_bytes: int = DATA_PAYLOAD_BYTES,
    ) -> None:
        if not network.gateway_ids:
            raise RoutingError("flooding needs at least one gateway to deliver to")
        self.sim = sim
        self.network = network
        self.channel = channel
        self.metrics = channel.metrics
        self.max_hops = max_hops
        self.payload_bytes = payload_bytes
        self._data_ids = itertools.count(1)
        self._seen: dict[int, set[int]] = {n.node_id: set() for n in network.nodes}
        self._delivered: dict[int, set[int]] = {g: set() for g in network.gateway_ids}
        for node in network.nodes:
            node.handler = self._make_handler(node.node_id)

    def send_data(
        self,
        source: int,
        payload_bytes: Optional[int] = None,
        data_id: Optional[int] = None,
    ) -> int:
        """Originate one datum at ``source``; returns its ``data_id``.

        ``data_id`` defaults to the protocol's running counter; sharded
        execution passes it explicitly so every worker labels the datum
        with the same *global* identity regardless of which subset of
        the traffic schedule it owns.
        """
        if data_id is None:
            data_id = next(self._data_ids)
        self.metrics.on_data_generated(origin=source, data_id=data_id, now=self.sim.now)
        node = self.network.nodes[source]
        if not node.alive:
            self.metrics.on_terminal_drop(
                "dead_source", key=(source, data_id), node=source, now=self.sim.now
            )
            return data_id
        pkt = Packet(
            kind=PacketKind.DATA,
            origin=source,
            target=None,  # any gateway
            payload={"data_id": data_id},
            payload_bytes=payload_bytes if payload_bytes is not None else self.payload_bytes,
            ttl=self.max_hops,
            hop_count=1,  # a frame carries the hops travelled once received
            created_at=self.sim.now,
        )
        self._seen[source].add(data_id)
        self.channel.send(source, pkt)
        return data_id

    def _make_handler(self, node_id: int):
        # functools.partial instead of a closure (same shape as
        # repro.core.base): the bound call skips a Python frame, and —
        # unlike a closure — it pickles, which barrier checkpointing of
        # sharded flooding worlds requires.
        return functools.partial(self._on_packet, node_id)

    def _on_packet(self, node_id: int, pkt: Packet) -> None:
        if pkt.kind is not PacketKind.DATA:
            return
        data_id = pkt.payload["data_id"]
        node = self.network.nodes[node_id]
        if node.kind is NodeKind.GATEWAY:
            # Implosion: the same datum arrives many times; deliver once.
            if data_id not in self._delivered[node_id]:
                self._delivered[node_id].add(data_id)
                self.metrics.on_data_delivered(pkt, node_id, self.sim.now)
            return
        if data_id in self._seen[node_id]:
            return
        self._seen[node_id].add(data_id)
        if pkt.ttl <= 1:
            # One flood copy expired; siblings may still deliver, so the
            # drop stays frame-level (the datum's broadcast exemption
            # covers it if every copy dies this way).
            self.metrics.on_drop("ttl")
            return
        self.channel.send(
            node_id, pkt.fork(src=node_id, dst=None, ttl=pkt.ttl - 1, hop_count=pkt.hop_count + 1)
        )


class Gossiping(Flooding):
    """Flooding's random-walk variant: forward to one random neighbor."""

    def send_data(
        self,
        source: int,
        payload_bytes: Optional[int] = None,
        data_id: Optional[int] = None,
    ) -> int:
        if data_id is None:
            data_id = next(self._data_ids)
        self.metrics.on_data_generated(origin=source, data_id=data_id, now=self.sim.now)
        node = self.network.nodes[source]
        if not node.alive:
            self.metrics.on_terminal_drop(
                "dead_source", key=(source, data_id), node=source, now=self.sim.now
            )
            return data_id
        pkt = Packet(
            kind=PacketKind.DATA,
            origin=source,
            target=None,
            payload={"data_id": data_id},
            payload_bytes=payload_bytes if payload_bytes is not None else self.payload_bytes,
            ttl=self.max_hops,
            created_at=self.sim.now,
        )
        self._gossip_forward(source, pkt)
        return data_id

    def _gossip_forward(self, node_id: int, pkt: Packet) -> None:
        # Prefer handing to an adjacent gateway; otherwise a random
        # neighbor (the datum walks until TTL or luck).
        alive = self.network.alive_neighbors(node_id)
        if len(alive) == 0:
            # The walk carries the only copy: a stranded walker is terminal.
            self.metrics.on_terminal_drop("isolated", pkt, node=node_id, now=self.sim.now)
            return
        gws = [int(n) for n in alive if self.network.nodes[n].kind is NodeKind.GATEWAY]
        if gws:
            nxt = gws[int(self.sim.rng.integers(len(gws)))]
        else:
            nxt = int(alive[int(self.sim.rng.integers(len(alive)))])
        self.channel.send(
            node_id, pkt.fork(src=node_id, dst=nxt, ttl=pkt.ttl - 1, hop_count=pkt.hop_count + 1)
        )

    def _on_packet(self, node_id: int, pkt: Packet) -> None:
        if pkt.kind is not PacketKind.DATA:
            return
        data_id = pkt.payload["data_id"]
        node = self.network.nodes[node_id]
        if node.kind is NodeKind.GATEWAY:
            if data_id not in self._delivered[node_id]:
                self._delivered[node_id].add(data_id)
                self.metrics.on_data_delivered(pkt, node_id, self.sim.now)
            return
        if pkt.ttl <= 1:
            self.metrics.on_terminal_drop("ttl", pkt, node=node_id, now=self.sim.now)
            return
        self._gossip_forward(node_id, pkt)
