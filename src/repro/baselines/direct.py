"""Direct transmission: every sensor uplinks straight to the nearest sink.

LEACH's own baseline.  There is no routing at all; each datum costs one
transmission at the true sensor-to-sink distance (d^2 or d^4 amplifier),
so far nodes die first — the mirror image of the flat multihop
architecture where *near* nodes die first.  Useful both as a comparison
row in E5 and as a sanity check of the first-order energy model.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.exceptions import RoutingError
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.packet import DATA_PAYLOAD_BYTES, MAC_HEADER_BYTES, Packet, PacketKind
from repro.sim.radio import Channel

__all__ = ["DirectTransmission"]


class DirectTransmission:
    """One-hop variable-power uplink to the nearest gateway."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        channel: Channel,
        payload_bytes: int = DATA_PAYLOAD_BYTES,
    ) -> None:
        if not network.gateway_ids:
            raise RoutingError("direct transmission needs a gateway")
        self.sim = sim
        self.network = network
        self.channel = channel
        self.metrics = channel.metrics
        self.energy_model = channel.energy_model
        self.payload_bytes = payload_bytes
        self._data_ids = itertools.count(1)

    def send_data(self, source: int, payload_bytes: Optional[int] = None) -> int:
        data_id = next(self._data_ids)
        self.metrics.on_data_generated(origin=source, data_id=data_id, now=self.sim.now)
        node = self.network.nodes[source]
        if not node.alive:
            self.metrics.on_terminal_drop(
                "dead_source", key=(source, data_id), node=source, now=self.sim.now
            )
            return data_id
        sink = min(self.network.gateway_ids, key=lambda g: self.network.distance(source, g))
        nbytes = payload_bytes if payload_bytes is not None else self.payload_bytes
        bits = 8 * (MAC_HEADER_BYTES + nbytes)
        d = self.network.distance(source, sink)
        node.energy.charge_tx(self.energy_model.tx_cost(bits, d), self.sim.now)
        if not node.energy.alive:
            self.metrics.on_node_death(source, self.sim.now)
        pkt = Packet(
            kind=PacketKind.DATA,
            origin=source,
            target=sink,
            payload={"data_id": data_id},
            payload_bytes=nbytes,
            hop_count=1,
            created_at=self.sim.now,
        )
        self.metrics.on_send(pkt)
        self.metrics.on_data_delivered(pkt, sink, self.sim.now)
        return data_id
