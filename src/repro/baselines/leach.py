"""LEACH — low-energy adaptive clustering hierarchy [17] (Section 2.2.2).

The 2-level hierarchical baseline: nodes self-elect cluster heads with the
rotating-probability rule, members transmit to their head single-hop with
distance-proportional power, heads aggregate and transmit the fused frame
*directly to the sink* — the long-range hop whose d^4 amplifier cost is
why "it is not applicable to networks deployed in large regions"
(Section 2.2.2), which experiment E5 measures.

LEACH controls its own radio power per link (unlike the fixed-power
sensor MAC), so it bypasses :class:`~repro.sim.radio.Channel` and charges
the first-order model directly with the true link distance; intra-cluster
traffic is TDMA-scheduled in the real protocol, hence modelled
collision-free.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ConfigurationError, RoutingError
from repro.sim.energy import EnergyModel
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.packet import DATA_PAYLOAD_BYTES, MAC_HEADER_BYTES, Packet, PacketKind
from repro.sim.radio import Channel

__all__ = ["LEACH", "LeachConfig"]


@dataclass(frozen=True)
class LeachConfig:
    """LEACH parameters (defaults from the original paper)."""

    head_fraction: float = 0.05
    """Desired fraction P of nodes serving as cluster heads per round."""

    aggregation_energy: float = 5e-9
    """E_DA, joules per bit per fused signal."""

    advertisement_bytes: int = 8
    data_payload_bytes: int = DATA_PAYLOAD_BYTES

    def __post_init__(self) -> None:
        if not 0 < self.head_fraction <= 1:
            raise ConfigurationError("head_fraction must be in (0, 1]")


class LEACH:
    """Cluster-based routing to a single sink.

    Drive it round by round::

        leach.start_round(r)     # election + cluster formation
        leach.send_data(s)       # member -> head (or direct if headless)
        leach.flush_round()      # heads aggregate and uplink to the sink
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        channel: Channel,
        config: Optional[LeachConfig] = None,
    ) -> None:
        if len(network.gateway_ids) < 1:
            raise RoutingError("LEACH needs a sink")
        self.sim = sim
        self.network = network
        self.channel = channel
        self.metrics = channel.metrics
        self.energy_model: EnergyModel = channel.energy_model
        self.config = config or LeachConfig()
        self.sink = network.gateway_ids[0]
        self._data_ids = itertools.count(1)
        self.current_round = -1
        self.heads: list[int] = []
        self.cluster_of: dict[int, int] = {}
        # Buffered datums keep their (origin, data_id) identity so the
        # head's uplink delivers them under the true source — delivery
        # records used to credit the head as origin, breaking per-datum
        # dedup and the conservation ledger.
        self._buffered: dict[int, list[tuple[int, int]]] = {}
        self._last_head_round: dict[int, int] = {}

    # ------------------------------------------------------------------
    # round machinery
    # ------------------------------------------------------------------
    def _election_threshold(self, node_id: int, r: int) -> float:
        """T(n) from [17]: rotates headship so everyone serves once per epoch."""
        p = self.config.head_fraction
        epoch = int(round(1.0 / p))
        last = self._last_head_round.get(node_id)
        if last is not None and r - last < epoch:
            return 0.0  # served too recently
        return p / (1.0 - p * (r % epoch))

    def start_round(self, r: int) -> None:
        """Elect heads and form clusters for round ``r``."""
        self.current_round = r
        self.heads = []
        self.cluster_of = {}
        # Re-clustering discards anything still buffered at old heads —
        # account for those datums instead of silently dropping the dict.
        for head, items in self._buffered.items():
            for origin, did in items:
                self.metrics.on_terminal_drop(
                    "stale_buffer", key=(origin, did), node=head, now=self.sim.now
                )
        self._buffered = {}
        rng = self.sim.rng
        alive_sensors = [s for s in self.network.sensor_ids if self.network.nodes[s].alive]
        for s in alive_sensors:
            if rng.random() < self._election_threshold(s, r):
                self.heads.append(s)
                self._last_head_round[s] = r
        # Heads advertise; members join the nearest head (signal-strength
        # proxy). Advertisement reaches the whole field in LEACH (heads
        # broadcast at high power), charged at field-diameter distance.
        diameter = self._field_diameter()
        adv_bits = 8 * (MAC_HEADER_BYTES + self.config.advertisement_bytes)
        for h in self.heads:
            self._charge_tx(h, adv_bits, diameter)
        for s in alive_sensors:
            if s in self.heads:
                self._buffered[s] = []
                continue
            # Receiving each advertisement costs rx energy.
            for _ in self.heads:
                self._charge_rx(s, adv_bits)
            head = self._nearest_head(s)
            if head is not None:
                self.cluster_of[s] = head

    def _field_diameter(self) -> float:
        pos = self.network.positions
        span = pos.max(axis=0) - pos.min(axis=0)
        return float(math.hypot(span[0], span[1]))

    def _nearest_head(self, s: int) -> Optional[int]:
        alive_heads = [h for h in self.heads if self.network.nodes[h].alive]
        if not alive_heads:
            return None
        return min(alive_heads, key=lambda h: self.network.distance(s, h))

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def send_data(self, source: int, payload_bytes: Optional[int] = None) -> int:
        data_id = next(self._data_ids)
        self.metrics.on_data_generated(origin=source, data_id=data_id, now=self.sim.now)
        node = self.network.nodes[source]
        if not node.alive:
            self.metrics.on_terminal_drop(
                "dead_source", key=(source, data_id), node=source, now=self.sim.now
            )
            return data_id
        nbytes = payload_bytes if payload_bytes is not None else self.config.data_payload_bytes
        bits = 8 * (MAC_HEADER_BYTES + nbytes)

        if source in self._buffered:  # this node is a head
            self._buffered[source].append((source, data_id))
            return data_id

        head = self.cluster_of.get(source)
        if head is None or not self.network.nodes[head].alive:
            # Headless round: transmit directly to the sink (LEACH's
            # degenerate case — exactly DirectTransmission cost).
            self._uplink(source, [(source, data_id)], bits)
            return data_id

        d = self.network.distance(source, head)
        if not self._charge_tx(source, bits, d):
            self.metrics.on_terminal_drop(
                "dead_source", key=(source, data_id), node=source, now=self.sim.now
            )
            return data_id
        self._make_send_record(PacketKind.DATA, nbytes)
        if self._charge_rx(head, bits):
            self._buffered.setdefault(head, []).append((source, data_id))
        else:
            self.metrics.on_terminal_drop(
                "dead_next_hop", key=(source, data_id), node=head, now=self.sim.now
            )
        return data_id

    def flush_round(self) -> None:
        """Heads fuse buffered data and uplink one frame each to the sink."""
        for head, items in self._buffered.items():
            if not items:
                continue
            if not self.network.nodes[head].alive:
                # The head died holding the cluster's data: every buffered
                # datum is lost with it.
                for origin, did in items:
                    self.metrics.on_terminal_drop(
                        "dead_next_hop", key=(origin, did), node=head, now=self.sim.now
                    )
                continue
            nbytes = self.config.data_payload_bytes
            bits = 8 * (MAC_HEADER_BYTES + nbytes)
            # Aggregation energy: E_DA per bit per fused signal.
            agg = self.config.aggregation_energy * bits * len(items)
            self.network.nodes[head].energy.charge_tx(agg, self.sim.now)
            self._check_death(head)
            self._uplink(head, items, bits)
        self._buffered = {h: [] for h in self._buffered}

    def _uplink(self, node_id: int, items: list[tuple[int, int]], bits: int) -> None:
        d = self.network.distance(node_id, self.sink)
        if not self._charge_tx(node_id, bits, d):
            # The uplinker is dead: each datum it carried dies separately
            # (one drop per datum, not per frame — the ledger needs every
            # datum to reach a terminal state).
            for origin, did in items:
                self.metrics.on_terminal_drop(
                    "dead_source", key=(origin, did), node=node_id, now=self.sim.now
                )
            return
        nbytes = bits // 8 - MAC_HEADER_BYTES
        self._make_send_record(PacketKind.DATA, nbytes)
        for origin, did in items:
            pkt = Packet(
                kind=PacketKind.DATA,
                origin=origin,
                target=self.sink,
                payload={"data_id": did},
                payload_bytes=nbytes,
                hop_count=1 if origin == node_id else 2,
                created_at=self.sim.now,
            )
            self.metrics.on_data_delivered(pkt, self.sink, self.sim.now)

    # ------------------------------------------------------------------
    # energy bookkeeping (direct, variable-power radio)
    # ------------------------------------------------------------------
    def _charge_tx(self, node_id: int, bits: int, distance: float) -> bool:
        node = self.network.nodes[node_id]
        if not node.alive:
            return False
        node.energy.charge_tx(self.energy_model.tx_cost(bits, distance), self.sim.now)
        self._check_death(node_id)
        return True

    def _charge_rx(self, node_id: int, bits: int) -> bool:
        node = self.network.nodes[node_id]
        if not node.alive:
            return False
        node.energy.charge_rx(self.energy_model.rx_cost(bits), self.sim.now)
        self._check_death(node_id)
        return True

    def _check_death(self, node_id: int) -> None:
        node = self.network.nodes[node_id]
        if not node.energy.alive:
            self.metrics.on_node_death(node_id, self.sim.now)

    def _make_send_record(self, kind: PacketKind, payload_bytes: int) -> None:
        probe = Packet(kind=kind, origin=-1, target=None, payload_bytes=payload_bytes)
        self.metrics.on_send(probe)
