"""MCFA — minimum cost forwarding algorithm [24] (Section 2.2.1).

"a sensor node need not have a unique ID nor maintain a routing table.
Instead, each node maintains the least cost estimate from itself to the
base-station."  Two phases:

1. **Cost wave** — the sink floods an advertisement; every node keeps the
   minimum cost (hops here) it has heard and rebroadcasts only on
   improvement.  With multiple gateways the waves merge into
   cost-to-nearest-sink.
2. **Forwarding** — a data packet is broadcast carrying the remaining
   cost ``R``; exactly the neighbors whose own cost equals ``R - 1``
   forward it (resetting ``R``), so the packet rolls downhill to the sink
   without any addressing.  Several equal-cost neighbors may forward the
   same packet — MCFA's intrinsic redundancy; duplicates are suppressed
   per node and counted once at the sink.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.exceptions import RoutingError
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.node import NodeKind
from repro.sim.packet import DATA_PAYLOAD_BYTES, Packet, PacketKind
from repro.sim.radio import Channel

__all__ = ["MCFA"]


class MCFA:
    """Minimum-cost (hop) forwarding to the nearest gateway."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        channel: Channel,
        payload_bytes: int = DATA_PAYLOAD_BYTES,
    ) -> None:
        if not network.gateway_ids:
            raise RoutingError("MCFA needs at least one gateway")
        self.sim = sim
        self.network = network
        self.channel = channel
        self.metrics = channel.metrics
        self.payload_bytes = payload_bytes
        self._data_ids = itertools.count(1)
        self.cost: dict[int, float] = {g: 0.0 for g in network.gateway_ids}
        self._forwarded: dict[int, set[int]] = {n.node_id: set() for n in network.nodes}
        self._delivered: dict[int, set[int]] = {g: set() for g in network.gateway_ids}
        self._setup_done = False
        for node in network.nodes:
            node.handler = self._make_handler(node.node_id)

    # ------------------------------------------------------------------
    # phase 1: cost wave
    # ------------------------------------------------------------------
    def setup(self) -> None:
        """Flood the cost advertisement from every gateway."""
        for g in self.network.gateway_ids:
            pkt = Packet(
                kind=PacketKind.HELLO,
                origin=g,
                target=None,
                payload={"cost": 0, "adv": True},
                payload_bytes=4,
                created_at=self.sim.now,
            )
            self.channel.send(g, pkt)
        self._setup_done = True

    def _on_adv(self, node_id: int, pkt: Packet) -> None:
        new_cost = pkt.payload["cost"] + 1
        if new_cost >= self.cost.get(node_id, float("inf")):
            return
        self.cost[node_id] = new_cost
        self.channel.send(
            node_id,
            pkt.fork(src=node_id, dst=None, payload={"cost": new_cost, "adv": True},
                     hop_count=pkt.hop_count + 1),
        )

    # ------------------------------------------------------------------
    # phase 2: downhill forwarding
    # ------------------------------------------------------------------
    def send_data(self, source: int, payload_bytes: Optional[int] = None) -> int:
        if not self._setup_done:
            raise RoutingError("call setup() and run the cost wave before sending data")
        data_id = next(self._data_ids)
        self.metrics.on_data_generated(origin=source, data_id=data_id, now=self.sim.now)
        node = self.network.nodes[source]
        if not node.alive:
            self.metrics.on_terminal_drop(
                "dead_source", key=(source, data_id), node=source, now=self.sim.now
            )
            return data_id
        cost = self.cost.get(source)
        if cost is None:
            self.metrics.on_terminal_drop(
                "no_route", key=(source, data_id), node=source, now=self.sim.now
            )
            return data_id
        pkt = Packet(
            kind=PacketKind.DATA,
            origin=source,
            target=None,
            payload={"data_id": data_id, "remaining": cost},
            payload_bytes=payload_bytes if payload_bytes is not None else self.payload_bytes,
            hop_count=1,  # a frame carries the hops travelled once received
            created_at=self.sim.now,
        )
        self._forwarded[source].add(data_id)
        self.channel.send(source, pkt)
        return data_id

    def _on_data(self, node_id: int, pkt: Packet) -> None:
        data_id = pkt.payload["data_id"]
        node = self.network.nodes[node_id]
        if node.kind is NodeKind.GATEWAY:
            if data_id not in self._delivered[node_id]:
                self._delivered[node_id].add(data_id)
                self.metrics.on_data_delivered(pkt, node_id, self.sim.now)
            return
        my_cost = self.cost.get(node_id)
        if my_cost is None or my_cost != pkt.payload["remaining"] - 1:
            return  # not on the downhill front
        if data_id in self._forwarded[node_id]:
            return
        self._forwarded[node_id].add(data_id)
        fwd = pkt.fork(src=node_id, dst=None, hop_count=pkt.hop_count + 1)
        fwd.payload["remaining"] = my_cost
        self.channel.send(node_id, fwd)

    # ------------------------------------------------------------------
    def _make_handler(self, node_id: int):
        def handler(pkt: Packet) -> None:
            if pkt.kind is PacketKind.HELLO and pkt.payload.get("adv"):
                self._on_adv(node_id, pkt)
            elif pkt.kind is PacketKind.DATA:
                self._on_data(node_id, pkt)

        return handler
