"""Baseline protocols the paper compares against (Section 2.2).

Every baseline runs on the same simulator substrate and energy model as
SPR/MLR/SecMLR so comparisons in the benchmarks are apples-to-apples:

* :class:`~repro.baselines.flat.FlatSinkRouting` — the classical flat
  single-sink architecture (minimum-hop to the one sink), the strawman of
  Section 1.
* :class:`~repro.baselines.flooding.Flooding` — classic flooding
  (Section 2.2.1): every node rebroadcasts every packet once.
* :class:`~repro.baselines.flooding.Gossiping` — the random-single-
  neighbor derivative of flooding.
* :class:`~repro.baselines.leach.LEACH` — the 2-level clustering
  hierarchy [17]: rotating cluster heads, members transmit to their head,
  heads transmit long-range directly to the sink.
* :class:`~repro.baselines.mcfa.MCFA` — minimum cost forwarding [24]:
  a one-time cost wave from the sink, then packets roll downhill.
* :class:`~repro.baselines.direct.DirectTransmission` — every node
  transmits straight to the sink at distance-dependent amplifier cost
  (LEACH's own baseline; useful to sanity-check the energy model).
"""

from repro.baselines.flat import FlatSinkRouting
from repro.baselines.flooding import Flooding, Gossiping
from repro.baselines.leach import LEACH, LeachConfig
from repro.baselines.mcfa import MCFA
from repro.baselines.direct import DirectTransmission

__all__ = [
    "FlatSinkRouting",
    "Flooding",
    "Gossiping",
    "LEACH",
    "LeachConfig",
    "MCFA",
    "DirectTransmission",
]
