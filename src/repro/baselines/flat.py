"""The flat single-sink architecture (the paper's strawman, Section 1).

Traditional WSN routing sends everything to one sink over minimum-hop
paths.  Mechanically this is exactly SPR restricted to a single gateway,
so we subclass :class:`~repro.core.spr.SPR` and enforce the restriction —
which keeps the comparison honest: identical discovery cost model,
identical forwarding, the *only* difference measured by the experiments is
the number (and mobility) of sinks.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import ProtocolConfig
from repro.core.spr import SPR
from repro.exceptions import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.radio import Channel

__all__ = ["FlatSinkRouting"]


class FlatSinkRouting(SPR):
    """Minimum-hop routing to a single static sink."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        channel: Channel,
        config: Optional[ProtocolConfig] = None,
    ) -> None:
        if len(network.gateway_ids) != 1:
            raise ConfigurationError(
                f"FlatSinkRouting needs exactly one sink, got {len(network.gateway_ids)}"
            )
        super().__init__(sim, network, channel, config)

    @property
    def sink(self) -> int:
        """The single sink's node id."""
        return self.network.gateway_ids[0]
