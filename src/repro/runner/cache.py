"""On-disk result cache under ``.repro_cache/``.

One JSON file per simulation cell, named by the cell's
:func:`~repro.runner.spec.cache_key`, holding the serialized
:class:`~repro.experiments.registry.ExperimentResult` plus enough
metadata to audit what produced it.  Because the key already encodes
``(experiment, params, seed, version)``, lookups are pure path checks
and a re-run of an identical sweep touches no simulator at all.

Writes are atomic (tmp file + ``os.replace``) so that a parallel sweep
killed mid-write never leaves a truncated entry; unreadable or
mismatched entries are treated as misses and overwritten.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Union

from repro.experiments.registry import ExperimentResult
from repro.sim.serialize import from_jsonable, to_jsonable

from repro.runner.spec import SweepCell

__all__ = ["ResultCache", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = ".repro_cache"


class ResultCache:
    """Content-addressed store of experiment results.

    ``hits``/``misses`` count lookups since construction; the sweep
    runner surfaces them in its stats and traces, and tests use them to
    prove a re-run performed zero simulations.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, cell: SweepCell) -> Path:
        return self.root / cell.experiment / f"{cell.key}.json"

    def get(self, cell: SweepCell) -> Optional[ExperimentResult]:
        """The cached result for ``cell``, or None (counted as a miss)."""
        path = self.path_for(cell)
        try:
            payload = json.loads(path.read_text())
            if payload.get("key") != cell.key:
                raise ValueError("cache entry key mismatch")
            result = from_jsonable(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, cell: SweepCell, result: ExperimentResult) -> Path:
        """Persist ``result`` for ``cell`` atomically; returns the path."""
        path = self.path_for(cell)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": cell.key,
            "experiment": cell.experiment,
            "params": cell.params,
            "seed": cell.seed,
            "result": to_jsonable(result),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)
        return path

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for entry in self.root.rglob("*.json"):
                entry.unlink()
                removed += 1
        return removed

    @property
    def counters(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}
