"""Sweep specifications and stable cell identity.

A sweep is a list of :class:`ExperimentSpec`s; each spec expands into
one :class:`SweepCell` per seed.  The cell's :func:`cache_key` is the
identity used everywhere — for the on-disk cache, for deterministic
result merging, and in JSONL traces — and is a stable hash of
``(experiment, params, seed, repro.__version__)``: the same cell hashes
identically across processes, interpreter restarts and machines, and
any code-version bump invalidates old cache entries wholesale.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.exceptions import ConfigurationError
from repro.sim.serialize import serializable, to_jsonable

__all__ = ["ExperimentSpec", "SweepCell", "cache_key", "parse_seeds"]


def _repro_version() -> str:
    # Imported lazily: repro/__init__ re-exports the runner, so a
    # top-level ``import repro`` here would be circular.
    import repro

    return repro.__version__


def cache_key(
    experiment: str,
    params: dict,
    seed: int,
    version: Optional[str] = None,
) -> str:
    """Stable hex digest identifying one simulation cell.

    Hashes the canonical JSON of the four identity components; dict key
    order and tuple-vs-list container choices do not affect the key.
    Dataclass parameter values (a ``WorldConfig``, a ``FaultPlan``) are
    hashed through their tagged :func:`~repro.sim.serialize.to_jsonable`
    form, so the instance and its jsonable round-trip produce the same
    key; tuple/list params keep their historical byte-identical encoding.

    Execution-only knobs that cannot change results are stripped before
    hashing: ``WorldConfig.shards`` selects *how many processes* run the
    cell, and a sharded run replays bit-identically to a single-process
    one, so both variants deliberately share one cache entry.
    """
    identity = {
        "experiment": experiment,
        "params": _canonical(params),
        "seed": seed,
        "version": version if version is not None else _repro_version(),
    }
    blob = json.dumps(
        identity, sort_keys=True, separators=(",", ":"), default=_encode_param
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def _canonical(value):
    """Recursively normalize a params value for hashing.

    Dataclasses collapse to their tagged jsonable form (then recurse, so
    nested configs normalize too); ``WorldConfig``-tagged dicts drop the
    execution-only fields — ``shards``, ``checkpoint_dir`` and
    ``checkpoint_every`` select how (and how durably) a cell runs, never
    what it computes, so checkpointed, sharded and plain runs all share
    one cache entry.  Everything else passes through untouched —
    unrecognized containers still fall back to :func:`_encode_param`
    inside ``json.dumps``, preserving the historical encoding
    byte-for-byte.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _canonical(to_jsonable(value))
    if isinstance(value, dict):
        out = {k: _canonical(v) for k, v in value.items()}
        if out.get("__dataclass__") == "WorldConfig":
            fields = out.get("fields")
            if isinstance(fields, dict):
                for execution_only in ("shards", "checkpoint_dir", "checkpoint_every"):
                    fields.pop(execution_only, None)
        return out
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


def _encode_param(obj):
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return to_jsonable(obj)
    return list(obj)


def parse_seeds(text: str) -> tuple[int, ...]:
    """Parse a seed list: ``"4"``, ``"0,2,5"``, ``"0..7"`` (inclusive), or
    comma-separated mixtures like ``"0..3,8"``."""
    seeds: list[int] = []
    for part in str(text).split(","):
        part = part.strip()
        if not part:
            continue
        if ".." in part:
            lo_s, hi_s = part.split("..", 1)
            lo, hi = int(lo_s), int(hi_s)
            if hi < lo:
                raise ConfigurationError(f"empty seed range {part!r}")
            seeds.extend(range(lo, hi + 1))
        else:
            seeds.append(int(part))
    if not seeds:
        raise ConfigurationError(f"no seeds in {text!r}")
    return tuple(seeds)


@serializable
@dataclass
class SweepCell:
    """One (experiment, params, seed) simulation unit.

    ``timeout_s`` is a wall-clock budget for executing the cell — an
    execution knob, not identity: :func:`cache_key` hashes only
    ``(experiment, params, seed, version)``, so timed and untimed runs
    of the same cell share a cache entry.
    """

    experiment: str
    params: dict
    seed: int
    timeout_s: Optional[float] = None

    @property
    def key(self) -> str:
        return cache_key(self.experiment, self.params, self.seed)


@serializable
@dataclass
class ExperimentSpec:
    """An experiment name, parameter overrides, and the seeds to run.

    ``seeds`` may be given as an iterable of ints or the string syntax
    of :func:`parse_seeds` (``"0..7"``).  ``timeout_s`` bounds the wall
    clock of every cell the spec expands into; a cell that exceeds it is
    recorded as failed (never cached, skipped by aggregation) instead of
    wedging the whole sweep.
    """

    experiment: str
    params: dict = field(default_factory=dict)
    seeds: tuple = (0,)
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if isinstance(self.seeds, str):
            self.seeds = parse_seeds(self.seeds)
        else:
            self.seeds = tuple(int(s) for s in self.seeds)
        if len(set(self.seeds)) != len(self.seeds):
            raise ConfigurationError(f"duplicate seeds in {self.seeds!r}")
        if self.timeout_s is not None:
            self.timeout_s = float(self.timeout_s)
            if not self.timeout_s > 0:
                raise ConfigurationError(
                    f"timeout_s must be positive, got {self.timeout_s!r}"
                )

    def cells(self) -> list[SweepCell]:
        """One cell per seed, in seed order (the merge order)."""
        return [
            SweepCell(
                experiment=self.experiment,
                params=dict(self.params),
                seed=s,
                timeout_s=self.timeout_s,
            )
            for s in self.seeds
        ]


def expand_cells(specs: Iterable[ExperimentSpec]) -> list[SweepCell]:
    """All cells of all specs, in deterministic spec-then-seed order."""
    return [cell for spec in specs for cell in spec.cells()]
