"""Parallel multi-seed sweep execution over the experiment registry.

The :class:`SweepRunner` shards ``(experiment, params, seed)`` cells
across a ``ProcessPoolExecutor`` and merges finished cells back into
**spec-then-seed order, independent of completion order**, so a sweep's
output is a pure function of its specification — never of scheduling.

Determinism guarantees (see DESIGN.md):

* every cell runs in its own Simulator seeded only from the cell, so a
  worker process computes exactly what a serial in-process run computes;
* cell payloads cross the process boundary as canonical JSON via
  :mod:`repro.sim.serialize`, the same encoding the cache stores —
  parallel, serial and cached results are therefore bit-identical;
* merged order is the expansion order of the input specs.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from repro.analysis.stats import aggregate_records
from repro.analysis.tables import format_table
from repro.experiments.registry import ExperimentResult, run_experiment
from repro.sim.serialize import from_jsonable, serializable, to_jsonable
from repro.world import record_world_events

from repro.runner.cache import ResultCache
from repro.runner.spec import ExperimentSpec, SweepCell, expand_cells
from repro.runner.trace import RunnerStats, TraceWriter

__all__ = ["CellOutcome", "SweepResult", "SweepRunner"]

#: progress callback: (cells done, cells total, per-cell trace record)
ProgressFn = Callable[[int, int, dict], None]


class _CellTimeout(Exception):
    """Internal: raised by the SIGALRM handler when a cell overruns."""


@contextmanager
def _cell_deadline(timeout_s: Optional[float]):
    """Bound the wall clock of the enclosed cell via an interval timer.

    Uses ``SIGALRM``/``setitimer``, which only delivers to a process's
    main thread — exactly where cells execute (the serial path runs in
    the caller, the parallel path in each pool worker's main thread).
    Platforms without ``setitimer`` (Windows) and non-main threads run
    unbounded rather than wrongly: the timeout is best-effort
    protection, not identity.
    """
    if (
        timeout_s is None
        or not hasattr(signal, "setitimer")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _alarm(signum, frame):
        raise _CellTimeout()

    prev = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, prev)


def _execute_cell(
    experiment: str, params: dict, seed: int, timeout_s: Optional[float] = None
) -> dict:
    """Run one cell and return its serialized result plus observability.

    Module-level so ``ProcessPoolExecutor`` can pickle it.  The result
    crosses the process boundary in serialized form — the same form the
    cache stores — so every path back to the caller decodes identically.

    A cell that exceeds ``timeout_s`` returns a ``{"failed": True}``
    envelope instead of raising: the sweep records it and carries on,
    and the failure is never cached (a rerun with a bigger budget can
    still produce the real result under the same cache key).
    """
    t0 = time.perf_counter()
    try:
        with record_world_events() as recorder, _cell_deadline(timeout_s):
            result = run_experiment(experiment, params, seed)
    except _CellTimeout:
        return {
            "failed": True,
            "error": f"cell exceeded its {timeout_s}s wall-clock budget",
            "wall_clock_s": time.perf_counter() - t0,
            "events_processed": recorder.events_processed,
            "drops": recorder.drops_by_reason(),
            "conservation": None,
            "pid": os.getpid(),
        }
    return {
        "payload": to_jsonable(result),
        "wall_clock_s": time.perf_counter() - t0,
        "events_processed": recorder.events_processed,
        "drops": recorder.drops_by_reason(),
        "conservation": recorder.conservation_summary(),
        "pid": os.getpid(),
    }


@serializable
@dataclass
class CellOutcome:
    """One finished cell: the result envelope plus how it was obtained."""

    experiment: str
    params: dict
    seed: int
    key: str
    cache_hit: bool
    wall_clock_s: float
    events_processed: int
    result: ExperimentResult = None
    #: reason -> drop count, summed over the cell's worlds (empty for
    #: cache hits — the cache stores results, not observability).
    drops: dict = field(default_factory=dict)
    #: Summed conservation report (see WorldEventRecorder), None when the
    #: cell ran without audit mode or was served from the cache.
    conservation: Optional[dict] = None
    #: the cell produced no result (timeout); ``result`` is None, the
    #: outcome is never cached and aggregation skips it.
    failed: bool = False
    #: human-readable failure reason when ``failed``.
    error: Optional[str] = None

    def trace_record(self) -> dict:
        record = {
            "type": "cell",
            "experiment": self.experiment,
            "seed": self.seed,
            "key": self.key,
            "cache_hit": self.cache_hit,
            "wall_clock_s": round(self.wall_clock_s, 6),
            "events_processed": self.events_processed,
        }
        if self.failed:
            record["failed"] = True
            record["error"] = self.error
        if self.drops:
            record["drops"] = dict(self.drops)
        if self.conservation is not None:
            record["conservation"] = self.conservation
        return record


@dataclass
class SweepResult:
    """All cell outcomes of one sweep, in deterministic spec order."""

    cells: list = field(default_factory=list)
    stats: RunnerStats = field(default_factory=RunnerStats)

    def results(self) -> list:
        """The :class:`ExperimentResult` envelopes, in cell order."""
        return [c.result for c in self.cells]

    def for_experiment(self, name: str) -> list:
        return [c for c in self.cells if c.experiment == name]

    def _groups(self) -> list:
        """Cells grouped by (experiment, params), preserving order."""
        groups: dict[tuple, list] = {}
        for c in self.cells:
            sig = (c.experiment, repr(sorted(c.params.items())))
            groups.setdefault(sig, []).append(c)
        labelled = []
        seen_names: dict[str, int] = {}
        for (name, _), members in groups.items():
            count = seen_names.get(name, 0)
            seen_names[name] = count + 1
            label = name if count == 0 else f"{name}#{count + 1}"
            labelled.append((label, members))
        return labelled

    def aggregate(self, confidence: float = 0.95) -> dict:
        """Per-(experiment, params) mean/std/CI over seeds.

        Every numeric leaf of the native result dataclass shared by all
        seeds is summarized via :func:`repro.analysis.stats.summarize`.
        """
        out: dict[str, dict] = {}
        for label, members in self._groups():
            records = [
                m.result.result.to_dict() for m in members if not m.failed
            ]
            out[label] = (
                aggregate_records(records, confidence=confidence) if records else {}
            )
        return out

    def format_summary(self, confidence: float = 0.95, max_rows: int = 40) -> str:
        """A table of aggregated metrics per experiment group."""
        blocks = []
        for label, metrics in self.aggregate(confidence=confidence).items():
            rows = [
                [name, s["n"], round(s["mean"], 4), round(s["std"], 4),
                 round(s["ci_lo"], 4), round(s["ci_hi"], 4)]
                for name, s in list(metrics.items())[:max_rows]
            ]
            if not rows:
                continue
            blocks.append(
                format_table(
                    ["metric", "n", "mean", "std", "ci95_lo", "ci95_hi"],
                    rows,
                    title=f"sweep summary — {label}",
                )
            )
        return "\n\n".join(blocks) if blocks else "(no aggregatable metrics)"


class SweepRunner:
    """Fan ``(spec, seed)`` cells out over worker processes.

    Parameters
    ----------
    workers:
        Process count; ``None`` picks ``min(cells, cpu_count)``. ``1``
        runs serially in-process (still through the same serialization
        path, so results are bit-identical to parallel runs).
    cache:
        A :class:`ResultCache`, or ``None`` to disable caching.
    trace_path:
        JSONL file receiving one record per finished cell plus a final
        summary record.
    progress:
        Optional callback ``fn(done, total, record)`` invoked as cells
        finish (in completion order; the *returned* cells stay ordered).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        trace_path=None,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache = cache
        self.trace_path = trace_path
        self.progress = progress

    # ------------------------------------------------------------------
    def run(
        self, specs: Union[ExperimentSpec, Sequence[ExperimentSpec]]
    ) -> SweepResult:
        """Execute every cell of ``specs`` and merge deterministically."""
        if isinstance(specs, ExperimentSpec):
            specs = [specs]
        cells = expand_cells(specs)
        stats = RunnerStats(cells_total=len(cells))
        t_start = time.perf_counter()

        outcomes: dict[str, CellOutcome] = {}  # key -> outcome (dedup)
        pending: dict[str, SweepCell] = {}
        done_count = 0

        with TraceWriter(self.trace_path) as trace:

            def finish(outcome: CellOutcome) -> None:
                nonlocal done_count
                outcomes[outcome.key] = outcome
                done_count += 1
                stats.completed += 1
                stats.events_processed += outcome.events_processed
                record = outcome.trace_record()
                trace.write(record)
                if self.progress is not None:
                    self.progress(done_count, len(pending) + hit_count, record)

            # Phase 1: serve what the cache already knows.
            hits: list[CellOutcome] = []
            for cell in cells:
                key = cell.key
                if key in outcomes or key in pending:
                    continue  # duplicate cell within the sweep
                cached = self.cache.get(cell) if self.cache is not None else None
                if cached is not None:
                    stats.cache_hits += 1
                    hits.append(
                        CellOutcome(
                            experiment=cell.experiment,
                            params=dict(cell.params),
                            seed=cell.seed,
                            key=key,
                            cache_hit=True,
                            wall_clock_s=0.0,
                            events_processed=0,
                            result=cached,
                        )
                    )
                else:
                    if self.cache is not None:
                        stats.cache_misses += 1
                    pending[key] = cell
            hit_count = len(hits)
            for outcome in hits:
                finish(outcome)

            # Phase 2: simulate the misses, serially or across workers.
            def decode(cell: SweepCell, raw: dict) -> CellOutcome:
                stats.simulated += 1
                if raw.get("failed"):
                    stats.failed += 1
                    # Deliberately not cached: a rerun with a larger
                    # budget can still fill this cell's cache entry.
                    return CellOutcome(
                        experiment=cell.experiment,
                        params=dict(cell.params),
                        seed=cell.seed,
                        key=cell.key,
                        cache_hit=False,
                        wall_clock_s=raw["wall_clock_s"],
                        events_processed=raw["events_processed"],
                        result=None,
                        drops=raw.get("drops") or {},
                        failed=True,
                        error=raw.get("error"),
                    )
                outcome = CellOutcome(
                    experiment=cell.experiment,
                    params=dict(cell.params),
                    seed=cell.seed,
                    key=cell.key,
                    cache_hit=False,
                    wall_clock_s=raw["wall_clock_s"],
                    events_processed=raw["events_processed"],
                    result=from_jsonable(raw["payload"]),
                    drops=raw.get("drops") or {},
                    conservation=raw.get("conservation"),
                )
                if self.cache is not None:
                    self.cache.put(cell, outcome.result)
                return outcome

            workers = self.workers
            if workers is None:
                workers = max(1, min(len(pending), os.cpu_count() or 1))
            if workers == 1 or len(pending) <= 1:
                for cell in pending.values():
                    raw = _execute_cell(
                        cell.experiment, cell.params, cell.seed, cell.timeout_s
                    )
                    finish(decode(cell, raw))
            else:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = {
                        pool.submit(
                            _execute_cell,
                            cell.experiment,
                            cell.params,
                            cell.seed,
                            cell.timeout_s,
                        ): cell
                        for cell in pending.values()
                    }
                    remaining = set(futures)
                    while remaining:
                        finished, remaining = wait(
                            remaining, return_when=FIRST_COMPLETED
                        )
                        for fut in finished:
                            finish(decode(futures[fut], fut.result()))

            stats.wall_clock_s = time.perf_counter() - t_start
            trace.write({"type": "summary", **stats.as_dict()})

        # Deterministic merge: spec-then-seed order, however cells ran.
        ordered = [outcomes[cell.key] for cell in cells]
        return SweepResult(cells=ordered, stats=stats)
