"""Entry point for ``python -m repro.runner``."""

from repro.runner.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
