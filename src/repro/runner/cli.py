"""Command-line sweep driver: ``python -m repro.runner``.

Examples
--------
List what can be run::

    python -m repro.runner --list

A 4-worker, 8-seed scalability sweep with caching and a JSONL trace::

    python -m repro.runner --experiment scalability --seeds 0..7 \\
        --workers 4 --trace sweep.jsonl

Parameter overrides are JSON and reach the experiment's ``run_*``
keywords directly::

    python -m repro.runner --experiment lifetime --seeds 0..3 \\
        --params '{"n_sensors": 30, "max_rounds": 40}'
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.exceptions import ReproError
from repro.experiments.registry import REGISTRY

from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.runner.spec import ExperimentSpec, parse_seeds
from repro.runner.sweep import SweepRunner

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Parallel multi-seed experiment sweeps over the repro registry.",
    )
    parser.add_argument(
        "--experiment", "-e",
        help="registered experiment name (see --list)",
    )
    parser.add_argument(
        "--seeds", "-s", default="0..3",
        help='seed list: "4", "0,2,5" or inclusive range "0..7" (default 0..3)',
    )
    parser.add_argument(
        "--workers", "-w", type=int, default=None,
        help="worker processes (default: min(cells, cpu count); 1 = serial)",
    )
    parser.add_argument(
        "--params", "-p", default=None,
        help="JSON dict of keyword overrides for the experiment",
    )
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="append per-cell JSONL trace records to PATH",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per cell; an overrunning cell is recorded "
        "as failed (and not cached) instead of wedging the sweep",
    )
    parser.add_argument(
        "--tables", action="store_true",
        help="also print each per-seed paper-style table",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_experiments",
        help="list registered experiments and exit",
    )
    parser.add_argument(
        "--quiet", "-q", action="store_true",
        help="suppress per-cell progress lines",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_experiments:
        width = max(len(name) for name in REGISTRY)
        for name in sorted(REGISTRY):
            print(f"{name:<{width}}  {REGISTRY[name].description}")
        return 0

    if not args.experiment:
        parser.error("--experiment is required (or use --list)")
    if args.experiment not in REGISTRY:
        parser.error(
            f"unknown experiment {args.experiment!r}; registered: "
            + ", ".join(sorted(REGISTRY))
        )

    if args.workers is not None and args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")

    try:
        seeds = parse_seeds(args.seeds)
        params = json.loads(args.params) if args.params else {}
        if not isinstance(params, dict):
            raise ReproError("--params must be a JSON object")
        spec = ExperimentSpec(
            experiment=args.experiment, params=params, seeds=seeds,
            timeout_s=args.timeout,
        )
    except (ReproError, ValueError) as exc:
        parser.error(str(exc))

    def progress(done: int, total: int, record: dict) -> None:
        if args.quiet:
            return
        if record.get("failed"):
            source = f"FAILED after {record['wall_clock_s']:.2f}s"
        elif record["cache_hit"]:
            source = "cache"
        else:
            source = f"{record['wall_clock_s']:.2f}s"
        print(
            f"[{done}/{total}] {record['experiment']} seed={record['seed']} "
            f"({source}, {record['events_processed']} events)",
            file=sys.stderr,
        )

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    runner = SweepRunner(
        workers=args.workers,
        cache=cache,
        trace_path=args.trace,
        progress=progress,
    )
    try:
        sweep = runner.run(spec)
    except ReproError as exc:
        # Configuration mistakes (bad params, seed smuggled into params,
        # disconnected topologies) are user errors, not tracebacks.
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.tables:
        for outcome in sweep.cells:
            print(f"\n=== {outcome.experiment} seed={outcome.seed} ===")
            if outcome.failed:
                print(f"(failed: {outcome.error})")
            else:
                print(outcome.result.format_table())
        print()
    print(sweep.format_summary())
    stats = sweep.stats.as_dict()
    print(
        f"\ncells={stats['cells_total']} simulated={stats['simulated']} "
        f"failed={stats['failed']} "
        f"cache_hits={stats['cache_hits']} cache_misses={stats['cache_misses']} "
        f"events={stats['events_processed']} wall={stats['wall_clock_s']}s"
    )
    lookups = stats["cache_hits"] + stats["cache_misses"]
    if lookups:
        print(
            f"cache hit ratio: {stats['cache_hits']}/{lookups} "
            f"({stats['cache_hits'] / lookups:.1%})"
        )
    simulated = [c.wall_clock_s for c in sweep.cells if not c.cache_hit]
    if simulated:
        print(
            f"per-cell wall-clock (simulated): min={min(simulated):.3f}s "
            f"mean={sum(simulated) / len(simulated):.3f}s max={max(simulated):.3f}s"
        )
    return 0
