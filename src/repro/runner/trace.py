"""Structured observability for sweeps: counters and JSONL traces.

Every completed cell emits one JSON line (wall-clock, events processed,
cache hit/miss, worker provenance); the sweep ends with a summary line.
Traces are append-only and one-object-per-line so they can be tailed
while a long sweep runs and post-processed with standard line tools.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import IO, Optional, Union

__all__ = ["RunnerStats", "TraceWriter"]


@dataclass
class RunnerStats:
    """Aggregate counters for one sweep invocation."""

    cells_total: int = 0
    completed: int = 0
    simulated: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: cells that failed to produce a result (e.g. exceeded timeout_s)
    failed: int = 0
    events_processed: int = 0
    wall_clock_s: float = 0.0

    def as_dict(self) -> dict:
        d = asdict(self)
        d["wall_clock_s"] = round(d["wall_clock_s"], 6)
        return d


class TraceWriter:
    """Append JSON lines to ``path``; a no-op when ``path`` is None.

    Lines are flushed as written so an observer tailing the file sees
    cells complete in real time.
    """

    def __init__(self, path: Optional[Union[str, Path]]) -> None:
        self.path = Path(path) if path is not None else None
        self._fh: Optional[IO[str]] = None

    def write(self, record: dict) -> None:
        if self.path is None:
            return
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
