"""Parallel multi-seed experiment runner.

The runner turns the per-paper-artifact ``run_*`` drivers (reached via
:data:`repro.experiments.REGISTRY`) into sweepable, cacheable units:

>>> from repro.runner import ExperimentSpec, SweepRunner
>>> spec = ExperimentSpec("scalability", params={"rounds": 1}, seeds="0..3")
>>> sweep = SweepRunner(workers=4).run(spec)   # doctest: +SKIP
>>> print(sweep.format_summary())              # doctest: +SKIP

Modules: :mod:`~repro.runner.spec` (specs and cell identity),
:mod:`~repro.runner.sweep` (process-pool execution, deterministic
merge), :mod:`~repro.runner.cache` (on-disk result cache),
:mod:`~repro.runner.trace` (JSONL observability),
:mod:`~repro.runner.cli` (``python -m repro.runner``).
"""

from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.runner.spec import ExperimentSpec, SweepCell, cache_key, parse_seeds
from repro.runner.sweep import CellOutcome, SweepResult, SweepRunner
from repro.runner.trace import RunnerStats, TraceWriter

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "ExperimentSpec",
    "SweepCell",
    "cache_key",
    "parse_seeds",
    "CellOutcome",
    "SweepResult",
    "SweepRunner",
    "RunnerStats",
    "TraceWriter",
]
