"""The packet-lifecycle ledger.

One :class:`LedgerEntry` per application *datum* — the unit the paper's
delivery ratio counts, identified by ``(origin, data_id)`` — advanced
through a small state machine:

.. code-block:: text

    GENERATED ──► QUEUED ──► IN_FLIGHT ──► DELIVERED   (terminal)
        │            │           │
        └────────────┴───────────┴───────► DROPPED(reason)  (terminal)

``GENERATED``
    :meth:`~repro.sim.trace.MetricsCollector.on_data_generated` ran but
    no frame carrying the datum has been sent yet (e.g. LEACH data
    buffered at a cluster head between uplinks).
``QUEUED``
    The datum sits in a protocol queue awaiting a route (``_pending_data``
    during discovery).
``IN_FLIGHT``
    At least one frame carrying the datum is on the air or queued at a
    forwarder.  Broadcast-routed data (flooding, MCFA) is flagged
    ``broadcast=True``: surplus copies die by duplicate suppression with
    no terminal event, so a strict audit exempts them from the
    no-in-flight-at-quiescence check.
``DELIVERED`` / ``DROPPED``
    Terminal.  ``DELIVERED`` wins conflicts: protocols under attack
    (wormhole tunnels, replay) can fork a datum into several copies, one
    of which terminally drops while another delivers — the entry is
    upgraded and the earlier drop is remembered in :attr:`late_drops`
    rather than double-counted.

The ledger never *invents* entries: frames whose datum key was never
generated (forged injections) are tallied in :attr:`unknown_delivered`
instead of polluting conservation.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.sim.packet import Packet, PacketKind

__all__ = ["DatumState", "LedgerEntry", "PacketLedger", "datum_key"]

DatumKey = tuple[int, int]


class DatumState(enum.Enum):
    """Lifecycle states of one application datum."""

    GENERATED = "generated"
    QUEUED = "queued"
    IN_FLIGHT = "in_flight"
    DELIVERED = "delivered"
    DROPPED = "dropped"


#: States from which a datum can still make progress.
_OPEN_STATES = (DatumState.GENERATED, DatumState.QUEUED, DatumState.IN_FLIGHT)


def datum_key(packet: Packet) -> Optional[DatumKey]:
    """The ``(origin, data_id)`` identity of the datum a frame carries.

    DATA frames carry ``payload["data_id"]`` with ``packet.origin`` as the
    datum source.  RERR frames carry the *stranded* datum back toward its
    source in ``payload["data"]`` — there the datum's origin is the RERR's
    ``target`` (the RERR originates at the detector, not the source).
    Control frames carry no datum and key to ``None``.
    """
    if packet.kind is PacketKind.DATA:
        did = packet.payload.get("data_id")
        if did is None:
            return None
        return (packet.origin, did)
    if packet.kind is PacketKind.RERR:
        data = packet.payload.get("data")
        if isinstance(data, dict) and packet.target is not None:
            did = data.get("data_id")
            if did is not None:
                return (packet.target, did)
    return None


@dataclass
class LedgerEntry:
    """Lifecycle record of one application datum."""

    origin: int
    data_id: int
    state: DatumState = DatumState.GENERATED
    generated_at: float = 0.0
    terminal_at: Optional[float] = None
    #: Terminal drop reason (``None`` unless state is DROPPED).
    reason: Optional[str] = None
    #: Node where the terminal drop happened, when the caller knows it.
    node: Optional[int] = None
    #: The datum travelled (also) as a local broadcast; surplus copies
    #: die silently by duplicate suppression, so strict audits exempt
    #: broadcast entries from the in-flight-at-quiescence check.
    broadcast: bool = False
    #: Deliveries after the first (multi-gateway duplicates).
    duplicates: int = 0
    #: A copy terminally dropped for this reason before another delivered.
    superseded_drop: Optional[str] = None

    @property
    def key(self) -> DatumKey:
        return (self.origin, self.data_id)

    @property
    def open(self) -> bool:
        """Whether the datum has not yet reached a terminal state."""
        return self.state in _OPEN_STATES


class PacketLedger:
    """Tracks every generated application datum to a terminal state.

    Fed exclusively by :class:`~repro.sim.trace.MetricsCollector` hooks;
    protocol code never touches the ledger directly.
    """

    def __init__(self) -> None:
        self.entries: dict[DatumKey, LedgerEntry] = {}
        #: Deliveries of datum keys never generated (forged/injected).
        self.unknown_delivered: Counter = Counter()
        #: Terminal drops reported after the datum already delivered
        #: (a surplus forked copy dying late) — informational only.
        self.late_drops: Counter = Counter()
        #: Terminal drops reported after the datum already terminally
        #: dropped (two copies both hitting dead ends).
        self.extra_drops: Counter = Counter()
        #: Terminal events on datum keys this ledger never generated —
        #: in a sharded run a datum generated in shard A can deliver or
        #: drop in shard B, whose ledger has no entry for it.  Each item
        #: is ``(key, kind, time, reason, node)`` with ``kind`` one of
        #: ``"delivered"``/``"dropped"``; :func:`repro.obs.merge.merge_ledgers`
        #: reunites them with their generating shard's entries.
        self.foreign: list[tuple[DatumKey, str, Optional[float], Optional[str], Optional[int]]] = []

    # ------------------------------------------------------------------
    # lifecycle hooks
    # ------------------------------------------------------------------
    def on_generated(self, origin: int, data_id: int, now: float = 0.0) -> None:
        key = (origin, data_id)
        if key not in self.entries:
            self.entries[key] = LedgerEntry(origin=origin, data_id=data_id, generated_at=now)

    def on_queued(self, origin: int, data_id: int) -> None:
        """The datum entered a protocol queue (e.g. awaiting discovery)."""
        entry = self.entries.get((origin, data_id))
        if entry is not None and entry.open:
            entry.state = DatumState.QUEUED

    def on_frame_sent(self, packet: Packet) -> None:
        key = datum_key(packet)
        if key is None:
            return
        entry = self.entries.get(key)
        if entry is None:
            return
        if packet.kind is PacketKind.DATA and packet.dst is None:
            entry.broadcast = True
        if entry.open:
            entry.state = DatumState.IN_FLIGHT

    def on_delivered(self, packet: Packet, now: float) -> None:
        key = datum_key(packet)
        if key is None:
            # Deliveries constructed without a data_id (mesh-tier probe
            # frames) identify by uid; treat as unknown rather than lose.
            self.unknown_delivered[(packet.origin, packet.uid)] += 1
            return
        entry = self.entries.get(key)
        if entry is None:
            self.unknown_delivered[key] += 1
            self.foreign.append((key, "delivered", now, None, None))
            return
        if entry.state is DatumState.DELIVERED:
            entry.duplicates += 1
            return
        if entry.state is DatumState.DROPPED:
            # A forked copy delivered after another copy terminally
            # dropped: delivery wins, the drop is remembered aside.
            self.late_drops[entry.reason or "unknown"] += 1
            entry.superseded_drop = entry.reason
            entry.reason = None
            entry.node = None
        entry.state = DatumState.DELIVERED
        entry.terminal_at = now

    def on_dropped(
        self,
        reason: str,
        packet: Optional[Packet] = None,
        *,
        key: Optional[DatumKey] = None,
        node: Optional[int] = None,
        now: Optional[float] = None,
    ) -> bool:
        """Record a *terminal* drop of a datum.

        Returns ``True`` when the drop closed an open entry; ``False``
        when it applied to an unknown, already-delivered or
        already-dropped datum (still tallied, never double-counted).
        """
        if key is None and packet is not None:
            key = datum_key(packet)
        if key is None:
            return False
        entry = self.entries.get(key)
        if entry is None:
            self.foreign.append((key, "dropped", now, reason, node))
            return False
        if entry.state is DatumState.DELIVERED:
            self.late_drops[reason] += 1
            return False
        if entry.state is DatumState.DROPPED:
            self.extra_drops[reason] += 1
            return False
        entry.state = DatumState.DROPPED
        entry.reason = reason
        entry.node = node
        entry.terminal_at = now
        return True

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def _count(self, state: DatumState) -> int:
        return sum(1 for e in self.entries.values() if e.state is state)

    @property
    def generated(self) -> int:
        return len(self.entries)

    @property
    def delivered(self) -> int:
        return self._count(DatumState.DELIVERED)

    @property
    def dropped(self) -> int:
        return self._count(DatumState.DROPPED)

    @property
    def pending(self) -> int:
        """Open entries: generated-only, queued or in flight."""
        return sum(1 for e in self.entries.values() if e.open)

    def pending_entries(self) -> list[LedgerEntry]:
        return [e for e in self.entries.values() if e.open]

    def stuck_entries(self) -> list[LedgerEntry]:
        """Open entries that can no longer make progress at quiescence:
        queued, or in flight without the broadcast exemption."""
        return [
            e
            for e in self.entries.values()
            if e.state is DatumState.QUEUED
            or (e.state is DatumState.IN_FLIGHT and not e.broadcast)
        ]

    def drops_by_reason(self) -> Counter:
        """Terminal drops, keyed by reason."""
        out: Counter = Counter()
        for e in self.entries.values():
            if e.state is DatumState.DROPPED:
                out[e.reason or "unknown"] += 1
        return out

    def drops_by_node(self) -> Counter:
        """Terminal drops, keyed by ``(node, reason)`` (node may be None)."""
        out: Counter = Counter()
        for e in self.entries.values():
            if e.state is DatumState.DROPPED:
                out[(e.node, e.reason or "unknown")] += 1
        return out

    @property
    def duplicate_deliveries(self) -> int:
        return sum(e.duplicates for e in self.entries.values())

    def counts(self) -> dict:
        """JSON-able summary of the ledger (runner trace / CLI food)."""
        return {
            "generated": self.generated,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "pending": self.pending,
            "duplicates": self.duplicate_deliveries,
            "unknown_delivered": sum(self.unknown_delivered.values()),
            "late_drops": sum(self.late_drops.values()),
            "drops_by_reason": dict(sorted(self.drops_by_reason().items())),
        }
