"""Conservation auditor.

Evaluates the conservation law over a :class:`~repro.sim.trace.
MetricsCollector` with an attached :class:`~repro.obs.ledger.PacketLedger`::

    data_generated == unique_delivered + terminal_drops + pending

``pending`` covers data legitimately still moving (generated-only, queued
awaiting a route, or in flight).  A *strict* audit — run automatically at
simulator quiescence when audit mode is on — additionally requires that
nothing is stuck: no datum may still be QUEUED, and no unicast-routed
datum may still be IN_FLIGHT, because with an empty event heap neither
can ever make progress.  (Broadcast-routed data is exempt: surplus flood
copies die by duplicate suppression with no terminal event.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConservationError

__all__ = ["ConservationReport", "audit_collector", "assert_conserved"]


@dataclass
class ConservationReport:
    """Result of one conservation audit (see :func:`audit_collector`)."""

    generated: int
    delivered: int
    dropped: int
    pending: int
    queued: int
    in_flight: int
    duplicates: int
    unknown_delivered: int
    late_drops: int
    drops_by_reason: dict[str, int] = field(default_factory=dict)
    drops_by_node: dict[tuple, int] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)
    strict: bool = False

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_jsonable(self) -> dict:
        """Flat JSON-able form (runner traces; node keys stringified)."""
        return {
            "generated": self.generated,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "pending": self.pending,
            "duplicates": self.duplicates,
            "unknown_delivered": self.unknown_delivered,
            "late_drops": self.late_drops,
            "drops_by_reason": dict(sorted(self.drops_by_reason.items())),
            "violations": list(self.violations),
        }

    def format_table(self) -> str:
        """Human-readable audit summary with the per-reason breakdown."""
        lines = [
            f"{'generated':>18} {self.generated}",
            f"{'delivered':>18} {self.delivered}"
            + (f" (+{self.duplicates} duplicate)" if self.duplicates else ""),
            f"{'dropped':>18} {self.dropped}",
            f"{'pending':>18} {self.pending}"
            + (f" ({self.queued} queued, {self.in_flight} in flight)" if self.pending else ""),
        ]
        if self.unknown_delivered:
            lines.append(f"{'forged/unknown':>18} {self.unknown_delivered}")
        if self.drops_by_reason:
            lines.append("  drop reasons:")
            for reason, count in sorted(self.drops_by_reason.items(), key=lambda kv: -kv[1]):
                lines.append(f"{reason:>18} {count}")
        if self.violations:
            lines.append("  VIOLATIONS:")
            lines.extend(f"    - {v}" for v in self.violations)
        else:
            label = "strict" if self.strict else "lenient"
            lines.append(f"  conservation holds ({label}): "
                         f"{self.generated} == {self.delivered} + {self.dropped} + {self.pending}")
        return "\n".join(lines)


def audit_collector(metrics, strict: bool = False) -> ConservationReport:
    """Audit a collector's ledger against the conservation law.

    ``metrics`` is duck-typed (a :class:`~repro.sim.trace.MetricsCollector`)
    to keep this module import-light; it must carry a non-``None``
    ``ledger``.  ``strict`` additionally flags stuck data — use it only at
    simulator quiescence, when stuck means *permanently* stuck.
    """
    ledger = getattr(metrics, "ledger", None)
    if ledger is None:
        raise ConservationError(
            "collector has no ledger attached — enable audit mode "
            "(MetricsCollector(audit=True), WorldBuilder().audit() or REPRO_AUDIT=1)"
        )
    from repro.obs.ledger import DatumState

    queued = sum(1 for e in ledger.entries.values() if e.state is DatumState.QUEUED)
    in_flight = sum(1 for e in ledger.entries.values() if e.state is DatumState.IN_FLIGHT)
    report = ConservationReport(
        generated=ledger.generated,
        delivered=ledger.delivered,
        dropped=ledger.dropped,
        pending=ledger.pending,
        queued=queued,
        in_flight=in_flight,
        duplicates=ledger.duplicate_deliveries,
        unknown_delivered=sum(ledger.unknown_delivered.values()),
        late_drops=sum(ledger.late_drops.values()),
        drops_by_reason=dict(ledger.drops_by_reason()),
        drops_by_node=dict(ledger.drops_by_node()),
        strict=strict,
    )

    # 1. Every counted generation must be in the ledger: a protocol that
    #    calls on_data_generated without datum identity leaks accounting.
    counted = getattr(metrics, "data_generated", report.generated)
    if counted != report.generated:
        report.violations.append(
            f"data_generated counter ({counted}) != ledger entries "
            f"({report.generated}) — generation without datum identity"
        )

    # 2. The conservation law itself.  By construction of the state
    #    machine this cannot fail, so a failure means the ledger was
    #    mutated outside its hooks.
    if report.generated != report.delivered + report.dropped + report.pending:
        report.violations.append(
            f"conservation broken: {report.generated} generated != "
            f"{report.delivered} delivered + {report.dropped} dropped + "
            f"{report.pending} pending"
        )

    # 3. Unique known deliveries can never exceed generation.
    if report.delivered > report.generated:
        report.violations.append(
            f"delivered ({report.delivered}) > generated ({report.generated})"
        )

    # 4. Strict (quiescence) checks: nothing may be stuck.
    if strict:
        stuck = ledger.stuck_entries()
        if stuck:
            sample = ", ".join(
                f"{e.key} {e.state.value}" for e in stuck[:5]
            )
            more = f" (+{len(stuck) - 5} more)" if len(stuck) > 5 else ""
            report.violations.append(
                f"{len(stuck)} datum(s) stuck at quiescence with no terminal "
                f"state: {sample}{more}"
            )
    return report


def assert_conserved(metrics, strict: bool = False) -> ConservationReport:
    """Audit and raise :class:`ConservationError` on any violation."""
    report = audit_collector(metrics, strict=strict)
    if not report.ok:
        raise ConservationError(
            "packet conservation violated:\n" + report.format_table()
        )
    return report
