"""Packet-lifecycle observability: conservation ledger, auditor, CLI.

The headline numbers of every experiment (delivery ratio, drop slices,
overhead) are only as trustworthy as the accounting underneath them.
This package makes *packet conservation* — every generated application
datum is delivered, dropped with a recorded reason, or demonstrably
still pending — a checkable (and, under audit mode, enforced) invariant:

:mod:`repro.obs.ledger`
    :class:`PacketLedger` — one :class:`LedgerEntry` per application
    datum, advanced through ``GENERATED → QUEUED/IN_FLIGHT →
    DELIVERED | DROPPED(reason)`` by the :class:`~repro.sim.trace.
    MetricsCollector` hooks.
:mod:`repro.obs.audit`
    :class:`ConservationReport` and :func:`audit_collector` /
    :func:`assert_conserved` — evaluate the conservation law
    ``data_generated == unique_delivered + terminal_drops + pending``
    with per-reason and per-node breakdowns.
:mod:`repro.obs.cli`
    ``python -m repro.obs trace.jsonl`` — replay a sweep-runner JSONL
    trace into a per-experiment drop-reason audit table.
:mod:`repro.obs.recovery`
    :class:`FaultWindow` / :class:`RecoveryReport` — join the fault
    injector's outage timeline against the ledger's delivery record for
    MTTR, availability and downtime accounting.
:mod:`repro.obs.merge`
    :func:`merge_collectors` / :func:`merge_ledgers` — fold per-shard
    collectors and ledgers (:mod:`repro.shard`) into one conserving
    whole-run view; the cross-shard conservation oracle.

Enable enforcement per world (``WorldBuilder().audit()``), per collector
(``MetricsCollector(audit=True)``) or globally (``REPRO_AUDIT=1``).
"""

from repro.obs.audit import ConservationReport, assert_conserved, audit_collector
from repro.obs.ledger import DatumState, LedgerEntry, PacketLedger, datum_key
from repro.obs.merge import merge_collectors, merge_ledgers
from repro.obs.recovery import FaultWindow, RecoveryReport, recovery_report

__all__ = [
    "DatumState",
    "LedgerEntry",
    "PacketLedger",
    "datum_key",
    "ConservationReport",
    "audit_collector",
    "assert_conserved",
    "FaultWindow",
    "RecoveryReport",
    "recovery_report",
    "merge_collectors",
    "merge_ledgers",
]
