"""Recovery metrics derived from the packet ledger and fault timeline.

The fault injector (:mod:`repro.faults.injector`) records one
:class:`FaultWindow` per realized outage — when a node went down and
when (if ever) it came back.  This module joins that timeline against
the :class:`~repro.obs.ledger.PacketLedger`'s delivery record to answer
the robustness questions the paper poses qualitatively in Section 8:

* **restore latency** — after a fault at ``t``, how long until the
  network delivers *any* datum again?  This measures service resumption
  through self-healing (RERR repair, re-discovery, rejoin), not the
  faulted node's own repair clock.
* **MTTR** — the mean of the finite restore latencies.
* **availability** — ``1 - node_downtime / (n_nodes * horizon)``, the
  fraction of node-time the network had its full complement up.

Everything here is pure ledger/timeline arithmetic: no simulator access,
so reports can be computed (and re-computed) after a run, including from
deserialized sweep results.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.ledger import DatumState, PacketLedger
from repro.sim.serialize import serializable

__all__ = ["FaultWindow", "RecoveryReport", "recovery_report"]


@serializable
@dataclass
class FaultWindow:
    """One realized outage: node ``node`` was down on ``[down_at, up_at)``.

    ``up_at`` is ``None`` while the outage is open — either the plan never
    recovers the node, or recovery was attempted on a battery-dead node
    (permanent).  ``cause`` records what opened the window (``"crash"``,
    ``"region"``, ``"churn"``, ``"battery"``).
    """

    node: int
    down_at: float
    up_at: Optional[float] = None
    cause: str = "crash"

    def downtime(self, horizon: float) -> float:
        """Seconds of downtime within ``[0, horizon]`` (open windows run on)."""
        end = self.up_at if self.up_at is not None else horizon
        return max(0.0, min(end, horizon) - min(self.down_at, horizon))


@serializable
@dataclass
class RecoveryReport:
    """MTTR / availability / downtime summary for one run."""

    horizon: float
    n_nodes: int
    n_faults: int
    n_recovered: int
    total_downtime: float
    availability: float
    #: Per fault window, seconds from outage onset to the next delivered
    #: datum anywhere in the network; ``None`` when nothing was ever
    #: delivered after the fault (service never resumed).
    restore_latencies: list = field(default_factory=list)
    mttr: Optional[float] = None
    unrestored: int = 0

    def format_table(self) -> str:
        lines = [
            "Recovery report",
            "  horizon          %10.3f s" % self.horizon,
            "  nodes            %10d" % self.n_nodes,
            "  fault windows    %10d  (%d recovered, %d unrestored)"
            % (self.n_faults, self.n_recovered, self.unrestored),
            "  total downtime   %10.3f node-s" % self.total_downtime,
            "  availability     %10.4f" % self.availability,
        ]
        if self.mttr is not None:
            lines.append("  MTTR             %10.3f s" % self.mttr)
        else:
            lines.append("  MTTR                    n/a  (no faults or no deliveries)")
        return "\n".join(lines)


def recovery_report(
    ledger: Optional[PacketLedger],
    windows: list,
    horizon: float,
    n_nodes: int,
) -> RecoveryReport:
    """Join the fault timeline against the delivery record.

    ``ledger`` may be ``None`` (audit off): downtime/availability still
    compute, restore latencies come back empty and MTTR ``None``.
    """
    deliveries: list[float] = []
    if ledger is not None:
        deliveries = sorted(
            e.terminal_at
            for e in ledger.entries.values()
            if e.state is DatumState.DELIVERED and e.terminal_at is not None
        )
    latencies: list[Optional[float]] = []
    for w in windows:
        if not deliveries:
            latencies.append(None)
            continue
        i = bisect_left(deliveries, w.down_at)
        latencies.append(deliveries[i] - w.down_at if i < len(deliveries) else None)
    finite = [lat for lat in latencies if lat is not None]
    total_downtime = sum(w.downtime(horizon) for w in windows)
    denom = n_nodes * horizon
    availability = 1.0 - total_downtime / denom if denom > 0 else 1.0
    return RecoveryReport(
        horizon=float(horizon),
        n_nodes=int(n_nodes),
        n_faults=len(windows),
        n_recovered=sum(1 for w in windows if w.up_at is not None),
        total_downtime=float(total_downtime),
        availability=float(availability),
        restore_latencies=latencies,
        mttr=float(sum(finite) / len(finite)) if finite else None,
        unrestored=len(latencies) - len(finite),
    )
