"""Merging per-shard observability into one whole-run view.

A sharded run (:mod:`repro.shard`) gives every worker its own
:class:`~repro.sim.trace.MetricsCollector` and, under audit mode, its own
:class:`~repro.obs.ledger.PacketLedger`.  Each ledger alone is *not*
conserving: a datum generated in shard A routinely reaches its terminal
state in shard B, where the ledger has no entry for it and records the
event on its :attr:`~repro.obs.ledger.PacketLedger.foreign` list instead.
:func:`merge_ledgers` reunites those foreign terminals with the entries
of the shard that generated them, producing a single ledger that obeys
the conservation law exactly as the single-process run's does — the
cross-shard oracle the digest-equality tests lean on.

Merging is order-independent: the merged terminal state of a datum is
decided by the *earliest* event of the winning kind (delivery beats
drop, matching the single-process ledger's conflict rule), never by the
order shards happened to report in.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.obs.ledger import DatumState, LedgerEntry, PacketLedger
from repro.sim.trace import MetricsCollector

__all__ = ["merge_collectors", "merge_ledgers"]

#: Priority of non-terminal states when no shard saw a terminal event —
#: the furthest-progressed view wins (only the generating shard holds
#: the entry, but keep the merge total even if that ever changes).
_OPEN_RANK = {
    DatumState.GENERATED: 0,
    DatumState.QUEUED: 1,
    DatumState.IN_FLIGHT: 2,
}


def merge_ledgers(parts: Sequence[PacketLedger]) -> PacketLedger:
    """Combine per-shard ledgers into one conserving whole-run ledger.

    Generation happens only in the shard that owns the datum's origin,
    so entry keys are disjoint across ``parts``; foreign terminal events
    recorded by the other shards are folded back onto those entries:

    * any delivery anywhere → ``DELIVERED`` at the earliest delivery
      time; surplus deliveries count as :attr:`duplicates`, and drops on
      the key (wherever they happened) land in :attr:`late_drops` — the
      same "delivery wins" rule the single ledger applies in-order;
    * otherwise any drop anywhere → ``DROPPED`` with the earliest drop's
      reason/node/time; further drops land in :attr:`extra_drops`;
    * otherwise the entry stays open in its furthest-progressed state.

    Foreign deliveries whose key no shard ever generated remain
    :attr:`unknown_delivered` (forged data stays forged after merging).
    """
    merged = PacketLedger()
    deliveries: dict[tuple, list] = {}  # key -> [time, ...]
    drops: dict[tuple, list] = {}  # key -> [(time, reason, node), ...]

    for part in parts:
        for key, entry in part.entries.items():
            if key in merged.entries:
                raise ConfigurationError(
                    f"datum {key} generated in more than one shard — "
                    "ownership partition is broken"
                )
            clone = LedgerEntry(
                origin=entry.origin,
                data_id=entry.data_id,
                state=entry.state,
                generated_at=entry.generated_at,
                terminal_at=entry.terminal_at,
                reason=entry.reason,
                node=entry.node,
                broadcast=entry.broadcast,
                duplicates=entry.duplicates,
                superseded_drop=entry.superseded_drop,
            )
            merged.entries[key] = clone
            if entry.state is DatumState.DELIVERED:
                deliveries.setdefault(key, []).append(entry.terminal_at)
            elif entry.state is DatumState.DROPPED:
                drops.setdefault(key, []).append(
                    (entry.terminal_at, entry.reason, entry.node)
                )
        merged.late_drops.update(part.late_drops)
        merged.extra_drops.update(part.extra_drops)

    # Foreign terminal events, plus the uid-keyed unknowns each part
    # tallied (part.unknown_delivered counts the datum-keyed foreign
    # deliveries too — subtract them so nothing is double-booked).
    for part in parts:
        foreign_delivered: Counter = Counter()
        for key, kind, when, reason, node in part.foreign:
            if kind == "delivered":
                foreign_delivered[key] += 1
                if key in merged.entries:
                    deliveries.setdefault(key, []).append(when)
                else:
                    merged.unknown_delivered[key] += 1
            else:
                if key in merged.entries:
                    drops.setdefault(key, []).append((when, reason, node))
                # A drop on a never-generated key was silent in the part
                # (on_dropped returned False) and stays silent merged.
        leftover = part.unknown_delivered - foreign_delivered
        merged.unknown_delivered.update(leftover)

    def _time(value: Optional[float]) -> float:
        return float("inf") if value is None else value

    for key, times in deliveries.items():
        entry = merged.entries[key]
        entry.state = DatumState.DELIVERED
        entry.terminal_at = min(times, key=_time)
        entry.duplicates += len(times) - 1
        key_drops = drops.pop(key, [])
        if key_drops:
            # Full (time, reason, node) key: a terminal drop that ties a
            # cross-shard delivery to the exact same timestamp must pick
            # the same superseded reason however many shards reported,
            # and in whatever order — time alone leaves the tie to
            # report order.
            first = min(
                key_drops,
                key=lambda d: (_time(d[0]), str(d[1]), -1 if d[2] is None else d[2]),
            )
            entry.superseded_drop = entry.superseded_drop or first[1] or "unknown"
            for _, reason, _node in key_drops:
                merged.late_drops[reason or "unknown"] += 1
        entry.reason = None
        entry.node = None

    for key, key_drops in drops.items():
        entry = merged.entries[key]
        key_drops.sort(key=lambda d: (_time(d[0]), str(d[1]), -1 if d[2] is None else d[2]))
        when, reason, node = key_drops[0]
        entry.state = DatumState.DROPPED
        entry.terminal_at = when
        entry.reason = reason
        entry.node = node
        for _, extra_reason, _node in key_drops[1:]:
            merged.extra_drops[extra_reason or "unknown"] += 1

    return merged


def merge_collectors(parts: Iterable[MetricsCollector]) -> MetricsCollector:
    """Combine per-shard collectors into one whole-run collector.

    Counters and totals sum; deliveries concatenate in the canonical
    ``(delivered_at, origin, uid, destination)`` order (so first-per-key
    statistics match the single-process run, whose simultaneous
    multi-gateway deliveries also resolve by ascending destination);
    ``first_death`` takes the earliest death across shards.  Ledgers, if
    every part carries one, merge via :func:`merge_ledgers`.
    """
    parts = list(parts)
    if not parts:
        raise ConfigurationError("merge_collectors needs at least one collector")
    merged = MetricsCollector(audit=False)
    for part in parts:
        merged.sent.update(part.sent)
        merged.received.update(part.received)
        merged.drops.update(part.drops)
        merged.bytes_sent += part.bytes_sent
        merged.data_generated += part.data_generated
        merged.control_frames += part.control_frames
        merged.data_frames += part.data_frames
        merged.deliveries.extend(part.deliveries)
        if part.first_death is not None and (
            merged.first_death is None or part.first_death[1] < merged.first_death[1]
        ):
            merged.first_death = part.first_death
    merged.deliveries.sort(
        key=lambda r: (r.delivered_at, r.origin, r.uid, r.destination)
    )
    if all(p.ledger is not None for p in parts):
        merged.ledger = merge_ledgers([p.ledger for p in parts])
        merged.audit = any(p.audit for p in parts)
    return merged
