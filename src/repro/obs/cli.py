"""``python -m repro.obs`` — drop-accounting audit of a runner trace.

Replays a sweep-runner JSONL trace (``SweepRunner(trace_path=...)``) and
prints, per experiment, the conservation totals and a per-reason drop
audit table.  Cells served from the result cache carry no observability
block (the cache stores results, not ledgers) and are reported as
*unaudited* rather than silently folded in.
"""

from __future__ import annotations

import argparse
import json
from collections import Counter
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.analysis.tables import format_table

__all__ = ["main", "load_cells", "summarize_cells"]


def load_cells(path: Path) -> list[dict]:
    """The ``type == "cell"`` records of a runner JSONL trace."""
    cells = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("type") == "cell":
                cells.append(record)
    return cells


def summarize_cells(cells: Iterable[dict]) -> dict[str, dict]:
    """Aggregate per-experiment conservation totals and drop reasons."""
    per_exp: dict[str, dict] = {}
    for cell in cells:
        exp = cell.get("experiment", "?")
        agg = per_exp.setdefault(
            exp,
            {
                "cells": 0,
                "audited": 0,
                "generated": 0,
                "delivered": 0,
                "dropped": 0,
                "pending": 0,
                "duplicates": 0,
                "unknown_delivered": 0,
                "violations": 0,
                "drops": Counter(),
            },
        )
        agg["cells"] += 1
        for reason, count in (cell.get("drops") or {}).items():
            agg["drops"][reason] += int(count)
        conservation = cell.get("conservation")
        if not conservation:
            continue  # cache hit or unaudited cell: no conservation block
        agg["audited"] += 1
        for key in ("generated", "delivered", "dropped", "pending",
                    "duplicates", "unknown_delivered"):
            agg[key] += int(conservation.get(key, 0))
        agg["violations"] += len(conservation.get("violations", ()))
    return per_exp


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Audit packet conservation from a sweep-runner JSONL trace.",
    )
    parser.add_argument("trace", type=Path, help="runner JSONL trace file")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero if any audited cell reported a violation",
    )
    args = parser.parse_args(argv)

    if not args.trace.exists():
        parser.error(f"no such trace: {args.trace}")
    cells = load_cells(args.trace)
    if not cells:
        print(f"{args.trace}: no cell records found")
        return 0

    per_exp = summarize_cells(cells)

    rows = [
        [
            exp,
            agg["cells"],
            agg["audited"],
            agg["generated"],
            agg["delivered"],
            agg["dropped"],
            agg["pending"],
            agg["duplicates"],
            agg["unknown_delivered"],
            agg["violations"],
        ]
        for exp, agg in sorted(per_exp.items())
    ]
    print(
        format_table(
            ["experiment", "cells", "audited", "generated", "delivered",
             "dropped", "pending", "dups", "forged", "violations"],
            rows,
            title=f"packet conservation — {args.trace.name}",
        )
    )

    drop_rows = []
    for exp, agg in sorted(per_exp.items()):
        for reason, count in sorted(agg["drops"].items(), key=lambda kv: (-kv[1], kv[0])):
            drop_rows.append([exp, reason, count])
    if drop_rows:
        print()
        print(format_table(["experiment", "reason", "count"], drop_rows,
                           title="terminal drops by reason"))
    else:
        print("\n(no drops recorded)")

    total_violations = sum(agg["violations"] for agg in per_exp.values())
    if total_violations:
        print(f"\n{total_violations} conservation violation(s) reported")
        if args.strict:
            return 1
    return 0
