"""Uniform experiment registry: name -> ``run(params, seed)`` adapter.

Every paper experiment keeps its native ``run_*`` signature for direct
callers, but sweeps, caching and the CLI need one calling convention.
:data:`REGISTRY` maps a short experiment name ("fig2", "scalability",
...) to an :class:`ExperimentAdapter` whose ``run(params, seed)`` injects
the seed into the underlying driver and wraps the native result dataclass
in an :class:`ExperimentResult` envelope that serializes through
:mod:`repro.sim.serialize`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.exceptions import ConfigurationError
from repro.experiments.architecture import run_architecture
from repro.experiments.attack_matrix import run_attack_matrix
from repro.experiments.chaos import run_chaos
from repro.experiments.fig2_hops import run_fig2
from repro.experiments.gateway_count import run_gateway_count
from repro.experiments.lifetime import run_lifetime_comparison
from repro.experiments.lp_bound import run_lp_bound
from repro.experiments.mobility_overhead import run_mobility_overhead
from repro.experiments.robustness import run_robustness
from repro.experiments.scalability import (
    run_scalability,
    run_scalability_xl,
    run_scalability_xl_mlr,
)
from repro.experiments.security_overhead import run_security_overhead
from repro.experiments.table1_mlr import run_table1
from repro.sim.serialize import serializable

__all__ = [
    "ExperimentResult",
    "ExperimentAdapter",
    "REGISTRY",
    "register",
    "get_experiment",
    "run_experiment",
]


@serializable
@dataclass
class ExperimentResult:
    """One experiment run, tagged with exactly what produced it.

    ``result`` is the experiment's native result dataclass (all of them
    are registered with :func:`repro.sim.serialize.serializable`, so the
    envelope round-trips to JSON for the cache and across processes).
    """

    experiment: str
    params: dict
    seed: int
    result: Any = None

    def format_table(self) -> str:
        if hasattr(self.result, "format_table"):
            return self.result.format_table()
        return repr(self.result)


@dataclass(frozen=True)
class ExperimentAdapter:
    """Binds an experiment name to its ``run_*`` driver.

    ``seed_param`` names the keyword through which the driver takes its
    seed; params override the driver's own defaults.
    """

    name: str
    fn: Callable[..., Any]
    module: str
    description: str = ""
    seed_param: str = "seed"

    def run(self, params: Optional[dict] = None, seed: int = 0) -> ExperimentResult:
        kwargs = dict(params or {})
        if self.seed_param in kwargs:
            raise ConfigurationError(
                f"pass the seed via the seed argument, not params[{self.seed_param!r}]"
            )
        kwargs[self.seed_param] = seed
        # JSON params arrive with lists where the drivers default to
        # tuples (e.g. scalability sizes); normalise so results and cache
        # keys do not depend on the container type the caller used.
        kwargs = {
            k: tuple(v) if isinstance(v, list) else v for k, v in kwargs.items()
        }
        native = self.fn(**kwargs)
        return ExperimentResult(
            experiment=self.name,
            params=dict(params or {}),
            seed=seed,
            result=native,
        )


#: the single source of truth for what experiments exist
REGISTRY: dict[str, ExperimentAdapter] = {}


def register(adapter: ExperimentAdapter) -> ExperimentAdapter:
    if adapter.name in REGISTRY:
        raise ConfigurationError(f"duplicate experiment name {adapter.name!r}")
    REGISTRY[adapter.name] = adapter
    return adapter


def get_experiment(name: str) -> ExperimentAdapter:
    try:
        return REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise ConfigurationError(
            f"unknown experiment {name!r}; registered: {known}"
        ) from None


def run_experiment(name: str, params: Optional[dict] = None, seed: int = 0) -> ExperimentResult:
    """Convenience one-shot: ``REGISTRY[name].run(params, seed)``."""
    return get_experiment(name).run(params, seed)


for _adapter in (
    ExperimentAdapter(
        "fig2", run_fig2, "repro.experiments.fig2_hops",
        "E1 — Fig. 2 hop counts, single sink vs three gateways",
    ),
    ExperimentAdapter(
        "table1", run_table1, "repro.experiments.table1_mlr",
        "E2 — Table 1 incremental MLR routing tables",
    ),
    ExperimentAdapter(
        "architecture", run_architecture, "repro.experiments.architecture",
        "E3 — three-tier WMSN architecture, per-tier statistics",
    ),
    ExperimentAdapter(
        "scalability", run_scalability, "repro.experiments.scalability",
        "E4 — hops/latency/energy vs network size, 1 sink vs m gateways",
    ),
    ExperimentAdapter(
        "lifetime", run_lifetime_comparison, "repro.experiments.lifetime",
        "E5 — lifetime comparison: MLR vs SPR vs baselines",
    ),
    ExperimentAdapter(
        "gateway_count", run_gateway_count, "repro.experiments.gateway_count",
        "E6 — lifetime and hops vs gateway count k",
    ),
    ExperimentAdapter(
        "scalability_xl", run_scalability_xl, "repro.experiments.scalability",
        "E6b — sharded execution scaling: digest-equal flooding at 20k-100k sensors",
    ),
    ExperimentAdapter(
        "scalability_xl_mlr", run_scalability_xl_mlr, "repro.experiments.scalability",
        "E6c — sharded MLR: digest-equal unicast routing with gateway relocation",
    ),
    ExperimentAdapter(
        "security_overhead", run_security_overhead, "repro.experiments.security_overhead",
        "E7 — SecMLR overhead vs MLR",
    ),
    ExperimentAdapter(
        "attack_matrix", run_attack_matrix, "repro.experiments.attack_matrix",
        "E8 — attack resistance matrix, MLR vs SecMLR",
    ),
    ExperimentAdapter(
        "robustness", run_robustness, "repro.experiments.robustness",
        "E9 — delivery under gateway/sensor failures",
    ),
    ExperimentAdapter(
        "mobility_overhead", run_mobility_overhead, "repro.experiments.mobility_overhead",
        "E10 — control-plane cost of gateway mobility",
    ),
    ExperimentAdapter(
        "lp_bound", run_lp_bound, "repro.experiments.lp_bound",
        "E11 — LP lifetime bound vs the MLR heuristic",
    ),
    ExperimentAdapter(
        "chaos", run_chaos, "repro.experiments.chaos",
        "E14 — chaos: randomized fault campaigns under conservation audit",
    ),
):
    register(_adapter)
