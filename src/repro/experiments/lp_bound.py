"""E11 — the LP bound of equations (1)-(6) vs the MLR heuristic.

The paper formalises lifetime-optimal routing as an optimisation problem,
calls it "probably ... a NP problem", and proposes MLR as a heuristic
"providing results approximate to above design goal".  This experiment
quantifies *how* approximate:

* the max-lifetime LP (:class:`repro.core.lifetime.LifetimeLP`) yields an
  upper bound ``L*`` on any schedule's lifetime for the same topology,
  battery and traffic;
* MLR is simulated on that topology; its measured lifetime must satisfy
  ``L_MLR <= L*`` and the ratio shows the optimality gap;
* the min-energy LP gives the energy floor compared with MLR's measured
  per-round energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.core.lifetime import LifetimeLP
from repro.core.mlr import MLR
from repro.experiments.common import (
    corner_places,
    default_energy_model,
    make_uniform_scenario,
    run_collection_rounds,
)
from repro.sim.mobility import GatewaySchedule
from repro.sim.packet import DATA_PAYLOAD_BYTES, MAC_HEADER_BYTES
from repro.sim.serialize import serializable

__all__ = ["LpBoundResult", "run_lp_bound"]


@serializable
@dataclass(frozen=True)
class LpBoundResult:
    lp_lifetime_rounds: float
    mlr_lifetime_rounds: float
    lp_min_total_energy: float
    mlr_total_energy_per_round: float
    lp_minmax_node_energy: float

    @property
    def optimality_ratio(self) -> float:
        """Measured MLR lifetime / LP upper bound (<= 1 by construction)."""
        if self.lp_lifetime_rounds == 0:
            return 0.0
        return self.mlr_lifetime_rounds / self.lp_lifetime_rounds

    def format_table(self) -> str:
        rows = [
            ["lifetime (rounds)", round(self.lp_lifetime_rounds, 1),
             round(self.mlr_lifetime_rounds, 1), round(self.optimality_ratio, 3)],
            ["energy per round (J)", self.lp_min_total_energy,
             self.mlr_total_energy_per_round,
             round(self.mlr_total_energy_per_round / self.lp_min_total_energy, 3)
             if self.lp_min_total_energy else "-"],
        ]
        return format_table(
            ["metric", "LP bound", "MLR measured", "ratio"],
            rows,
            title="E11 — LP relaxation of eqs. (1)-(6) vs the MLR heuristic",
            ndigits=6,
        )


def run_lp_bound(
    n_sensors: int = 40,
    field_size: float = 180.0,
    gateways: int = 2,
    battery: float = 0.06,
    max_rounds: int = 120,
    round_duration: float = 5.0,
    comm_range: float = 50.0,
    packets_per_round: int = 4,
    seed: int = 7,
) -> LpBoundResult:
    """Solve the LPs and simulate MLR on the same deployment."""
    places = corner_places(field_size)
    gw_positions = [list(places.position(p)) for p in places.labels[:gateways]]
    energy_model = default_energy_model()

    scenario = make_uniform_scenario(
        n_sensors, field_size, gw_positions,
        comm_range=comm_range, sensor_battery=battery,
        topology_seed=seed, protocol_seed=seed + 29,
        energy_model=energy_model,
    )
    sim, net, ch = scenario.sim, scenario.network, scenario.channel

    # LP sees the *static* initial topology; MLR additionally benefits
    # from gateway mobility, but the LP bound with gateways at every
    # feasible place simultaneously would be looser, so we bound against
    # the round-0 placement (a fair per-round bound).
    bits = 8 * (MAC_HEADER_BYTES + DATA_PAYLOAD_BYTES)
    et = energy_model.tx_cost(bits, comm_range)
    er = energy_model.rx_cost(bits)
    lp = LifetimeLP(net, et=et, er=er, generation_rate=float(packets_per_round))
    max_life = lp.solve_max_lifetime(battery=battery)
    min_energy = lp.solve_min_energy()

    schedule = GatewaySchedule.rotating(places, net.gateway_ids, num_rounds=max_rounds, seed=seed)
    protocol = MLR(sim, net, ch, schedule)
    result = run_collection_rounds(
        scenario, protocol, num_rounds=max_rounds, round_duration=round_duration,
        packets_per_round=packets_per_round,
        stop_on_first_death=True, name="MLR",
    )
    mlr_rounds = (
        float(max_rounds) if result.lifetime is None else result.lifetime / round_duration
    )
    rounds_run = max(1.0, min(mlr_rounds, max_rounds))
    return LpBoundResult(
        lp_lifetime_rounds=max_life.objective,
        mlr_lifetime_rounds=mlr_rounds,
        lp_min_total_energy=min_energy.total_energy,
        mlr_total_energy_per_round=result.total_energy / rounds_run,
        lp_minmax_node_energy=min_energy.max_energy,
    )
