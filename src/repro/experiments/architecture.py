"""E3 — the three-tier architecture of Fig. 1, exercised end to end.

Fig. 1 is a diagram, so its "reproduction" is behavioural: sensed data
must traverse sensor tier (802.15.4) → WMG → mesh tier (802.11) → base
station → Internet, with the tier split visible in per-tier hop counts
and latencies, and the two MACs carrying their respective tiers'
traffic.  The experiment builds two sensor fields joined by one mesh
backbone (the "interconnect multiple sensor networks" claim) and reports
per-tier statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.core.spr import SPR
from repro.mesh.stack import ThreeTierWMSN
from repro.sim.engine import Simulator
from repro.sim.network import uniform_deployment
from repro.sim.radio import IEEE802154, IEEE80211
from repro.sim.serialize import serializable
from dataclasses import replace as dc_replace

__all__ = ["ArchitectureResult", "run_architecture"]


@serializable
@dataclass(frozen=True)
class ArchitectureResult:
    delivered_to_internet: int
    generated: int
    mean_sensor_hops: float
    mean_mesh_hops: float
    mean_sensor_latency: float
    mean_mesh_latency: float
    mean_end_to_end_latency: float
    sensor_tier_frames: int
    mesh_tier_frames: int

    @property
    def delivery_ratio(self) -> float:
        return self.delivered_to_internet / self.generated if self.generated else 0.0

    def format_table(self) -> str:
        rows = [
            ["sensor tier (802.15.4)", round(self.mean_sensor_hops, 2),
             round(self.mean_sensor_latency * 1e3, 2), self.sensor_tier_frames],
            ["mesh tier (802.11)", round(self.mean_mesh_hops, 2),
             round(self.mean_mesh_latency * 1e3, 2), self.mesh_tier_frames],
            ["end-to-end", "-", round(self.mean_end_to_end_latency * 1e3, 2), "-"],
        ]
        table = format_table(
            ["tier", "mean hops", "mean latency (ms)", "frames"],
            rows,
            title="Fig. 1 — three-tier WMSN, per-tier transport statistics",
        )
        return (
            table
            + f"\nInternet delivery: {self.delivered_to_internet}/{self.generated}"
            + f" ({self.delivery_ratio:.1%})"
        )


def run_architecture(
    n_sensors: int = 60,
    field_size: float = 300.0,
    packets_per_sensor: int = 2,
    seed: int = 3,
) -> ArchitectureResult:
    """Run the full stack and aggregate per-tier statistics."""
    sim = Simulator(seed=seed)
    sensors = uniform_deployment(n_sensors, field_size, seed=seed)
    gateways = np.array(
        [
            [0.2 * field_size, 0.2 * field_size],
            [0.8 * field_size, 0.8 * field_size],
            [0.2 * field_size, 0.8 * field_size],
        ]
    )
    routers = np.array([[0.5 * field_size, 0.5 * field_size], [0.5 * field_size, field_size]])
    base_stations = np.array([[field_size, 0.5 * field_size]])

    sensor_radio = dc_replace(IEEE802154.ideal(), comm_range=75.0)
    stack = ThreeTierWMSN(
        sim,
        sensors,
        gateways,
        routers,
        base_stations,
        protocol_factory=SPR,
        sensor_radio=sensor_radio,
        mesh_radio=IEEE80211,
    )
    generated = 0
    for k in range(packets_per_sensor):
        for s in range(n_sensors):
            sim.schedule(0.1 * k + (s % 50) * 1e-3, stack.send_data, s)
            generated += 1
    sim.run()

    recs = stack.completed_records()
    internet = stack.internet
    def mean(xs):
        return float(np.mean(xs)) if xs else 0.0
    e2e = [r.end_to_end_latency for r in internet.records]
    return ArchitectureResult(
        delivered_to_internet=internet.received_count,
        generated=generated,
        mean_sensor_hops=mean([r.sensor_tier_hops for r in recs]),
        mean_mesh_hops=mean([r.mesh_tier_hops for r in recs]),
        mean_sensor_latency=mean([r.sensor_tier_latency for r in recs]),
        mean_mesh_latency=mean([r.mesh_tier_latency for r in recs]),
        mean_end_to_end_latency=mean(e2e),
        sensor_tier_frames=stack.sensor_metrics.data_frames + stack.sensor_metrics.control_frames,
        mesh_tier_frames=stack.mesh.metrics.data_frames + stack.mesh.metrics.control_frames,
    )
