"""E4/E6b — scalability: protocol curves vs size, and sharded execution.

E4 quantifies the Section 1/3 claim that the flat single-sink
architecture scales poorly: "With the expansion of sensor networks, the
average number of hops between a source sensor node to the single sink
become more and more, resulting in more energy consumption and
transmission delay."  Node density is held constant while the field
grows, with one sink at the field center vs ``m`` gateways spread over
the field.  Expected shape: single-sink mean hops grow ~ sqrt(area)
while the multi-gateway curve grows ~ sqrt(area)/sqrt(m).

E6b (:func:`run_scalability_xl`) pushes the same constant-density
construction to 20k-100k sensors, where a single process becomes the
bottleneck: each size runs TTL-bounded flooding through
:func:`repro.shard.run_sharded` at increasing worker counts, asserting
the order-canonical digest is identical across worker counts (the
sharded executor is an execution strategy, not a model change) and
reporting per-leg wall clock.

E6c (:func:`run_scalability_xl_mlr`) repeats the sweep with MLR —
unicast routing, discovery floods, a mid-run gateway relocation round —
exercising the cross-shard route state and per-node RNG partitioning
that broadcast flooding never touches.  The gateway schedule moves
every other gateway along its own strip (same x), which is exactly the
strip-stable mobility the sharded executor validates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.tables import format_table
from repro.baselines.flat import FlatSinkRouting
from repro.core.policy import ProtocolConfig
from repro.core.spr import SPR
from repro.exceptions import SimulationError
from repro.experiments.common import (
    make_uniform_scenario,
    run_collection_rounds,
)
from repro.shard import ShardWorkload, run_sharded
from repro.sim.mobility import FeasiblePlaces, GatewaySchedule
from repro.sim.network import uniform_deployment
from repro.sim.serialize import serializable
from repro.world import WorldConfig

__all__ = [
    "ScalabilityResult",
    "run_scalability",
    "ScalabilityXLResult",
    "make_xl_workload",
    "make_xl_mlr_workload",
    "run_scalability_xl",
    "run_scalability_xl_mlr",
]


@serializable
@dataclass(frozen=True)
class ScalabilityRow:
    n_sensors: int
    field_size: float
    single_hops: float
    multi_hops: float
    single_latency: float
    multi_latency: float
    single_energy: float
    multi_energy: float

    @property
    def hop_ratio(self) -> float:
        return self.single_hops / self.multi_hops if self.multi_hops else float("inf")


@serializable
@dataclass(frozen=True)
class ScalabilityResult:
    rows: list
    gateways: int

    def format_table(self) -> str:
        return format_table(
            ["n", "field_m", "hops 1-sink", f"hops {self.gateways}-gw", "ratio",
             "lat 1-sink ms", f"lat {self.gateways}-gw ms",
             "E 1-sink J", f"E {self.gateways}-gw J"],
            [
                [r.n_sensors, r.field_size, round(r.single_hops, 2), round(r.multi_hops, 2),
                 round(r.hop_ratio, 2),
                 round(r.single_latency * 1e3, 2), round(r.multi_latency * 1e3, 2),
                 r.single_energy, r.multi_energy]
                for r in self.rows
            ],
            title="E4 — scalability: single sink vs multiple gateways",
        )

    @property
    def single_sink_hops_series(self) -> list[float]:
        return [r.single_hops for r in self.rows]

    @property
    def multi_gateway_hops_series(self) -> list[float]:
        return [r.multi_hops for r in self.rows]


def _gateway_grid(field_size: float, m: int) -> list[list[float]]:
    """Spread m gateways evenly (center for m=1; inset grid otherwise)."""
    if m == 1:
        return [[field_size / 2, field_size / 2]]
    side = int(np.ceil(np.sqrt(m)))
    coords = []
    for i in range(side):
        for j in range(side):
            if len(coords) >= m:
                break
            coords.append(
                [field_size * (i + 0.5) / side, field_size * (j + 0.5) / side]
            )
    return coords


def run_scalability(
    sizes: tuple[int, ...] = (50, 100, 200, 400),
    density: float = 1 / 900.0,  # sensors per m^2 (one per 30x30 m cell)
    gateways: int = 4,
    comm_range: float = 55.0,
    rounds: int = 2,
    seed: int = 1,
    world=None,
) -> ScalabilityResult:
    """Sweep network size at constant density.

    ``world`` (a :class:`~repro.world.WorldConfig` or its jsonable form)
    selects the execution configuration; ``world=WorldConfig(
    spatial_index="bruteforce")`` reruns the sweep on the quadratic
    reference path (ablations, benchmarks).
    """
    cfg = WorldConfig.from_param(world) or WorldConfig()
    rows = []
    for n in sizes:
        field = float(np.sqrt(n / density))
        results = {}
        for label, gw_count, cls in (
            ("single", 1, FlatSinkRouting),
            ("multi", gateways, SPR),
        ):
            scenario = make_uniform_scenario(
                n,
                field,
                _gateway_grid(field, gw_count),
                comm_range=comm_range,
                topology_seed=seed,
                protocol_seed=seed + 1,
                world=cfg,
            )
            protocol = cls(scenario.sim, scenario.network, scenario.channel)
            # Several packets per round amortise the one-time discovery
            # floods so the energy column reflects steady-state forwarding.
            results[label] = run_collection_rounds(
                scenario, protocol, num_rounds=rounds, round_duration=8.0,
                packets_per_round=5, name=label,
            )
        rows.append(
            ScalabilityRow(
                n_sensors=n,
                field_size=round(field, 1),
                single_hops=results["single"].mean_hops,
                multi_hops=results["multi"].mean_hops,
                single_latency=results["single"].mean_latency,
                multi_latency=results["multi"].mean_latency,
                single_energy=results["single"].total_energy,
                multi_energy=results["multi"].total_energy,
            )
        )
    return ScalabilityResult(rows=rows, gateways=gateways)


# ----------------------------------------------------------------------
# E6b — sharded execution scaling
# ----------------------------------------------------------------------
@serializable
@dataclass(frozen=True)
class ScalabilityXLRow:
    """One (network size, worker count) leg of the sharded sweep."""

    n_sensors: int
    shards: int
    wall_clock_s: float
    events_processed: int
    windows: int
    digest: str
    data_generated: int
    delivered: int
    conserved: bool


@serializable
@dataclass(frozen=True)
class ScalabilityXLResult:
    rows: list
    title: str = "E6b — sharded execution scaling (digests equal per size)"

    def format_table(self) -> str:
        return format_table(
            ["n", "workers", "wall_s", "events", "ev/s", "windows",
             "delivered", "digest"],
            [
                [r.n_sensors, r.shards, round(r.wall_clock_s, 3),
                 r.events_processed,
                 int(r.events_processed / r.wall_clock_s) if r.wall_clock_s else 0,
                 r.windows, f"{r.delivered}/{r.data_generated}",
                 r.digest[:12]]
                for r in self.rows
            ],
            title=self.title,
        )

    def speedup(self, n_sensors: int) -> float:
        """wall(min workers) / wall(max workers) at one network size."""
        legs = {r.shards: r.wall_clock_s for r in self.rows if r.n_sensors == n_sensors}
        return legs[min(legs)] / legs[max(legs)]


def make_xl_workload(
    sensors: int,
    floods: int,
    ttl: int,
    density: float = 1 / 900.0,
    comm_range: float = 55.0,
    seed: int = 0,
    audit: Optional[bool] = None,
) -> ShardWorkload:
    """The E6b deployment: constant density, gateway grid, spread floods.

    The gateway grid scales with the field (one per ~5000 sensors,
    minimum 2x2) so delivery stays local at 100k sensors; ``ttl`` bounds
    each flood's reach, which is what makes six-figure fields tractable
    — an unbounded flood touches every node per datum.
    """
    field = math.sqrt(sensors / density)
    positions = uniform_deployment(sensors, field, seed=seed)
    g = max(2, round(math.sqrt(sensors / 5000.0)))
    frac = [(k + 1) / (g + 1) for k in range(g)]
    gateways = np.asarray([[fx * field, fy * field] for fx in frac for fy in frac])
    sources = [int(k * sensors / floods) for k in range(floods)]
    traffic = tuple((1.0 + 0.25 * k, s) for k, s in enumerate(sources))
    return ShardWorkload(
        sensor_positions=positions,
        gateway_positions=gateways,
        comm_range=comm_range,
        traffic=traffic,
        world=WorldConfig(audit=audit),
        protocol="flooding",
        protocol_params={"max_hops": ttl},
        seed=seed,
    )


def _shard_legs(workload: ShardWorkload, n: int, shards: tuple) -> list:
    """Run one workload at every worker count, asserting digest equality."""
    rows = []
    want = None
    for w in shards:
        result = run_sharded(workload, shards=int(w))
        if want is None:
            want = result.digest
        elif result.digest != want:
            raise SimulationError(
                f"sharded run diverged at n={n}: {w} workers produced "
                f"digest {result.digest}, expected {want}"
            )
        rows.append(
            ScalabilityXLRow(
                n_sensors=int(n),
                shards=int(w),
                wall_clock_s=result.wall_clock_s,
                events_processed=result.events_processed,
                windows=result.windows,
                digest=result.digest,
                data_generated=result.metrics.data_generated,
                delivered=len(
                    {(r.origin, r.uid) for r in result.metrics.deliveries}
                ),
                conserved=(
                    result.conservation is None or result.conservation.ok
                ),
            )
        )
    return rows


def run_scalability_xl(
    sizes: tuple[int, ...] = (5000,),
    shards: tuple[int, ...] = (1, 2),
    floods: int = 16,
    ttl: int = 10,
    density: float = 1 / 900.0,
    comm_range: float = 55.0,
    seed: int = 0,
    world=None,
) -> ScalabilityXLResult:
    """Sweep network size × worker count through the sharded executor.

    Every size is replayed at each worker count in ``shards``; the legs
    of one size must agree on the run digest (raises
    :class:`~repro.exceptions.SimulationError` otherwise) and, under
    audit mode, each sharded leg passes the merged conservation audit.
    ``world`` only contributes its audit flag here — sharded execution
    constrains the rest of the configuration itself.
    """
    cfg = WorldConfig.from_param(world) or WorldConfig()
    rows = []
    for n in sizes:
        workload = make_xl_workload(
            n, floods, ttl, density=density, comm_range=comm_range,
            seed=seed, audit=cfg.audit,
        )
        rows.extend(_shard_legs(workload, n, shards))
    return ScalabilityXLResult(rows=rows)


# ----------------------------------------------------------------------
# E6c — sharded execution scaling, MLR
# ----------------------------------------------------------------------
def make_xl_mlr_workload(
    sensors: int,
    datums: int,
    ttl: int,
    density: float = 1 / 900.0,
    comm_range: float = 55.0,
    seed: int = 0,
    audit: Optional[bool] = None,
) -> ShardWorkload:
    """The E6c deployment: MLR with a mid-run gateway relocation round.

    The field and gateway grid match :func:`make_xl_workload`.  Each
    gateway gets two feasible places stacked along its own strip (same
    x, y shifted by a quarter grid cell) — the strip-stable mobility the
    sharded executor requires.  Round 1 fires after the first half of
    the traffic and moves every other gateway to its alternate place,
    so the second half exercises NOTIFY floods, re-discovery and the
    accumulated place-keyed tables across shard boundaries.
    """
    field = math.sqrt(sensors / density)
    positions = uniform_deployment(sensors, field, seed=seed)
    g = max(2, round(math.sqrt(sensors / 5000.0)))
    frac = [(k + 1) / (g + 1) for k in range(g)]
    spots = [(fx * field, fy * field) for fx in frac for fy in frac]
    gateway_ids = [sensors + k for k in range(len(spots))]
    shift = field / (4.0 * (g + 1))
    labels: list[str] = []
    coords: list[tuple[float, float]] = []
    for k, (x, y) in enumerate(spots):
        labels += [f"p{k}a", f"p{k}b"]
        coords += [(x, y), (x, y + shift)]
    places = FeasiblePlaces(labels=tuple(labels), coordinates=tuple(coords))
    schedule = GatewaySchedule(
        places=places,
        rounds=[
            {gid: f"p{k}a" for k, gid in enumerate(gateway_ids)},
            {
                gid: f"p{k}b" if k % 2 == 0 else f"p{k}a"
                for k, gid in enumerate(gateway_ids)
            },
        ],
    )
    half = (datums + 1) // 2
    move_at = 1.0 + 0.25 * half + 30.0
    sources = [int(k * sensors / datums) for k in range(datums)]
    traffic = tuple(
        (
            1.0 + 0.25 * k if k < half else move_at + 1.0 + 0.25 * (k - half),
            s,
        )
        for k, s in enumerate(sources)
    )
    return ShardWorkload(
        sensor_positions=positions,
        gateway_positions=np.asarray(spots, dtype=float),
        comm_range=comm_range,
        traffic=traffic,
        world=WorldConfig(audit=audit),
        protocol="mlr",
        protocol_params={
            "schedule": schedule,
            "config": ProtocolConfig(ttl=ttl),
        },
        seed=seed,
        rounds=(0.0, move_at),
    )


def run_scalability_xl_mlr(
    sizes: tuple[int, ...] = (2000,),
    shards: tuple[int, ...] = (1, 2),
    datums: int = 16,
    ttl: int = 12,
    density: float = 1 / 900.0,
    comm_range: float = 55.0,
    seed: int = 0,
    world=None,
) -> ScalabilityXLResult:
    """E6c: the sharded sweep with MLR instead of flooding.

    Same digest-equality contract as :func:`run_scalability_xl`, but the
    workload routes unicast DATA over discovered paths, relocates
    gateways mid-run and (under audit mode) passes the merged
    conservation audit whole-network — the end-to-end check that route
    announcements, RERR repair and routing-table state survive shard
    boundaries bit-for-bit.
    """
    cfg = WorldConfig.from_param(world) or WorldConfig()
    rows = []
    for n in sizes:
        workload = make_xl_mlr_workload(
            n, datums, ttl, density=density, comm_range=comm_range,
            seed=seed, audit=cfg.audit,
        )
        rows.extend(_shard_legs(workload, n, shards))
    return ScalabilityXLResult(
        rows=rows,
        title="E6c — sharded MLR scaling (digests equal per size)",
    )
