"""E4 — scalability: hops/latency/energy vs network size, 1 sink vs m gateways.

Quantifies the Section 1/3 claim that the flat single-sink architecture
scales poorly: "With the expansion of sensor networks, the average number
of hops between a source sensor node to the single sink become more and
more, resulting in more energy consumption and transmission delay."

Node density is held constant while the field grows, with one sink at
the field center vs ``m`` gateways spread over the field.  Expected
shape: single-sink mean hops grow ~ sqrt(area) while the multi-gateway
curve grows ~ sqrt(area)/sqrt(m) — the gap widens with size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.tables import format_table
from repro.baselines.flat import FlatSinkRouting
from repro.core.spr import SPR
from repro.experiments.common import (
    make_uniform_scenario,
    resolve_world_config,
    run_collection_rounds,
)
from repro.sim.serialize import serializable

__all__ = ["ScalabilityResult", "run_scalability"]


@serializable
@dataclass(frozen=True)
class ScalabilityRow:
    n_sensors: int
    field_size: float
    single_hops: float
    multi_hops: float
    single_latency: float
    multi_latency: float
    single_energy: float
    multi_energy: float

    @property
    def hop_ratio(self) -> float:
        return self.single_hops / self.multi_hops if self.multi_hops else float("inf")


@serializable
@dataclass(frozen=True)
class ScalabilityResult:
    rows: list
    gateways: int

    def format_table(self) -> str:
        return format_table(
            ["n", "field_m", "hops 1-sink", f"hops {self.gateways}-gw", "ratio",
             "lat 1-sink ms", f"lat {self.gateways}-gw ms",
             "E 1-sink J", f"E {self.gateways}-gw J"],
            [
                [r.n_sensors, r.field_size, round(r.single_hops, 2), round(r.multi_hops, 2),
                 round(r.hop_ratio, 2),
                 round(r.single_latency * 1e3, 2), round(r.multi_latency * 1e3, 2),
                 r.single_energy, r.multi_energy]
                for r in self.rows
            ],
            title="E4 — scalability: single sink vs multiple gateways",
        )

    @property
    def single_sink_hops_series(self) -> list[float]:
        return [r.single_hops for r in self.rows]

    @property
    def multi_gateway_hops_series(self) -> list[float]:
        return [r.multi_hops for r in self.rows]


def _gateway_grid(field_size: float, m: int) -> list[list[float]]:
    """Spread m gateways evenly (center for m=1; inset grid otherwise)."""
    if m == 1:
        return [[field_size / 2, field_size / 2]]
    side = int(np.ceil(np.sqrt(m)))
    coords = []
    for i in range(side):
        for j in range(side):
            if len(coords) >= m:
                break
            coords.append(
                [field_size * (i + 0.5) / side, field_size * (j + 0.5) / side]
            )
    return coords


def run_scalability(
    sizes: tuple[int, ...] = (50, 100, 200, 400),
    density: float = 1 / 900.0,  # sensors per m^2 (one per 30x30 m cell)
    gateways: int = 4,
    comm_range: float = 55.0,
    rounds: int = 2,
    seed: int = 1,
    world=None,
    spatial_index: Optional[str] = None,
) -> ScalabilityResult:
    """Sweep network size at constant density.

    ``world`` (a :class:`~repro.world.WorldConfig` or its jsonable form)
    selects the execution configuration; ``world=WorldConfig(
    spatial_index="bruteforce")`` reruns the sweep on the quadratic
    reference path (ablations, benchmarks).  The bare ``spatial_index``
    kwarg is the deprecated spelling of the same choice.
    """
    cfg = resolve_world_config(world, spatial_index, None, None)
    rows = []
    for n in sizes:
        field = float(np.sqrt(n / density))
        results = {}
        for label, gw_count, cls in (
            ("single", 1, FlatSinkRouting),
            ("multi", gateways, SPR),
        ):
            scenario = make_uniform_scenario(
                n,
                field,
                _gateway_grid(field, gw_count),
                comm_range=comm_range,
                topology_seed=seed,
                protocol_seed=seed + 1,
                world=cfg,
            )
            protocol = cls(scenario.sim, scenario.network, scenario.channel)
            # Several packets per round amortise the one-time discovery
            # floods so the energy column reflects steady-state forwarding.
            results[label] = run_collection_rounds(
                scenario, protocol, num_rounds=rounds, round_duration=8.0,
                packets_per_round=5, name=label,
            )
        rows.append(
            ScalabilityRow(
                n_sensors=n,
                field_size=round(field, 1),
                single_hops=results["single"].mean_hops,
                multi_hops=results["multi"].mean_hops,
                single_latency=results["single"].mean_latency,
                multi_latency=results["multi"].mean_latency,
                single_energy=results["single"].total_energy,
                multi_energy=results["multi"].total_energy,
            )
        )
    return ScalabilityResult(rows=rows, gateways=gateways)
