"""E7 — the cost of security: SecMLR vs MLR on identical scenarios.

Section 6.2's design performs "main computing tasks on resource-rich
gateways", so the claimed sensor-side overhead is (a) the SNEP envelope
bytes on every RREQ/RRES/DATA, (b) the loss of Property-1 table
answering (only gateways can answer authentically), (c) the gateway
collection timeout on discovery latency, and (d) μTESLA's disclosure
floods and lag on NOTIFY.  This experiment measures all four.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.core.mlr import MLR
from repro.core.secmlr import SecMLR
from repro.experiments.common import (
    ScenarioResult,
    corner_places,
    default_energy_model,
    make_uniform_scenario,
    run_collection_rounds,
)
from repro.sim.mobility import GatewaySchedule
from repro.sim.serialize import serializable

__all__ = ["SecurityOverheadResult", "run_security_overhead"]


@serializable
@dataclass(frozen=True)
class SecurityOverheadResult:
    mlr: ScenarioResult
    secmlr: ScenarioResult

    @property
    def byte_overhead(self) -> float:
        """Relative increase in bytes on the air."""
        if self.mlr.bytes_sent == 0:
            return 0.0
        return self.secmlr.bytes_sent / self.mlr.bytes_sent - 1.0

    @property
    def energy_overhead(self) -> float:
        if self.mlr.total_energy == 0:
            return 0.0
        return self.secmlr.total_energy / self.mlr.total_energy - 1.0

    @property
    def latency_overhead(self) -> float:
        if self.mlr.mean_latency == 0:
            return 0.0
        return self.secmlr.mean_latency / self.mlr.mean_latency - 1.0

    def format_table(self) -> str:
        rows = [self.mlr.row(), self.secmlr.row()]
        table = format_table(ScenarioResult.HEADERS, rows,
                             title="E7 — SecMLR overhead vs MLR", ndigits=6)
        return (
            table
            + f"\noverhead: bytes {self.byte_overhead:+.1%}, "
            + f"energy {self.energy_overhead:+.1%}, "
            + f"latency {self.latency_overhead:+.1%}"
        )


def run_security_overhead(
    n_sensors: int = 50,
    field_size: float = 200.0,
    gateways: int = 2,
    rounds: int = 6,
    round_duration: float = 6.0,
    comm_range: float = 50.0,
    seed: int = 2,
) -> SecurityOverheadResult:
    """Identical deployment + schedule, secured and unsecured."""
    places = corner_places(field_size)
    gw_positions = [list(places.position(p)) for p in places.labels[:gateways]]

    def build(cls, name):
        scenario = make_uniform_scenario(
            n_sensors,
            field_size,
            gw_positions,
            comm_range=comm_range,
            topology_seed=seed,
            protocol_seed=seed + 11,
            energy_model=default_energy_model(),
        )
        schedule = GatewaySchedule.rotating(
            places, scenario.network.gateway_ids, num_rounds=rounds, seed=seed
        )
        protocol = cls(scenario.sim, scenario.network, scenario.channel, schedule)
        return run_collection_rounds(
            scenario, protocol, num_rounds=rounds, round_duration=round_duration,
            traffic_offset=2.5, name=name,
        )

    return SecurityOverheadResult(
        mlr=build(MLR, "MLR"),
        secmlr=build(SecMLR, "SecMLR"),
    )
