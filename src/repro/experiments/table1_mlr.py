"""E2 — exact reproduction of Table 1 (incremental MLR routing tables).

The paper walks node Si through three rounds with five feasible places
A-E and three gateways:

* round 1: gateways at {A, B, C}; Si's table reads A:8, B:6, C:7 hops and
  Si selects the route to B;
* round 2: the gateway at B moves to D; Si adds D:5 and selects D;
* round 3: the gateway at A moves to E; Si adds E:6 and still selects D.

We embed the hop counts geometrically (five relay chains radiating from
Si, one per place, chain lengths 8/6/7/5/6) and let MLR's accumulated
tables produce the three panels.  Measured tables and selections must
match the paper's exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.core.mlr import MLR
from repro.sim.mobility import FeasiblePlaces, GatewaySchedule
from repro.sim.serialize import serializable
from repro.world import WorldBuilder, WorldConfig

__all__ = ["Table1Result", "run_table1", "PAPER_TABLE1"]

#: (place -> hops) panels and the selected place, per round, as published
PAPER_TABLE1 = [
    ({"A": 8, "B": 6, "C": 7}, "B"),
    ({"A": 8, "B": 6, "C": 7, "D": 5}, "D"),
    ({"A": 8, "B": 6, "C": 7, "D": 5, "E": 6}, "D"),
]

_SPACING = 9.5
_COMM_RANGE = 10.0
_PLACE_HOPS = {"A": 8, "B": 6, "C": 7, "D": 5, "E": 6}
_ANGLES = {"A": 90.0, "B": 162.0, "C": 234.0, "D": 306.0, "E": 18.0}


def _ray_point(angle_deg: float, radius: float) -> tuple[float, float]:
    a = math.radians(angle_deg)
    return (radius * math.cos(a), radius * math.sin(a))


def build_table1_topology() -> tuple[np.ndarray, FeasiblePlaces, int]:
    """Si at the origin, one relay chain per feasible place.

    Place ``p`` lies ``_PLACE_HOPS[p]`` hops from Si: ``hops - 1`` relays
    at 9.5 m spacing (range 10 m — chain-adjacent only; 72° between rays
    keeps chains from shorting: 2·9.5·sin 36° ≈ 11.2 m > 10 m).  Returns
    (sensor positions, places, Si's node id).
    """
    sensors: list[tuple[float, float]] = [(0.0, 0.0)]  # Si is node 0
    mapping: dict[str, tuple[float, float]] = {}
    for place, hops in _PLACE_HOPS.items():
        angle = _ANGLES[place]
        for k in range(1, hops):
            sensors.append(_ray_point(angle, k * _SPACING))
        mapping[place] = _ray_point(angle, hops * _SPACING)
    return np.asarray(sensors), FeasiblePlaces.from_mapping(mapping), 0


@serializable
@dataclass(frozen=True)
class Table1Result:
    """Measured panels: per round, (place -> hops) and the selected place."""

    panels: list[dict[str, int]]
    selections: list[str]

    @property
    def matches_paper(self) -> bool:
        for (want_panel, want_sel), panel, sel in zip(PAPER_TABLE1, self.panels, self.selections):
            if panel != want_panel or sel != want_sel:
                return False
        return True

    def format_table(self) -> str:
        blocks = []
        for r, (panel, sel) in enumerate(zip(self.panels, self.selections)):
            paper_panel, paper_sel = PAPER_TABLE1[r]
            rows = [
                [p, paper_panel.get(p, "-"), panel.get(p, "-")]
                for p in sorted(set(paper_panel) | set(panel))
            ]
            rows.append(["selected", paper_sel, sel])
            blocks.append(
                format_table(
                    ["place", "paper hops", "measured"],
                    rows,
                    title=f"Table 1({chr(ord('a') + r)}) — Si's routing table, round {r + 1}",
                )
            )
        return "\n\n".join(blocks)


def run_table1(
    seed: int = 0,
    round_duration: float = 20.0,
    world=None,
) -> Table1Result:
    """Drive MLR through the three rounds of Table 1 and snapshot Si.

    The gateway moves of rounds 2 and 3 exercise the incremental spatial
    index; ``world=WorldConfig(spatial_index="bruteforce")`` replays the
    walkthrough on the full-invalidation reference path (the results
    must be identical).
    """
    cfg = WorldConfig.from_param(world) or WorldConfig()
    sensors, places, si = build_table1_topology()
    # Three gateways; initial places A, B, C (they will be moved by MLR).
    gw_positions = np.asarray([places.position(p) for p in ("A", "B", "C")])
    world = (
        WorldBuilder()
        .seed(seed)
        .sensors(sensors)
        .gateways(gw_positions)
        .comm_range(_COMM_RANGE)
        .ideal_radio()
        .places(places)
        .configure(cfg)
        .build()
    )
    g0, g1, g2 = world.network.gateway_ids
    schedule = GatewaySchedule(
        places=places,
        rounds=[
            {g0: "A", g1: "B", g2: "C"},
            {g0: "A", g1: "D", g2: "C"},  # B -> D
            {g0: "E", g1: "D", g2: "C"},  # A -> E
        ],
    )
    mlr = world.attach(MLR, schedule)
    sim = world.sim

    panels: list[dict[str, int]] = []
    selections: list[str] = []
    for r in range(3):
        sim.run(until=r * round_duration)
        mlr.start_round(r)
        sim.schedule(2.0, mlr.send_data, si)
        sim.run(until=r * round_duration + round_duration * 0.9)
        panels.append({place: hops for place, hops, _ in mlr.table_snapshot(si)})
        selections.append(mlr.selected_place(si) or "-")
    sim.run()
    return Table1Result(panels=panels, selections=selections)
