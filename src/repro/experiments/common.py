"""Shared scenario construction and round-driving for the experiments.

A *scenario* is a composed :class:`repro.world.World` — simulator,
network, channel, optional feasible places — built through
:class:`repro.world.WorldBuilder`; a *collection round* is the paper's
unit of time: gateways hold still, every sensor reports
``packets_per_round`` data packets, then the next round may move
gateways.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.analysis.stats import energy_stats
from repro.exceptions import ConfigurationError
from repro.sim.energy import EnergyModel
from repro.sim.mobility import FeasiblePlaces
from repro.sim.radio import IEEE802154, RadioConfig
from repro.sim.serialize import serializable
from repro.world import World, WorldBuilder, WorldConfig

__all__ = [
    "Scenario",
    "ScenarioResult",
    "default_energy_model",
    "make_uniform_scenario",
    "make_grid_scenario",
    "corner_places",
    "run_collection_rounds",
]


def default_energy_model() -> EnergyModel:
    """The first-order radio model with Heinzelman constants."""
    return EnergyModel()


#: A ready-to-run sensor-tier deployment.  Historically its own dataclass;
#: now the composed world itself, so experiment code and world-level code
#: speak the same type.
Scenario = World


#: (dict field, table header, cell formatter) — ``row()`` and ``HEADERS``
#: are both views over the ``to_dict()`` form, so tables, the runner's
#: cache, and JSONL traces share one serialization path.  ``extras`` is
#: deliberately absent: it round-trips through the dict form but has no
#: table column.
_SCENARIO_ROW_SPEC = [
    ("name", "protocol", lambda v: v),
    ("delivery_ratio", "delivery", lambda v: round(v, 3)),
    ("mean_hops", "hops", lambda v: round(v, 2)),
    ("mean_latency", "latency_ms", lambda v: round(v * 1e3, 2)),  # ms
    ("total_energy", "energy_J", lambda v: v),
    ("energy_variance", "variance", lambda v: v),
    ("lifetime", "lifetime_s", lambda v: "-" if v is None else round(v, 1)),
    ("control_frames", "ctrl_frames", lambda v: v),
    ("data_frames", "data_frames", lambda v: v),
    ("bytes_sent", "bytes", lambda v: v),
]


@serializable
@dataclass
class ScenarioResult:
    """Headline numbers of one protocol run (rows of most tables).

    ``to_dict()``/``from_dict()`` (injected by :func:`serializable`) are
    exact inverses; ``row()`` formats the dict form for tables.
    """

    name: str
    delivery_ratio: float
    mean_hops: float
    mean_latency: float
    total_energy: float
    energy_variance: float
    lifetime: Optional[float]
    control_frames: int
    data_frames: int
    bytes_sent: int
    extras: dict = field(default_factory=dict)

    def row(self) -> list:
        d = self.to_dict()
        return [fmt(d[name]) for name, _, fmt in _SCENARIO_ROW_SPEC]

    HEADERS = [header for _, header, _ in _SCENARIO_ROW_SPEC]


def corner_places(field_size: float, inset: float = 0.15) -> FeasiblePlaces:
    """Five feasible places: four insets from the corners plus the center."""
    lo, hi = inset * field_size, (1 - inset) * field_size
    mid = field_size / 2
    return FeasiblePlaces.from_mapping(
        {
            "A": (lo, lo),
            "B": (hi, hi),
            "C": (mid, mid),
            "D": (lo, hi),
            "E": (hi, lo),
        }
    )


def make_uniform_scenario(
    n_sensors: int,
    field_size: float,
    gateway_positions: Sequence[Sequence[float]],
    comm_range: float = 50.0,
    sensor_battery: float = float("inf"),
    topology_seed: int = 1,
    protocol_seed: int = 2,
    radio: Optional[RadioConfig] = None,
    energy_model: Optional[EnergyModel] = None,
    require_connected: bool = True,
    world: "WorldConfig | dict | None" = None,
) -> Scenario:
    """Uniform random deployment with explicit gateway positions.

    ``world`` carries the execution configuration — audit ledger,
    spatial index, SoA/vectorized paths, fault plan, shards — as one
    :class:`~repro.world.WorldConfig` value (or its jsonable form, as it
    arrives from swept :class:`~repro.runner.spec.ExperimentSpec`
    params).  The pre-``WorldConfig`` bare ``spatial_index``/``audit``/
    ``fault_plan`` kwargs were removed after a deprecation cycle —
    passing them now raises ``TypeError``.
    """
    cfg = WorldConfig.from_param(world) or WorldConfig()
    builder = (
        WorldBuilder()
        .seed(protocol_seed)
        .uniform_sensors(n_sensors, field_size, topology_seed=topology_seed)
        .gateways(gateway_positions)
        .comm_range(comm_range)
        .sensor_battery(sensor_battery)
        .radio(radio or IEEE802154.ideal())
        .require_connected(require_connected)
        .configure(cfg)
    )
    if energy_model is not None:
        builder.energy(energy_model)
    return builder.build()


def make_grid_scenario(
    rows: int,
    cols: int,
    spacing: float,
    gateway_positions: Sequence[Sequence[float]],
    comm_range: Optional[float] = None,
    sensor_battery: float = float("inf"),
    protocol_seed: int = 2,
    radio: Optional[RadioConfig] = None,
    energy_model: Optional[EnergyModel] = None,
    world: "WorldConfig | dict | None" = None,
) -> Scenario:
    """Regular grid deployment (deterministic topologies for tests).

    ``world`` is the consolidated execution configuration; the removed
    bare ``spatial_index``/``audit`` kwargs now raise ``TypeError``.
    """
    cfg = WorldConfig.from_param(world) or WorldConfig()
    builder = (
        WorldBuilder()
        .seed(protocol_seed)
        .grid_sensors(rows, cols, spacing)
        .gateways(gateway_positions)
        .sensor_battery(sensor_battery)
        .radio(radio or IEEE802154.ideal())
        .configure(cfg)
    )
    if comm_range is not None:
        builder.comm_range(comm_range)
    if energy_model is not None:
        builder.energy(energy_model)
    return builder.build()


def run_collection_rounds(
    scenario: Scenario,
    protocol,
    num_rounds: int,
    round_duration: float = 5.0,
    packets_per_round: int = 1,
    traffic_offset: float = 2.0,
    sources: Optional[Sequence[int]] = None,
    on_round_start: Optional[Callable[[int], None]] = None,
    stop_on_first_death: bool = False,
    name: str = "protocol",
) -> ScenarioResult:
    """Drive ``num_rounds`` of periodic data collection.

    ``on_round_start(r)`` is where MLR-style protocols move gateways (the
    default calls ``protocol.start_round(r)`` when the protocol has one).
    ``traffic_offset`` delays traffic into the round so that round-start
    control traffic (NOTIFY floods, μTESLA disclosures) settles first.
    """
    if num_rounds <= 0 or round_duration <= 0:
        raise ConfigurationError("num_rounds and round_duration must be positive")
    sim = scenario.sim
    network = scenario.network
    senders = list(sources) if sources is not None else network.sensor_ids
    starter = on_round_start
    if starter is None and hasattr(protocol, "start_round"):
        starter = protocol.start_round

    for r in range(num_rounds):
        sim.run(until=r * round_duration)
        if scenario.metrics.first_death is not None and stop_on_first_death:
            break
        if starter is not None:
            starter(r)
        for k in range(packets_per_round):
            for i, s in enumerate(senders):
                # Small deterministic stagger avoids a thundering herd.
                delay = traffic_offset + k * 1.0 + (i % 97) * 1e-3
                sim.schedule(delay, protocol.send_data, s)
        if hasattr(protocol, "flush_round"):
            sim.schedule(round_duration * 0.9, protocol.flush_round)
    sim.run()

    m = scenario.metrics
    e = energy_stats(network)
    return ScenarioResult(
        name=name,
        delivery_ratio=m.delivery_ratio,
        mean_hops=m.mean_hops,
        mean_latency=m.mean_latency,
        total_energy=e["total"],
        energy_variance=e["variance"],
        lifetime=m.lifetime,
        control_frames=m.control_frames,
        data_frames=m.data_frames,
        bytes_sent=m.bytes_sent,
    )
