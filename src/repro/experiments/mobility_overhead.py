"""E10 — mobility: accumulate-and-notify vs reset-per-round (ablation).

Section 5.3's argument for MLR: "Traditional table-driven routing
protocols need to update frequently routing tables of all sensor nodes,
arising too heavy traffic overhead ... our principle is to accumulate
routing tables round by round."  After every feasible place has hosted a
gateway, MLR sensors never flood discovery again — only NOTIFY floods
remain — while a reset-based protocol re-floods every round forever.

The experiment runs three variants over the same gateway schedule:

* ``MLR`` — the paper's accumulated tables;
* ``MLR-reset`` — identical protocol but tables cleared each round (the
  ablation);
* ``SecMLR`` — accumulation plus μTESLA, showing the disclosure-lag cost
  on top.

Reported per round: control frames and control bytes; the accumulate
curve must fall to (near) zero once coverage is complete, the reset curve
must stay high.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.core.mlr import MLR
from repro.core.routing_table import RoutingTable
from repro.core.secmlr import SecMLR
from repro.experiments.common import corner_places, make_uniform_scenario
from repro.sim.mobility import GatewaySchedule
from repro.sim.serialize import serializable

__all__ = ["MobilityOverheadResult", "ResetMLR", "run_mobility_overhead"]


class ResetMLR(MLR):
    """MLR with the paper's accumulation removed (per-round table reset).

    At every round start each sensor's routing table (and the source-route
    announcement cache) is wiped, so every sender re-floods discovery for
    every active place — the "traditional table-driven" behaviour the
    paper argues against.
    """

    def start_round(self, r: int) -> None:
        for node_id in list(self.tables):
            self.tables[node_id] = RoutingTable(node_id)
        self._announced.clear()
        super().start_round(r)


@serializable
@dataclass(frozen=True)
class MobilityOverheadResult:
    per_round_control_frames: dict[str, list[int]]
    per_round_control_bytes: dict[str, list[int]]
    delivery: dict[str, float]

    def total_control_frames(self, name: str) -> int:
        return sum(self.per_round_control_frames[name])

    def format_table(self) -> str:
        names = list(self.per_round_control_frames)
        num_rounds = len(next(iter(self.per_round_control_frames.values())))
        rows = []
        for r in range(num_rounds):
            rows.append([r] + [self.per_round_control_frames[n][r] for n in names])
        rows.append(["TOTAL"] + [self.total_control_frames(n) for n in names])
        rows.append(["delivery"] + [round(self.delivery[n], 3) for n in names])
        return format_table(
            ["round"] + names,
            rows,
            title="E10 — control frames per round (gateway mobility)",
        )


def run_mobility_overhead(
    n_sensors: int = 40,
    field_size: float = 180.0,
    gateways: int = 2,
    rounds: int = 8,
    round_duration: float = 6.0,
    comm_range: float = 50.0,
    seed: int = 6,
    variants: tuple[str, ...] = ("MLR", "MLR-reset", "SecMLR"),
) -> MobilityOverheadResult:
    """Per-round control-plane cost for the three variants."""
    places = corner_places(field_size)
    gw_positions = [list(places.position(p)) for p in places.labels[:gateways]]

    frames: dict[str, list[int]] = {}
    nbytes: dict[str, list[int]] = {}
    delivery: dict[str, float] = {}
    classes = {"MLR": MLR, "MLR-reset": ResetMLR, "SecMLR": SecMLR}

    for name in variants:
        scenario = make_uniform_scenario(
            n_sensors, field_size, gw_positions,
            comm_range=comm_range, topology_seed=seed, protocol_seed=seed + 19,
        )
        sim, net, ch = scenario.sim, scenario.network, scenario.channel
        schedule = GatewaySchedule.rotating(
            places, net.gateway_ids, num_rounds=rounds, seed=seed
        )
        protocol = classes[name](sim, net, ch, schedule)

        frames[name] = []
        nbytes[name] = []
        prev_frames = prev_bytes = 0
        for r in range(rounds):
            sim.run(until=r * round_duration)
            protocol.start_round(r)
            for i, s in enumerate(net.sensor_ids):
                sim.schedule(2.5 + (i % 43) * 1e-3, protocol.send_data, s)
            sim.run(until=(r + 1) * round_duration - 1e-9)
            frames[name].append(ch.metrics.control_frames - prev_frames)
            data_bytes = 0  # control bytes = total - data? track control only
            nbytes[name].append(ch.metrics.bytes_sent - prev_bytes)
            prev_frames = ch.metrics.control_frames
            prev_bytes = ch.metrics.bytes_sent
        sim.run()
        delivery[name] = ch.metrics.delivery_ratio

    return MobilityOverheadResult(
        per_round_control_frames=frames,
        per_round_control_bytes=nbytes,
        delivery=delivery,
    )
