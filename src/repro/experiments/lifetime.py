"""E5 — network lifetime comparison: MLR vs SPR vs baselines.

The paper's central performance claim (Section 5.3): MLR maximises the
time until the first sensor exhausts its battery by moving gateways and
re-selecting least-hop routes round by round, while single-sink schemes
burn out the sink's neighbors.  Every protocol runs the same deployment,
battery budget, traffic pattern and first-order radio model.

Expected shape: MLR outlives SPR (static gateways) outlives the flat
single-sink protocol; flooding dies fastest (implosion); LEACH sits
between flat and multi-gateway schemes; MLR shows the lowest energy
variance (the D^2 objective of eq. 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import energy_balance_index
from repro.analysis.tables import format_table
from repro.baselines.direct import DirectTransmission
from repro.baselines.flat import FlatSinkRouting
from repro.baselines.flooding import Flooding
from repro.baselines.leach import LEACH
from repro.core.mlr import MLR
from repro.core.spr import SPR
from repro.experiments.common import (
    ScenarioResult,
    corner_places,
    default_energy_model,
    make_uniform_scenario,
    run_collection_rounds,
)
from repro.sim.mobility import GatewaySchedule
from repro.sim.serialize import serializable
from repro.world import WorldConfig

__all__ = ["LifetimeComparison", "run_lifetime_comparison", "LIFETIME_PROTOCOLS"]

LIFETIME_PROTOCOLS = ("MLR", "SPR", "flat-1-sink", "LEACH", "flooding", "direct")


@serializable
@dataclass(frozen=True)
class LifetimeComparison:
    results: dict[str, ScenarioResult]
    round_duration: float
    max_rounds: int
    balance: dict[str, float]

    def lifetime_rounds(self, name: str) -> float:
        lt = self.results[name].lifetime
        if lt is None:
            return float(self.max_rounds)
        return lt / self.round_duration

    def format_table(self) -> str:
        rows = []
        for name, r in self.results.items():
            rows.append(
                [
                    name,
                    round(self.lifetime_rounds(name), 1),
                    round(r.delivery_ratio, 3),
                    r.total_energy,
                    r.energy_variance,
                    round(self.balance[name], 3),
                    r.bytes_sent,
                ]
            )
        rows.sort(key=lambda row: -float(row[1]))
        return format_table(
            ["protocol", "lifetime_rounds", "delivery", "energy_J", "variance_D2",
             "balance", "bytes"],
            rows,
            title="E5 — lifetime (rounds until first sensor death)",
            ndigits=6,
        )


def run_lifetime_comparison(
    n_sensors: int = 50,
    field_size: float = 200.0,
    battery: float = 0.05,
    gateways: int = 2,
    max_rounds: int = 200,
    round_duration: float = 5.0,
    comm_range: float = 50.0,
    packets_per_round: int = 4,
    seed: int = 1,
    protocols: tuple[str, ...] = LIFETIME_PROTOCOLS,
    world=None,
) -> LifetimeComparison:
    """Run every protocol on an identical deployment until first death.

    The horizon matters: MLR pays discovery floods up front while covering
    the feasible places (the Table 1 warm-up) and then routes from
    accumulated tables for free, so lifetime comparisons need batteries
    large enough to reach steady state — with tiny budgets every protocol
    dies during its own setup phase and the comparison is meaningless.
    """
    cfg = WorldConfig.from_param(world) or WorldConfig()
    places = corner_places(field_size)
    center = [[field_size / 2, field_size / 2]]
    multi_gw = [list(places.position(p)) for p in places.labels[:gateways]]
    energy_model = default_energy_model()

    results: dict[str, ScenarioResult] = {}
    balance: dict[str, float] = {}
    for name in protocols:
        gw_positions = center if name in ("flat-1-sink", "LEACH", "direct") else multi_gw
        scenario = make_uniform_scenario(
            n_sensors,
            field_size,
            gw_positions,
            comm_range=comm_range,
            sensor_battery=battery,
            topology_seed=seed,
            protocol_seed=seed + 7,
            energy_model=energy_model,
            world=cfg,
        )
        sim, net, ch = scenario.sim, scenario.network, scenario.channel
        if name == "MLR":
            schedule = GatewaySchedule.rotating(
                places, net.gateway_ids, num_rounds=max_rounds, seed=seed
            )
            protocol = MLR(sim, net, ch, schedule)
        elif name == "SPR":
            protocol = SPR(sim, net, ch)
        elif name == "flat-1-sink":
            protocol = FlatSinkRouting(sim, net, ch)
        elif name == "LEACH":
            protocol = LEACH(sim, net, ch)
        elif name == "flooding":
            protocol = Flooding(sim, net, ch)
        elif name == "direct":
            protocol = DirectTransmission(sim, net, ch)
        else:
            raise ValueError(f"unknown protocol {name!r}")
        results[name] = run_collection_rounds(
            scenario,
            protocol,
            num_rounds=max_rounds,
            round_duration=round_duration,
            packets_per_round=packets_per_round,
            stop_on_first_death=True,
            name=name,
        )
        balance[name] = energy_balance_index(net)
    return LifetimeComparison(
        results=results,
        round_duration=round_duration,
        max_rounds=max_rounds,
        balance=balance,
    )
